(* Benchmark harness: regenerates every table and figure of the paper
   (printed below), and times each regeneration plus the substrate
   operations with Bechamel.

   Flags:
     --smoke        build-sanity mode: run one fast benchmark and exit
     --json         also write machine-readable results (name -> ns/run)
     --out FILE     where --json writes (default BENCH_RESULTS.json)
     --no-tables    skip the table/figure regeneration printout
     --compare FILE check this run against a previous --json file and exit
                    non-zero when any shared benchmark is >25% slower
     --only SUBSTR  run only the benchmarks whose name contains SUBSTR *)

open Bechamel
open Toolkit

(* Each benchmark carries its own Bechamel quota: the slow whole-table
   regenerations get a handful of long runs instead of burning the default
   200-iteration budget, the microbenchmarks keep tight statistics. The raw
   body is kept alongside the staged test so one extra instrumented run can
   snapshot its counters for the JSON metrics block. *)
type bench = { test : Test.t; limit : int; quota : float; fn : unit -> unit }

let make_bench ?(limit = 200) ?(quota = 0.6) name f =
  { test = Test.make ~name (Staged.stage f); limit; quota; fn = f }

(* Whole-artifact regenerations: a few runs each is plenty. *)
let slow = make_bench ~limit:12 ~quota:1.2

(* One benchmark per paper artifact. *)

let bench_table1 =
  slow "table1:13-multipliers-LL" (fun () ->
      ignore (Report.Experiments.table1 ()))

let bench_table3 =
  slow "table3:wallace-ULL" (fun () ->
      ignore (Report.Experiments.table_wallace `Ull))

let bench_table4 =
  slow "table4:wallace-HS" (fun () ->
      ignore (Report.Experiments.table_wallace `Hs))

let bench_fig1 =
  slow "fig1:ptot-vs-vdd-sweeps" (fun () ->
      ignore (Report.Experiments.figure1 ()))

let bench_fig2 =
  make_bench "fig2:linearization-fit" (fun () ->
      ignore (Report.Experiments.figure2 ()))

(* Substrate micro-benchmarks. *)

let calibrated_problem =
  let row = Power_core.Paper_data.table1_find "RCA" in
  Power_core.Calibration.problem_of_row Device.Technology.ll
    ~f:Power_core.Paper_data.frequency row

let bench_numerical_opt =
  make_bench "core:numerical-optimum" (fun () ->
      ignore (Power_core.Numerical_opt.optimum calibrated_problem))

let bench_closed_form =
  make_bench "core:eq13-closed-form" (fun () ->
      ignore (Power_core.Closed_form.evaluate calibrated_problem))

let bench_problem_of_row =
  make_bench "core:problem-of-row-memoized" (fun () ->
      ignore
        (Power_core.Calibration.problem_of_row Device.Technology.ll
           ~f:Power_core.Paper_data.frequency
           (Power_core.Paper_data.table1_find "RCA")))

let bench_build_rca =
  make_bench "netlist:build-rca16" (fun () ->
      ignore (Multipliers.Rca.basic ~bits:16))

let bench_build_wallace =
  make_bench "netlist:build-wallace16" (fun () ->
      ignore (Multipliers.Wallace.basic ~bits:16))

let bench_catalog_cached =
  make_bench "netlist:catalog-build-memoized" (fun () ->
      ignore (Multipliers.Catalog.build "Wallace"))

let bench_sta =
  let spec = Multipliers.Rca.basic ~bits:16 in
  make_bench "netlist:sta-rca16" (fun () ->
      ignore (Netlist.Timing.logical_depth spec.circuit))

let bench_activity =
  let spec = Multipliers.Wallace.basic ~bits:16 in
  make_bench ~limit:60 "logicsim:activity-wallace16-20cycles" (fun () ->
      ignore (Multipliers.Harness.measure_activity ~cycles:20 spec))

(* A/B pair for the builder preallocation: the same Wallace core framed
   with and without the cell-count hint. A is the plain growth-doubling
   path ([Registered.build] with no [expect_cells]), B is the hinted
   production path ([Wallace.basic]). *)
let bench_diag_build_unhinted =
  make_bench "diag:build-wallace16-unhinted" (fun () ->
      ignore
        (Multipliers.Registered.build ~name:"wallace_basic" ~label:"Wallace"
           ~bits:16 ~core:Multipliers.Wallace.core ()))

let bench_diag_simonly =
  let spec = Multipliers.Wallace.basic ~bits:16 in
  make_bench ~limit:60 "diag:fresh-simulator-wallace16" (fun () ->
      ignore (Multipliers.Harness.fresh_simulator spec))

let bench_diag_cyclesonly =
  let spec = Multipliers.Wallace.basic ~bits:16 in
  make_bench ~limit:60 "diag:cycles-only-wallace16" (fun () ->
      let sim = Multipliers.Harness.fresh_simulator spec in
      let rng = Numerics.Rng.create 7 in
      for _ = 1 to 26 do
        Logicsim.Bus.drive sim spec.a_bus (Numerics.Rng.int rng 65536);
        Logicsim.Bus.drive sim spec.b_bus (Numerics.Rng.int rng 65536);
        Logicsim.Simulator.settle sim;
        Logicsim.Simulator.clock_tick sim;
        Logicsim.Simulator.settle sim
      done)

let bench_diag_cycles_reference =
  let spec = Multipliers.Wallace.basic ~bits:16 in
  let drive_ref sim bus value =
    Array.iteri
      (fun i net ->
        Logicsim.Reference.set_input sim net
          (Netlist.Logic.of_bool ((value lsr i) land 1 = 1)))
      bus
  in
  make_bench ~limit:60 "diag:cycles-only-wallace16-reference" (fun () ->
      let sim = Logicsim.Reference.create spec.circuit in
      let rng = Numerics.Rng.create 7 in
      for _ = 1 to 26 do
        drive_ref sim spec.a_bus (Numerics.Rng.int rng 65536);
        drive_ref sim spec.b_bus (Numerics.Rng.int rng 65536);
        Logicsim.Reference.settle sim;
        Logicsim.Reference.clock_tick sim;
        Logicsim.Reference.settle sim
      done)

let bench_activity_many =
  let specs =
    List.map Multipliers.Catalog.build [ "RCA"; "Wallace"; "Dadda"; "Booth r4" ]
  in
  slow "logicsim:activity-4-archs-pooled" (fun () ->
      ignore (Multipliers.Harness.measure_activity_many ~cycles:20 specs))

let bench_ring_oscillator =
  make_bench "spice:ring-oscillator-7st" (fun () ->
      let config = Spice.Transient.default_config Device.Technology.ll in
      ignore (Spice.Ring_oscillator.simulate config ~stages:7))

(* Ablation benches (design choices DESIGN.md calls out). *)

let bench_ablation_dibl =
  make_bench "ablation:dibl-invariance" (fun () ->
      ignore (Power_core.Ablation.dibl_sweep calibrated_problem))

let bench_ablation_linrange =
  slow "ablation:linearization-range" (fun () ->
      ignore
        (Power_core.Ablation.linearization_range_sweep ~his:[ 0.8; 1.0; 1.2 ] ()))

let bench_ablation_glitch =
  slow "ablation:glitch-power-rca" (fun () ->
      ignore
        (Power_core.Ablation.glitch_ablation ~cycles:40 Device.Technology.ll
           ~f:Power_core.Paper_data.frequency ~labels:[ "RCA" ]))

let bench_frequency_sweep =
  let params =
    Power_core.Calibration.params_of_row Device.Technology.ll
      ~f:Power_core.Paper_data.frequency
      (Power_core.Paper_data.table1_find "Wallace")
  in
  slow "extension:frequency-sweep" (fun () ->
      ignore (Power_core.Ablation.frequency_sweep ~points:7 params))

let bench_build_booth =
  make_bench "extension:build-booth16" (fun () ->
      ignore (Multipliers.Booth.basic ~bits:16))

let bench_build_dadda =
  make_bench "extension:build-dadda16" (fun () ->
      ignore (Multipliers.Dadda.basic ~bits:16))

let bench_energy_mep =
  make_bench "extension:minimum-energy-point" (fun () ->
      ignore (Power_core.Energy.minimum_energy_point calibrated_problem))

let bench_variation =
  slow "extension:variation-50-dies" (fun () ->
      let rng = Numerics.Rng.create 2006 in
      ignore
        (Power_core.Variation.monte_carlo ~samples:50 ~rng calibrated_problem))

(* The headline scale target: one million re-optimised dies through the
   streaming engine, Sobol sampling. Memory stays O(chunk) whatever the
   die count. *)
let bench_variation_1m =
  make_bench ~limit:3 ~quota:3.0 "extension:variation-1M-dies" (fun () ->
      let rng = Numerics.Rng.create 2006 in
      ignore
        (Power_core.Variation.yield_mc ~dies:1_000_000 ~sampler:`Sobol ~rng
           calibrated_problem))

(* The variance-reduction trade in one body: Sobol at a quarter of the
   dies next to pseudo-random at full count — the pair whose statistics
   the @yield tests hold to equal-or-better accuracy. *)
let bench_variation_qmc_vs_mc =
  slow "extension:variation-qmc-vs-mc" (fun () ->
      let rng = Numerics.Rng.create 2006 in
      ignore
        (Power_core.Variation.yield_mc ~dies:12_500 ~sampler:`Sobol ~rng
           calibrated_problem);
      ignore
        (Power_core.Variation.yield_mc ~dies:50_000 ~sampler:`Pseudo ~rng
           calibrated_problem))

(* Same-process A/B behind the engine's throughput claim. The naive arm
   re-creates the pre-continuation approach scaled up: one cold 256-point
   grid solve per die, boxed per-die samples, full-sort percentiles, no
   pool. The engine arm streams the same 2000 dies. *)
let bench_variation_naive =
  slow "diag:variation-naive-2k-dies" (fun () ->
      let rng = Numerics.Rng.create 2006 in
      let totals =
        List.init 2000 (fun _ ->
            let stream = Numerics.Rng.split rng in
            let _, _, _, _, varied =
              Power_core.Variation.draw_factors
                Power_core.Variation.default_spread stream calibrated_problem
            in
            (Power_core.Numerical_opt.optimum_grid varied).total)
      in
      ignore (Numerics.Stats.summarize totals);
      ignore (Numerics.Stats.percentile totals 95.0))

let bench_variation_engine =
  slow "diag:variation-engine-2k-dies" (fun () ->
      let rng = Numerics.Rng.create 2006 in
      ignore (Power_core.Variation.yield_mc ~dies:2000 ~rng calibrated_problem))

(* Interval certifier over the full LL catalog: one branch-and-bound
   certification plus one production solve per Table 1 row, the body of
   `optpower certify --tech LL`. Counters cert.boxes/splits/prunes ride
   along as the work fingerprint. *)
let bench_certify_catalog =
  slow "analysis:certify-catalog" (fun () ->
      ignore
        (Report.Certify_report.rows ~flavors:[ Device.Technology.ll ] ()))

(* A 1k-candidate design space over LL/RCA: the clock-frequency axis cut
   into 1000 slices from 0.5x to 4x the paper's operating point, each
   candidate spanning the full supply search range. Finding the
   lowest-power design means certifying every box — unless the cheap
   certified lower bound can discard the slices that provably cannot
   beat the incumbent. Built once; the benches below share it. *)
let dse_candidates =
  let f_nom = calibrated_problem.Power_core.Power_law.f in
  let lo = 0.5 *. f_nom and hi = 4.0 *. f_nom in
  let n = 1000 in
  let step = (hi -. lo) /. float_of_int n in
  List.init n (fun i ->
      let a = lo +. (float_of_int i *. step) in
      {
        Power_core.Dse.label = Printf.sprintf "slice-%03d" i;
        box =
          Power_core.Absint.box
            ~f:(Numerics.Interval.make a (a +. step))
            calibrated_problem;
      })

let bench_dse_prune =
  slow "analysis:dse-prune" (fun () ->
      ignore (Power_core.Dse.prune dse_candidates))

(* A/B behind the pruner's reason to exist: running the full
   branch-and-bound certification on every candidate box versus pruning
   first with the coarse certified lower bound and certifying only the
   survivors. Both arms end with a certificate for every box that could
   still hold the lowest-power design. *)
let certify_slice (c : Power_core.Dse.candidate) =
  ignore (Power_core.Absint.certify c.box)

let bench_diag_dse_exhaustive =
  slow "diag:dse-exhaustive-1k-slices" (fun () ->
      List.iter certify_slice dse_candidates)

let bench_diag_dse_pruned =
  slow "diag:dse-prune-then-certify-1k-slices" (fun () ->
      let result = Power_core.Dse.prune dse_candidates in
      List.iter certify_slice result.Power_core.Dse.kept)

(* The generator-space Pareto explorer on a ~2k-candidate space: 18
   Booth substrates (radix x signedness x depth) x 5 parallelisation
   factors x 3 flavors x 8 frequency slices = 2160 candidates. The
   extension bench times the production (pruned) path; the diag pair is
   the A/B behind it — identical axes with pruning off versus on, both
   producing bitwise-identical fronts. Substrate characterisation is
   memoized process-wide; a lazy first exploration pays it outside the
   A/B asymmetry. *)
let dse_pareto_axes =
  {
    Power_core.Explorer.bits = 8;
    (* Pinned to the Booth family: this is the historical 2160-candidate
       baseline the regression gate tracks. *)
    families = [ Power_core.Explorer.Booth ];
    radices = [ 2; 4; 8 ];
    signednesses = [ Multipliers.Booth.Unsigned; Multipliers.Booth.Signed ];
    stages = [ 1; 2; 3 ];
    copies = [ 1; 2; 4; 6; 8 ];
    fmults = [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 3.0; 4.0 ];
    techs = Device.Technology.all;
  }

let dse_pareto_warm =
  lazy (ignore (Power_core.Explorer.explore ~prune:true dse_pareto_axes))

let bench_dse_pareto =
  slow "extension:dse-pareto-2k" (fun () ->
      Lazy.force dse_pareto_warm;
      ignore (Power_core.Explorer.explore ~prune:true dse_pareto_axes))

let bench_diag_dse_pareto_exhaustive =
  make_bench ~limit:6 ~quota:2.4 "diag:dse-pareto-exhaustive-2k" (fun () ->
      Lazy.force dse_pareto_warm;
      ignore (Power_core.Explorer.explore ~prune:false dse_pareto_axes))

let bench_diag_dse_pareto_pruned =
  make_bench ~limit:6 ~quota:2.4 "diag:dse-pareto-pruned-2k" (fun () ->
      Lazy.force dse_pareto_warm;
      ignore (Power_core.Explorer.explore ~prune:true dse_pareto_axes))

(* Warm-store A/B: the same pruned exploration against a store recreated
   empty every run (cold: every survivor pays its certification and exact
   solve, plus the store writes) versus a pre-populated store (warm: the
   outcomes replay from disk). In-process substrate memos are shared by
   both arms, so the delta isolates exactly what the store saves across
   processes — certifications, exact solves and the ledger proofs. The
   store.* hit/miss/put counters ride the metrics block as the work
   fingerprint of each arm. *)
let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let store_ab_dir tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "optpower-bench-store-%s.%d" tag (Unix.getpid ()))

let store_ab_axes =
  {
    Power_core.Explorer.bits = 6;
    families = [ Power_core.Explorer.Booth ];
    radices = [ 2; 4 ];
    signednesses = [ Multipliers.Booth.Unsigned ];
    stages = [ 1; 2 ];
    copies = [ 1; 2 ];
    fmults = [ 0.5; 1.0 ];
    techs = Device.Technology.all;
  }

let store_ab_explore dir =
  match Power_core.Warm.open_store ~path:dir () with
  | None -> failwith "bench: cannot open the warm store"
  | Some st ->
    Fun.protect
      ~finally:(fun () -> Store.close st)
      (fun () ->
        ignore (Power_core.Explorer.explore ~prune:true ~store:st store_ab_axes))

(* One population pass shared by both arms: fills the in-process substrate
   memos and writes the warm arm's store. *)
let store_ab_warmed =
  lazy
    (let dir = store_ab_dir "warm" in
     remove_tree dir;
     store_ab_explore dir;
     dir)

let bench_diag_explore_cold =
  slow "diag:explore-cold" (fun () ->
      ignore (Lazy.force store_ab_warmed);
      let dir = store_ab_dir "cold" in
      remove_tree dir;
      store_ab_explore dir)

let bench_diag_explore_warm =
  slow "diag:explore-warm" (fun () ->
      store_ab_explore (Lazy.force store_ab_warmed))

(* Order-statistics A/B: full sort versus in-place quickselect, both on a
   fresh copy of the same 50k-element array. *)
let percentile_base =
  let rng = Numerics.Rng.create 31 in
  Array.init 50_000 (fun _ ->
      Float.exp (Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:1.0))

let bench_percentile_sort =
  make_bench "diag:percentile-sort-50k" (fun () ->
      let xs = Array.copy percentile_base in
      Array.sort compare xs;
      let rank = 0.95 *. float_of_int (Array.length xs - 1) in
      let lo = int_of_float (Float.floor rank) in
      let frac = rank -. float_of_int lo in
      ignore ((xs.(lo) *. (1.0 -. frac)) +. (xs.(lo + 1) *. frac)))

let bench_percentile_select =
  make_bench "diag:percentile-select-50k" (fun () ->
      ignore (Numerics.Stats.percentile_array (Array.copy percentile_base) 95.0))

let benchmarks =
  [
    bench_fig2;
    bench_closed_form;
    bench_numerical_opt;
    bench_problem_of_row;
    bench_fig1;
    bench_table1;
    bench_table3;
    bench_table4;
    bench_build_rca;
    bench_build_wallace;
    bench_diag_build_unhinted;
    bench_catalog_cached;
    bench_sta;
    bench_activity;
    bench_diag_simonly;
    bench_diag_cyclesonly;
    bench_diag_cycles_reference;
    bench_activity_many;
    bench_ring_oscillator;
    bench_ablation_dibl;
    bench_ablation_linrange;
    bench_ablation_glitch;
    bench_frequency_sweep;
    bench_build_booth;
    bench_build_dadda;
    bench_energy_mep;
    bench_variation;
    bench_variation_1m;
    bench_variation_qmc_vs_mc;
    bench_variation_naive;
    bench_variation_engine;
    bench_percentile_sort;
    bench_percentile_select;
    bench_certify_catalog;
    bench_dse_prune;
    bench_diag_dse_exhaustive;
    bench_diag_dse_pruned;
    bench_dse_pareto;
    bench_diag_dse_pareto_exhaustive;
    bench_diag_dse_pareto_pruned;
    bench_diag_explore_cold;
    bench_diag_explore_warm;
  ]

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let pretty_estimate estimate =
  if Float.is_nan estimate then "n/a"
  else if estimate >= 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
  else if estimate >= 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
  else if estimate >= 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
  else Printf.sprintf "%.0f ns" estimate

(* Serve load profile: latency of the resident batch service under a
   synthetic closed-loop client fleet, measured through the full wire path
   (socketpair, JSON-lines framing, session batching, pool dispatch).
   Three rows land in the results block and ride the same --compare gate
   as the Bechamel timings:

     serve:latency-p50-p99:single   median solo-client request latency
     serve:latency-p50-p99:p50      p50 under the 32-client fleet
     serve:latency-p50-p99:p99      p99 under the 32-client fleet

   Clients are closed-loop (at most one request in flight each), so the
   fleet measures queueing plus batch-amortised dispatch, not an unbounded
   pipeline. The result cache is off and every client walks a different
   stride of the label catalog, so each request does real solver work.
   The fleet run keeps the best-of-3 percentile pair: the contract is
   about the service, not about scheduler noise on a shared host. *)

let serve_labels =
  Array.of_list
    (List.map
       (fun (r : Power_core.Paper_data.table1_row) -> r.label)
       Power_core.Paper_data.table1)

let serve_with_session ~cache f =
  let config =
    { Serve.Session.jobs = None; queue_capacity = 64; max_batch = 32; cache;
      store = None }
  in
  let session = Serve.Session.create ~config () in
  Fun.protect
    ~finally:(fun () -> Serve.Session.shutdown session)
    (fun () -> f session)

(* Run [nclients] wired clients of [per_client] requests each, where
   [request i k] names the frame client [i] sends as its [k]-th call;
   returns every per-request latency in ns. *)
let serve_run_fleet session ~request nclients per_client =
  let lats = Array.make (nclients * per_client) 0.0 in
  let client i () =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let handler =
      Thread.create (fun () -> Serve.Server.handle_connection session a) ()
    in
    let c = Serve.Client.of_fd b in
    for k = 0 to per_client - 1 do
      let meth, params = request i k in
      let t0 = Obs.now_ns () in
      (match Serve.Client.rpc c ~meth params with
      | Ok _ -> ()
      | Error (code, msg) ->
        failwith (Printf.sprintf "serve bench: %s: %s" code msg));
      lats.((i * per_client) + k) <- Obs.now_ns () -. t0
    done;
    Serve.Client.close c;
    Thread.join handler
  in
  let threads = List.init nclients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  Array.to_list lats

let serve_optimum_request i k =
  let arch = serve_labels.((i + k) mod Array.length serve_labels) in
  ("optimum", [ ("arch", Serve.Json.Str arch) ])

let serve_lint_request _ _ = ("lint", [])

(* Latency SLO for the long-running service. The request unit is a
   full-rulebook [lint] — the heaviest one-shot request the service
   takes, so its solve cost dwarfs wire overhead. The baseline [:single]
   is what one cold lint request costs end to end through the wire
   (cache off, so every request actually runs the analysis engine). The
   loaded run drives 32 closed-loop clients at a session in its
   product-default (cache-on) state: the session memo amortizes the work
   across clients — exactly the point of keeping the caches
   session-owned — so on this single-core box p99 under 32-way load must
   stay within 5x of one cold request. *)
let serve_latency_rows () =
  let single =
    serve_with_session ~cache:false (fun s ->
        serve_run_fleet s ~request:serve_lint_request 1 7)
  in
  let single_med = Numerics.Stats.percentile single 50.0 in
  let best_p50 = ref infinity and best_p99 = ref infinity in
  serve_with_session ~cache:true (fun s ->
      ignore (serve_run_fleet s ~request:serve_lint_request 1 1);
      for _ = 1 to 3 do
        let lats = serve_run_fleet s ~request:serve_lint_request 32 25 in
        let p99 = Numerics.Stats.percentile lats 99.0 in
        if p99 < !best_p99 then begin
          best_p99 := p99;
          best_p50 := Numerics.Stats.percentile lats 50.0
        end
      done);
  Printf.printf
    "%-42s %16s\n%-42s %16s\n%-42s %16s   (p99/single %.2fx, target <= 5x)\n%!"
    "serve:latency-p50-p99:single"
    (pretty_estimate single_med) "serve:latency-p50-p99:p50"
    (pretty_estimate !best_p50) "serve:latency-p50-p99:p99"
    (pretty_estimate !best_p99)
    (!best_p99 /. single_med);
  [
    ("serve:latency-p50-p99:single", single_med);
    ("serve:latency-p50-p99:p50", !best_p50);
    ("serve:latency-p50-p99:p99", !best_p99);
  ]

(* Deterministic work fingerprint for the serve rows: a small fixed fleet
   under instrumentation. Normalized counters only — batch composition
   (category "sched") depends on timing and must not enter the counter
   regression gate. *)
let serve_counter_snapshot () =
  Obs.set_enabled true;
  Obs.reset ();
  serve_with_session ~cache:false (fun s ->
      ignore (serve_run_fleet s ~request:serve_optimum_request 4 5));
  let counters = Obs.counters ~normalize:true () in
  Obs.set_enabled false;
  Obs.reset ();
  ("serve:latency-p50-p99", counters)

(* Runs the benches and returns (name, ns/run) in declaration order. *)
let run_benchmarks benches =
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Printf.printf "%-42s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 60 '-');
  List.concat_map
    (fun bench ->
      let cfg =
        Benchmark.cfg ~limit:bench.limit ~quota:(Time.second bench.quota) ()
      in
      let results = Benchmark.all cfg instances bench.test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          let estimate =
            match Analyze.OLS.estimates result with
            | Some [ e ] -> e
            | Some _ | None -> Float.nan
          in
          Printf.printf "%-42s %16s\n%!" name (pretty_estimate estimate);
          rows := (name, estimate) :: !rows)
        analyzed;
      List.rev !rows)
    benches

(* One extra run of each bench body under instrumentation, returning the
   merged counter values — a deterministic work fingerprint (solver
   iterations, gate evaluations, pool items) that rides along with the
   timings in BENCH_RESULTS.json. *)
let counter_snapshot bench =
  let name = Test.name bench.test in
  Obs.set_enabled true;
  Obs.reset ();
  bench.fn ();
  let counters = Obs.counters () in
  Obs.set_enabled false;
  Obs.reset ();
  (name, counters)

(* Minimal JSON writer: benchmark and counter names are plain ASCII without
   quotes or backslashes, so escaping is not needed. *)
let write_json ~path ?(metrics = []) results =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"optpower-bench/1\",\n";
  Printf.fprintf oc "  \"jobs\": %d,\n" (Parallel.Pool.default_jobs ());
  Printf.fprintf oc "  \"unit\": \"ns/run\",\n  \"results\": {\n";
  List.iteri
    (fun i (name, estimate) ->
      Printf.fprintf oc "    %S: %s%s\n" name
        (if Float.is_nan estimate then "null"
         else Printf.sprintf "%.3f" estimate)
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  },\n  \"metrics\": {\n";
  List.iteri
    (fun i (name, counters) ->
      Printf.fprintf oc "    %S: { %s }%s\n" name
        (String.concat ", "
           (List.map (fun (c, v) -> Printf.sprintf "%S: %d" c v) counters))
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "\nJSON results written to %s\n" path

(* Reads the "results" and "metrics" blocks of a previous --json file — the
   format above, so a line-oriented scan is enough: result entries look
   like ["name": 123.456,], metric entries like ["name": { "c": 1, ... },]
   and each block ends at the first line starting with a closing brace. *)

let parse_metric_line line =
  match (String.index_opt line '{', String.rindex_opt line '}') with
  | Some lb, Some rb when rb > lb -> begin
    try
      let name = Scanf.sscanf line " %S" Fun.id in
      let body = String.sub line (lb + 1) (rb - lb - 1) in
      let counters =
        List.filter_map
          (fun pair ->
            try Some (Scanf.sscanf (String.trim pair) " %S : %d" (fun c v -> (c, v)))
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
          (String.split_on_char ',' body)
      in
      Some (name, counters)
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  end
  | _ -> None

let parse_baseline path =
  let ic = open_in path in
  let results = ref [] in
  let metrics = ref [] in
  let section = ref `Preamble in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line >= 9 && String.sub line 0 9 = "\"results\"" then
         section := `Results
       else if String.length line >= 9 && String.sub line 0 9 = "\"metrics\""
       then section := `Metrics
       else if String.length line > 0 && line.[0] = '}' then
         section := `Preamble
       else
         match !section with
         | `Preamble -> ()
         | `Results -> begin
           try
             Scanf.sscanf line " %S : %s" (fun name v ->
                 let v =
                   if String.length v > 0 && v.[String.length v - 1] = ',' then
                     String.sub v 0 (String.length v - 1)
                   else v
                 in
                 if v <> "null" then
                   results := (name, float_of_string v) :: !results)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         end
         | `Metrics -> (
           match parse_metric_line line with
           | Some m -> metrics := m :: !metrics
           | None -> ())
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !results, List.rev !metrics)

(* Regression gate: every benchmark present in both runs must stay within
   +25% of its recorded baseline, and every counter shared with the
   baseline's metrics block must stay within +10% (plus a small absolute
   slack for counters near zero). Counters are deterministic work
   fingerprints — solver iterations, grid probes, pool items — so unlike
   the timings they flag an algorithmic regression even on a noisy host.
   Exits non-zero otherwise, so the [@bench-compare] alias can act as a
   perf tripwire. Renamed/retired counters simply stop being shared and
   drop out of the comparison. *)
let regression_threshold = 1.25
let counter_threshold = 1.10
let counter_slack = 8

let compare_counters ~base_metrics metrics =
  let regressions = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (bench_name, counters) ->
      match List.assoc_opt bench_name base_metrics with
      | None -> ()
      | Some base_counters ->
        List.iter
          (fun (counter, current) ->
            match List.assoc_opt counter base_counters with
            | None -> ()
            | Some base ->
              incr compared;
              let budget =
                int_of_float
                  (Float.ceil (float_of_int base *. counter_threshold))
                + counter_slack
              in
              if current > budget then begin
                Printf.printf
                  "%-42s %s: %d -> %d (budget %d)  COUNTER REGRESSION\n"
                  bench_name counter base current budget;
                regressions := (bench_name ^ "/" ^ counter) :: !regressions
              end)
          counters)
    metrics;
  (!compared, List.rev !regressions)

let compare_against ~path ~metrics results =
  let baseline, base_metrics = parse_baseline path in
  Printf.printf "\n=== Regression check vs %s (threshold %+.0f%%) ===\n\n" path
    ((regression_threshold -. 1.0) *. 100.0);
  Printf.printf "%-42s %12s %12s %7s\n" "benchmark" "baseline" "current"
    "ratio";
  Printf.printf "%s\n" (String.make 78 '-');
  let regressions = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (name, current) ->
      match List.assoc_opt name baseline with
      | None -> ()
      | Some base ->
        if (not (Float.is_nan current)) && base > 0.0 then begin
          incr compared;
          let ratio = current /. base in
          let flag = ratio > regression_threshold in
          Printf.printf "%-42s %12s %12s %6.2fx%s\n" name
            (pretty_estimate base) (pretty_estimate current) ratio
            (if flag then "  REGRESSION" else "");
          if flag then regressions := name :: !regressions
        end)
    results;
  if !compared = 0 then begin
    Printf.printf "\nFAIL: no benchmark in common with %s\n" path;
    exit 1
  end;
  let counters_compared, counter_regressions =
    compare_counters ~base_metrics metrics
  in
  let failed = ref false in
  (match List.rev !regressions with
  | [] ->
    Printf.printf "\nOK: %d benchmark(s) within the +25%% budget\n" !compared
  | names ->
    Printf.printf "\nFAIL: %d of %d benchmark(s) regressed more than 25%%: %s\n"
      (List.length names) !compared
      (String.concat ", " names);
    failed := true);
  (match counter_regressions with
  | [] ->
    Printf.printf "OK: %d shared counter(s) within the +10%% budget\n"
      counters_compared
  | names ->
    Printf.printf "FAIL: %d of %d counter(s) regressed more than 10%%: %s\n"
      (List.length names) counters_compared
      (String.concat ", " names);
    failed := true);
  if !failed then exit 1

(* Disabled-instrumentation overhead contract (checked under --smoke): an
   un-instrumented replica of the grid-scan solver vs the real,
   instrumented [Numerical_opt.optimum_grid] with observability off. The
   replica inlines [ptot_on_constraint] and the default bracket/sample
   settings, so the two sides differ only by the instrumentation points
   (the seeded production path shares those same points per probe, but
   runs a different probe count, so the A/B must stay on the scan).
   Wall-clock A/B on a shared machine is noisy, so we take the best of
   several attempts — the contract is about the code, not the
   scheduler. *)
let baseline_optimum problem =
  let f vdd =
    if vdd <= 0.0 then infinity
    else begin
      let b = Power_core.Power_law.at problem ~vdd in
      if Float.is_finite b.total then b.total else infinity
    end
  in
  let r = Numerics.Minimize.grid_then_golden ~samples:256 ~tol:1e-9 ~f 0.05 3.0 in
  Power_core.Power_law.at problem ~vdd:r.x

let overhead_check () =
  let reps = 120 and attempts = 5 and budget = 1.02 in
  let measure f =
    for _ = 1 to 20 do
      ignore (f calibrated_problem)
    done;
    let t0 = Obs.now_ns () in
    for _ = 1 to reps do
      ignore (f calibrated_problem)
    done;
    (Obs.now_ns () -. t0) /. float_of_int reps
  in
  let ratio =
    List.fold_left
      (fun best _ ->
        let base = measure baseline_optimum in
        let inst =
          measure (fun p -> Power_core.Numerical_opt.optimum_grid p)
        in
        Float.min best (inst /. base))
      infinity
      (List.init attempts Fun.id)
  in
  Printf.printf
    "\ndisabled-instrumentation overhead: best instrumented/baseline ratio \
     %.4f over %d attempts (budget %.2f)\n"
    ratio attempts budget;
  if ratio > budget then begin
    print_endline "FAIL: disabled instrumentation exceeds the 2% contract";
    exit 1
  end
  else print_endline "OK: within the overhead contract"

let print_tables () =
  print_endline
    "=== Reproduction of Schuster et al. (DATE 2006) - tables and figures ===\n";
  print_string (Report.Experiments.render_figure2 (Report.Experiments.figure2 ()));
  print_newline ();
  print_string (Report.Experiments.render_figure1 (Report.Experiments.figure1 ()));
  print_newline ();
  print_string (Report.Experiments.render_table1 (Report.Experiments.table1 ()));
  print_newline ();
  print_string
    (Report.Experiments.render_wallace (Report.Experiments.table_wallace `Ull));
  print_newline ();
  print_string
    (Report.Experiments.render_wallace (Report.Experiments.table_wallace `Hs));
  print_newline ()

let () =
  let smoke = ref false in
  let json = ref false in
  let out = ref "BENCH_RESULTS.json" in
  let tables = ref true in
  let compare_path = ref "" in
  let only = ref "" in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " run one fast benchmark and exit (CI sanity)");
      ("--json", Arg.Set json, " also write machine-readable results");
      ("--out", Arg.Set_string out, "FILE path for --json (default BENCH_RESULTS.json)");
      ("--no-tables", Arg.Clear tables, " skip the table/figure regeneration");
      ( "--compare",
        Arg.Set_string compare_path,
        "FILE exit non-zero when a benchmark runs >25% slower than FILE" );
      ( "--only",
        Arg.Set_string only,
        "SUBSTR run only the benchmarks whose name contains SUBSTR" );
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "bench [--smoke] [--json] [--out FILE] [--no-tables] [--compare FILE] \
     [--only SUBSTR]";
  if !smoke then begin
    print_endline "=== Bench smoke (one fast benchmark) ===\n";
    let smoke_bench =
      { bench_fig2 with limit = 20; quota = 0.1 }
    in
    let results = run_benchmarks [ smoke_bench ] in
    let metrics =
      if !json || !compare_path <> "" then [ counter_snapshot smoke_bench ]
      else []
    in
    if !json then write_json ~path:!out ~metrics results;
    if !compare_path <> "" then
      compare_against ~path:!compare_path ~metrics results;
    overhead_check ()
  end
  else begin
    if !tables then print_tables ();
    let selected =
      if !only = "" then benchmarks
      else
        List.filter
          (fun b -> contains_substring (Test.name b.test) !only)
          benchmarks
    in
    let serve_selected =
      !only = "" || contains_substring "serve:latency-p50-p99" !only
    in
    if selected = [] && not serve_selected then begin
      Printf.printf "FAIL: no benchmark name contains %S\n" !only;
      exit 1
    end;
    if selected <> [] then print_endline "=== Timings (Bechamel) ===\n";
    let results = run_benchmarks selected in
    let results =
      if serve_selected then results @ serve_latency_rows () else results
    in
    let metrics =
      if !json || !compare_path <> "" then
        List.map counter_snapshot selected
        @ (if serve_selected then [ serve_counter_snapshot () ] else [])
      else []
    in
    if !json then write_json ~path:!out ~metrics results;
    if !compare_path <> "" then
      compare_against ~path:!compare_path ~metrics results
  end
