(** Structural validation of a circuit. *)

type problem =
  | Undriven_net of Circuit.net * string
      (** A net read by some cell but neither driven nor a primary input.
          The string is the display label ({!net_label}). *)
  | Combinational_cycle of Circuit.cell_id list
      (** Cells forming a cycle that contains no flip-flop. *)
  | Dangling_output of Circuit.net * string
      (** A cell output with no reader that is not a primary output.
          The string is the display label ({!net_label}). *)

val net_label : Circuit.t -> Circuit.net -> string
(** Human-facing name of a net: the declared name for primary inputs and
    marked outputs (e.g. ["a\[3\]"]), ["net <handle>"] for anonymous
    internal nets (whose auto-generated names are implementation noise). *)

val cell_label : Circuit.t -> Circuit.cell_id -> string
(** ["<kind>#<id>"], e.g. ["Nand2#12"]. *)

val problem_to_string : problem -> string

val run : Circuit.t -> problem list
(** All problems found. Dangling outputs are reported but benign (e.g. an
    unused carry); undriven nets and cycles make simulation meaningless. *)

(** {1 Individual passes} — the building blocks [Analysis.Netlist_rules]
    wraps into structured-diagnostic rules. *)

val undriven : Circuit.t -> problem list
(** {!Undriven_net} findings only. *)

val cycles : Circuit.t -> problem list
(** The first {!Combinational_cycle} found, if any. *)

val dangling : Circuit.t -> problem list
(** {!Dangling_output} findings only. *)

val errors : Circuit.t -> problem list
(** Only the fatal subset (undriven nets, combinational cycles). *)

val assert_well_formed : Circuit.t -> unit
(** @raise Failure describing the first fatal problem, if any. *)
