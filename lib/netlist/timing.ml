type report = {
  logical_depth : float;
  critical_path : Circuit.cell_id list;
  endpoint : Circuit.net;
  arrivals : float array;
}

(* Topological order of combinational cells (flip-flops and ties are
   sources; their outputs carry fixed arrivals). *)
let topo_order circuit =
  let count = Circuit.cell_count circuit in
  let indegree = Array.make count 0 in
  let fanout = Circuit.fanout circuit in
  let is_source (cell : Circuit.cell) =
    Cell.is_sequential cell.kind || Cell.arity cell.kind = 0
  in
  Circuit.iter_cells
    (fun cell ->
      if not (is_source cell) then
        Array.iter
          (fun n ->
            match Circuit.driver circuit n with
            | Some (d, _)
              when not (is_source (Circuit.get_cell circuit d)) ->
              indegree.(cell.id) <- indegree.(cell.id) + 1
            | Some _ | None -> ())
          cell.inputs)
    circuit;
  let queue = Queue.create () in
  Circuit.iter_cells
    (fun cell ->
      if is_source cell || indegree.(cell.id) = 0 then
        Queue.add cell.id queue)
    circuit;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr visited;
    order := id :: !order;
    let cell = Circuit.get_cell circuit id in
    Array.iter
      (fun n ->
        List.iter
          (fun (reader, _) ->
            let reader_cell = Circuit.get_cell circuit reader in
            if not (Cell.is_sequential reader_cell.kind) then begin
              indegree.(reader) <- indegree.(reader) - 1;
              if indegree.(reader) = 0 then Queue.add reader queue
            end)
          fanout.(n))
      (if is_source cell then [||] else cell.outputs)
    (* Source-cell outputs are path starts handled via fixed arrivals, not
       graph edges; their readers were never given indegree for them. *)
  done;
  if !visited < count then failwith "Timing: combinational cycle detected";
  List.rev !order

let analyze circuit =
  let order = topo_order circuit in
  let arrivals = Array.make (Circuit.net_count circuit) 0.0 in
  (* from.(n) = cell that set the arrival of net n, for path recovery. *)
  let from = Array.make (Circuit.net_count circuit) (-1) in
  (* Source-cell outputs (flip-flop Q, ties) carry fixed arrivals and may be
     read by cells that appear before their driver in the topological order
     (source edges are not graph edges); set them up front. *)
  Circuit.iter_cells
    (fun cell ->
      if Cell.is_sequential cell.kind || Cell.arity cell.kind = 0 then
        Array.iteri
          (fun o n ->
            arrivals.(n) <- Cell.delay cell.kind ~output:o;
            from.(n) <- cell.id)
          cell.outputs)
    circuit;
  List.iter
    (fun id ->
      let cell = Circuit.get_cell circuit id in
      let input_arrival =
        if Cell.is_sequential cell.kind || Cell.arity cell.kind = 0 then 0.0
        else
          Array.fold_left
            (fun acc n -> Float.max acc arrivals.(n))
            0.0 cell.inputs
      in
      Array.iteri
        (fun o n ->
          let a = input_arrival +. Cell.delay cell.kind ~output:o in
          if a > arrivals.(n) then begin
            arrivals.(n) <- a;
            from.(n) <- id
          end)
        cell.outputs)
    order;
  (* Endpoints: primary outputs and D inputs of flip-flops. *)
  let endpoints = ref (List.map fst (Circuit.primary_outputs circuit)) in
  Circuit.iter_cells
    (fun cell ->
      if Cell.is_sequential cell.kind then
        Array.iter (fun n -> endpoints := n :: !endpoints) cell.inputs)
    circuit;
  let endpoint, logical_depth =
    List.fold_left
      (fun (best_n, best_a) n ->
        if arrivals.(n) > best_a then (n, arrivals.(n)) else (best_n, best_a))
      (-1, 0.0) !endpoints
  in
  let rec trace n acc =
    if n < 0 || from.(n) < 0 then acc
    else begin
      let id = from.(n) in
      let cell = Circuit.get_cell circuit id in
      if Cell.is_sequential cell.kind || Cell.arity cell.kind = 0 then
        id :: acc
      else begin
        (* Follow the slowest input backwards. *)
        let worst =
          Array.fold_left
            (fun acc_n m ->
              if acc_n < 0 || arrivals.(m) > arrivals.(acc_n) then m
              else acc_n)
            (-1) cell.inputs
        in
        trace worst (id :: acc)
      end
    end
  in
  let critical_path = if endpoint < 0 then [] else trace endpoint [] in
  { logical_depth; critical_path; endpoint; arrivals }

let logical_depth circuit = (analyze circuit).logical_depth

let endpoints_arrivals circuit =
  let report = analyze circuit in
  let endpoints = ref (List.map fst (Circuit.primary_outputs circuit)) in
  Circuit.iter_cells
    (fun cell ->
      if Cell.is_sequential cell.kind then
        Array.iter (fun n -> endpoints := n :: !endpoints) cell.inputs)
    circuit;
  List.map (fun n -> report.arrivals.(n)) !endpoints

let path_histogram circuit ~bins =
  if bins < 1 then invalid_arg "Timing.path_histogram: bins < 1";
  let arrivals = endpoints_arrivals circuit in
  let top = List.fold_left Float.max 0.0 arrivals in
  let width = if top = 0.0 then 1.0 else top /. float_of_int bins in
  let counts = Array.make bins 0 in
  List.iter
    (fun a ->
      let i = min (bins - 1) (int_of_float (a /. width)) in
      counts.(i) <- counts.(i) + 1)
    arrivals;
  Array.mapi (fun i c -> (width *. float_of_int (i + 1), c)) counts

let input_skew circuit =
  let report = analyze circuit in
  let total = ref 0.0 and count = ref 0 in
  Circuit.iter_cells
    (fun cell ->
      if
        (not (Cell.is_sequential cell.kind)) && Array.length cell.inputs >= 2
      then begin
        let lo = ref infinity and hi = ref neg_infinity in
        Array.iter
          (fun n ->
            let a = report.arrivals.(n) in
            if a < !lo then lo := a;
            if a > !hi then hi := a)
          cell.inputs;
        total := !total +. (!hi -. !lo);
        incr count
      end)
    circuit;
  if !count = 0 then 0.0 else !total /. float_of_int !count

let slack_spread circuit =
  let arrivals = endpoints_arrivals circuit in
  match arrivals with
  | [] -> 0.0
  | first :: _ ->
    let top = List.fold_left Float.max first arrivals in
    let median = Numerics.Stats.percentile arrivals 50.0 in
    if top = 0.0 then 0.0 else (top -. median) /. top
