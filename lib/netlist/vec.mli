(** Minimal growable array (OCaml 5.1 has no stdlib Dynarray). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is a size hint: the backing array is allocated at that
    size on the first {!push} (growable arrays can't preallocate ['a]
    slots without a value). Purely an allocation hint — observable
    behaviour is identical for any value, including the default [0]. *)

val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Append; returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
