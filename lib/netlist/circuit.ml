type net = int
type cell_id = int

type cell = {
  id : cell_id;
  kind : Cell.kind;
  inputs : net array;
  outputs : net array;
}

type net_info = { nname : string; mutable ndriver : (cell_id * int) option }

type t = {
  cname : string;
  cells : cell Vec.t;
  nets : net_info Vec.t;
  mutable pis : net list;  (* reverse order *)
  mutable pos : (net * string) list;  (* reverse order *)
  dff_inits : (cell_id, Logic.value) Hashtbl.t;
  mutable tie0_net : net option;
  mutable tie1_net : net option;
}

let create ?(expect_cells = 0) ?(expect_nets = 0) cname =
  {
    cname;
    cells = Vec.create ~capacity:expect_cells ();
    nets = Vec.create ~capacity:expect_nets ();
    pis = [];
    pos = [];
    dff_inits = Hashtbl.create 16;
    tie0_net = None;
    tie1_net = None;
  }

let name t = t.cname

let fresh_net t nname = Vec.push t.nets { nname; ndriver = None }

let add_input t nname =
  let n = fresh_net t nname in
  t.pis <- n :: t.pis;
  n

let add_input_bus t nname width =
  Array.init width (fun i -> add_input t (nname ^ "[" ^ Int.to_string i ^ "]"))

let check_inputs t kind inputs =
  if Array.length inputs <> Cell.arity kind then
    invalid_arg
      (Printf.sprintf "Circuit.add_cell: %s expects %d inputs, got %d"
         (Cell.name kind) (Cell.arity kind) (Array.length inputs));
  Array.iter
    (fun n ->
      if n < 0 || n >= Vec.length t.nets then
        invalid_arg "Circuit.add_cell: dangling net handle")
    inputs

let add_cell t kind inputs =
  check_inputs t kind inputs;
  let id = Vec.length t.cells in
  (* String concatenation, not Printf: this runs once per cell output and
     dominated the build profile. Names are byte-identical to the old
     "%s_%d_o%d" format. *)
  let stem = Cell.name kind ^ "_" ^ Int.to_string id ^ "_o" in
  let outputs =
    Array.init (Cell.output_count kind) (fun o ->
        fresh_net t (stem ^ Int.to_string o))
  in
  let cell = { id; kind; inputs; outputs } in
  let index = Vec.push t.cells cell in
  assert (index = id);
  Array.iteri
    (fun o n -> (Vec.get t.nets n).ndriver <- Some (id, o))
    outputs;
  outputs

let add_gate t kind inputs =
  match add_cell t kind inputs with
  | [| out |] -> out
  | _ -> invalid_arg "Circuit.add_gate: cell has multiple outputs"

let add_dff ?(init = Logic.Zero) t d =
  let q = add_gate t Cell.Dff [| d |] in
  let id =
    match (Vec.get t.nets q).ndriver with
    | Some (id, _) -> id
    | None -> assert false
  in
  Hashtbl.replace t.dff_inits id init;
  q

let tie0 t =
  match t.tie0_net with
  | Some n -> n
  | None ->
    let n = add_gate t Cell.Tie0 [||] in
    t.tie0_net <- Some n;
    n

let tie1 t =
  match t.tie1_net with
  | Some n -> n
  | None ->
    let n = add_gate t Cell.Tie1 [||] in
    t.tie1_net <- Some n;
    n

let mark_output t n oname =
  if n < 0 || n >= Vec.length t.nets then
    invalid_arg "Circuit.mark_output: dangling net handle";
  t.pos <- (n, oname) :: t.pos

let rewire_input t id slot net =
  if net < 0 || net >= Vec.length t.nets then
    invalid_arg "Circuit.rewire_input: dangling net handle";
  let cell = Vec.get t.cells id in
  if slot < 0 || slot >= Array.length cell.inputs then
    invalid_arg "Circuit.rewire_input: bad input slot";
  cell.inputs.(slot) <- net

let mark_output_bus t nets bname =
  Array.iteri
    (fun i n -> mark_output t n (bname ^ "[" ^ Int.to_string i ^ "]"))
    nets

let cell_count t = Vec.length t.cells
let net_count t = Vec.length t.nets

(* FNV-1a over the structural content: cell kinds and connectivity plus the
   primary I/O lists and net count. Names and net labels are excluded so two
   builds of the same generator parameters hash equal regardless of the
   circuit name. *)
let structural_hash t =
  let prime = 0x100000001b3 in
  let mix h v = (h lxor v) * prime in
  let fold_net h n = mix h (n + 1) in
  let h =
    Vec.fold_left
      (fun h cell ->
        let h = mix h (Hashtbl.hash cell.kind) in
        let h = Array.fold_left fold_net h cell.inputs in
        let h = Array.fold_left fold_net h cell.outputs in
        match Hashtbl.find_opt t.dff_inits cell.id with
        | Some Logic.One -> mix h 7
        | _ -> h)
      0x3bf29ce484222325 t.cells
  in
  let h = List.fold_left fold_net h t.pis in
  let h = List.fold_left (fun h (n, _) -> fold_net h n) h t.pos in
  mix h (Vec.length t.nets) land max_int
let get_cell t id = Vec.get t.cells id
let iter_cells f t = Vec.iter f t.cells
let fold_cells f init t = Vec.fold_left f init t.cells
let cells t = Vec.to_list t.cells
let primary_inputs t = List.rev t.pis
let primary_outputs t = List.rev t.pos

let find_output_bus t bname =
  let prefix = bname ^ "[" in
  let members =
    List.filter_map
      (fun (n, oname) ->
        if String.starts_with ~prefix oname then begin
          let index =
            String.sub oname (String.length prefix)
              (String.length oname - String.length prefix - 1)
          in
          Some (int_of_string index, n)
        end
        else None)
      (primary_outputs t)
  in
  if members = [] then raise Not_found;
  let sorted = List.sort (fun (i, _) (j, _) -> compare i j) members in
  Array.of_list (List.map snd sorted)

let net_name t n = (Vec.get t.nets n).nname
let driver t n = (Vec.get t.nets n).ndriver
let is_primary_input t n = driver t n = None

let fanout t =
  let table = Array.make (net_count t) [] in
  iter_cells
    (fun cell ->
      Array.iteri
        (fun i n -> table.(n) <- (cell.id, i) :: table.(n))
        cell.inputs)
    t;
  table

let dff_init t id =
  match Hashtbl.find_opt t.dff_inits id with
  | Some v -> v
  | None -> Logic.Zero
