(** Static timing analysis in normalised gate-delay units.

    Computes arrival times through the combinational fabric; paths start at
    primary inputs (arrival 0) and flip-flop outputs (arrival = clk→q) and
    end at primary outputs and flip-flop data inputs. The maximum endpoint
    arrival is the circuit's logical depth (LD) — the quantity that, divided
    by the clock period, yields the χ parameter of Eq. 6. *)

type report = {
  logical_depth : float;  (** Critical-path length, inverter-delay units. *)
  critical_path : Circuit.cell_id list;  (** Start to end. *)
  endpoint : Circuit.net;  (** Net at which the worst arrival occurs. *)
  arrivals : float array;  (** Per-net arrival time. *)
}

val analyze : Circuit.t -> report
(** @raise Failure on a combinational cycle. *)

val logical_depth : Circuit.t -> float
(** Shorthand for [(analyze c).logical_depth]. *)

val path_histogram : Circuit.t -> bins:int -> (float * int) array
(** Distribution of endpoint arrival times: [(bin upper edge, count)].
    A wide spread predicts glitching — the effect that penalises the
    diagonal pipelines in the paper. *)

val slack_spread : Circuit.t -> float
(** (max − median) endpoint arrival over max arrival; 0 when half the
    endpoints are as slow as the critical path (balanced), → 1 when most
    paths are far faster than the worst (unbalanced — glitch-prone). *)

val input_skew : Circuit.t -> float
(** Mean, over combinational cells with two or more inputs, of the spread
    (max − min) of the cell's input arrival times, in gate-delay units.
    A gate whose inputs arrive far apart emits transient glitches that
    propagate down-cone; normalised by {!logical_depth} this is the
    glitch-proneness estimator that separates the paper's diagonal
    pipeline cuts (full-length carry chains inside each stage) from the
    horizontal ones. 0 for purely sequential fabrics. *)
