(* [hint] is the caller's size estimate. An ['a array] cannot be
   allocated without a value, so the hint is held until the first [push]
   supplies one; from then on it floors the growth doublings. *)
type 'a t = { mutable data : 'a array; mutable len : int; hint : int }

let create ?(capacity = 0) () = { data = [||]; len = 0; hint = capacity }
let length t = t.len

let push t x =
  let capacity = Array.length t.data in
  if t.len = capacity then begin
    let data = Array.make (max t.hint (max 8 (2 * capacity))) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))
let to_array t = Array.sub t.data 0 t.len
