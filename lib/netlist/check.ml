type problem =
  | Undriven_net of Circuit.net * string
  | Combinational_cycle of Circuit.cell_id list
  | Dangling_output of Circuit.net * string

(* A net is "declared" when the designer named it — a primary input or a
   marked output (e.g. "a[3]"); every other net carries an auto-generated
   name, for which the integer handle is the only stable identity. *)
let net_label circuit n =
  if Circuit.is_primary_input circuit n then Circuit.net_name circuit n
  else
    match List.assoc_opt n (Circuit.primary_outputs circuit) with
    | Some name -> name
    | None -> Printf.sprintf "net %d" n

let cell_label circuit id =
  let cell = Circuit.get_cell circuit id in
  Printf.sprintf "%s#%d" (Cell.name cell.kind) id

let problem_to_string = function
  | Undriven_net (_, label) -> Printf.sprintf "undriven net %s" label
  | Combinational_cycle cells ->
    Printf.sprintf "combinational cycle through cells [%s]"
      (String.concat "; " (List.map string_of_int cells))
  | Dangling_output (_, label) ->
    Printf.sprintf "dangling cell output %s" label

let undriven circuit =
  let driven = Array.make (Circuit.net_count circuit) false in
  List.iter (fun n -> driven.(n) <- true) (Circuit.primary_inputs circuit);
  Circuit.iter_cells
    (fun cell -> Array.iter (fun n -> driven.(n) <- true) cell.outputs)
    circuit;
  let problems = ref [] in
  let reported = Hashtbl.create 16 in
  Circuit.iter_cells
    (fun cell ->
      Array.iter
        (fun n ->
          if (not driven.(n)) && not (Hashtbl.mem reported n) then begin
            Hashtbl.add reported n ();
            problems := Undriven_net (n, net_label circuit n) :: !problems
          end)
        cell.inputs)
    circuit;
  List.rev !problems

(* DFS over the combinational cell graph (edges stop at flip-flops). *)
let cycles circuit =
  let count = Circuit.cell_count circuit in
  let state = Array.make count `White in
  let fanout = Circuit.fanout circuit in
  let found = ref None in
  let rec visit path id =
    match state.(id) with
    | `Black -> ()
    | `Gray ->
      if !found = None then begin
        let rec prefix = function
          | [] -> []
          | c :: rest -> if c = id then [] else c :: prefix rest
        in
        found := Some (id :: List.rev (prefix path))
      end
    | `White ->
      state.(id) <- `Gray;
      let cell = Circuit.get_cell circuit id in
      if not (Cell.is_sequential cell.kind) then
        Array.iter
          (fun n ->
            List.iter
              (fun (reader, _) ->
                let reader_cell = Circuit.get_cell circuit reader in
                if not (Cell.is_sequential reader_cell.kind) then
                  visit (id :: path) reader)
              fanout.(n))
          cell.outputs;
      state.(id) <- `Black
  in
  for id = 0 to count - 1 do
    if !found = None then visit [] id
  done;
  match !found with None -> [] | Some cycle -> [ Combinational_cycle cycle ]

let dangling circuit =
  let read = Array.make (Circuit.net_count circuit) false in
  Circuit.iter_cells
    (fun cell -> Array.iter (fun n -> read.(n) <- true) cell.inputs)
    circuit;
  List.iter
    (fun (n, _) -> read.(n) <- true)
    (Circuit.primary_outputs circuit);
  let problems = ref [] in
  Circuit.iter_cells
    (fun cell ->
      Array.iter
        (fun n ->
          if not read.(n) then
            problems := Dangling_output (n, net_label circuit n) :: !problems)
        cell.outputs)
    circuit;
  List.rev !problems

let errors circuit = undriven circuit @ cycles circuit
let run circuit = errors circuit @ dangling circuit

let assert_well_formed circuit =
  match errors circuit with
  | [] -> ()
  | problem :: _ ->
    failwith
      (Printf.sprintf "Circuit %s: %s" (Circuit.name circuit)
         (problem_to_string problem))
