(** Mutable gate-level netlist builder and read-only accessors.

    Nets are integer handles; each net has at most one driver (a cell output
    or a primary input). Cells are created with fresh output nets, so a
    well-formed circuit is correct by construction; {!Check} verifies the
    remaining global properties (no floating inputs, no combinational
    cycles). *)

type net = int
type cell_id = int

type cell = {
  id : cell_id;
  kind : Cell.kind;
  inputs : net array;
  outputs : net array;
}

type t

val create : ?expect_cells:int -> ?expect_nets:int -> string -> t
(** The optional counts are allocation hints for the cell/net vectors —
    generator frames that know the rough cell count of what they are
    about to build (e.g. [Multipliers.Registered.build]) pass them to
    skip the doubling-growth copies. Any value is behaviourally
    equivalent to the default. *)

val name : t -> string

(** {1 Construction} *)

val add_input : t -> string -> net
(** Declare a primary input. *)

val fresh_net : t -> string -> net
(** Declare a named net with no driver. The builder never needs this —
    {!add_cell} creates its own output nets — but netlist importers and
    lint fixtures do: reading a fresh net that is never subsequently
    driven is the one way to construct the undriven-net defect that
    {!Check} (and [Analysis.Netlist_rules]) look for. *)

val add_input_bus : t -> string -> int -> net array
(** [add_input_bus t "a" 16] declares nets a\[0\]..a\[15\] (LSB first). *)

val add_cell : t -> Cell.kind -> net array -> net array
(** Instantiate a cell; fresh output nets are created and returned.
    @raise Invalid_argument on an arity mismatch or an undriven input. *)

val add_gate : t -> Cell.kind -> net array -> net
(** Single-output convenience wrapper over {!add_cell}. *)

val add_dff : ?init:Logic.value -> t -> net -> net
(** Flip-flop with power-up value [init] (default [Zero]); returns Q. *)

val tie0 : t -> net
val tie1 : t -> net
(** Constant nets (one shared tie cell per polarity per circuit). *)

val mark_output : t -> net -> string -> unit
(** Declare a primary output. *)

val mark_output_bus : t -> net array -> string -> unit

val rewire_input : t -> cell_id -> int -> net -> unit
(** [rewire_input t cell slot net] re-connects one cell input — the hook used
    by retiming passes (pipeline-register insertion). The net must exist.
    @raise Invalid_argument on a bad slot or net handle. *)

(** {1 Accessors} *)

val cell_count : t -> int
val net_count : t -> int

val structural_hash : t -> int
(** Non-negative FNV-style digest of the structure: cell kinds,
    connectivity, DFF power-up values, primary I/O and net count — names
    are excluded, so two builds of the same generator parameters collide
    deterministically. The design-space explorer keys its netlist
    characterization cache on this. *)

val get_cell : t -> cell_id -> cell
val iter_cells : (cell -> unit) -> t -> unit
val fold_cells : ('acc -> cell -> 'acc) -> 'acc -> t -> 'acc
val cells : t -> cell list
val primary_inputs : t -> net list
val primary_outputs : t -> (net * string) list
val find_output_bus : t -> string -> net array
(** Primary-output nets registered as [name\[i\]], LSB first.
    @raise Not_found if no such bus exists. *)

val net_name : t -> net -> string
val driver : t -> net -> (cell_id * int) option
(** Driving cell and output index, or [None] for a primary input. *)

val is_primary_input : t -> net -> bool
val fanout : t -> (cell_id * int) list array
(** For each net, the (cell, input index) pairs reading it. O(cells);
    recomputed on each call — cache at simulation setup. *)

val dff_init : t -> cell_id -> Logic.value
(** Power-up value of a {!Cell.Dff} (default [Zero] for other kinds). *)
