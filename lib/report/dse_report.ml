(* The `optpower explore` report: one Pareto-front table per frequency
   slice, the prune funnel, and the dse./pareto. counter fingerprint. *)

module E = Power_core.Explorer

let sign_tag = function
  | Multipliers.Booth.Unsigned -> "unsigned"
  | Multipliers.Booth.Signed -> "signed"

let fmt_mhz f = Printf.sprintf "%.2f MHz" (f /. 1e6)

let front_table (s : E.slice) =
  let columns =
    [
      Table.column ~align:Table.Left "design";
      Table.column "Ptot";
      Table.column "Vdd [V]";
      Table.column "cert lo";
      Table.column "LDeff";
      Table.column "cells";
    ]
  in
  let rows =
    List.map
      (fun (e : E.entry) ->
        [
          e.label;
          Table.fmt_uw e.power;
          Table.fmt_f e.vdd;
          Table.fmt_uw e.cert_lo;
          Table.fmt_f ~decimals:1 e.latency;
          Table.fmt_f ~decimals:0 e.area;
        ])
      s.front
  in
  Table.render ~columns ~rows

let funnel (r : E.result) =
  let t = r.totals in
  Printf.sprintf
    "%s: %d candidates -> %d constraint-filtered, %d ledger-pruned, %d \
     cert-pruned, %d store hits, %d exact solves -> %d front entries"
    (if r.pruned then "pruned" else "exhaustive")
    t.enumerated t.filtered t.bound_pruned t.cert_pruned t.store_hits
    t.exact_solves t.front_size

let counter_block () =
  let lines =
    List.map
      (fun (name, v) -> Printf.sprintf "  %-20s %d" name v)
      (Obs.counters_prefixed "dse." @ Obs.counters_prefixed "pareto."
      @ Obs.counters_prefixed "store.")
  in
  if lines = [] then "" else "counters:\n" ^ String.concat "\n" lines

let render (r : E.result) =
  let slices =
    List.map
      (fun (s : E.slice) ->
        Printf.sprintf "Pareto front at %s (%d entries)\n%s" (fmt_mhz s.f)
          (List.length s.front) (front_table s))
      r.slices
  in
  let counters = counter_block () in
  String.concat "\n"
    (slices @ [ funnel r ] @ (if counters = "" then [] else [ counters ]))

let render_axes (axes : E.axes) =
  Printf.sprintf
    "space: %d candidates — %d-bit, families {%s}, radix {%s}, %s, stages \
     {%s}, copies {%s}, f x {%s}, flavors {%s}"
    (E.space_size axes) axes.bits
    (String.concat "," (List.map E.family_name axes.families))
    (String.concat "," (List.map string_of_int axes.radices))
    (String.concat "/" (List.map sign_tag axes.signednesses))
    (String.concat "," (List.map string_of_int axes.stages))
    (String.concat "," (List.map string_of_int axes.copies))
    (String.concat "," (List.map (Printf.sprintf "%g") axes.fmults))
    (String.concat ","
       (List.map Device.Technology.name axes.techs))
