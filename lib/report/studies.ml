module A = Power_core.Ablation

let render_dibl rows =
  let columns =
    List.map Table.column [ "eta"; "Vth_eff [V]"; "Vth0 required [V]"; "Ptot [uW]" ]
  in
  let row (r : A.dibl_row) =
    [
      Printf.sprintf "%.2f" r.eta;
      Table.fmt_f r.vth_effective;
      Table.fmt_f r.vth0_required;
      Table.fmt_uw r.ptot;
    ]
  in
  "DIBL ablation - the optimum is eta-invariant in effective-threshold \
   space;\nonly the zero-bias threshold the device must provide moves \
   (Eq. 3, and the\npaper's remark that eta drops out of Eq. 13):\n"
  ^ Table.render ~columns ~rows:(List.map row rows)

let render_glitch rows =
  let columns =
    Table.column ~align:Table.Left "Architecture"
    :: List.map Table.column
         [ "a (full)"; "a (no glitch)"; "Ptot [uW]"; "Ptot quiet [uW]"; "glitch %" ]
  in
  let row (r : A.glitch_row) =
    [
      r.label;
      Printf.sprintf "%.4f" r.activity_full;
      Printf.sprintf "%.4f" r.activity_no_glitch;
      Table.fmt_uw r.ptot_full;
      Table.fmt_uw r.ptot_no_glitch;
      Printf.sprintf "%.1f" r.glitch_power_pct;
    ]
  in
  "Glitch ablation - optimal power with glitch transitions removed from \
   the activity:\n"
  ^ Table.render ~columns ~rows:(List.map row rows)

let render_lin_range rows =
  let columns = List.map Table.column [ "fit range [V]"; "max |Eq13 err| %" ] in
  let row (r : A.lin_range_row) =
    [ Printf.sprintf "0.30 - %.2f" r.hi; Printf.sprintf "%.2f" r.max_abs_err_pct ]
  in
  "Linearisation-range ablation - worst Eq. 13 error over Table 1 vs the \
   Eq. 7 fitting range:\n"
  ^ Table.render ~columns ~rows:(List.map row rows)

let render_frequency points =
  let tech_names =
    match points with
    | [] -> []
    | p :: _ -> List.map fst p.A.per_tech
  in
  let columns =
    Table.column "f [MHz]"
    :: List.map (fun name -> Table.column (name ^ " [uW]")) tech_names
  in
  let row (p : A.freq_point) =
    Printf.sprintf "%.2f" (p.f /. 1e6)
    :: List.map
         (fun (_, total) ->
           match total with
           | Some w -> Table.fmt_uw w
           | None -> "infeasible")
         p.per_tech
  in
  "Frequency sweep - optimal total power per technology flavor (Section 5 \
   extended along the throughput axis):\n"
  ^ Table.render ~columns ~rows:(List.map row points)

let render_width rows =
  let columns =
    List.map Table.column [ "bits"; "RCA Ptot [uW]"; "Wallace Ptot [uW]"; "ratio" ]
  in
  let row (r : A.width_row) =
    [
      string_of_int r.bits;
      Table.fmt_uw r.rca_ptot;
      Table.fmt_uw r.wallace_ptot;
      Printf.sprintf "%.2f" (r.rca_ptot /. r.wallace_ptot);
    ]
  in
  "Width scaling (from scratch) - optimal power of the two flat cores vs \
   operand width:\n"
  ^ Table.render ~columns ~rows:(List.map row rows)

let render_variation (r : Power_core.Variation.result) =
  let columns =
    List.map Table.column
      [ "quantity"; "nominal"; "mean"; "stddev"; "min"; "max"; "p95" ]
  in
  let ptot_row =
    [
      "Ptot [uW]";
      Table.fmt_uw r.nominal.total;
      Table.fmt_uw r.ptot_stats.mean;
      Table.fmt_uw r.ptot_stats.stddev;
      Table.fmt_uw r.ptot_stats.min_value;
      Table.fmt_uw r.ptot_stats.max_value;
      Table.fmt_uw r.ptot_p95;
    ]
  in
  let vdd_row =
    [
      "Vdd* [V]";
      Table.fmt_f r.nominal.vdd;
      Table.fmt_f r.vdd_stats.mean;
      Table.fmt_f r.vdd_stats.stddev;
      Table.fmt_f r.vdd_stats.min_value;
      Table.fmt_f r.vdd_stats.max_value;
      "-";
    ]
  in
  Printf.sprintf
    "Process-variation Monte Carlo (%d dies) over the re-optimised working \
     point.\nVth0 shifts are absorbed by the adjustable working point \
     (Section 1's premise);\nleakage / capacitance / speed / alpha spread \
     is not:\n"
    r.ptot_stats.count
  ^ Table.render ~columns ~rows:[ ptot_row; vdd_row ]

let render_yield (r : Power_core.Variation.yield_result) =
  let columns =
    List.map Table.column
      [ "quantity"; "nominal"; "mean"; "stddev"; "q01"; "q50"; "q95"; "q99" ]
  in
  let stat_row label nominal fmt (s : Power_core.Variation.yield_stats) =
    [
      label;
      fmt nominal;
      fmt s.summary.mean;
      fmt s.summary.stddev;
      fmt s.q01;
      fmt s.q50;
      fmt s.q95;
      fmt s.q99;
    ]
  in
  let stats =
    Table.render ~columns
      ~rows:
        [
          stat_row "Ptot [uW]" r.nominal.total Table.fmt_uw r.ptot;
          stat_row "Vdd* [V]" r.nominal.vdd Table.fmt_f r.vdd;
        ]
  in
  let curve_columns =
    List.map Table.column [ "spec [uW]"; "vs nominal"; "yield %"; "" ]
  in
  let curve_row (spec, y) =
    let bar = String.make (int_of_float (Float.round (y *. 30.0))) '#' in
    [
      Table.fmt_uw spec;
      Printf.sprintf "%.2fx" (spec /. r.nominal.total);
      Printf.sprintf "%6.2f" (100.0 *. y);
      bar;
    ]
  in
  let sampler_name =
    match r.sampler with `Pseudo -> "pseudo-random" | `Sobol -> "Sobol QMC"
  in
  Printf.sprintf
    "Parametric yield - %d dies re-optimised under process variation \
     (%s sampler).\nEvery die re-tunes (Vdd, Vth) to its own optimum; the \
     distribution below is\nof those per-die optima, streamed through \
     O(1)-memory sketches:\n"
    r.dies sampler_name
  ^ stats
  ^ "\nYield vs power budget (fraction of dies whose optimal Ptot meets the \
     spec):\n"
  ^ Table.render ~columns:curve_columns
      ~rows:(List.map curve_row (Array.to_list r.yield_curve))

let render_energy points (mep : Power_core.Energy.mep) =
  let plot =
    Ascii_plot.render ~height:16 ~log_y:false ~x_label:"log10 f [Hz]"
      ~y_label:"pJ / operation"
      [
        Ascii_plot.series ~label:"energy per multiply"
          (List.map
             (fun (p : Power_core.Energy.sweep_point) ->
               (Float.log10 p.f, p.energy *. 1e12))
             points);
      ]
  in
  let columns =
    List.map Table.column [ "f [MHz]"; "E [pJ/op]"; "Ptot [uW]"; "Vdd"; "Vth" ]
  in
  let row (p : Power_core.Energy.sweep_point) =
    [
      Printf.sprintf "%.2f" (p.f /. 1e6);
      Printf.sprintf "%.2f" (p.energy *. 1e12);
      Table.fmt_uw p.ptot;
      Table.fmt_f p.vdd;
      Table.fmt_f p.vth;
    ]
  in
  "Energy per operation vs throughput (Vdd/Vth re-optimised at every \
   point):\n" ^ plot
  ^ Printf.sprintf
      "\nMinimum energy point: %.2f pJ/op at %.2f MHz (Vdd %.3f V).\n\n"
      (mep.energy_mep *. 1e12) (mep.f_mep /. 1e6) mep.vdd_mep
  ^ Table.render ~columns ~rows:(List.map row points)

let render_thermal rows =
  let columns =
    List.map Table.column
      [ "R_th [K/W]"; "T_die [K]"; "Ptot [uW]"; "iterations" ]
  in
  let row (r_th, (e : Device.Thermal.equilibrium)) =
    [
      Printf.sprintf "%.0f" r_th;
      Printf.sprintf "%.2f" e.temperature;
      Table.fmt_uw e.ptot;
      string_of_int e.iterations;
    ]
  in
  "Self-heating fixpoint - die temperature and re-optimised power vs \
   package thermal resistance:\n"
  ^ Table.render ~columns ~rows:(List.map row rows)

let render_exploration ?(cycles = 100) ~f () =
  let reference = Device.Technology.ll in
  let archs =
    Multipliers.Catalog.entries @ Multipliers.Catalog.extensions
  in
  let columns =
    Table.column ~align:Table.Left "Architecture"
    :: (List.map
          (fun tech ->
            Table.column (Device.Technology.name tech ^ " [uW]"))
          Device.Technology.all
       @ [ Table.column ~align:Table.Left "best" ])
  in
  let best_overall = ref ("", infinity) in
  let rows =
    List.map
      (fun (entry : Multipliers.Catalog.entry) ->
        let spec = entry.build () in
        let base =
          Power_core.Arch_params.of_spec ~cycles reference spec
        in
        let totals =
          List.map
            (fun tech ->
              let adapted =
                Power_core.Tech_compare.adapt_params ~reference tech base
              in
              let problem = Power_core.Power_law.make tech adapted ~f in
              (tech, (Power_core.Numerical_opt.optimum problem).total))
            Device.Technology.all
        in
        let best_tech, best_total =
          List.fold_left
            (fun (bt, bv) (tech, v) ->
              if v < bv then (Device.Technology.name tech, v) else (bt, bv))
            ("", infinity) totals
        in
        if best_total < snd !best_overall then
          best_overall := (entry.label ^ " on " ^ best_tech, best_total);
        entry.label
        :: List.map (fun (_, v) -> Table.fmt_uw v) totals
        @ [ best_tech ])
      archs
  in
  Printf.sprintf
    "Design-space exploration - every architecture on every flavor, from \
     scratch (f = %.2f MHz):\n" (f /. 1e6)
  ^ Table.render ~columns ~rows
  ^ Printf.sprintf "\nGlobal winner: %s at %s uW.\n" (fst !best_overall)
      (Table.fmt_uw (snd !best_overall))

let render_extensions ?(cycles = 120) tech ~f =
  let labels =
    [ "Wallace"; "Dadda"; "Booth r4"; "Wallace parallel"; "Dadda parallel";
      "Booth r4 parallel" ]
  in
  let columns =
    Table.column ~align:Table.Left "Architecture"
    :: List.map Table.column
         [ "N"; "a"; "LDeff"; "Vdd*"; "Vth*"; "Ptot [uW]" ]
  in
  let rows =
    List.map
      (fun label ->
        let row = Power_core.Scratch_pipeline.run_label ~cycles tech ~f label in
        [
          label;
          Printf.sprintf "%.0f" row.params.n_cells;
          Printf.sprintf "%.4f" row.params.activity;
          Printf.sprintf "%.1f" row.params.ld_eff;
          Table.fmt_f row.numerical.vdd;
          Table.fmt_f row.numerical.vth;
          Table.fmt_uw row.numerical.total;
        ])
      labels
  in
  "Extension architectures (beyond the paper's set), from scratch:\n"
  ^ Table.render ~columns ~rows
