(** Rendering for [optpower explore] — the design-space explorer's Pareto
    fronts, prune funnel and counter fingerprint. *)

val front_table : Power_core.Explorer.slice -> string
(** One slice's front as an ASCII table (power, supply, certified lower
    bound, effective depth, cell count). *)

val funnel : Power_core.Explorer.result -> string
(** One-line enumeration → prune → solve → front summary. *)

val counter_block : unit -> string
(** The current [dse.]/[pareto.] counters, one per line; empty string
    when none fired. *)

val render : Power_core.Explorer.result -> string
(** Full report: per-slice front tables, funnel, counters. *)

val render_axes : Power_core.Explorer.axes -> string
(** One-line description of the candidate space. *)
