(** Terminal line plots — enough to eyeball Figures 1 and 2. *)

type series = {
  label : string;
  points : (float * float) list;
  marker : char;
}

val series : ?marker:char -> label:string -> (float * float) list -> series

val render :
  ?width:int -> ?height:int -> ?log_y:bool ->
  ?x_label:string -> ?y_label:string ->
  series list -> string
(** Scatter the series on one canvas (default 72×24). [log_y] plots
    log10 of the ordinates — Figure 1 spans decades. Non-finite points are
    always dropped (an infeasible sweep sample must not wipe out the axis
    scaling); points with non-positive ordinates are dropped in log mode. *)
