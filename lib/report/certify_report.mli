(** The [optpower certify] report: certified bounds vs numerical optimum.

    One row per paper architecture × technology flavor: the proven Ptot
    enclosure and minimiser bracket from {!Power_core.Absint.certify}
    side by side with the production solver's optimum, and a verdict
    (the same containment check as the [cert.solver-in-enclosure]
    analysis rule). *)

type row = {
  label : string;  (** ["LL/RCA"]-style target label. *)
  cert : Power_core.Absint.certificate;
  optimum : Power_core.Numerical_opt.point;
  ok : bool;  (** Solver optimum inside bracket and enclosure. *)
}

val rows :
  ?pool:Parallel.Pool.t -> ?flavors:Device.Technology.t list -> unit ->
  row list
(** Certify and solve every row × flavor (default: all three flavors),
    in parallel over the domain pool ([pool] defaults to the shared one),
    in Table 1 order per flavor. *)

val violations : row list -> int

val render : row list -> string
