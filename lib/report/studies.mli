(** Renderers for the ablation / extension studies (beyond the paper's own
    tables — see {!Power_core.Ablation}). *)

val render_dibl : Power_core.Ablation.dibl_row list -> string
val render_glitch : Power_core.Ablation.glitch_row list -> string
val render_lin_range : Power_core.Ablation.lin_range_row list -> string
val render_frequency : Power_core.Ablation.freq_point list -> string
val render_width : Power_core.Ablation.width_row list -> string

val render_extensions :
  ?cycles:int -> Device.Technology.t -> f:float -> string
(** Score the extension architectures (Booth, Dadda, parallel versions)
    with the from-scratch pipeline next to their paper-set baselines. *)

val render_exploration : ?cycles:int -> f:float -> unit -> string
(** Full design-space sweep: every catalog architecture (paper set +
    extensions) on every technology flavor, from scratch; per-architecture
    best flavor and the global winner. The "use the reproduction as a
    design tool" showcase. *)

val render_variation : Power_core.Variation.result -> string

val render_yield : Power_core.Variation.yield_result -> string
(** Streamed million-die yield study: distribution table (moments +
    sketch quantiles) for the optimal power and supply, then the
    yield-vs-power-budget curve with an ASCII bar per spec. *)

val render_energy :
  Power_core.Energy.sweep_point list -> Power_core.Energy.mep -> string

val render_thermal :
  (float * Device.Thermal.equilibrium) list -> string
(** Rows of (thermal resistance, equilibrium). *)
