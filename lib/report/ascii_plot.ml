type series = {
  label : string;
  points : (float * float) list;
  marker : char;
}

let default_markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let series ?(marker = '*') ~label points = { label; points; marker }

let render ?(width = 72) ?(height = 24) ?(log_y = false) ?(x_label = "x")
    ?(y_label = "y") series_list =
  let transform (x, y) =
    if
      Numerics.Finite.violation x <> None || Numerics.Finite.violation y <> None
    then None
    else if log_y then if y > 0.0 then Some (x, Float.log10 y) else None
    else Some (x, y)
  in
  let all_points =
    List.concat_map (fun s -> List.filter_map transform s.points) series_list
  in
  match all_points with
  | [] -> "(empty plot)\n"
  | (x0, y0) :: rest ->
    let fold f init = List.fold_left f init rest in
    let x_min = fold (fun acc (x, _) -> Float.min acc x) x0 in
    let x_max = fold (fun acc (x, _) -> Float.max acc x) x0 in
    let y_min = fold (fun acc (_, y) -> Float.min acc y) y0 in
    let y_max = fold (fun acc (_, y) -> Float.max acc y) y0 in
    let x_span = if x_max = x_min then 1.0 else x_max -. x_min in
    let y_span = if y_max = y_min then 1.0 else y_max -. y_min in
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let marker =
          if s.marker = '*' && si > 0 then
            default_markers.(si mod Array.length default_markers)
          else s.marker
        in
        List.iter
          (fun p ->
            match transform p with
            | None -> ()
            | Some (x, y) ->
              let col =
                int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
              in
              let row =
                height - 1
                - int_of_float
                    ((y -. y_min) /. y_span *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                canvas.(row).(col) <- marker)
          s.points)
      series_list;
    let buffer = Buffer.create (width * height * 2) in
    let y_caption v =
      if log_y then Printf.sprintf "%.3g" (10.0 ** v)
      else Printf.sprintf "%.3g" v
    in
    Buffer.add_string buffer
      (Printf.sprintf "%s (top=%s, bottom=%s)%s\n" y_label (y_caption y_max)
         (y_caption y_min)
         (if log_y then " [log scale]" else ""));
    Array.iter
      (fun row ->
        Buffer.add_string buffer "  |";
        Buffer.add_string buffer (String.init width (fun i -> row.(i)));
        Buffer.add_char buffer '\n')
      canvas;
    Buffer.add_string buffer ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buffer
      (Printf.sprintf "   %s: %.3g .. %.3g\n" x_label x_min x_max);
    List.iteri
      (fun si s ->
        let marker =
          if s.marker = '*' && si > 0 then
            default_markers.(si mod Array.length default_markers)
          else s.marker
        in
        Buffer.add_string buffer
          (Printf.sprintf "   %c = %s\n" marker s.label))
      series_list;
    Buffer.contents buffer
