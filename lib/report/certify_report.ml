(* The `optpower certify` table: per paper row x technology flavor, the
   proven Ptot enclosure and minimiser bracket next to the production
   solver's answer, with a violation verdict. The verdict logic matches
   the cert.solver-in-enclosure analysis rule. *)

module Iv = Numerics.Interval
module Ab = Power_core.Absint
module Pl = Power_core.Power_law

type row = {
  label : string;
  cert : Ab.certificate;
  optimum : Power_core.Numerical_opt.point;
  ok : bool;
}

let vdd_slack v = 1e-6 *. Float.max 1.0 (Float.abs v)

let check (cert : Ab.certificate) (optimum : Power_core.Numerical_opt.point) =
  let bracket = cert.Ab.vdd_bracket and enc = cert.Ab.ptot in
  optimum.Pl.vdd >= bracket.Iv.lo -. vdd_slack optimum.Pl.vdd
  && optimum.Pl.vdd <= bracket.Iv.hi +. vdd_slack optimum.Pl.vdd
  && optimum.Pl.total >= enc.Iv.lo *. (1.0 -. 1e-9)
  && optimum.Pl.total <= enc.Iv.hi *. (1.0 +. 1e-6)

let rows ?pool ?(flavors = Device.Technology.all) () =
  let f = Power_core.Paper_data.frequency in
  let cases =
    List.concat_map
      (fun tech ->
        List.map (fun r -> (tech, r)) Power_core.Paper_data.table1)
      flavors
  in
  Parallel.Pool.map ?pool
    (fun (tech, (prow : Power_core.Paper_data.table1_row)) ->
      let label = Device.Technology.name tech ^ "/" ^ prow.label in
      Obs.Span.with_ ~name:"certify.row" ~attrs:[ ("target", label) ]
      @@ fun () ->
      let problem = Power_core.Calibration.problem_of_row tech ~f prow in
      let cert = Ab.certify (Ab.box problem) in
      let optimum = Power_core.Numerical_opt.optimum problem in
      { label; cert; optimum; ok = check cert optimum })
    cases

let violations rows = List.length (List.filter (fun r -> not r.ok) rows)

let render rows =
  let columns =
    [
      Table.column ~align:Table.Left "target";
      Table.column "Plo[uW]";
      Table.column "Psolve[uW]";
      Table.column "Phi[uW]";
      Table.column "Vlo[V]";
      Table.column "Vsolve[V]";
      Table.column "Vhi[V]";
      Table.column "boxes";
      Table.column "prunes";
      Table.column ~align:Table.Left "status";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.label;
          Table.fmt_uw r.cert.Ab.ptot.Iv.lo;
          Table.fmt_uw r.optimum.Pl.total;
          Table.fmt_uw r.cert.Ab.ptot.Iv.hi;
          Table.fmt_f r.cert.Ab.vdd_bracket.Iv.lo;
          Table.fmt_f r.optimum.Pl.vdd;
          Table.fmt_f r.cert.Ab.vdd_bracket.Iv.hi;
          string_of_int r.cert.Ab.boxes;
          string_of_int r.cert.Ab.prunes;
          (if r.ok then "OK" else "VIOLATION");
        ])
      rows
  in
  let n = List.length rows and bad = violations rows in
  Table.render ~columns ~rows:body
  ^ Printf.sprintf
      "certify: %d targets, %d violation%s — every OK line is a proof: \
       the solver optimum lies inside a guaranteed enclosure\n"
      n bad
      (if bad = 1 then "" else "s")
