module P = Power_core.Paper_data

(* Table 1 *)

type table1_row = {
  label : string;
  vdd : float;
  vth : float;
  pdyn : float;
  pstat : float;
  ptot : float;
  eq13 : float;
  err_pct : float;
  paper : P.table1_row;
}

let table1 () =
  Obs.Span.with_ ~name:"table1" @@ fun () ->
  let tech = Device.Technology.ll in
  let f = P.frequency in
  let lin = Device.Linearization.fit ~alpha:tech.alpha () in
  let run (paper : P.table1_row) =
    Obs.Span.with_ ~name:"table1.row" ~attrs:[ ("arch", paper.label) ]
    @@ fun () ->
    let problem = Power_core.Calibration.problem_of_row tech ~f paper in
    let opt = Power_core.Numerical_opt.optimum problem in
    let cf = Power_core.Closed_form.evaluate ~lin problem in
    {
      label = paper.label;
      vdd = opt.vdd;
      vth = opt.vth;
      pdyn = opt.dynamic;
      pstat = opt.static;
      ptot = opt.total;
      eq13 = cf.ptot;
      err_pct = 100.0 *. (cf.ptot -. opt.total) /. opt.total;
      paper;
    }
  in
  (* The thirteen (Vdd, Vth) optimisations are independent; slots are fixed
     by row order, so the table is identical at any pool size. *)
  Parallel.Pool.map run P.table1

let render_table1 rows =
  let columns =
    Table.column ~align:Table.Left "Architecture"
    :: List.map Table.column
         [
           "Vdd"; "Vth"; "Pdyn"; "Pstat"; "Ptot"; "Eq13"; "Err%"; "|";
           "paper Ptot"; "paper Eq13"; "paper Err%";
         ]
  in
  let row r =
    [
      r.label;
      Table.fmt_f r.vdd;
      Table.fmt_f r.vth;
      Table.fmt_uw r.pdyn;
      Table.fmt_uw r.pstat;
      Table.fmt_uw r.ptot;
      Table.fmt_uw r.eq13;
      Table.fmt_pct r.err_pct;
      "|";
      Table.fmt_uw r.paper.ptot;
      Table.fmt_uw r.paper.ptot_eq13;
      Table.fmt_pct r.paper.err_pct;
    ]
  in
  "Table 1 - optimal working points, 16-bit multipliers, STM LL, f=31.25 MHz \
   (power in uW)\n"
  ^ Table.render ~columns ~rows:(List.map row rows)

(* Tables 3 / 4 *)

type wallace_row = {
  w_label : string;
  w_vdd : float;
  w_vth : float;
  w_ptot : float;
  w_eq13 : float;
  w_err_pct : float;
  w_paper : P.wallace_row;
}

type wallace_table = {
  tech : Device.Technology.t;
  cap_scale : float;
  rows : wallace_row list;
}

let table_wallace which =
  Obs.Span.with_ ~name:"table_wallace" @@ fun () ->
  let tech, targets =
    match which with
    | `Ull -> (Device.Technology.ull, P.table3_ull)
    | `Hs -> (Device.Technology.hs, P.table4_hs)
  in
  let f = P.frequency in
  let pairs =
    List.map (fun (t : P.wallace_row) -> (P.table1_find t.w_label, t)) targets
  in
  let cap_scale = Power_core.Calibration.fit_cap_scale tech ~f ~rows:pairs in
  let lin = Device.Linearization.fit ~alpha:tech.alpha () in
  let run ((ll_row : P.table1_row), (target : P.wallace_row)) =
    Obs.Span.with_ ~name:"table_wallace.row" ~attrs:[ ("arch", target.w_label) ]
    @@ fun () ->
    let problem =
      Power_core.Calibration.problem_of_wallace_row tech ~f ~ll_row ~target
        ~cap_scale
    in
    let opt = Power_core.Numerical_opt.optimum problem in
    let cf = Power_core.Closed_form.evaluate ~lin problem in
    {
      w_label = target.w_label;
      w_vdd = opt.vdd;
      w_vth = opt.vth;
      w_ptot = opt.total;
      w_eq13 = cf.ptot;
      w_err_pct = 100.0 *. (cf.ptot -. opt.total) /. opt.total;
      w_paper = target;
    }
  in
  { tech; cap_scale; rows = Parallel.Pool.map run pairs }

let render_wallace t =
  let columns =
    Table.column ~align:Table.Left "Architecture"
    :: List.map Table.column
         [ "Vdd"; "Vth"; "Ptot"; "Eq13"; "Err%"; "|"; "paper Ptot"; "paper Err%" ]
  in
  let row r =
    [
      r.w_label;
      Table.fmt_f r.w_vdd;
      Table.fmt_f r.w_vth;
      Table.fmt_uw r.w_ptot;
      Table.fmt_uw r.w_eq13;
      Table.fmt_pct r.w_err_pct;
      "|";
      Table.fmt_uw r.w_paper.w_ptot;
      Table.fmt_pct r.w_paper.w_err_pct;
    ]
  in
  Printf.sprintf
    "Wallace family on %s (fitted capacitance scale %.3f, power in uW)\n"
    (Device.Technology.name t.tech)
    t.cap_scale
  ^ Table.render ~columns ~rows:(List.map row t.rows)

(* Figure 1 *)

type figure1_curve = {
  activity : float;
  points : Power_core.Numerical_opt.point list;
  optimum : Power_core.Numerical_opt.point;
  dyn_static_ratio : float;
}

let figure1 ?activities () =
  Obs.Span.with_ ~name:"fig1" @@ fun () ->
  let tech = Device.Technology.ll in
  let f = P.frequency in
  let rca = P.table1_find "RCA" in
  let activities =
    match activities with
    | Some l -> l
    | None -> [ 1.0; rca.activity; 0.1; 0.01 ]
  in
  let base = Power_core.Calibration.params_of_row tech ~f rca in
  let curve activity =
    Obs.Span.with_ ~name:"fig1.curve"
      ~attrs:[ ("a", Printf.sprintf "%.4g" activity) ]
    @@ fun () ->
    let params = { base with Power_core.Arch_params.activity } in
    let problem =
      Power_core.Power_law.make_calibrated tech params ~f ~vdd_ref:rca.vdd
        ~vth_ref:rca.vth
    in
    let points =
      Power_core.Numerical_opt.sweep_vdd ~samples:120 ~vdd_lo:0.25 ~vdd_hi:1.2
        problem
    in
    let optimum = Power_core.Numerical_opt.optimum problem in
    {
      activity;
      points;
      optimum;
      dyn_static_ratio = Power_core.Numerical_opt.dyn_static_ratio optimum;
    }
  in
  (* Curves run concurrently and each curve's 120-point sweep is itself a
     pooled map (nested maps are safe — see Parallel.Pool). *)
  Parallel.Pool.map curve activities

let render_figure1 curves =
  let plot =
    Ascii_plot.render ~log_y:true ~x_label:"Vdd [V]" ~y_label:"Ptot [W]"
      (List.map
         (fun c ->
           Ascii_plot.series
             ~label:(Printf.sprintf "a = %.4g" c.activity)
             (List.map
                (fun (p : Power_core.Numerical_opt.point) -> (p.vdd, p.total))
                c.points))
         curves)
  in
  let columns =
    List.map Table.column
      [ "a"; "Vdd*"; "Vth*"; "Ptot* [uW]"; "Pdyn/Pstat" ]
  in
  let rows =
    List.map
      (fun c ->
        [
          Printf.sprintf "%.4g" c.activity;
          Table.fmt_f c.optimum.vdd;
          Table.fmt_f c.optimum.vth;
          Table.fmt_uw c.optimum.total;
          Printf.sprintf "%.2f" c.dyn_static_ratio;
        ])
      curves
  in
  "Figure 1 - total power vs Vdd (Vth from the timing constraint), 16-bit \
   RCA, STM LL\n" ^ plot ^ "\nOptimal working points:\n"
  ^ Table.render ~columns ~rows

(* Figure 2 *)

let figure2 ?(alpha = 1.5) () = Device.Linearization.fit ~alpha ()

let render_figure2 (lin : Device.Linearization.t) =
  let samples = Device.Linearization.figure2_series lin ~samples:60 in
  let exact = List.map (fun (x, e, _) -> (x, e)) samples in
  let linear = List.map (fun (x, _, l) -> (x, l)) samples in
  Printf.sprintf
    "Figure 2 - Vdd^(1/alpha) vs its linear fit, alpha = %.2f\n\
     A = %.4f, B = %.4f, max |error| = %.5f over [%.2f, %.2f] V\n"
    lin.alpha lin.a lin.b lin.max_error lin.lo lin.hi
  ^ Ascii_plot.render ~height:18 ~x_label:"Vdd [V]" ~y_label:"Vdd^(1/alpha)"
      [
        Ascii_plot.series ~marker:'*' ~label:"exact" exact;
        Ascii_plot.series ~marker:'.' ~label:"A*Vdd + B" linear;
      ]

(* Table 2 re-characterisation *)

type table2_row = {
  flavor : string;
  published_alpha : float;
  fitted_alpha : float;
  fitted_zeta : float;
  fit_rms : float;
}

let table2 () =
  Parallel.Pool.map
    (fun (tech : Device.Technology.t) ->
      let fit = Spice.Param_extract.characterize tech in
      {
        flavor = Device.Technology.name tech;
        published_alpha = tech.alpha;
        fitted_alpha = fit.alpha;
        fitted_zeta = fit.zeta;
        fit_rms = fit.rms_error;
      })
    Device.Technology.all

let render_table2 rows =
  let columns =
    Table.column ~align:Table.Left "Flavor"
    :: List.map Table.column
         [ "alpha (Table 2)"; "alpha (refit)"; "zeta_gate [fF]"; "rel. RMS" ]
  in
  let row r =
    [
      r.flavor;
      Table.fmt_f ~decimals:2 r.published_alpha;
      Table.fmt_f ~decimals:2 r.fitted_alpha;
      Table.fmt_f ~decimals:1 (r.fitted_zeta *. 1e15);
      Printf.sprintf "%.4f" r.fit_rms;
    ]
  in
  "Table 2 - technology re-characterisation by ring-oscillator simulation \
   and fitting\n"
  ^ Table.render ~columns ~rows:(List.map row rows)

(* Figures 3 / 4 *)

let pipeline_sketch ~bits ~stages ~cut =
  let grid = Multipliers.Rca.cut_preview ~bits ~stages ~cut in
  let buffer = Buffer.create 512 in
  let kind =
    match cut with
    | Multipliers.Rca.Horizontal -> "horizontal (Figure 3)"
    | Multipliers.Rca.Diagonal -> "diagonal (Figure 4)"
  in
  Buffer.add_string buffer
    (Printf.sprintf
       "%d-bit RCA, %d-stage %s cut - stage index per array cell\n\
        (columns = partial-product column, last line = final merge row)\n"
       bits stages kind);
  Array.iteri
    (fun row stages_of_col ->
      Buffer.add_string buffer
        (if row < Array.length grid - 1 then
           Printf.sprintf "  row %2d  " row
         else "  merge   ");
      Array.iter
        (fun s -> Buffer.add_string buffer (Printf.sprintf "%d " s))
        stages_of_col;
      Buffer.add_char buffer '\n')
    grid;
  Buffer.contents buffer

(* From-scratch pipeline *)

let scratch ?(tech = Device.Technology.ll) ?(cycles = 160) () =
  Power_core.Scratch_pipeline.run_all ~cycles tech ~f:P.frequency ()

let render_scratch rows =
  let columns =
    Table.column ~align:Table.Left "Architecture"
    :: List.map Table.column
         [
           "N"; "a"; "glitch"; "LDeff"; "Vdd*"; "Vth*"; "Ptot [uW]";
           "Eq13 [uW]"; "Err%";
         ]
  in
  let row (r : Power_core.Scratch_pipeline.row) =
    let eq13, err =
      match (r.eq13, Power_core.Scratch_pipeline.eq13_error_pct r) with
      | Some cf, Some e -> (Table.fmt_uw cf.ptot, Table.fmt_pct e)
      | _ -> ("n/a", "n/a")
    in
    [
      r.params.label;
      Printf.sprintf "%.0f" r.params.n_cells;
      Printf.sprintf "%.4f" r.params.activity;
      Printf.sprintf "%.3f" r.glitch_ratio;
      Printf.sprintf "%.1f" r.params.ld_eff;
      Table.fmt_f r.numerical.vdd;
      Table.fmt_f r.numerical.vth;
      Table.fmt_uw r.numerical.total;
      eq13;
      err;
    ]
  in
  "From-scratch reproduction - own netlists, simulated activity, STA depth \
   (absolute values differ from the paper; compare the ordering)\n"
  ^ Table.render ~columns ~rows:(List.map row rows)
