module C = Netlist.Circuit

let register_bus circuit bus = Array.map (fun n -> C.add_dff circuit n) bus

(* Cell-count hint shared by the array-style cores (Array_core, Wallace,
   Dadda, signed Baugh-Wooley): ~bits^2 partial products, about as many
   reduction adders, the final carry-propagate adder and the 4*bits I/O
   flip-flops. Booth halves the partial products but the bound still
   covers it; over-estimating only rounds the first allocation up. *)
let array_cells ~bits = (2 * bits * bits) + (12 * bits)

let build ?expect_cells ~name ~label ~bits ~core () =
  let circuit =
    match expect_cells with
    | None -> C.create name
    | Some cells ->
      (* Most cells drive one net, adders two; plus the input buses. *)
      C.create ~expect_cells:cells ~expect_nets:((2 * cells) + (2 * bits)) name
  in
  let a_bus = C.add_input_bus circuit "a" bits in
  let b_bus = C.add_input_bus circuit "b" bits in
  let a = register_bus circuit a_bus in
  let b = register_bus circuit b_bus in
  let product = core circuit ~a ~b in
  let p_bus = register_bus circuit product in
  C.mark_output_bus circuit p_bus "p";
  {
    Spec.name = label;
    style = Spec.Combinational;
    circuit;
    bits;
    a_bus;
    b_bus;
    p_bus;
    latency_ticks = 3;
    ticks_per_cycle = 1;
    timing_periods = 1.0;
  }
