(** The paper's thirteen 16-bit multiplier architectures, in Table 1 order. *)

type entry = {
  label : string;  (** Exact Table 1 row label. *)
  build : unit -> Spec.t;  (** Generators are lazy — building all thirteen
      costs a few hundred thousand cells. *)
}

val entries : entry list
(** Thirteen entries, Table 1 order. *)

val extensions : entry list
(** Architectures beyond the paper's set (radix-4 Booth, Dadda, and their
    parallelised versions) — extra points for the model to score. *)

val find : string -> entry
(** Lookup by label, searching {!entries} then {!extensions}.
    @raise Not_found. *)

val build : ?bits:int -> string -> Spec.t
(** Memoised build by label (default width {!default_bits}): the first call
    generates and cleans the netlist, later calls — from any domain —
    return the same physically-shared, read-only spec.
    @raise Not_found on an unknown label.
    @raise Invalid_argument for a width other than {!default_bits}. *)

val build_all : unit -> Spec.t list

val default_bits : int
(** 16 — the operand width used throughout the paper. *)
