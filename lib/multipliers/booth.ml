module C = Netlist.Circuit
module Cell = Netlist.Cell

type digit = { one : C.net; two : C.net; neg : C.net }

(* Digit k looks at (b[2k+1], b[2k], b[2k-1]) with b[-1] = 0 and the
   operand zero-extended above its msb:
     one = b[2k] xor b[2k-1]
     two = not one and (b[2k+1] xor b[2k-1])
     neg = b[2k+1]
   The all-ones "-0" row produced by (1,1,1) wraps to zero modulo 2^(2w)
   once its correction bit is added. *)
let recode circuit ~b =
  let width = Array.length b in
  if width < 2 || width mod 2 <> 0 then
    invalid_arg "Booth.recode: width must be even and >= 2";
  let zero = C.tie0 circuit in
  let bit i = if i < 0 || i >= width then zero else b.(i) in
  let digits = (width / 2) + 1 in
  Array.init digits (fun k ->
      let low = bit ((2 * k) - 1)
      and mid = bit (2 * k)
      and high = bit ((2 * k) + 1) in
      let one = C.add_gate circuit Cell.Xor2 [| mid; low |] in
      let spread = C.add_gate circuit Cell.Xor2 [| high; low |] in
      let not_one = C.add_gate circuit Cell.Inv [| one |] in
      let two = C.add_gate circuit Cell.And2 [| not_one; spread |] in
      { one; two; neg = high })

let core circuit ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Booth.core: operand width mismatch";
  if width < 4 || width mod 2 <> 0 then
    invalid_arg "Booth.core: width must be even and >= 4";
  let out_width = 2 * width in
  let digits = recode circuit ~b in
  let zero = C.tie0 circuit in
  let columns = Array.make out_width [] in
  let place column net =
    if column < out_width then columns.(column) <- Some net :: columns.(column)
  in
  Array.iteri
    (fun k digit ->
      let base = 2 * k in
      (* Partial-product bits: |d|*a with the sign applied bitwise; the
         missing +1 of the two's complement is the correction bit below. *)
      for i = 0 to width do
        let a_i = if i < width then a.(i) else zero in
        let a_im1 = if i = 0 then zero else a.(i - 1) in
        let from_one = C.add_gate circuit Cell.And2 [| digit.one; a_i |] in
        let from_two = C.add_gate circuit Cell.And2 [| digit.two; a_im1 |] in
        let magnitude = C.add_gate circuit Cell.Or2 [| from_one; from_two |] in
        let bit = C.add_gate circuit Cell.Xor2 [| magnitude; digit.neg |] in
        place (base + i) bit
      done;
      (* Compact sign extension: the string of sign bits from column
         base+width+1 upward is worth −neg·2^(base+width+1) modulo 2^(2w),
         i.e. (not neg)·2^(base+width+1) plus a constant handled below.
         The top digit is never negative — nothing to extend there. *)
      if k < Array.length digits - 1 then begin
        let not_neg = C.add_gate circuit Cell.Inv [| digit.neg |] in
        place (base + width + 1) not_neg
      end;
      (* Two's-complement correction. *)
      place base digit.neg)
    digits;
  (* The constant part of the compact sign extension:
     sum over rows of −2^(base+width+1), modulo 2^(2w). *)
  let constant =
    let mask = (1 lsl out_width) - 1 in
    let rec total k acc =
      if k >= Array.length digits - 1 then acc land mask
      else total (k + 1) (acc - (1 lsl ((2 * k) + width + 1)))
    in
    total 0 0
  in
  let one = C.tie1 circuit in
  for column = 0 to out_width - 1 do
    if (constant lsr column) land 1 = 1 then place column one
  done;
  let reduced = Adders.reduce_to_two ~drop_overflow:true circuit columns in
  let row_a = Array.make out_width None and row_b = Array.make out_width None in
  Array.iteri
    (fun i column ->
      match column with
      | [] -> ()
      | [ x ] -> row_a.(i) <- x
      | [ x; y ] ->
        row_a.(i) <- x;
        row_b.(i) <- y
      | _ -> assert false)
    reduced;
  let solid = function Some n -> n | None -> zero in
  Adders.sklansky circuit (Array.map solid row_a) (Array.map solid row_b)

let basic ~bits =
  Registered.build ~expect_cells:(Registered.array_cells ~bits)
    ~name:"booth_basic" ~label:"Booth r4" ~bits ~core ()
