module C = Netlist.Circuit
module Cell = Netlist.Cell

type digit = { one : C.net; two : C.net; neg : C.net }

(* Digit k looks at (b[2k+1], b[2k], b[2k-1]) with b[-1] = 0 and the
   operand zero-extended above its msb:
     one = b[2k] xor b[2k-1]
     two = not one and (b[2k+1] xor b[2k-1])
     neg = b[2k+1]
   The all-ones "-0" row produced by (1,1,1) wraps to zero modulo 2^(2w)
   once its correction bit is added. *)
let recode circuit ~b =
  let width = Array.length b in
  if width < 2 || width mod 2 <> 0 then
    invalid_arg "Booth.recode: width must be even and >= 2";
  let zero = C.tie0 circuit in
  let bit i = if i < 0 || i >= width then zero else b.(i) in
  let digits = (width / 2) + 1 in
  Array.init digits (fun k ->
      let low = bit ((2 * k) - 1)
      and mid = bit (2 * k)
      and high = bit ((2 * k) + 1) in
      let one = C.add_gate circuit Cell.Xor2 [| mid; low |] in
      let spread = C.add_gate circuit Cell.Xor2 [| high; low |] in
      let not_one = C.add_gate circuit Cell.Inv [| one |] in
      let two = C.add_gate circuit Cell.And2 [| not_one; spread |] in
      { one; two; neg = high })

let core circuit ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Booth.core: operand width mismatch";
  if width < 4 || width mod 2 <> 0 then
    invalid_arg "Booth.core: width must be even and >= 4";
  let out_width = 2 * width in
  let digits = recode circuit ~b in
  let zero = C.tie0 circuit in
  let columns = Array.make out_width [] in
  let place column net =
    if column < out_width then columns.(column) <- Some net :: columns.(column)
  in
  Array.iteri
    (fun k digit ->
      let base = 2 * k in
      (* Partial-product bits: |d|*a with the sign applied bitwise; the
         missing +1 of the two's complement is the correction bit below. *)
      for i = 0 to width do
        let a_i = if i < width then a.(i) else zero in
        let a_im1 = if i = 0 then zero else a.(i - 1) in
        let from_one = C.add_gate circuit Cell.And2 [| digit.one; a_i |] in
        let from_two = C.add_gate circuit Cell.And2 [| digit.two; a_im1 |] in
        let magnitude = C.add_gate circuit Cell.Or2 [| from_one; from_two |] in
        let bit = C.add_gate circuit Cell.Xor2 [| magnitude; digit.neg |] in
        place (base + i) bit
      done;
      (* Compact sign extension: the string of sign bits from column
         base+width+1 upward is worth −neg·2^(base+width+1) modulo 2^(2w),
         i.e. (not neg)·2^(base+width+1) plus a constant handled below.
         The top digit is never negative — nothing to extend there. *)
      if k < Array.length digits - 1 then begin
        let not_neg = C.add_gate circuit Cell.Inv [| digit.neg |] in
        place (base + width + 1) not_neg
      end;
      (* Two's-complement correction. *)
      place base digit.neg)
    digits;
  (* The constant part of the compact sign extension:
     sum over rows of −2^(base+width+1), modulo 2^(2w). *)
  let constant =
    let mask = (1 lsl out_width) - 1 in
    let rec total k acc =
      if k >= Array.length digits - 1 then acc land mask
      else total (k + 1) (acc - (1 lsl ((2 * k) + width + 1)))
    in
    total 0 0
  in
  let one = C.tie1 circuit in
  for column = 0 to out_width - 1 do
    if (constant lsr column) land 1 = 1 then place column one
  done;
  let reduced = Adders.reduce_to_two ~drop_overflow:true circuit columns in
  let row_a = Array.make out_width None and row_b = Array.make out_width None in
  Array.iteri
    (fun i column ->
      match column with
      | [] -> ()
      | [ x ] -> row_a.(i) <- x
      | [ x; y ] ->
        row_a.(i) <- x;
        row_b.(i) <- y
      | _ -> assert false)
    reduced;
  let solid = function Some n -> n | None -> zero in
  Adders.sklansky circuit (Array.map solid row_a) (Array.map solid row_b)

let basic ~bits =
  Registered.build ~expect_cells:(Registered.array_cells ~bits)
    ~name:"booth_basic" ~label:"Booth r4" ~bits ~core ()

(* --- Parameterized generator: radix 2/4/8 x signedness x depth --- *)

type signedness = Unsigned | Signed

let digit_bits radix =
  match radix with
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | _ -> invalid_arg "Booth: radix must be 2, 4 or 8"

(* One recoded row per radix-2^m digit: pipelining a Booth tree deeper
   than one register bank per partial-product row has no architectural
   reading, so the row count bounds the depth axis. *)
let max_stages ~radix ~bits = (bits + digit_bits radix) / digit_bits radix

let validate ~radix ~signedness:_ ~stages ~copies ~bits =
  if radix <> 2 && radix <> 4 && radix <> 8 then
    Error (Printf.sprintf "radix must be 2, 4 or 8 (got %d)" radix)
  else if bits < 4 || bits mod 2 <> 0 then
    Error (Printf.sprintf "width must be even and >= 4 (got %d)" bits)
  else if stages < 1 || stages > max_stages ~radix ~bits then
    Error
      (Printf.sprintf "stages must be in [1, %d] for radix %d at %d bits (got %d)"
         (max_stages ~radix ~bits) radix bits stages)
  else if copies < 1 then
    Error (Printf.sprintf "copies must be >= 1 (got %d)" copies)
  else if copies > 1 && stages > 1 then
    Error "stages and copies are exclusive (pipeline or replicate, not both)"
  else Ok ()

let estimated_cells ~radix ~signedness ~stages ~copies ~bits =
  let m = digit_bits radix in
  let digits = (bits + m) / m in
  let row_w = bits + m - 1 in
  let decode, per_bit =
    match radix with 2 -> (2, 2) | 4 -> (5, 4) | _ -> (10, 7)
  in
  let rows = digits * ((row_w * per_bit) + decode + 2) in
  let triple = if radix = 8 then 6 * (bits + 2) else 0 in
  (* 3:2 compression of [digits] rows down to two, the final prefix adder
     and its padding ties. *)
  let reduce = (2 * digits * row_w) + (8 * bits) in
  let signed_extra =
    match signedness with Unsigned -> 0 | Signed -> (4 * bits) + (6 * bits)
  in
  let unsigned_core = rows + triple + reduce in
  let one_core = unsigned_core + signed_extra in
  if copies > 1 then
    (* Replicated cores plus per-copy loadable operand registers, the
       one-hot ring and the output merge mux (Parallelize.wrap). *)
    (copies * (one_core + (2 * bits * 3))) + copies + (2 * bits * copies)
    + (4 * bits)
  else one_core + (4 * bits) + (6 * stages * bits)

(* Generalized radix-2^m recoding. Digit k reads the m+1-bit window
   b[mk-1 .. mk+m-1] (b[-1] = 0, zero-extended above the msb) and is worth
   sum b[mk+i] 2^i + b[mk-1] - b[mk+m-1] 2^m over {-2^(m-1) .. 2^(m-1)}.
   The row places |d|*a XOR neg over columns base .. base+w+m-2, the +neg
   correction at base, and the compact sign extension ((not neg) at
   base+w+m-1 plus a lumped constant) exactly as the radix-4 [core] above;
   the -0 encoding wraps to zero modulo 2^(2w) by the same algebra. *)
let gen_core ~radix circuit ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Booth.gen_core: operand width mismatch";
  if width < 4 || width mod 2 <> 0 then
    invalid_arg "Booth.gen_core: width must be even and >= 4";
  let m = digit_bits radix in
  let out_width = 2 * width in
  let zero = C.tie0 circuit in
  let abit i = if i < 0 || i >= width then zero else a.(i) in
  let bbit i = if i < 0 || i >= width then zero else b.(i) in
  let digits = (width + m) / m in
  let row_w = width + m - 1 in
  (* Radix-8's hard multiple 3a = a + 2a, built once over w+2 bits. *)
  let triple =
    if radix <> 8 then [||]
    else
      let lift f = Array.init (width + 2) f in
      let pad = lift (fun i -> if i < width then Some a.(i) else None) in
      let shifted =
        lift (fun i -> if i >= 1 && i <= width then Some a.(i - 1) else None)
      in
      let sum, _carry = Adders.ripple_carry_bits circuit pad shifted in
      Array.map (function Some n -> n | None -> zero) sum
  in
  let columns = Array.make out_width [] in
  let place column net =
    if column < out_width then columns.(column) <- Some net :: columns.(column)
  in
  for k = 0 to digits - 1 do
    let base = m * k in
    let neg, magnitude =
      match radix with
      | 2 ->
        (* d = b[k-1] - b[k]: one = hi xor lo, neg = hi. *)
        let lo = bbit (k - 1) and hi = bbit k in
        let one = C.add_gate circuit Cell.Xor2 [| hi; lo |] in
        (hi, fun i -> C.add_gate circuit Cell.And2 [| one; abit i |])
      | 4 ->
        let low = bbit ((2 * k) - 1)
        and mid = bbit (2 * k)
        and high = bbit ((2 * k) + 1) in
        let one = C.add_gate circuit Cell.Xor2 [| mid; low |] in
        let spread = C.add_gate circuit Cell.Xor2 [| high; low |] in
        let not_one = C.add_gate circuit Cell.Inv [| one |] in
        let two = C.add_gate circuit Cell.And2 [| not_one; spread |] in
        ( high,
          fun i ->
            let f1 = C.add_gate circuit Cell.And2 [| one; abit i |] in
            let f2 = C.add_gate circuit Cell.And2 [| two; abit (i - 1) |] in
            C.add_gate circuit Cell.Or2 [| f1; f2 |] )
      | _ ->
        (* d = -4h + 2mm + l + p over {-4..4}; magnitude selects between
           a, 2a, the hard multiple 3a and 4a. *)
        let p = bbit ((3 * k) - 1)
        and l = bbit (3 * k)
        and mm = bbit ((3 * k) + 1)
        and h = bbit ((3 * k) + 2) in
        let lp_x = C.add_gate circuit Cell.Xor2 [| l; p |] in
        let lp_a = C.add_gate circuit Cell.And2 [| l; p |] in
        let mh = C.add_gate circuit Cell.Xor2 [| mm; h |] in
        let not_lpx = C.add_gate circuit Cell.Inv [| lp_x |] in
        let not_mh = C.add_gate circuit Cell.Inv [| mh |] in
        let sel1 = C.add_gate circuit Cell.And2 [| lp_x; not_mh |] in
        let sel3 = C.add_gate circuit Cell.And2 [| lp_x; mh |] in
        let m_lpa = C.add_gate circuit Cell.Xor2 [| mm; lp_a |] in
        let sel2 = C.add_gate circuit Cell.And2 [| not_lpx; m_lpa |] in
        let not_mlpa = C.add_gate circuit Cell.Inv [| m_lpa |] in
        let even = C.add_gate circuit Cell.And2 [| not_lpx; not_mlpa |] in
        let sel4 = C.add_gate circuit Cell.And2 [| even; mh |] in
        ( h,
          fun i ->
            let t3 = if i < Array.length triple then triple.(i) else zero in
            let g1 = C.add_gate circuit Cell.And2 [| sel1; abit i |] in
            let g2 = C.add_gate circuit Cell.And2 [| sel2; abit (i - 1) |] in
            let g3 = C.add_gate circuit Cell.And2 [| sel3; t3 |] in
            let g4 = C.add_gate circuit Cell.And2 [| sel4; abit (i - 2) |] in
            let o1 = C.add_gate circuit Cell.Or2 [| g1; g2 |] in
            let o2 = C.add_gate circuit Cell.Or2 [| g3; g4 |] in
            C.add_gate circuit Cell.Or2 [| o1; o2 |] )
    in
    for i = 0 to row_w - 1 do
      let bit = C.add_gate circuit Cell.Xor2 [| magnitude i; neg |] in
      place (base + i) bit
    done;
    (* Top digit is never negative: its window sign bit is zero-extended. *)
    if k < digits - 1 then begin
      let not_neg = C.add_gate circuit Cell.Inv [| neg |] in
      place (base + row_w) not_neg
    end;
    place base neg
  done;
  let constant =
    let mask = (1 lsl out_width) - 1 in
    let rec total k acc =
      if k >= digits - 1 then acc land mask
      else total (k + 1) (acc - (1 lsl ((m * k) + row_w)))
    in
    total 0 0
  in
  let one = C.tie1 circuit in
  for column = 0 to out_width - 1 do
    if (constant lsr column) land 1 = 1 then place column one
  done;
  let reduced = Adders.reduce_to_two ~drop_overflow:true circuit columns in
  let row_a = Array.make out_width None and row_b = Array.make out_width None in
  Array.iteri
    (fun i column ->
      match column with
      | [] -> ()
      | [ x ] -> row_a.(i) <- x
      | [ x; y ] ->
        row_a.(i) <- x;
        row_b.(i) <- y
      | _ -> assert false)
    reduced;
  let solid = function Some n -> n | None -> zero in
  Adders.sklansky circuit (Array.map solid row_a) (Array.map solid row_b)

let generate ?(signedness = Unsigned) ?(stages = 1) ?(copies = 1) ~radix ~bits
    () =
  (match validate ~radix ~signedness ~stages ~copies ~bits with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Booth.generate: " ^ msg));
  let sign_tag = match signedness with Unsigned -> "u" | Signed -> "s" in
  let name =
    Printf.sprintf "booth_r%d%s_p%d_x%d_w%d" radix sign_tag stages copies bits
  in
  let label =
    Printf.sprintf "Booth r%d%s w%d%s%s" radix sign_tag bits
      (if stages > 1 then Printf.sprintf " pipe%d" stages else "")
      (if copies > 1 then Printf.sprintf " par%d" copies else "")
  in
  let unsigned_core circuit ~a ~b = gen_core ~radix circuit ~a ~b in
  let flat_core =
    match signedness with
    | Unsigned -> unsigned_core
    | Signed -> Signed_mult.core ~unsigned:unsigned_core
  in
  let expect_cells =
    estimated_cells ~radix ~signedness ~stages ~copies ~bits
  in
  let spec =
    if copies > 1 then
      { (Parallelize.wrap ~expect_cells ~name ~bits ~copies ~core:flat_core ())
        with Spec.name = label }
    else begin
      let core =
        if stages = 1 then flat_core
        else fun circuit ~a ~b ->
          Pipeliner.by_depth circuit ~stages
            ~outputs:(flat_core circuit ~a ~b)
      in
      let spec = Registered.build ~expect_cells ~name ~label ~bits ~core () in
      if stages = 1 then spec
      else
        { spec with Spec.style = Spec.Pipelined stages;
                    latency_ticks = 2 + stages }
    end
  in
  Spec_optimize.run spec
