module C = Netlist.Circuit
module Cell = Netlist.Cell

let to_signed ~bits value =
  if value land (1 lsl (bits - 1)) <> 0 then value - (1 lsl bits) else value

let of_signed ~bits value =
  let half = 1 lsl (bits - 1) in
  if value < -half || value >= half then
    invalid_arg "Signed_mult.of_signed: out of range";
  value land ((1 lsl bits) - 1)

let core ~unsigned circuit ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Signed_mult.core: operand width mismatch";
  let out_width = 2 * width in
  let product = unsigned circuit ~a ~b in
  if Array.length product <> out_width then
    invalid_arg "Signed_mult.core: unsigned core has unexpected width";
  let sa = a.(width - 1) and sb = b.(width - 1) in
  (* -(s * x) over the upper half, modulo 2^w: NOT(s AND x_j) per bit plus
     one; the two +1 constants combine into a single bit one column up. *)
  let negated_row s x =
    Array.map (fun xj -> C.add_gate circuit Cell.Nand2 [| s; xj |]) x
  in
  let row_a = negated_row sa b and row_b = negated_row sb a in
  let columns = Array.make out_width [] in
  let place column net =
    if column < out_width then columns.(column) <- Some net :: columns.(column)
  in
  Array.iteri (fun i bit -> place i bit) product;
  Array.iteri (fun j bit -> place (width + j) bit) row_a;
  Array.iteri (fun j bit -> place (width + j) bit) row_b;
  place (width + 1) (C.tie1 circuit);
  let reduced = Adders.reduce_to_two ~drop_overflow:true circuit columns in
  let row_x = Array.make out_width None and row_y = Array.make out_width None in
  Array.iteri
    (fun i column ->
      match column with
      | [] -> ()
      | [ x ] -> row_x.(i) <- x
      | [ x; y ] ->
        row_x.(i) <- x;
        row_y.(i) <- y
      | _ -> assert false)
    reduced;
  let solid = function Some n -> n | None -> C.tie0 circuit in
  Adders.sklansky circuit (Array.map solid row_x) (Array.map solid row_y)

let basic ~name ~bits ~unsigned =
  Registered.build ~expect_cells:(Registered.array_cells ~bits) ~name
    ~label:name ~bits ~core:(core ~unsigned) ()
