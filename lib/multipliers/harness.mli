(** Driving a multiplier spec through the logic simulator: functional
    checks and activity measurement. *)

val compute : Spec.t -> Logicsim.Simulator.t -> int -> int -> int
(** [compute spec sim x y] applies the operands, holds them for the spec's
    latency and reads the product. The simulator keeps its state — call
    repeatedly for streaming. @raise Failure on X output bits. *)

val fresh_simulator : Spec.t -> Logicsim.Simulator.t

val check_random :
  ?seed:int -> Spec.t -> samples:int -> (int * int * int * int) list
(** Multiply [samples] random operand pairs; returns the failures as
    [(x, y, expected, got)] — empty when the hardware is correct. *)

val check_corners : Spec.t -> (int * int * int * int) list
(** 0, 1, max-value and alternating-bit operand corner cases. *)

type measured = {
  activity : float;  (** a, per data cycle (paper definition). *)
  glitch_ratio : float;
  toggles_per_cycle : float;
}

val measure_activity :
  ?seed:int -> ?cycles:int -> Spec.t -> measured
(** Random-stimulus activity over [cycles] (default 160) data periods. *)

val measure_activity_many :
  ?seed:int -> ?cycles:int -> Spec.t list -> measured list
(** Measure several architectures concurrently on the {!Parallel.Pool},
    one private simulator instance per architecture. Element [i] equals
    [measure_activity spec_i] bit for bit at any pool size. *)
