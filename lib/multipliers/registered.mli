(** Shared frame for flat (combinational-core) multipliers: operand
    registers in, product register out. *)

val array_cells : bits:int -> int
(** Cell-count estimate for an array-style [bits]-wide multiplier core
    (partial products + reduction + final adder + I/O registers) — the
    [expect_cells] hint the concrete builders pass to {!build}. *)

val build :
  ?expect_cells:int ->
  name:string ->
  label:string ->
  bits:int ->
  core:
    (Netlist.Circuit.t ->
    a:Netlist.Circuit.net array ->
    b:Netlist.Circuit.net array ->
    Netlist.Circuit.net array) ->
  unit ->
  Spec.t
(** [name] is the circuit name (identifier-ish), [label] the display name.
    [expect_cells] preallocates the circuit's cell/net vectors
    ({!Netlist.Circuit.create}); purely an allocation hint. *)

val register_bus :
  Netlist.Circuit.t -> Netlist.Circuit.net array -> Netlist.Circuit.net array
(** One flip-flop per bit. *)
