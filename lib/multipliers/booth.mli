(** Radix-4 (modified) Booth multiplier — an extension beyond the paper's
    set.

    Booth recoding halves the number of partial-product rows (w/2 + 1
    signed digits in {−2, −1, 0, 1, 2} for an unsigned w-bit multiplier),
    trading AND-array rows for recoding logic and two's-complement
    correction bits. The resulting tree is shallower than the plain Wallace
    tree, which is exactly the kind of architectural knob Eq. 13 is meant
    to evaluate — fewer rows (lower N in the tree, shorter LD) against the
    recoder overhead. *)

val basic : bits:int -> Spec.t
(** Registered unsigned multiplier. @raise Invalid_argument unless [bits]
    is even and ≥ 4. *)

val core : Netlist.Circuit.t ->
  a:Netlist.Circuit.net array ->
  b:Netlist.Circuit.net array ->
  Netlist.Circuit.net array
(** Bare combinational Booth tree (usable with {!Parallelize.wrap}). *)

type digit = {
  one : Netlist.Circuit.net;  (** |d| = 1. *)
  two : Netlist.Circuit.net;  (** |d| = 2. *)
  neg : Netlist.Circuit.net;  (** d < 0 (also set on the −0 encoding, which
      the wrap-around correction cancels exactly). *)
}

val recode :
  Netlist.Circuit.t -> b:Netlist.Circuit.net array -> digit array
(** The w/2 + 1 radix-4 Booth digits of an (even-width) operand, exposed
    for white-box testing. *)

(** {1 Parameterized generator}

    The design-space explorer's substrate axis: one generator over radix
    (2/4/8), signedness and pipeline depth, the way the ice40 Booth repo
    ships its [su_N_pipeline_*] family as generated variants. Radix 2 is
    the non-overlapping d = b[k−1] − b[k] recoding (w+1 single-bit rows);
    radix 4 the classic modified Booth above; radix 8 adds the hard
    multiple 3a (one ripple adder, built once) and selects between a, 2a,
    3a and 4a per digit. All three share the compact sign-extension and
    wrap-around −0 algebra of the radix-4 [core]. *)

type signedness = Unsigned | Signed

val digit_bits : int -> int
(** Bits consumed per digit: log2 of the radix.
    @raise Invalid_argument unless the radix is 2, 4 or 8. *)

val max_stages : radix:int -> bits:int -> int
(** Upper bound of the pipeline-depth axis: the recoded row count
    (one register bank per partial-product row at most). *)

val validate :
  radix:int -> signedness:signedness -> stages:int -> copies:int ->
  bits:int -> (unit, string) result
(** The generator's parameter-validity contract, shared with the
    [dse.generator-params] lint rule: radix ∈ {2,4,8}, even width ≥ 4,
    1 ≤ stages ≤ {!max_stages}, copies ≥ 1, and stages/copies mutually
    exclusive. *)

val estimated_cells :
  radix:int -> signedness:signedness -> stages:int -> copies:int ->
  bits:int -> int
(** Capacity hint threaded into [Circuit.create]'s vector pre-allocation
    (and through {!Parallelize.wrap} on the replicated path): recoder,
    partial-product rows, the radix-8 hard-multiple adder, reduction tree,
    prefix adder, I/O and pipeline registers. Over-estimates round the
    first allocation up; any value is behaviourally equivalent. *)

val gen_core :
  radix:int ->
  Netlist.Circuit.t ->
  a:Netlist.Circuit.net array ->
  b:Netlist.Circuit.net array ->
  Netlist.Circuit.net array
(** Bare combinational generalized-Booth tree (radix 2, 4 or 8) — the
    unsigned multiply core, usable with {!Parallelize.wrap} and the
    exhaustive [Bitpar] differential sweeps.
    @raise Invalid_argument on an odd or < 4 width or a bad radix. *)

val generate :
  ?signedness:signedness -> ?stages:int -> ?copies:int -> radix:int ->
  bits:int -> unit -> Spec.t
(** Registered multiplier from the generator parameter space (defaults:
    unsigned, 1 stage, 1 copy). [stages ≥ 2] pipelines the core with
    {!Pipeliner.by_depth} (style [Pipelined], latency [2 + stages]);
    [copies ≥ 2] replicates it through {!Parallelize.wrap}; [Signed]
    wraps the unsigned core in the Baugh-Wooley-style correction of
    {!Signed_mult.core}. The result is cleaned by [Spec_optimize].
    @raise Invalid_argument when {!validate} rejects the combination. *)
