type entry = { label : string; build : unit -> Spec.t }

let default_bits = 16

(* Catalog entries go through the clean-up pass — what a synthesis flow
   would hand to the power analysis. *)
let rename label (spec : Spec.t) =
  Spec_optimize.run { spec with Spec.name = label }

let parallel_of ~label ~copies core =
  {
    label;
    build =
      (fun () ->
        rename label
          (Parallelize.wrap ~name:label ~bits:default_bits ~copies ~core ()));
  }

let raw_entries =
  [
    { label = "RCA"; build = (fun () -> rename "RCA" (Rca.basic ~bits:default_bits)) };
    parallel_of ~label:"RCA parallel" ~copies:2 Rca.core;
    parallel_of ~label:"RCA parallel 4" ~copies:4 Rca.core;
    {
      label = "RCA hor.pipe2";
      build =
        (fun () ->
          rename "RCA hor.pipe2"
            (Rca.pipelined ~bits:default_bits ~stages:2 ~cut:Rca.Horizontal));
    };
    {
      label = "RCA hor.pipe4";
      build =
        (fun () ->
          rename "RCA hor.pipe4"
            (Rca.pipelined ~bits:default_bits ~stages:4 ~cut:Rca.Horizontal));
    };
    {
      label = "RCA diagpipe2";
      build =
        (fun () ->
          rename "RCA diagpipe2"
            (Rca.pipelined ~bits:default_bits ~stages:2 ~cut:Rca.Diagonal));
    };
    {
      label = "RCA diagpipe4";
      build =
        (fun () ->
          rename "RCA diagpipe4"
            (Rca.pipelined ~bits:default_bits ~stages:4 ~cut:Rca.Diagonal));
    };
    {
      label = "Wallace";
      build = (fun () -> rename "Wallace" (Wallace.basic ~bits:default_bits));
    };
    parallel_of ~label:"Wallace parallel" ~copies:2 Wallace.core;
    parallel_of ~label:"Wallace par4" ~copies:4 Wallace.core;
    {
      label = "Sequential";
      build =
        (fun () -> rename "Sequential" (Sequential.basic ~bits:default_bits));
    };
    {
      label = "Seq4_16";
      build =
        (fun () ->
          rename "Seq4_16" (Sequential.wallace_4_16 ~bits:default_bits));
    };
    {
      label = "Seq parallel";
      build =
        (fun () ->
          rename "Seq parallel" (Sequential.parallel ~bits:default_bits));
    };
  ]

let raw_extensions =
  [
    {
      label = "Booth r4";
      build = (fun () -> rename "Booth r4" (Booth.basic ~bits:default_bits));
    };
    parallel_of ~label:"Booth r4 parallel" ~copies:2 Booth.core;
    {
      label = "Dadda";
      build = (fun () -> rename "Dadda" (Dadda.basic ~bits:default_bits));
    };
    parallel_of ~label:"Dadda parallel" ~copies:2 Dadda.core;
  ]

(* A built netlist is a pure function of (family label, operand width) and
   is read-only after the clean-up pass — simulation state lives in the
   simulator instance, never in the circuit — so every consumer shares one
   cached build. Keyed on (label, bits) even though the catalog currently
   only builds at [default_bits], so width-parametric entries can join
   later without a key change. *)
let build_cache : (string * int, Spec.t) Parallel.Memo.t =
  Parallel.Memo.create ~name:"catalog" (fun (label, _bits) ->
      match
        List.find_opt
          (fun (e : entry) -> e.label = label)
          (raw_entries @ raw_extensions)
      with
      | Some e -> e.build ()
      | None -> raise Not_found)

let build ?(bits = default_bits) label =
  if bits <> default_bits then
    invalid_arg "Catalog.build: only default_bits generators are catalogued";
  Parallel.Memo.find build_cache (label, bits)

let cached (entry : entry) =
  { entry with build = (fun () -> build entry.label) }

let entries = List.map cached raw_entries
let extensions = List.map cached raw_extensions

let find label =
  match List.find_opt (fun e -> e.label = label) (entries @ extensions) with
  | Some e -> e
  | None -> raise Not_found

let build_all () = List.map (fun e -> e.build ()) entries
