(** Generic k-fold parallelisation — "replicating the basic multiplier and
    multiplexing data across them" (Section 4 of the paper).

    A one-hot ring counter round-robins operand capture across k copies of a
    combinational core; each copy then has k data periods to settle, which
    is what relaxes the timing constraint (timing_periods = k), at the cost
    of more cells and the output-multiplexing overhead that eventually
    cancels the benefit (Wallace par4 in the paper). *)

val wrap :
  ?expect_cells:int ->
  name:string ->
  bits:int ->
  copies:int ->
  core:
    (Netlist.Circuit.t ->
    a:Netlist.Circuit.net array ->
    b:Netlist.Circuit.net array ->
    Netlist.Circuit.net array) ->
  unit ->
  Spec.t
(** [expect_cells] is the {!Netlist.Circuit.create} capacity hint
    (cells/nets vector pre-allocation) — generator paths that can size the
    replicated array up front pass it; any value is behaviourally
    equivalent. @raise Invalid_argument if [copies < 2]. *)

val ring_counter :
  Netlist.Circuit.t -> length:int -> hot:int -> Netlist.Circuit.net array
(** One-hot ring of [length] flip-flops with position [hot] set at power-up;
    the hot position advances by one every clock tick. *)
