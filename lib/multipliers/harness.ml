module Sim = Logicsim.Simulator
module Bus = Logicsim.Bus
module Compiled = Logicsim.Compiled

(* Compile each spec's netlist to the flat-array form once and stamp out
   simulator instances from it — repeated measurements (benchmark
   iterations, pool tasks) skip the well-formedness check and the lowering.
   Keyed by spec name with a physical-identity check on the circuit so a
   rebuilt spec never reuses a stale compilation; the mutex keeps the table
   safe under [Parallel.Pool]. *)
let static_cache : (string, Compiled.static) Hashtbl.t = Hashtbl.create 16
let static_cache_mutex = Mutex.create ()

let compiled_static (spec : Spec.t) =
  Mutex.protect static_cache_mutex (fun () ->
      match Hashtbl.find_opt static_cache spec.name with
      | Some st when st.Compiled.circuit == spec.circuit -> st
      | Some _ | None ->
        Netlist.Check.assert_well_formed spec.circuit;
        let st = Compiled.compile spec.circuit in
        Hashtbl.replace static_cache spec.name st;
        st)

let fresh_simulator (spec : Spec.t) = Sim.of_static (compiled_static spec)

let compute (spec : Spec.t) sim x y =
  Bus.drive sim spec.a_bus x;
  Bus.drive sim spec.b_bus y;
  Sim.settle sim;
  for _ = 1 to spec.latency_ticks do
    Sim.clock_tick sim;
    Sim.settle sim
  done;
  Bus.read_exn sim spec.p_bus

let check_pairs (spec : Spec.t) pairs =
  let sim = fresh_simulator spec in
  List.filter_map
    (fun (x, y) ->
      let got = compute spec sim x y in
      let expected = x * y in
      if got = expected then None else Some (x, y, expected, got))
    pairs

let check_random ?(seed = 42) (spec : Spec.t) ~samples =
  let rng = Numerics.Rng.create seed in
  let bound = 1 lsl spec.bits in
  let pairs =
    List.init samples (fun _ ->
        (Numerics.Rng.int rng bound, Numerics.Rng.int rng bound))
  in
  check_pairs spec pairs

let check_corners (spec : Spec.t) =
  let top = (1 lsl spec.bits) - 1 in
  let alternating = 0x5555 land top and alternating' = 0xAAAA land top in
  let values = [ 0; 1; top; alternating; alternating' ] in
  let pairs =
    List.concat_map (fun x -> List.map (fun y -> (x, y)) values) values
  in
  check_pairs spec pairs

type measured = {
  activity : float;
  glitch_ratio : float;
  toggles_per_cycle : float;
}

let measure_activity ?(seed = 7) ?(cycles = 160) (spec : Spec.t) =
  Obs.Span.with_ ~name:"sim.activity" ~attrs:[ ("arch", spec.name) ]
  @@ fun () ->
  let sim = fresh_simulator spec in
  let rng = Numerics.Rng.create seed in
  let drive =
    Logicsim.Activity.random_drive ~rng ~buses:[ spec.a_bus; spec.b_bus ]
  in
  let result =
    Logicsim.Activity.measure ~warmup:6
      ~ticks_per_cycle:spec.ticks_per_cycle ~cycles ~drive sim
  in
  {
    activity = result.activity;
    glitch_ratio = result.glitch_ratio;
    toggles_per_cycle = result.toggles_per_cycle;
  }

let measure_activity_many ?seed ?cycles specs =
  (* One simulator (and one stimulus generator, seeded per spec exactly as
     in the sequential path) per task: the simulator stays single-owner and
     the per-spec result is identical to a sequential [measure_activity]
     call whatever the pool size. *)
  Parallel.Pool.map (fun spec -> measure_activity ?seed ?cycles spec) specs
