module C = Netlist.Circuit

type cut = Horizontal | Diagonal

let register_bus circuit bus = Array.map (fun n -> C.add_dff circuit n) bus

let io_frame ~name ~bits build_core =
  let cells = Registered.array_cells ~bits in
  let circuit =
    C.create ~expect_cells:cells ~expect_nets:((2 * cells) + (2 * bits)) name
  in
  let a_bus = C.add_input_bus circuit "a" bits in
  let b_bus = C.add_input_bus circuit "b" bits in
  let a = register_bus circuit a_bus in
  let b = register_bus circuit b_bus in
  let product, extra_latency = build_core circuit ~a ~b in
  let p = register_bus circuit product in
  C.mark_output_bus circuit p "p";
  (circuit, a_bus, b_bus, p, extra_latency)

let core circuit ~a ~b = (Array_core.build circuit ~a ~b).product

let basic ~bits =
  Registered.build ~expect_cells:(Registered.array_cells ~bits)
    ~name:"rca_basic" ~label:"RCA" ~bits ~core ()

(* Cut metric: a scalar per grid cell that never decreases along signal
   flow. Horizontal cuts use the row index (the merge row counts as row
   [bits] and cannot be split); diagonal cuts use d = 2*row + col, which
   strictly increases along sum, carry and merge-ripple edges alike and so
   slices the merge ripple too — the shorter logical depth, at the price of
   a wider spread of path delays (more glitching), exactly the trade-off
   the paper describes. *)
let cut_metric ~cut ~bits (row, col) =
  match cut with
  | Horizontal -> row
  | Diagonal ->
    (* Anti-diagonal cut. Weights make the metric advance roughly in
       proportion to delay along every edge class: sum edges
       (row+1, col-1) advance 4, carry edges (row+1, col) advance 3, and
       the merge ripple advances 3 per cell — so thresholds slice sum
       chains, carry chains and the final ripple alike (Figure 4). *)
    if row = bits then (4 * bits) - 1 + (3 * col)
    else (3 * row) - col + bits - 1

let max_metric ~cut ~bits =
  match cut with Horizontal -> bits | Diagonal -> (7 * bits) - 4

let stage_of_metric thresholds m =
  Array.fold_left (fun acc t -> if m >= t then acc + 1 else acc) 0 thresholds

let cut_name = function Horizontal -> "hor.pipe" | Diagonal -> "diagpipe"

let build_pipelined ~bits ~stages ~cut ~thresholds =
  let name = Printf.sprintf "rca_%s%d" (cut_name cut) stages in
  io_frame ~name ~bits (fun circuit ~a ~b ->
      let array = Array_core.build circuit ~a ~b in
      let stage_of_cell id =
        Option.map
          (fun coords -> stage_of_metric thresholds (cut_metric ~cut ~bits coords))
          (Hashtbl.find_opt array.coords id)
      in
      let delayed =
        Pipeliner.insert circuit ~stage_of_cell ~max_stage:(stages - 1)
          ~outputs:array.product
      in
      (delayed, stages - 1))

(* The stage boundaries are chosen by coordinate descent on the measured
   STA depth — mirroring how a synthesis tool would retime the register
   banks to balance the stages. Deterministic and cheap (each candidate is
   a few hundred cells). *)
let optimize_thresholds ~bits ~stages ~cut =
  let top = max_metric ~cut ~bits in
  let depth thresholds =
    let circuit, _, _, _, _ = build_pipelined ~bits ~stages ~cut ~thresholds in
    Netlist.Timing.logical_depth circuit
  in
  let valid thresholds =
    let sorted = Array.copy thresholds in
    Array.sort compare sorted;
    sorted = thresholds
    && Array.for_all (fun t -> t >= 1 && t <= top) thresholds
  in
  let current =
    Array.init (stages - 1) (fun i -> (i + 1) * (top + 1) / stages)
  in
  let best = ref (Array.copy current) in
  let best_depth = ref (depth current) in
  (* A single boundary is cheap enough to scan exhaustively. *)
  if stages = 2 then
    for t = 1 to top do
      let candidate = [| t |] in
      let d = depth candidate in
      if d < !best_depth -. 1e-9 then begin
        best := candidate;
        best_depth := d
      end
    done;
  let steps = [ 8; 4; 2; 1 ] in
  List.iter
    (fun step ->
      let improved = ref true in
      while !improved do
        improved := false;
        for i = 0 to stages - 2 do
          List.iter
            (fun delta ->
              let candidate = Array.copy !best in
              candidate.(i) <- candidate.(i) + delta;
              if valid candidate then begin
                let d = depth candidate in
                if d < !best_depth -. 1e-9 then begin
                  best := candidate;
                  best_depth := d;
                  improved := true
                end
              end)
            [ step; -step ]
        done
      done)
    steps;
  !best

let cut_preview ~bits ~stages ~cut =
  let thresholds = optimize_thresholds ~bits ~stages ~cut in
  Array.init (bits + 1) (fun row ->
      Array.init bits (fun col ->
          stage_of_metric thresholds (cut_metric ~cut ~bits (row, col))))

let pipelined ~bits ~stages ~cut =
  if stages < 2 then invalid_arg "Rca.pipelined: stages < 2";
  if stages > bits then invalid_arg "Rca.pipelined: stages > bits";
  let thresholds = optimize_thresholds ~bits ~stages ~cut in
  let circuit, a_bus, b_bus, p_bus, _ =
    build_pipelined ~bits ~stages ~cut ~thresholds
  in
  {
    Spec.name = Printf.sprintf "RCA %s%d" (cut_name cut) stages;
    style = Spec.Pipelined stages;
    circuit;
    bits;
    a_bus;
    b_bus;
    p_bus;
    latency_ticks = 2 + stages;
    ticks_per_cycle = 1;
    timing_periods = 1.0;
  }
