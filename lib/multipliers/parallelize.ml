module C = Netlist.Circuit
module Cell = Netlist.Cell

let ring_counter circuit ~length ~hot =
  if length < 2 then invalid_arg "Parallelize.ring_counter: length < 2";
  if hot < 0 || hot >= length then
    invalid_arg "Parallelize.ring_counter: hot out of range";
  (* Build the loop by creating flip-flops first, then closing the cycle
     with a rewire of position 0's D input. *)
  let seed = C.tie0 circuit in
  let phases = Array.make length seed in
  for i = 0 to length - 1 do
    let d = if i = 0 then seed else phases.(i - 1) in
    let init = if i = hot then Netlist.Logic.One else Netlist.Logic.Zero in
    phases.(i) <- C.add_dff ~init circuit d
  done;
  (match C.driver circuit phases.(0) with
  | Some (id, _) -> C.rewire_input circuit id 0 phases.(length - 1)
  | None -> assert false);
  phases

let loadable_register circuit ~load ~input =
  (* Q holds unless [load] is high, in which case it captures [input]. *)
  let q_placeholder = C.tie0 circuit in
  let mux = C.add_gate circuit Cell.Mux2 [| q_placeholder; input; load |] in
  let q = C.add_dff circuit mux in
  (match C.driver circuit mux with
  | Some (id, _) -> C.rewire_input circuit id 0 q
  | None -> assert false);
  q

let one_hot_mux circuit ~selects ~buses =
  let copies = Array.length buses in
  assert (copies = Array.length selects && copies > 0);
  let width = Array.length buses.(0) in
  Array.init width (fun i ->
      let gated =
        Array.to_list
          (Array.init copies (fun c ->
               C.add_gate circuit Cell.And2 [| buses.(c).(i); selects.(c) |]))
      in
      match gated with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun acc n -> C.add_gate circuit Cell.Or2 [| acc; n |])
          first rest)

let wrap ?expect_cells ~name ~bits ~copies ~core () =
  if copies < 2 then invalid_arg "Parallelize.wrap: copies < 2";
  let circuit =
    match expect_cells with
    | None -> C.create name
    | Some cells ->
      C.create ~expect_cells:cells ~expect_nets:((2 * cells) + (2 * bits)) name
  in
  let a_bus = C.add_input_bus circuit "a" bits in
  let b_bus = C.add_input_bus circuit "b" bits in
  let phases = ring_counter circuit ~length:copies ~hot:0 in
  let products =
    Array.init copies (fun c ->
        let load = phases.(c) in
        let a = Array.map (fun n -> loadable_register circuit ~load ~input:n) a_bus in
        let b = Array.map (fun n -> loadable_register circuit ~load ~input:n) b_bus in
        core circuit ~a ~b)
  in
  (* A copy is consumed during the same cycle its reload phase is hot: the
     operands it captured k cycles ago have had the full k periods. *)
  let merged = one_hot_mux circuit ~selects:phases ~buses:products in
  let p_bus = Array.map (fun n -> C.add_dff circuit n) merged in
  C.mark_output_bus circuit p_bus "p";
  {
    Spec.name;
    style = Spec.Replicated copies;
    circuit;
    bits;
    a_bus;
    b_bus;
    p_bus;
    latency_ticks = (2 * copies) + 3;
    ticks_per_cycle = 1;
    timing_periods = float_of_int copies;
  }
