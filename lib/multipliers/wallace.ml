module C = Netlist.Circuit
module Cell = Netlist.Cell

let finish_columns circuit columns width =
  let reduced = Adders.reduce_to_two circuit columns in
  let pick i = function
    | [] -> (None, None)
    | [ x ] -> (x, None)
    | [ x; y ] -> (x, y)
    | _ -> invalid_arg (Printf.sprintf "Wallace: column %d not reduced" i)
  in
  let row_a = Array.make width None and row_b = Array.make width None in
  Array.iteri
    (fun i column ->
      let x, y = pick i column in
      row_a.(i) <- x;
      row_b.(i) <- y)
    reduced;
  let solid = function Some n -> n | None -> C.tie0 circuit in
  Adders.sklansky circuit (Array.map solid row_a) (Array.map solid row_b)

let reduce_rows circuit ~rows ~width =
  let columns = Array.make width [] in
  List.iter
    (fun (bits, shift) ->
      Array.iteri
        (fun i bit ->
          match bit with
          | None -> ()
          | Some _ ->
            let p = i + shift in
            if p >= width then
              invalid_arg "Wallace.reduce_rows: row exceeds width";
            columns.(p) <- bit :: columns.(p))
        bits)
    rows;
  finish_columns circuit columns width

let core circuit ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Wallace.core: operand width mismatch";
  let out_width = 2 * width in
  let columns = Array.make out_width [] in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      let pp = C.add_gate circuit Cell.And2 [| a.(j); b.(i) |] in
      columns.(i + j) <- Some pp :: columns.(i + j)
    done
  done;
  finish_columns circuit columns out_width

let basic ~bits =
  Registered.build ~expect_cells:(Registered.array_cells ~bits)
    ~name:"wallace_basic" ~label:"Wallace" ~bits ~core ()

let pipelined ~bits ~stages =
  if stages < 2 then invalid_arg "Wallace.pipelined: stages < 2";
  let spec =
    Registered.build
      ~expect_cells:(Registered.array_cells ~bits + (2 * stages * bits))
      ~name:(Printf.sprintf "wallace_pipe%d" stages)
      ~label:(Printf.sprintf "Wallace pipe%d" stages)
      ~bits
      ~core:(fun circuit ~a ~b ->
        Pipeliner.by_depth circuit ~stages ~outputs:(core circuit ~a ~b))
      ()
  in
  {
    spec with
    Spec.style = Spec.Pipelined stages;
    latency_ticks = 2 + stages;
  }
