module C = Netlist.Circuit
module Cell = Netlist.Cell

let heights limit =
  let rec grow h acc =
    let next = int_of_float (Float.floor (1.5 *. float_of_int h)) in
    if h >= limit then acc else grow next (h :: acc)
  in
  grow 2 []

(* One Dadda stage: compress every column to at most [target] bits, using
   the minimum number of adders (full adders first, a half adder only when
   one step short). Carries ripple into the next column within the same
   stage, as in Dadda's original formulation. *)
let reduce_to_height circuit target columns =
  let width = Array.length columns in
  let result = Array.make width [] in
  let incoming = Array.make (width + 1) [] in
  for p = 0 to width - 1 do
    let bits = List.filter_map Fun.id columns.(p) @ incoming.(p) in
    let rec compress bits =
      let n = List.length bits in
      if n <= target then
        result.(p) <- List.map (fun b -> Some b) bits
      else begin
        match bits with
        | x :: y :: z :: rest when n >= target + 2 ->
          (* A full adder removes two bits from this column. *)
          (match C.add_cell circuit Cell.Full_adder [| x; y; z |] with
          | [| sum; carry |] ->
            incoming.(p + 1) <- carry :: incoming.(p + 1);
            compress (sum :: rest)
          | _ -> assert false)
        | x :: y :: rest ->
          (* One bit over target: a half adder suffices. *)
          (match C.add_cell circuit Cell.Half_adder [| x; y |] with
          | [| sum; carry |] ->
            incoming.(p + 1) <- carry :: incoming.(p + 1);
            compress (sum :: rest)
          | _ -> assert false)
        | [ _ ] | [] -> result.(p) <- List.map (fun b -> Some b) bits
      end
    in
    compress bits
  done;
  if incoming.(width) <> [] then
    invalid_arg "Dadda.reduce_to_height: carry out of the top column";
  result

let core circuit ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Dadda.core: operand width mismatch";
  let out_width = 2 * width in
  let columns = Array.make out_width [] in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      let pp = C.add_gate circuit Cell.And2 [| a.(j); b.(i) |] in
      columns.(i + j) <- Some pp :: columns.(i + j)
    done
  done;
  let reduced =
    List.fold_left
      (fun cols target -> reduce_to_height circuit target cols)
      columns (heights width)
  in
  let row_a = Array.make out_width None and row_b = Array.make out_width None in
  Array.iteri
    (fun i column ->
      match column with
      | [] -> ()
      | [ x ] -> row_a.(i) <- x
      | [ x; y ] ->
        row_a.(i) <- x;
        row_b.(i) <- y
      | _ -> invalid_arg "Dadda.core: reduction incomplete")
    reduced;
  let solid = function Some n -> n | None -> C.tie0 circuit in
  Adders.sklansky circuit (Array.map solid row_a) (Array.map solid row_b)

let basic ~bits =
  Registered.build ~expect_cells:(Registered.array_cells ~bits)
    ~name:"dadda_basic" ~label:"Dadda" ~bits ~core ()
