(** Reference event-driven gate-level simulator (boxed representation).

    The original record-and-list kernel, kept as the semantic oracle for the
    compiled kernel: the differential suite holds {!Compiled} (and the
    bit-parallel engine) bitwise equal to this implementation — settled
    values, per-cell toggle counts, committed-event counts and glitch
    ratios. Production paths go through {!Simulator} (the compiled kernel);
    nothing outside the tests should need this module.

    Toggle accounting: a committed 0↔1 transition on a cell's output
    increments that cell's counter (X resolutions are not counted). The
    inertial model cancels a pending transition when a newer evaluation
    reverts it before it commits — pulses shorter than the gate delay are
    swallowed, longer ones propagate as glitches. *)

type t

val create : Netlist.Circuit.t -> t
(** Builds simulation state, initialises ties and flip-flop power-up values
    and settles. @raise Failure on a malformed circuit
    (see {!Netlist.Check}). *)

val circuit : t -> Netlist.Circuit.t
val now : t -> float

val value : t -> Netlist.Circuit.net -> Netlist.Logic.value

val set_input : t -> Netlist.Circuit.net -> Netlist.Logic.value -> unit
(** Schedule a primary-input change at the current time.
    @raise Invalid_argument if the net is not a primary input. *)

val settle : ?event_limit:int -> t -> unit
(** Run the event loop until quiescent; advances [now] past the last event.
    @raise Failure if [event_limit] (default 10 million) is exceeded —
    indicates oscillation. *)

val clock_tick : t -> unit
(** Synchronous clock edge: samples every flip-flop's D simultaneously and
    schedules Q updates after the clk→q delay, iterating a flip-flop list
    precomputed at {!create} (the historical implementation re-filtered
    every cell on every tick). Call {!settle} afterwards. *)

val cell_toggles : t -> int array
(** Per-cell committed toggle counts since the last reset. *)

val total_toggles : t -> int
val reset_toggles : t -> unit

val snapshot_values : t -> Netlist.Logic.value array
(** Copy of all net values (for per-cycle glitch accounting). *)

val events_processed : t -> int
(** Committed events since creation (monotonic; not reset by
    {!reset_toggles}). *)
