module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic

type event = { net : C.net; target : Logic.value; serial : int }

(* Flushed once per [settle] from per-call deltas, so the event loop itself
   carries no instrumentation at all and the disabled cost is a single
   branch per settle. The names resolve to the same Obs counters as the
   compiled kernel's — whichever kernel runs, the counts mean the same. *)
let c_events = Obs.Counter.make "sim.events"
let c_gate_evals = Obs.Counter.make "sim.gate_evals"
let c_settles = Obs.Counter.make "sim.settles"

type t = {
  circuit : C.t;
  fanout : (C.cell_id * int) list array;
  dffs : C.cell array;
      (* sequential cells in descending id order — the order the historical
         per-tick prepend-built list produced, so queue tie-breaks are
         unchanged *)
  dff_samples : Logic.value array;  (* pre-edge D values, reused per tick *)
  values : Logic.value array;
  pending : Logic.value option array;
  serials : int array;
  toggles : int array;  (* per cell *)
  queue : event Event_queue.t;
  mutable time : float;
  mutable committed : int;
  mutable total : int;
  mutable evals : int;  (* gate evaluations, like [committed] for events *)
}

let circuit t = t.circuit
let now t = t.time
let value t net = t.values.(net)
let cell_toggles t = Array.copy t.toggles
let total_toggles t = t.total
let reset_toggles t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  t.total <- 0

let snapshot_values t = Array.copy t.values
let events_processed t = t.committed

(* Schedule a transition of [net] to [target] at [time], superseding any
   pending transition (inertial delay). *)
let schedule t ~time net target =
  let projected =
    match t.pending.(net) with Some v -> v | None -> t.values.(net)
  in
  if not (Logic.equal target projected) then begin
    t.serials.(net) <- t.serials.(net) + 1;
    if Logic.equal target t.values.(net) then
      (* The pulse is reverted before committing: swallow it. *)
      t.pending.(net) <- None
    else begin
      t.pending.(net) <- Some target;
      Event_queue.push t.queue ~time
        { net; target; serial = t.serials.(net) }
    end
  end

let evaluate_cell t ~time (cell : C.cell) =
  t.evals <- t.evals + 1;
  let inputs = Array.map (fun n -> t.values.(n)) cell.inputs in
  let outputs = Cell.eval cell.kind inputs in
  Array.iteri
    (fun o net ->
      let delay = Cell.delay cell.kind ~output:o in
      schedule t ~time:(time +. delay) net outputs.(o))
    cell.outputs

let commit t ~time event =
  let old_value = t.values.(event.net) in
  t.values.(event.net) <- event.target;
  t.pending.(event.net) <- None;
  t.committed <- t.committed + 1;
  (* Count a real 0<->1 toggle against the driving cell. *)
  (match (old_value, event.target) with
  | Logic.Zero, Logic.One | Logic.One, Logic.Zero -> begin
    match C.driver t.circuit event.net with
    | Some (id, _) ->
      t.toggles.(id) <- t.toggles.(id) + 1;
      t.total <- t.total + 1
    | None -> ()
  end
  | (Logic.Zero | Logic.One | Logic.X), _ -> ());
  List.iter
    (fun (reader, _) ->
      let cell = C.get_cell t.circuit reader in
      if not (Cell.is_sequential cell.kind) then
        evaluate_cell t ~time cell)
    t.fanout.(event.net)

let settle ?(event_limit = 10_000_000) t =
  let committed0 = t.committed and evals0 = t.evals in
  let processed = ref 0 in
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> ()
    | Some (time, event) ->
      if event.serial = t.serials.(event.net) && t.pending.(event.net) <> None
      then begin
        incr processed;
        if !processed > event_limit then
          failwith "Simulator.settle: event limit exceeded (oscillation?)";
        t.time <- Float.max t.time time;
        commit t ~time event
      end;
      loop ()
  in
  loop ();
  if Obs.enabled () then begin
    Obs.Counter.incr c_settles;
    Obs.Counter.add c_events (t.committed - committed0);
    Obs.Counter.add c_gate_evals (t.evals - evals0)
  end

let set_input t net v =
  if not (C.is_primary_input t.circuit net) then
    invalid_arg "Simulator.set_input: not a primary input";
  schedule t ~time:t.time net v

let clock_tick t =
  (* Sample every D simultaneously against pre-edge values, then launch Q.
     The flip-flop list is precomputed at [create] instead of re-filtering
     every cell of the circuit on every tick. *)
  let n = Array.length t.dffs in
  for k = 0 to n - 1 do
    t.dff_samples.(k) <- t.values.(t.dffs.(k).inputs.(0))
  done;
  for k = 0 to n - 1 do
    schedule t ~time:(t.time +. Cell.clk_to_q) t.dffs.(k).outputs.(0)
      t.dff_samples.(k)
  done

let create circuit =
  Netlist.Check.assert_well_formed circuit;
  let nets = C.net_count circuit in
  let dffs =
    (* Prepending over the ascending cell iteration yields descending id
       order — the order the per-tick list historically produced. *)
    let acc = ref [] in
    C.iter_cells
      (fun cell -> if Cell.is_sequential cell.kind then acc := cell :: !acc)
      circuit;
    Array.of_list !acc
  in
  let t =
    {
      circuit;
      fanout = C.fanout circuit;
      dffs;
      dff_samples = Array.make (Array.length dffs) Logic.X;
      values = Array.make nets Logic.X;
      pending = Array.make nets None;
      serials = Array.make nets 0;
      toggles = Array.make (C.cell_count circuit) 0;
      queue = Event_queue.create ();
      time = 0.0;
      committed = 0;
      total = 0;
      evals = 0;
    }
  in
  (* Power-up: ties drive their constants, flip-flops take their init
     values; everything else resolves from there. *)
  C.iter_cells
    (fun cell ->
      match cell.kind with
      | Cell.Tie0 -> schedule t ~time:0.0 cell.outputs.(0) Logic.Zero
      | Cell.Tie1 -> schedule t ~time:0.0 cell.outputs.(0) Logic.One
      | Cell.Dff ->
        schedule t ~time:0.0 cell.outputs.(0) (C.dff_init circuit cell.id)
      | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
      | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder
      | Cell.Full_adder ->
        ())
    circuit;
  settle t;
  reset_toggles t;
  t
