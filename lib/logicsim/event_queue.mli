(** Priority queue of scheduled net transitions (binary min-heap).

    Ties in time are broken by insertion order, making simulation
    deterministic. Cancellation (inertial-delay behaviour) is handled by the
    simulator via serial numbers; the queue itself only orders events.

    Stored as struct-of-arrays — times in a flat [float array], insertion
    orders in an [int array] — so a push allocates nothing beyond occasional
    capacity doubling. {!Unboxed_heap} is the fully unboxed (int-payload)
    variant the compiled kernel schedules through; this polymorphic form
    backs the reference simulator and anything that needs boxed payloads. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Earliest event, [None] when empty. *)

val peek_time : 'a t -> float option
