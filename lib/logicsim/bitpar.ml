module Logic = Netlist.Logic

(* Two planes per net: bit L of [hi] says lane L holds One, bit L of [xx]
   says it holds X (invariant: [hi land xx = 0]; both clear means Zero).
   Every gate then becomes a handful of word ops evaluating all 63 lanes
   at once. OCaml ints carry 63 bits; the sign bit is lane 62, which is
   harmless — everything here is bitwise. *)

let lanes = 63

type t = {
  kind : int array;
  in_off : int array;
  in_net : int array;
  out_off : int array;
  out_net : int array;
  driver : int array;
  dffs : int array;
  init_net : int array;
  init_code : int array;
  topo : int array;
  hi : int array;  (* per net: lane holds One *)
  xx : int array;  (* per net: lane holds X *)
  dff_d_hi : int array;  (* pre-edge D samples, reused per tick *)
  dff_d_xx : int array;
}

let reset t =
  Array.fill t.hi 0 (Array.length t.hi) 0;
  Array.fill t.xx 0 (Array.length t.xx) (-1);
  for i = 0 to Array.length t.init_net - 1 do
    let net = t.init_net.(i) in
    match t.init_code.(i) with
    | 0 ->
      t.hi.(net) <- 0;
      t.xx.(net) <- 0
    | 1 ->
      t.hi.(net) <- -1;
      t.xx.(net) <- 0
    | _ -> ()  (* X is the fill value already *)
  done

let create (st : Compiled.static) =
  let n_dffs = Array.length st.Compiled.dffs in
  let t =
    {
      kind = st.Compiled.kind;
      in_off = st.Compiled.in_off;
      in_net = st.Compiled.in_net;
      out_off = st.Compiled.out_off;
      out_net = st.Compiled.out_net;
      driver = st.Compiled.driver;
      dffs = st.Compiled.dffs;
      init_net = st.Compiled.init_net;
      init_code = st.Compiled.init_code;
      topo = Lazy.force st.Compiled.topo;
      hi = Array.make st.Compiled.n_nets 0;
      xx = Array.make st.Compiled.n_nets 0;
      dff_d_hi = Array.make n_dffs 0;
      dff_d_xx = Array.make n_dffs 0;
    }
  in
  reset t;
  t

let check_lane fn lane =
  if lane < 0 || lane >= lanes then
    invalid_arg (Printf.sprintf "Bitpar.%s: lane %d out of range" fn lane)

let set_input t ~net ~lane v =
  check_lane "set_input" lane;
  if net < 0 || net >= Array.length t.hi || t.driver.(net) >= 0 then
    invalid_arg "Bitpar.set_input: not a primary input";
  let m = 1 lsl lane in
  let keep = lnot m in
  match v with
  | Logic.Zero ->
    t.hi.(net) <- t.hi.(net) land keep;
    t.xx.(net) <- t.xx.(net) land keep
  | Logic.One ->
    t.hi.(net) <- t.hi.(net) lor m;
    t.xx.(net) <- t.xx.(net) land keep
  | Logic.X ->
    t.hi.(net) <- t.hi.(net) land keep;
    t.xx.(net) <- t.xx.(net) lor m

let set_input_all_lanes t ~net v =
  if net < 0 || net >= Array.length t.hi || t.driver.(net) >= 0 then
    invalid_arg "Bitpar.set_input_all_lanes: not a primary input";
  match v with
  | Logic.Zero ->
    t.hi.(net) <- 0;
    t.xx.(net) <- 0
  | Logic.One ->
    t.hi.(net) <- -1;
    t.xx.(net) <- 0
  | Logic.X ->
    t.hi.(net) <- 0;
    t.xx.(net) <- -1

let copy_lane t ~src ~dst =
  check_lane "copy_lane" src;
  check_lane "copy_lane" dst;
  (* Combinational nets get recomputed by the next [run], so copying every
     net is both simplest and correct. *)
  let ms = 1 lsl src and md = 1 lsl dst in
  let keep = lnot md in
  for net = 0 to Array.length t.hi - 1 do
    let h = t.hi.(net) and x = t.xx.(net) in
    t.hi.(net) <- (h land keep) lor (if h land ms <> 0 then md else 0);
    t.xx.(net) <- (x land keep) lor (if x land ms <> 0 then md else 0)
  done

let copy_state t ~into =
  let n = Array.length t.hi in
  if Array.length into.hi <> n then
    invalid_arg "Bitpar.copy_state: different circuits";
  Array.blit t.hi 0 into.hi 0 n;
  Array.blit t.xx 0 into.xx 0 n

let run ?force t =
  let fnet, f_hi, f_xx =
    match force with
    | None -> (-1, 0, 0)
    | Some (net, Logic.Zero) -> (net, 0, 0)
    | Some (net, Logic.One) -> (net, -1, 0)
    | Some (net, Logic.X) -> (net, 0, -1)
  in
  let hi = t.hi and xx = t.xx in
  if fnet >= 0 then begin
    hi.(fnet) <- f_hi;
    xx.(fnet) <- f_xx
  end;
  let kind = t.kind
  and in_off = t.in_off
  and in_net = t.in_net
  and out_off = t.out_off
  and out_net = t.out_net
  and topo = t.topo in
  for k = 0 to Array.length topo - 1 do
    let id = Array.unsafe_get topo k in
    let io = Array.unsafe_get in_off id and oo = Array.unsafe_get out_off id in
    let set o oh ox =
      let net = Array.unsafe_get out_net (oo + o) in
      if net = fnet then begin
        (* Stuck-at clamp: the fault overrides whatever the driver says. *)
        Array.unsafe_set hi net f_hi;
        Array.unsafe_set xx net f_xx
      end
      else begin
        Array.unsafe_set hi net oh;
        Array.unsafe_set xx net ox
      end
    in
    let ih i = Array.unsafe_get hi (Array.unsafe_get in_net (io + i))
    and ix i = Array.unsafe_get xx (Array.unsafe_get in_net (io + i)) in
    (* A lane's output is known One where the inputs force One ([ones]),
       known Zero where they force Zero ([zeros]), X everywhere else. *)
    match Array.unsafe_get kind id with
    | 2 (* Inv *) ->
      let h = ih 0 and x = ix 0 in
      set 0 (lnot (h lor x)) x
    | 3 (* Buf *) -> set 0 (ih 0) (ix 0)
    | 4 (* Nand2 *) ->
      let ph = ih 0 and px = ix 0 and qh = ih 1 and qx = ix 1 in
      let ones = ph land qh in
      let zeros = lnot (ph lor px) lor lnot (qh lor qx) in
      set 0 zeros (lnot (ones lor zeros))
    | 5 (* Nor2 *) ->
      let ph = ih 0 and px = ix 0 and qh = ih 1 and qx = ix 1 in
      let ones = ph lor qh in
      let zeros = lnot (ph lor px) land lnot (qh lor qx) in
      set 0 zeros (lnot (ones lor zeros))
    | 6 (* And2 *) ->
      let ph = ih 0 and px = ix 0 and qh = ih 1 and qx = ix 1 in
      let ones = ph land qh in
      let zeros = lnot (ph lor px) lor lnot (qh lor qx) in
      set 0 ones (lnot (ones lor zeros))
    | 7 (* Or2 *) ->
      let ph = ih 0 and px = ix 0 and qh = ih 1 and qx = ix 1 in
      let ones = ph lor qh in
      let zeros = lnot (ph lor px) land lnot (qh lor qx) in
      set 0 ones (lnot (ones lor zeros))
    | 8 (* Xor2 *) ->
      let xs = ix 0 lor ix 1 in
      set 0 ((ih 0 lxor ih 1) land lnot xs) xs
    | 9 (* Xnor2 *) ->
      let xs = ix 0 lor ix 1 in
      set 0 (lnot (ih 0 lxor ih 1) land lnot xs) xs
    | 10 (* Mux2: inputs d0; d1; sel *) ->
      let d0h = ih 0 and d0x = ix 0 and d1h = ih 1 and d1x = ix 1 in
      let sh = ih 2 and sx = ix 2 in
      let selk0 = lnot (sh lor sx) in
      let agree1 = d0h land d1h in
      let agree0 = lnot (d0h lor d0x) land lnot (d1h lor d1x) in
      set 0
        ((sh land d1h) lor (selk0 land d0h) lor (sx land agree1))
        ((sh land d1x) lor (selk0 land d0x)
        lor (sx land lnot (agree1 lor agree0)))
    | 11 (* Half_adder *) ->
      let ah = ih 0 and ax = ix 0 and bh = ih 1 and bx = ix 1 in
      let xs = ax lor bx in
      set 0 ((ah lxor bh) land lnot xs) xs;
      let ones = ah land bh in
      let zeros = lnot (ah lor ax) lor lnot (bh lor bx) in
      set 1 ones (lnot (ones lor zeros))
    | 12 (* Full_adder *) ->
      let ah = ih 0 and ax = ix 0 and bh = ih 1 and bx = ix 1 in
      let ch = ih 2 and cx = ix 2 in
      let xs = ax lor bx lor cx in
      set 0 ((ah lxor bh lxor ch) land lnot xs) xs;
      (* Majority: known as soon as two inputs agree. *)
      let ones = (ah land bh) lor (ah land ch) lor (bh land ch) in
      let az = lnot (ah lor ax)
      and bz = lnot (bh lor bx)
      and cz = lnot (ch lor cx) in
      let zeros = (az land bz) lor (az land cz) lor (bz land cz) in
      set 1 ones (lnot (ones lor zeros))
    | _ (* ties and flip-flops are state, never in the topo order *) -> ()
  done

let clock_tick t =
  let n = Array.length t.dffs in
  for k = 0 to n - 1 do
    let id = t.dffs.(k) in
    let d = t.in_net.(t.in_off.(id)) in
    t.dff_d_hi.(k) <- t.hi.(d);
    t.dff_d_xx.(k) <- t.xx.(d)
  done;
  for k = 0 to n - 1 do
    let id = t.dffs.(k) in
    let q = t.out_net.(t.out_off.(id)) in
    t.hi.(q) <- t.dff_d_hi.(k);
    t.xx.(q) <- t.dff_d_xx.(k)
  done

let value t ~net ~lane =
  check_lane "value" lane;
  let m = 1 lsl lane in
  if t.xx.(net) land m <> 0 then Logic.X
  else if t.hi.(net) land m <> 0 then Logic.One
  else Logic.Zero

(* SWAR popcount constants exceed OCaml's 62-bit literal range, so count a
   byte at a time through a 256-entry table: 8 unsafe reads per word, and
   [x lsr 56] covers bits 56..62 including the sign bit. *)
let pop8 =
  let tbl = Bytes.create 256 in
  let rec bits n = if n = 0 then 0 else (n land 1) + bits (n lsr 1) in
  for i = 0 to 255 do
    Bytes.set tbl i (Char.chr (bits i))
  done;
  tbl

let popcount x =
  let p i = Char.code (Bytes.unsafe_get pop8 ((x lsr i) land 255)) in
  p 0 + p 8 + p 16 + p 24 + p 32 + p 40 + p 48 + p 56

let adjacent_necessary t ~pairs =
  if pairs < 0 || pairs >= lanes then
    invalid_arg "Bitpar.adjacent_necessary: pairs out of range";
  let mask = (1 lsl pairs) - 1 in
  let total = ref 0 in
  let hi = t.hi and xx = t.xx and driver = t.driver in
  for net = 0 to Array.length hi - 1 do
    if Array.unsafe_get driver net >= 0 then begin
      let h = Array.unsafe_get hi net and x = Array.unsafe_get xx net in
      (* Pair (L, L+1) counts when the two lanes differ and neither is X. *)
      let d = (h lxor (h lsr 1)) land lnot (x lor (x lsr 1)) land mask in
      if d <> 0 then total := !total + popcount d
    end
  done;
  !total

let lanes_differ t ~other ~outputs ~mask =
  List.exists
    (fun net ->
      ((t.hi.(net) lxor other.hi.(net)) lor (t.xx.(net) lxor other.xx.(net)))
      land mask
      <> 0)
    outputs
