(** 64-way bit-parallel zero-delay evaluation over a compiled circuit.

    Each net carries two machine words — a "one" plane and an "X" plane —
    so one topological pass over the compiled cell array evaluates
    {!lanes} (= 63, the usable bits of an OCaml [int]) independent input
    vectors at once under full three-valued semantics. Per settled vector
    this costs a few dozen word operations for the whole circuit, which is
    what makes necessary-transition counting and fault simulation cheap:

    - {!Activity.measure} packs the settled primary-input values of
      consecutive data cycles into adjacent lanes of one batch; after a
      single {!run}, {!adjacent_necessary} pops the 0↔1 differences
      between neighbouring lanes of every driven net — the per-cycle
      necessary-transition count and the zero-delay activity in one pass,
      with no per-cycle full-circuit scan. Valid for combinational
      circuits, where consecutive cycles are independent (the
      kernel-selection rule of DESIGN.md §10).
    - {!Faults.coverage} puts 63 test vectors in the lanes and compares a
      faulty run against the golden run word-wise.

    Zero-delay settled values agree bitwise with the event-driven kernels'
    quiescent state: on an acyclic circuit the inertial event loop and
    topological propagation reach the same unique fixpoint (the
    differential suite checks this, X-propagation included).

    Flip-flop outputs are state, not combinational functions: lanes evolve
    as 63 {e independent} simulations under {!clock_tick}; consecutive-lane
    tricks like {!adjacent_necessary} are only meaningful when the circuit
    is combinational. *)

type t

val lanes : int
(** 63 — input vectors evaluated per machine word. *)

val create : Compiled.static -> t
(** All lanes at power-up: every net X, ties driven, flip-flops at their
    init values (combinational logic resolves on the first {!run}). *)

val reset : t -> unit
(** Back to the power-up state. *)

val set_input : t -> net:Netlist.Circuit.net -> lane:int -> Netlist.Logic.value -> unit
(** Set one primary input in one lane.
    @raise Invalid_argument on a bad lane or a driven net. *)

val set_input_all_lanes : t -> net:Netlist.Circuit.net -> Netlist.Logic.value -> unit
(** Set one primary input in every lane. *)

val copy_lane : t -> src:int -> dst:int -> unit
(** Copy every primary input (and flip-flop state) from lane [src] to lane
    [dst] — used to seed lane 0 of a batch with the previous batch's last
    cycle. *)

val copy_state : t -> into:t -> unit
(** Copy every net plane from one state into another built over the same
    compilation — how the fault engine restores the golden inputs before
    each faulty pass. @raise Invalid_argument on a net-count mismatch. *)

val run : ?force:Netlist.Circuit.net * Netlist.Logic.value -> t -> unit
(** One zero-delay topological pass over the combinational cells of all
    lanes. [force] clamps a net to a value throughout propagation (after
    its driver writes it), the single-stuck-at fault model. *)

val clock_tick : t -> unit
(** Sample every flip-flop's D (simultaneously, against current values)
    into its Q, in every lane. Call {!run} afterwards. *)

val value : t -> net:Netlist.Circuit.net -> lane:int -> Netlist.Logic.value
(** The value of [net] in [lane] as of the last {!run}. *)

val adjacent_necessary : t -> pairs:int -> int
(** Sum over driven nets of the number of adjacent-lane pairs
    [(0,1) .. (pairs-1, pairs)] whose settled values are both known and
    differ — the necessary-transition total for a batch of [pairs]
    consecutive data cycles whose settled states sit in lanes
    [0 .. pairs]. @raise Invalid_argument unless [0 <= pairs < lanes]. *)

val lanes_differ : t -> other:t -> outputs:Netlist.Circuit.net list -> mask:int -> bool
(** Whether any lane selected by [mask] has a listed output whose
    three-valued value differs between the two states (same compiled
    circuit assumed) — the fault-detection test. *)

val popcount : int -> int
(** Bits set in the 63-bit pattern (sign bit included). *)
