(* The production simulator is the compiled allocation-free kernel; the
   original boxed implementation lives on as [Reference], the oracle the
   differential tests hold this kernel bitwise equal to. *)
include Compiled
