module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic

(* Value codes. 0/1/2 = Zero/One/X; 3 marks "no pending transition" in the
   pending plane. Kind codes follow [code_of_kind] below. *)

let code_of_logic = function Logic.Zero -> 0 | Logic.One -> 1 | Logic.X -> 2
let logic_of_code = function 0 -> Logic.Zero | 1 -> Logic.One | _ -> Logic.X

let code_of_kind = function
  | Cell.Tie0 -> 0
  | Cell.Tie1 -> 1
  | Cell.Inv -> 2
  | Cell.Buf -> 3
  | Cell.Nand2 -> 4
  | Cell.Nor2 -> 5
  | Cell.And2 -> 6
  | Cell.Or2 -> 7
  | Cell.Xor2 -> 8
  | Cell.Xnor2 -> 9
  | Cell.Mux2 -> 10
  | Cell.Half_adder -> 11
  | Cell.Full_adder -> 12
  | Cell.Dff -> 13

type static = {
  circuit : C.t;
  n_nets : int;
  n_cells : int;
  kind : int array;
  in_off : int array;
  in_net : int array;
  out_off : int array;
  out_net : int array;
  out_delay : float array;
  fan_off : int array;
  fan_cell : int array;
  driver : int array;
  dffs : int array;
  dff_init_code : int array;
  init_net : int array;
  init_code : int array;
  pis : int array;
  countable : int;
  topo : int array Lazy.t;
}

let compile circuit =
  let n_cells = C.cell_count circuit in
  let n_nets = C.net_count circuit in
  let kind = Array.make n_cells 0 in
  let in_off = Array.make (n_cells + 1) 0 in
  let out_off = Array.make (n_cells + 1) 0 in
  C.iter_cells
    (fun cell ->
      kind.(cell.id) <- code_of_kind cell.kind;
      in_off.(cell.id + 1) <- Array.length cell.inputs;
      out_off.(cell.id + 1) <- Array.length cell.outputs)
    circuit;
  for i = 1 to n_cells do
    in_off.(i) <- in_off.(i) + in_off.(i - 1);
    out_off.(i) <- out_off.(i) + out_off.(i - 1)
  done;
  let in_net = Array.make in_off.(n_cells) 0 in
  let out_net = Array.make out_off.(n_cells) 0 in
  let out_delay = Array.make out_off.(n_cells) 0.0 in
  let driver = Array.make n_nets (-1) in
  C.iter_cells
    (fun cell ->
      Array.iteri
        (fun i n -> in_net.(in_off.(cell.id) + i) <- n)
        cell.inputs;
      Array.iteri
        (fun o n ->
          out_net.(out_off.(cell.id) + o) <- n;
          out_delay.(out_off.(cell.id) + o) <- Cell.delay cell.kind ~output:o;
          driver.(n) <- cell.id)
        cell.outputs)
    circuit;
  (* Combinational fanout in the exact reader order (and multiplicity) of
     [Circuit.fanout] — the commit loop must evaluate readers in the same
     sequence as the reference kernel for serial numbers and queue
     tie-breaks to line up bitwise. *)
  let raw_fanout = C.fanout circuit in
  let fan_off = Array.make (n_nets + 1) 0 in
  for n = 0 to n_nets - 1 do
    let comb_readers =
      List.fold_left
        (fun acc (reader, _) ->
          if kind.(reader) = 13 then acc else acc + 1)
        0 raw_fanout.(n)
    in
    fan_off.(n + 1) <- fan_off.(n) + comb_readers
  done;
  let fan_cell = Array.make fan_off.(n_nets) 0 in
  for n = 0 to n_nets - 1 do
    let slot = ref fan_off.(n) in
    List.iter
      (fun (reader, _) ->
        if kind.(reader) <> 13 then begin
          fan_cell.(!slot) <- reader;
          incr slot
        end)
      raw_fanout.(n)
  done;
  let dff_list = ref [] and init_list = ref [] and countable = ref 0 in
  C.iter_cells
    (fun cell ->
      (match cell.kind with
      | Cell.Tie0 -> init_list := (cell.outputs.(0), 0) :: !init_list
      | Cell.Tie1 -> init_list := (cell.outputs.(0), 1) :: !init_list
      | Cell.Dff ->
        dff_list := cell.id :: !dff_list;
        init_list :=
          (cell.outputs.(0), code_of_logic (C.dff_init circuit cell.id))
          :: !init_list
      | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
      | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder
      | Cell.Full_adder ->
        ());
      match cell.kind with
      | Cell.Tie0 | Cell.Tie1 -> ()
      | _ -> incr countable)
    circuit;
  let dffs = Array.of_list (List.rev !dff_list) in
  let dff_init_code =
    Array.map
      (fun id -> code_of_logic (C.dff_init circuit id))
      dffs
  in
  let inits = List.rev !init_list in
  {
    circuit;
    n_nets;
    n_cells;
    kind;
    in_off;
    in_net;
    out_off;
    out_net;
    out_delay;
    fan_off;
    fan_cell;
    driver;
    dffs;
    dff_init_code;
    init_net = Array.of_list (List.map fst inits);
    init_code = Array.of_list (List.map snd inits);
    pis = Array.of_list (C.primary_inputs circuit);
    countable = !countable;
    topo =
      lazy (Array.of_list (Netlist.Topo.combinational circuit));
  }

(* Flushed once per [settle] from per-call deltas, exactly like the
   reference kernel (the names resolve to the same Obs counters). *)
let c_events = Obs.Counter.make "sim.events"
let c_gate_evals = Obs.Counter.make "sim.gate_evals"
let c_settles = Obs.Counter.make "sim.settles"

type t = {
  st : static;
  (* Aliases of [st]'s hot arrays: one load instead of two ([t.st] then the
     field) on every access inside the event loop. *)
  kind : int array;
  in_off : int array;
  in_net : int array;
  out_off : int array;
  out_net : int array;
  out_delay : float array;
  fan_off : int array;
  fan_cell : int array;
  driver : int array;
  values : Bytes.t;  (* per net: value code *)
  pending : Bytes.t;  (* per net: value code, 3 = none *)
  serials : int array;
  toggles : int array;
  heap : Unboxed_heap.t;
  before : Bytes.t;  (* per net: value at the last baseline *)
  mutable dirty : int array;  (* driven nets committed since baseline *)
  mutable n_dirty : int;
  dirty_mark : Bytes.t;
  time : float array;
      (* length 1: flat storage keeps the per-event time update
         allocation-free (a mutable float field in a mixed record boxes on
         every store) *)
  mutable committed : int;
  mutable total : int;
  mutable evals : int;
}

let static t = t.st
let circuit t = t.st.circuit
let now t = Array.unsafe_get t.time 0
let countable_cells t = t.st.countable
let has_dffs t = Array.length t.st.dffs > 0

let bget b i = Char.code (Bytes.unsafe_get b i)
let bset b i v = Bytes.unsafe_set b i (Char.unsafe_chr v)

let value t net = logic_of_code (Char.code (Bytes.get t.values net))

let cell_toggles t = Array.copy t.toggles

let cell_toggles_into t buffer =
  if Array.length buffer <> t.st.n_cells then
    invalid_arg "Compiled.cell_toggles_into: buffer length mismatch";
  Array.blit t.toggles 0 buffer 0 t.st.n_cells

let total_toggles t = t.total

let reset_toggles t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  t.total <- 0

let snapshot_values t =
  Array.init t.st.n_nets (fun n -> logic_of_code (bget t.values n))

let events_processed t = t.committed

(* Three-valued ops on codes, mirroring [Netlist.Logic] case by case. *)
let lnot_c v = if v = 2 then 2 else 1 - v
let land_c a b = if a = 0 || b = 0 then 0 else if a = 1 && b = 1 then 1 else 2
let lor_c a b = if a = 1 || b = 1 then 1 else if a = 0 && b = 0 then 0 else 2
let lxor_c a b = if a = 2 || b = 2 then 2 else a lxor b

let mux_c d0 d1 sel =
  if sel = 0 then d0
  else if sel = 1 then d1
  else if d0 = d1 && d0 <> 2 then d0
  else 2

(* Majority: known as soon as two inputs agree. *)
let carry_c a b c =
  if (a = 1 && b = 1) || (a = 1 && c = 1) || (b = 1 && c = 1) then 1
  else if (a = 0 && b = 0) || (a = 0 && c = 0) || (b = 0 && c = 0) then 0
  else 2

(* Schedule a transition of [net] to [target] at [time], superseding any
   pending transition (inertial delay) — the reference [schedule], on
   codes. *)
let schedule t ~time net target =
  let pending = bget t.pending net in
  let projected = if pending <> 3 then pending else bget t.values net in
  if target <> projected then begin
    let serial = Array.unsafe_get t.serials net + 1 in
    Array.unsafe_set t.serials net serial;
    if target = bget t.values net then
      (* The pulse is reverted before committing: swallow it. *)
      bset t.pending net 3
    else begin
      bset t.pending net target;
      Unboxed_heap.push t.heap ~time ~a:((net lsl 2) lor target) ~b:serial
    end
  end

(* [schedule] for a cell output: takes the evaluation time plus the
   output's delay-table index and performs the [time +. delay] addition
   only on the path that actually pushes — without flambda a float crossing
   a function boundary is boxed, and most gate evaluations schedule
   nothing, so computing the launch time at the call site would allocate a
   box per no-op. *)
let schedule_out t ~time doo net target =
  let pending = bget t.pending net in
  let projected = if pending <> 3 then pending else bget t.values net in
  if target <> projected then begin
    let serial = Array.unsafe_get t.serials net + 1 in
    Array.unsafe_set t.serials net serial;
    if target = bget t.values net then bset t.pending net 3
    else begin
      bset t.pending net target;
      Unboxed_heap.push t.heap
        ~time:(time +. Array.unsafe_get t.out_delay doo)
        ~a:((net lsl 2) lor target)
        ~b:serial
    end
  end

(* Each arity reads its operands and schedules its outputs inline — no
   local [out]/[inp] helpers, which the non-flambda compiler would allocate
   as closures on every evaluation. *)
let eval_cell t ~time id =
  t.evals <- t.evals + 1;
  let io = Array.unsafe_get t.in_off id in
  let oo = Array.unsafe_get t.out_off id in
  let values = t.values in
  let in_net = t.in_net and out_net = t.out_net in
  match Array.unsafe_get t.kind id with
  | 2 (* Inv *) ->
    let a = bget values (Array.unsafe_get in_net io) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo) (lnot_c a)
  | 3 (* Buf *) ->
    let a = bget values (Array.unsafe_get in_net io) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo) a
  | 4 (* Nand2 *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo)
      (lnot_c (land_c a b))
  | 5 (* Nor2 *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo)
      (lnot_c (lor_c a b))
  | 6 (* And2 *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo) (land_c a b)
  | 7 (* Or2 *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo) (lor_c a b)
  | 8 (* Xor2 *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo) (lxor_c a b)
  | 9 (* Xnor2 *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo)
      (lnot_c (lxor_c a b))
  | 10 (* Mux2: inputs d0; d1; sel *) ->
    let d0 = bget values (Array.unsafe_get in_net io)
    and d1 = bget values (Array.unsafe_get in_net (io + 1))
    and sel = bget values (Array.unsafe_get in_net (io + 2)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo) (mux_c d0 d1 sel)
  | 11 (* Half_adder *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo) (lxor_c a b);
    schedule_out t ~time (oo + 1)
      (Array.unsafe_get out_net (oo + 1))
      (land_c a b)
  | 12 (* Full_adder *) ->
    let a = bget values (Array.unsafe_get in_net io)
    and b = bget values (Array.unsafe_get in_net (io + 1))
    and c = bget values (Array.unsafe_get in_net (io + 2)) in
    schedule_out t ~time oo
      (Array.unsafe_get out_net oo)
      (lxor_c (lxor_c a b) c);
    schedule_out t ~time (oo + 1)
      (Array.unsafe_get out_net (oo + 1))
      (carry_c a b c)
  | _ (* ties and flip-flops never reach the evaluator *) -> ()

let mark_dirty t net =
  if bget t.dirty_mark net = 0 then begin
    bset t.dirty_mark net 1;
    let n = t.n_dirty in
    if n = Array.length t.dirty then begin
      let grown = Array.make (max 64 (2 * n)) 0 in
      Array.blit t.dirty 0 grown 0 n;
      t.dirty <- grown
    end;
    Array.unsafe_set t.dirty n net;
    t.n_dirty <- n + 1
  end

let commit t ~time net target =
  let old_value = bget t.values net in
  bset t.values net target;
  bset t.pending net 3;
  t.committed <- t.committed + 1;
  let driver = Array.unsafe_get t.driver net in
  if driver >= 0 then begin
    (* Count a real 0<->1 toggle against the driving cell ([lxor = 1] holds
       exactly for the {0,1} pairs — X resolutions are not toggles). *)
    if old_value lxor target = 1 then begin
      Array.unsafe_set t.toggles driver (Array.unsafe_get t.toggles driver + 1);
      t.total <- t.total + 1
    end;
    mark_dirty t net
  end;
  let lo = Array.unsafe_get t.fan_off net
  and hi = Array.unsafe_get t.fan_off (net + 1) in
  for slot = lo to hi - 1 do
    eval_cell t ~time (Array.unsafe_get t.fan_cell slot)
  done

let settle ?(event_limit = 10_000_000) t =
  let committed0 = t.committed and evals0 = t.evals in
  let processed = ref 0 in
  let heap = t.heap in
  let serials = t.serials and pending = t.pending in
  let continue = ref true in
  while !continue do
    if not (Unboxed_heap.pop heap) then continue := false
    else begin
      let a = Unboxed_heap.top_a heap in
      let net = a lsr 2 and target = a land 3 in
      if
        Unboxed_heap.top_b heap = Array.unsafe_get serials net
        && bget pending net <> 3
      then begin
        incr processed;
        if !processed > event_limit then
          failwith "Simulator.settle: event limit exceeded (oscillation?)";
        let time = Unboxed_heap.top_time heap in
        (* [Float.max] without the call: times are never NaN here. *)
        if time > Array.unsafe_get t.time 0 then
          Array.unsafe_set t.time 0 time;
        commit t ~time net target
      end
    end
  done;
  if Obs.enabled () then begin
    Obs.Counter.incr c_settles;
    Obs.Counter.add c_events (t.committed - committed0);
    Obs.Counter.add c_gate_evals (t.evals - evals0)
  end

let set_input t net v =
  if net < 0 || net >= t.st.n_nets || t.st.driver.(net) >= 0 then
    invalid_arg "Simulator.set_input: not a primary input";
  schedule t ~time:(Array.unsafe_get t.time 0) net (code_of_logic v)

let clock_tick t =
  (* Sample every D simultaneously against pre-edge values, then launch Q.
     Descending id order matches the reference kernel's prepend-built
     sample list, keeping queue tie-breaks identical. The launch time is
     hoisted: one float for the whole edge instead of one per flip-flop. *)
  let dffs = t.st.dffs in
  let time = Array.unsafe_get t.time 0 +. Cell.clk_to_q in
  for k = Array.length dffs - 1 downto 0 do
    let id = Array.unsafe_get dffs k in
    let d =
      bget t.values (Array.unsafe_get t.in_net (Array.unsafe_get t.in_off id))
    in
    schedule t ~time
      (Array.unsafe_get t.out_net (Array.unsafe_get t.out_off id))
      d
  done

let snapshot_baseline t =
  Bytes.blit t.values 0 t.before 0 t.st.n_nets;
  for k = 0 to t.n_dirty - 1 do
    bset t.dirty_mark t.dirty.(k) 0
  done;
  t.n_dirty <- 0

let necessary_transitions t =
  let count = ref 0 in
  for k = 0 to t.n_dirty - 1 do
    let net = t.dirty.(k) in
    bset t.dirty_mark net 0;
    let old_value = bget t.before net and new_value = bget t.values net in
    if old_value <> new_value then begin
      if old_value < 2 && new_value < 2 then incr count;
      bset t.before net new_value
    end
  done;
  t.n_dirty <- 0;
  !count

let of_static st =
  let t =
    {
      st;
      kind = st.kind;
      in_off = st.in_off;
      in_net = st.in_net;
      out_off = st.out_off;
      out_net = st.out_net;
      out_delay = st.out_delay;
      fan_off = st.fan_off;
      fan_cell = st.fan_cell;
      driver = st.driver;
      values = Bytes.make st.n_nets '\002' (* X *);
      pending = Bytes.make st.n_nets '\003' (* none *);
      serials = Array.make st.n_nets 0;
      toggles = Array.make st.n_cells 0;
      heap = Unboxed_heap.create ();
      before = Bytes.make st.n_nets '\002';
      dirty = [||];
      n_dirty = 0;
      dirty_mark = Bytes.make st.n_nets '\000';
      time = [| 0.0 |];
      committed = 0;
      total = 0;
      evals = 0;
    }
  in
  (* Power-up: ties drive their constants, flip-flops take their init
     values; everything else resolves from there. *)
  for i = 0 to Array.length st.init_net - 1 do
    schedule t ~time:0.0 st.init_net.(i) st.init_code.(i)
  done;
  settle t;
  reset_toggles t;
  t

let create circuit =
  Netlist.Check.assert_well_formed circuit;
  of_static (compile circuit)

