(** Event-driven gate-level simulator with inertial delays.

    Replaces the timing-annotated ModelSIM runs the paper used to extract
    switching activity. Gate delays come from {!Netlist.Cell.delay}
    (normalised inverter units), so unequal path depths produce the same
    glitching behaviour that penalises the diagonally pipelined multipliers
    in the paper.

    Since the compiled-kernel rework this module is a re-export of
    {!Compiled}: {!create} lowers the netlist once into flat arrays (CSR
    fanout, kind codes, per-output delays) and the event loop runs
    allocation-free over [Bytes.t] value planes and an unboxed
    struct-of-arrays heap. Results are bitwise identical to the boxed
    {!Reference} kernel — the differential suite enforces it across the
    multiplier catalog.

    Toggle accounting: a committed 0↔1 transition on a cell's output
    increments that cell's counter (X resolutions are not counted). The
    inertial model cancels a pending transition when a newer evaluation
    reverts it before it commits — pulses shorter than the gate delay are
    swallowed, longer ones propagate as glitches. *)

type t = Compiled.t

val create : Netlist.Circuit.t -> t
(** Builds simulation state, initialises ties and flip-flop power-up values
    and settles. @raise Failure on a malformed circuit
    (see {!Netlist.Check}). *)

val of_static : Compiled.static -> t
(** Fresh simulation state over an existing compilation, skipping the
    well-formedness re-check and the lowering. *)

val static : t -> Compiled.static
(** The compiled form — what the bit-parallel engine runs over. *)

val circuit : t -> Netlist.Circuit.t
val now : t -> float

val value : t -> Netlist.Circuit.net -> Netlist.Logic.value

val set_input : t -> Netlist.Circuit.net -> Netlist.Logic.value -> unit
(** Schedule a primary-input change at the current time.
    @raise Invalid_argument if the net is not a primary input. *)

val settle : ?event_limit:int -> t -> unit
(** Run the event loop until quiescent; advances [now] past the last event.
    @raise Failure if [event_limit] (default 10 million) is exceeded —
    indicates oscillation. *)

val clock_tick : t -> unit
(** Synchronous clock edge: samples every flip-flop's D simultaneously and
    schedules Q updates after the clk→q delay, iterating the flip-flop id
    array precomputed at {!create}. Call {!settle} afterwards. *)

val cell_toggles : t -> int array
(** Per-cell committed toggle counts since the last reset. *)

val cell_toggles_into : t -> int array -> unit
(** Copy the per-cell toggle counters into a caller-owned buffer without
    allocating. @raise Invalid_argument on a length mismatch. *)

val total_toggles : t -> int
val reset_toggles : t -> unit

val snapshot_values : t -> Netlist.Logic.value array
(** Copy of all net values. The per-cycle activity accounting no longer
    needs this — see {!snapshot_baseline}/{!necessary_transitions} — but
    debugging and waveform capture still do. *)

val events_processed : t -> int
(** Committed events since creation (monotonic; not reset by
    {!reset_toggles}). *)

val countable_cells : t -> int
(** Cells that count towards the activity denominator (everything except
    ties), precomputed at compile time. *)

val has_dffs : t -> bool
(** Whether the circuit is sequential — the kernel-selection predicate for
    the zero-delay activity engines (see DESIGN.md §10). *)

val snapshot_baseline : t -> unit
(** Record the current settled values as the necessary-transition baseline
    and clear the touched-net set. *)

val necessary_transitions : t -> int
(** Driven nets whose settled value changed 0↔1 since the baseline, then
    re-baseline; O(nets touched), allocation-free. *)
