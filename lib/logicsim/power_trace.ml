module C = Netlist.Circuit

type cycle_record = {
  index : int;
  toggles : int;
  switched_cap : float;
  energy : float;
}

type t = {
  cycles : cycle_record list;
  vdd : float;
  average_energy : float;
  peak_energy : float;
  peak_to_average : float;
}

let record ?(warmup = 4) ?(ticks_per_cycle = 1) ~vdd ~cycles ~drive sim =
  if cycles < 1 then invalid_arg "Power_trace.record: cycles < 1";
  if vdd <= 0.0 then invalid_arg "Power_trace.record: vdd <= 0";
  let circuit = Simulator.circuit sim in
  let run_cycle ~cycle =
    drive sim ~cycle;
    Simulator.settle sim;
    for _ = 1 to ticks_per_cycle do
      Simulator.clock_tick sim;
      Simulator.settle sim
    done
  in
  for cycle = 0 to warmup - 1 do
    run_cycle ~cycle
  done;
  (* The per-cycle loop reuses two counter buffers and a hoisted per-cell
     capacitance table instead of allocating two toggle snapshots and a
     delta array every cycle. *)
  let n_cells = C.cell_count circuit in
  let cap = Array.make n_cells 0.0 in
  C.iter_cells
    (fun cell -> cap.(cell.id) <- Netlist.Cell.switched_cap cell.kind)
    circuit;
  let previous = Array.make n_cells 0 and current = Array.make n_cells 0 in
  let records = ref [] in
  Simulator.cell_toggles_into sim previous;
  let previous_total = ref (Simulator.total_toggles sim) in
  for index = 0 to cycles - 1 do
    run_cycle ~cycle:(warmup + index);
    Simulator.cell_toggles_into sim current;
    let acc = Numerics.Kahan.create () in
    for i = 0 to n_cells - 1 do
      let delta = current.(i) - previous.(i) in
      if delta > 0 then
        Numerics.Kahan.add acc (float_of_int delta *. cap.(i))
    done;
    let switched_cap = Numerics.Kahan.sum acc in
    let toggles = Simulator.total_toggles sim - !previous_total in
    Array.blit current 0 previous 0 n_cells;
    previous_total := Simulator.total_toggles sim;
    records :=
      { index; toggles; switched_cap; energy = switched_cap *. vdd *. vdd }
      :: !records
  done;
  let cycle_list = List.rev !records in
  let energies = List.map (fun r -> r.energy) cycle_list in
  let average_energy = Numerics.Kahan.sum_list energies /. float_of_int cycles in
  let peak_energy = List.fold_left Float.max 0.0 energies in
  {
    cycles = cycle_list;
    vdd;
    average_energy;
    peak_energy;
    peak_to_average =
      (if average_energy = 0.0 then 0.0 else peak_energy /. average_energy);
  }

let to_csv t =
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.index;
          string_of_int r.toggles;
          Printf.sprintf "%.6g" r.switched_cap;
          Printf.sprintf "%.6g" r.energy;
        ])
      t.cycles
  in
  String.concat "\n"
    ("cycle,toggles,switched_cap_f,energy_j"
    :: List.map (String.concat ",") rows)
  ^ "\n"
