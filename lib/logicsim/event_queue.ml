(* Struct-of-arrays layout: times live in a flat [float array] (unboxed by
   the runtime) and orders in an [int array], so only the polymorphic
   payload column keeps its natural representation. The previous layout
   boxed a {time; order; payload} record per entry — one allocation per
   push plus a float box; this form allocates only when growing. *)

type 'a t = {
  mutable times : float array;
  mutable orders : int array;
  mutable payloads : 'a array;
  mutable len : int;
  mutable counter : int;
}

let create () =
  { times = [||]; orders = [||]; payloads = [||]; len = 0; counter = 0 }

let length t = t.len
let is_empty t = t.len = 0

let earlier t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.orders.(i) < t.orders.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let order = t.orders.(i) in
  t.orders.(i) <- t.orders.(j);
  t.orders.(j) <- order;
  let payload = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- payload

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && earlier t left !smallest then smallest := left;
  if right < t.len && earlier t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* The payload being pushed doubles as the filler for fresh slots, so the
   payload column never needs an artificial dummy element. *)
let grow t payload =
  let capacity = max 16 (2 * Array.length t.times) in
  let times = Array.make capacity 0.0 in
  let orders = Array.make capacity 0 in
  let payloads = Array.make capacity payload in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.orders 0 orders 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.times <- times;
  t.orders <- orders;
  t.payloads <- payloads

let push t ~time payload =
  if t.len = Array.length t.times then grow t payload;
  let i = t.len in
  t.times.(i) <- time;
  t.orders.(i) <- t.counter;
  t.payloads.(i) <- payload;
  t.counter <- t.counter + 1;
  t.len <- t.len + 1;
  sift_up t i

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and payload = t.payloads.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      let last = t.len in
      t.times.(0) <- t.times.(last);
      t.orders.(0) <- t.orders.(last);
      t.payloads.(0) <- t.payloads.(last);
      sift_down t 0
    end;
    Some (time, payload)
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)
