module Logic = Netlist.Logic

let to_values ~width value =
  if value < 0 then invalid_arg "Bus.to_values: negative value";
  if width < 63 && value lsr width <> 0 then
    invalid_arg "Bus.to_values: value does not fit";
  Array.init width (fun i -> Logic.of_bool ((value lsr i) land 1 = 1))

let of_values values =
  let width = Array.length values in
  let rec build i acc =
    if i >= width then Some acc
    else begin
      match Logic.to_bool values.(i) with
      | None -> None
      | Some b -> build (i + 1) (if b then acc lor (1 lsl i) else acc)
    end
  in
  build 0 0

let drive sim bus value =
  (* Same bit order and validation as [to_values], without materialising
     the intermediate array — [drive] runs once per bus per cycle in the
     activity loops. *)
  let width = Array.length bus in
  if value < 0 then invalid_arg "Bus.to_values: negative value";
  if width < 63 && value lsr width <> 0 then
    invalid_arg "Bus.to_values: value does not fit";
  for i = 0 to width - 1 do
    Simulator.set_input sim bus.(i)
      (Logic.of_bool ((value lsr i) land 1 = 1))
  done

let read sim bus = of_values (Array.map (Simulator.value sim) bus)

let read_exn sim bus =
  match read sim bus with
  | Some v -> v
  | None -> failwith "Bus.read_exn: X bit in bus"
