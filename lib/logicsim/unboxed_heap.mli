(** Unboxed struct-of-arrays bucket calendar of timed integer payloads.

    The allocation-free core both simulation kernels schedule through. The
    kernels only ever hold a handful of *distinct* event times at once
    (gate delays span a short horizon), so instead of a comparison heap the
    queue keeps a short sorted [float array] of distinct times, each paired
    with a FIFO of payload words in flat [int array]s: popping is O(1) with
    no sift, pushing is a short scan from the back of the sorted array, and
    steady-state operation never allocates (retired FIFO storage is pooled
    and reused).

    Pop order is the (time, insertion order) total order, exactly like
    {!Event_queue}: entries at bit-identical times drain FIFO, buckets
    drain in ascending time order. A kernel built on either queue commits
    events in the same sequence. Times must not be NaN. Popping deposits
    the entry into three scratch cells read with
    {!top_time}/{!top_a}/{!top_b} instead of returning a tuple. *)

type t

val create : unit -> t

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop every entry (capacity is kept). Also resets the tie-break
    insertion counter. *)

val push : t -> time:float -> a:int -> b:int -> unit
(** Schedule payload words [a] and [b] at [time]. *)

val pop : t -> bool
(** Remove the earliest entry, exposing it through {!top_time}, {!top_a}
    and {!top_b}; [false] when the heap is empty (scratch cells are then
    stale). *)

val top_time : t -> float
val top_a : t -> int
val top_b : t -> int
(** The entry removed by the last successful {!pop}. *)

val peek_time : t -> float option
(** Earliest scheduled time without removing the entry. *)
