module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic

type polarity = Stuck_at_0 | Stuck_at_1

type fault = { net : C.net; polarity : polarity }

let value_of_polarity = function
  | Stuck_at_0 -> Logic.Zero
  | Stuck_at_1 -> Logic.One

let enumerate circuit =
  let nets = ref [] in
  List.iter (fun n -> nets := n :: !nets) (C.primary_inputs circuit);
  C.iter_cells
    (fun cell ->
      match cell.kind with
      | Cell.Tie0 | Cell.Tie1 -> ()
      | Cell.Dff -> failwith "Faults.enumerate: sequential circuit"
      | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
      | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder
      | Cell.Full_adder ->
        Array.iter (fun n -> nets := n :: !nets) cell.outputs)
    circuit;
  List.concat_map
    (fun net ->
      [ { net; polarity = Stuck_at_0 }; { net; polarity = Stuck_at_1 } ])
    (List.rev !nets)

(* Zero-delay propagation with an optional forced net. The force applies
   after every assignment to the net, modelling the physical short. *)
let evaluate_with_fault circuit ~fault ~inputs =
  let nets = Array.make (C.net_count circuit) Logic.X in
  let force =
    match fault with
    | None -> fun () -> ()
    | Some f ->
      let v = value_of_polarity f.polarity in
      fun () -> nets.(f.net) <- v
  in
  C.iter_cells
    (fun cell ->
      match cell.kind with
      | Cell.Tie0 -> nets.(cell.outputs.(0)) <- Logic.Zero
      | Cell.Tie1 -> nets.(cell.outputs.(0)) <- Logic.One
      | Cell.Dff -> failwith "Faults.evaluate_with_fault: sequential circuit"
      | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
      | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder
      | Cell.Full_adder ->
        ())
    circuit;
  List.iter (fun (n, v) -> nets.(n) <- v) inputs;
  force ();
  List.iter
    (fun id ->
      let cell = C.get_cell circuit id in
      let values = Array.map (fun n -> nets.(n)) cell.inputs in
      let outputs = Cell.eval cell.kind values in
      Array.iteri (fun o n -> nets.(n) <- outputs.(o)) cell.outputs;
      force ())
    (Netlist.Topo.combinational circuit);
  nets

type coverage = {
  total : int;
  detected : int;
  coverage_pct : float;
  undetected : fault list;
}

let coverage ?faults circuit ~vectors ~outputs =
  let faults =
    match faults with Some f -> f | None -> enumerate circuit
  in
  (* Bit-parallel fault simulation: up to [Bitpar.lanes] vectors share one
     word per net, so each fault costs a single zero-delay pass per chunk
     instead of one per vector. Chunks run outermost so the golden pass is
     evaluated once per chunk, and already-detected faults drop out. *)
  let fault_arr = Array.of_list faults in
  let n_faults = Array.length fault_arr in
  let detected_flags = Array.make n_faults false in
  let st = Compiled.compile circuit in
  if Array.length st.Compiled.dffs > 0 then
    failwith "Faults.coverage: sequential circuit";
  let golden = Bitpar.create st in
  let faulty = Bitpar.create st in
  let rec chunk n = function
    | [] -> []
    | vs when n <= 0 -> [] :: chunk Bitpar.lanes vs
    | v :: vs -> (
      match chunk (n - 1) vs with
      | c :: rest -> (v :: c) :: rest
      | [] -> [ [ v ] ])
  in
  List.iter
    (fun vector_chunk ->
      let n_vec = List.length vector_chunk in
      let mask =
        if n_vec >= Bitpar.lanes then -1 else (1 lsl n_vec) - 1
      in
      Bitpar.reset golden;
      List.iteri
        (fun lane inputs ->
          List.iter
            (fun (net, v) -> Bitpar.set_input golden ~net ~lane v)
            inputs)
        vector_chunk;
      Bitpar.run golden;
      for k = 0 to n_faults - 1 do
        if not detected_flags.(k) then begin
          let fault = fault_arr.(k) in
          Bitpar.copy_state golden ~into:faulty;
          Bitpar.run
            ~force:(fault.net, value_of_polarity fault.polarity)
            faulty;
          if Bitpar.lanes_differ faulty ~other:golden ~outputs ~mask then
            detected_flags.(k) <- true
        end
      done)
    (chunk Bitpar.lanes vectors);
  let undetected = ref [] in
  for k = n_faults - 1 downto 0 do
    if not detected_flags.(k) then undetected := fault_arr.(k) :: !undetected
  done;
  let total = n_faults in
  let detected = total - List.length !undetected in
  {
    total;
    detected;
    coverage_pct =
      (if total = 0 then 100.0
       else 100.0 *. float_of_int detected /. float_of_int total);
    undetected = !undetected;
  }

let random_vectors ~rng ~circuit ~count =
  let inputs = C.primary_inputs circuit in
  List.init count (fun _ ->
      List.map
        (fun n -> (n, Logic.of_bool (Numerics.Rng.bool rng)))
        inputs)
