module C = Netlist.Circuit

type result = {
  activity : float;
  toggles_per_cycle : float;
  glitch_ratio : float;
  cycles : int;
  per_cell : float array;
}

type drive = Simulator.t -> cycle:int -> unit

let run_cycle ~ticks_per_cycle ~drive sim ~cycle =
  drive sim ~cycle;
  Simulator.settle sim;
  for _ = 1 to ticks_per_cycle do
    Simulator.clock_tick sim;
    Simulator.settle sim
  done

(* Necessary-transition accounting: one transition per driven net whose
   settled value changed 0<->1 across a data cycle; anything beyond is
   glitch. Two allocation-free strategies, selected per circuit (the
   kernel-selection rule of DESIGN.md par.10):

   - Sequential circuits compare against a baseline the kernel maintains
     incrementally — only nets that actually committed since the last
     cycle are inspected.
   - Combinational circuits batch the settled primary-input values of up
     to 62 consecutive cycles into the lanes of the bit-parallel engine;
     one zero-delay pass then yields every cycle's count from word ops.
     Settled event-kernel values equal the zero-delay fixpoint on acyclic
     logic, so the two strategies agree bitwise. *)
type batched = { bp : Bitpar.t; pis : int array; mutable pending : int }
type accounting = Incremental | Batched of batched

let start_accounting sim =
  if Simulator.has_dffs sim then begin
    Simulator.snapshot_baseline sim;
    Incremental
  end
  else begin
    let st = Simulator.static sim in
    let bp = Bitpar.create st in
    let pis = st.Compiled.pis in
    (* Lane 0 carries the pre-measurement settled state — the baseline the
       first measured cycle is compared against. *)
    Array.iter
      (fun net -> Bitpar.set_input bp ~net ~lane:0 (Simulator.value sim net))
      pis;
    Batched { bp; pis; pending = 0 }
  end

let flush_batch b necessary_total =
  if b.pending > 0 then begin
    Bitpar.run b.bp;
    necessary_total :=
      !necessary_total + Bitpar.adjacent_necessary b.bp ~pairs:b.pending;
    (* The last settled state becomes the next batch's baseline. *)
    Bitpar.copy_lane b.bp ~src:b.pending ~dst:0;
    b.pending <- 0
  end

(* Record one settled data cycle with the chosen strategy. *)
let account_cycle acc sim necessary_total =
  match acc with
  | Incremental ->
    necessary_total := !necessary_total + Simulator.necessary_transitions sim
  | Batched b ->
    if b.pending = Bitpar.lanes - 1 then flush_batch b necessary_total;
    b.pending <- b.pending + 1;
    Array.iter
      (fun net ->
        Bitpar.set_input b.bp ~net ~lane:b.pending (Simulator.value sim net))
      b.pis

let finish_accounting acc necessary_total =
  match acc with
  | Incremental -> ()
  | Batched b -> flush_batch b necessary_total

let measure ?(warmup = 4) ?(ticks_per_cycle = 1) ~cycles ~drive sim =
  if cycles < 1 then invalid_arg "Activity.measure: cycles < 1";
  if ticks_per_cycle < 1 then
    invalid_arg "Activity.measure: ticks_per_cycle < 1";
  for cycle = 0 to warmup - 1 do
    run_cycle ~ticks_per_cycle ~drive sim ~cycle
  done;
  Simulator.reset_toggles sim;
  let circuit = Simulator.circuit sim in
  let cell_count = C.cell_count circuit in
  let n = Simulator.countable_cells sim in
  let necessary_total = ref 0 in
  let acc = start_accounting sim in
  for cycle = 0 to cycles - 1 do
    run_cycle ~ticks_per_cycle ~drive sim ~cycle:(warmup + cycle);
    account_cycle acc sim necessary_total
  done;
  finish_accounting acc necessary_total;
  let toggles = Simulator.cell_toggles sim in
  let total = Simulator.total_toggles sim in
  let fcycles = float_of_int cycles in
  let per_cell =
    Array.init cell_count (fun i -> float_of_int toggles.(i) /. fcycles)
  in
  let toggles_per_cycle = float_of_int total /. fcycles in
  let glitch_ratio =
    if total = 0 then 0.0
    else
      float_of_int (total - !necessary_total) /. float_of_int total
  in
  {
    activity = toggles_per_cycle /. float_of_int (max 1 n);
    toggles_per_cycle;
    glitch_ratio = Float.max 0.0 glitch_ratio;
    cycles;
    per_cell;
  }

type converged = {
  result : result;
  relative_stderr : float;
  batches : int;
}

let measure_until ?(warmup = 4) ?(ticks_per_cycle = 1) ?(batch = 40)
    ?(rel_tol = 0.02) ?(max_cycles = 2000) ~drive sim =
  if batch < 2 then invalid_arg "Activity.measure_until: batch < 2";
  if rel_tol <= 0.0 then invalid_arg "Activity.measure_until: rel_tol <= 0";
  for cycle = 0 to warmup - 1 do
    run_cycle ~ticks_per_cycle ~drive sim ~cycle
  done;
  Simulator.reset_toggles sim;
  let circuit = Simulator.circuit sim in
  let n = max 1 (Simulator.countable_cells sim) in
  let batch_activities = ref [] in
  let necessary_total = ref 0 in
  let acc = start_accounting sim in
  let total_cycles = ref 0 in
  let batches = ref 0 in
  let stderr_ok () =
    match !batch_activities with
    | _ :: _ :: _ as xs ->
      let mean = Numerics.Stats.mean xs in
      if mean <= 0.0 then true
      else begin
        let stderr =
          Numerics.Stats.stddev xs
          /. sqrt (float_of_int (List.length xs))
        in
        stderr /. mean < rel_tol
      end
    | [ _ ] | [] -> false
  in
  let run_batch () =
    let start_toggles = Simulator.total_toggles sim in
    for i = 0 to batch - 1 do
      run_cycle ~ticks_per_cycle ~drive sim
        ~cycle:(warmup + !total_cycles + i);
      account_cycle acc sim necessary_total
    done;
    total_cycles := !total_cycles + batch;
    incr batches;
    let batch_toggles = Simulator.total_toggles sim - start_toggles in
    batch_activities :=
      float_of_int batch_toggles /. float_of_int (batch * n)
      :: !batch_activities
  in
  run_batch ();
  while (not (stderr_ok ())) && !total_cycles + batch <= max_cycles do
    run_batch ()
  done;
  finish_accounting acc necessary_total;
  let cycles = !total_cycles in
  let total = Simulator.total_toggles sim in
  let toggles = Simulator.cell_toggles sim in
  let fcycles = float_of_int cycles in
  let relative_stderr =
    match !batch_activities with
    | _ :: _ :: _ as xs ->
      let mean = Numerics.Stats.mean xs in
      if mean <= 0.0 then 0.0
      else
        Numerics.Stats.stddev xs /. sqrt (float_of_int (List.length xs)) /. mean
    | [ _ ] | [] -> infinity
  in
  {
    result =
      {
        activity = float_of_int total /. (fcycles *. float_of_int n);
        toggles_per_cycle = float_of_int total /. fcycles;
        glitch_ratio =
          (if total = 0 then 0.0
           else
             Float.max 0.0
               (float_of_int (total - !necessary_total) /. float_of_int total));
        cycles;
        per_cell =
          Array.init (C.cell_count circuit) (fun i ->
              float_of_int toggles.(i) /. fcycles);
      };
    relative_stderr;
    batches = !batches;
  }

let random_drive ~rng ~buses =
  let drive sim ~cycle =
    ignore cycle;
    List.iter
      (fun bus ->
        let width = Array.length bus in
        let bound = if width >= 62 then max_int else 1 lsl width in
        Bus.drive sim bus (Numerics.Rng.int rng bound))
      buses
  in
  drive
