(* A bucket calendar rather than a comparison heap: the event kernels only
   ever hold a handful of *distinct* times at once (gate delays span a
   short horizon — measured ≤ 16 distinct times live against several
   hundred queued events on a 16-bit Wallace tree), so the queue keeps a
   short sorted array of distinct-time buckets, each a FIFO of payload
   words. Pop is O(1) — no sift at all — and push is a short scan from the
   back of the sorted array, since new events carry the latest times.

   The pop order is exactly the (time, insertion order) total order of a
   comparison heap: entries within one bucket share identical float bits
   and drain FIFO (= insertion order), buckets drain in ascending float
   order, and a retired time that reappears is re-inserted at its sorted
   position ahead of every later-time bucket. Times must be totally
   ordered (no NaN) — event times are finite sums of positive delays. *)

type t = {
  (* Sorted ascending distinct times; the live slice is
     [first, first + nb). *)
  mutable bt : float array;
  mutable ba : int array array;  (* per bucket: payload-a FIFO storage *)
  mutable bb : int array array;  (* per bucket: payload-b FIFO storage *)
  mutable bhead : int array;  (* per bucket: FIFO start offset *)
  mutable blen : int array;  (* per bucket: FIFO length *)
  mutable first : int;
  mutable nb : int;
  (* Retired FIFO array pairs, reused so steady-state pushes never
     allocate. *)
  pool_a : int array array;
  pool_b : int array array;
  mutable pool_n : int;
  mutable len : int;
  mutable counter : int;
  top_time : float array;
      (* length 1: flat float storage, so depositing the popped time never
         allocates a box (a mutable float field in this mixed record would) *)
  mutable top_a : int;
  mutable top_b : int;
}

let pool_slots = 64
let initial_fifo = 32

let create () =
  {
    bt = [||];
    ba = [||];
    bb = [||];
    bhead = [||];
    blen = [||];
    first = 0;
    nb = 0;
    pool_a = Array.make pool_slots [||];
    pool_b = Array.make pool_slots [||];
    pool_n = 0;
    len = 0;
    counter = 0;
    top_time = [| 0.0 |];
    top_a = 0;
    top_b = 0;
  }

let length t = t.len
let is_empty t = t.len = 0
let top_time t = Array.unsafe_get t.top_time 0
let top_a t = t.top_a
let top_b t = t.top_b

let retire_bucket t i =
  if t.pool_n < pool_slots then begin
    t.pool_a.(t.pool_n) <- t.ba.(i);
    t.pool_b.(t.pool_n) <- t.bb.(i);
    t.pool_n <- t.pool_n + 1
  end;
  t.ba.(i) <- [||];
  t.bb.(i) <- [||]

let clear t =
  for i = t.first to t.first + t.nb - 1 do
    retire_bucket t i
  done;
  t.first <- 0;
  t.nb <- 0;
  t.len <- 0;
  t.counter <- 0

(* Guarantee a free slot at the end of the bucket table: slide the live
   slice back to the front when only the tail is exhausted, double
   otherwise. *)
let ensure_slot t =
  let cap = Array.length t.bt in
  if t.first + t.nb = cap then
    if t.first > 0 then begin
      Array.blit t.bt t.first t.bt 0 t.nb;
      Array.blit t.ba t.first t.ba 0 t.nb;
      Array.blit t.bb t.first t.bb 0 t.nb;
      Array.blit t.bhead t.first t.bhead 0 t.nb;
      Array.blit t.blen t.first t.blen 0 t.nb;
      (* Drop stale array pointers behind the live slice so retired FIFO
         storage is not kept reachable twice. *)
      for i = t.nb to cap - 1 do
        t.ba.(i) <- [||];
        t.bb.(i) <- [||]
      done;
      t.first <- 0
    end
    else begin
      let ncap = max 16 (2 * cap) in
      let bt = Array.make ncap 0.0 in
      let ba = Array.make ncap [||] in
      let bb = Array.make ncap [||] in
      let bhead = Array.make ncap 0 in
      let blen = Array.make ncap 0 in
      Array.blit t.bt 0 bt 0 t.nb;
      Array.blit t.ba 0 ba 0 t.nb;
      Array.blit t.bb 0 bb 0 t.nb;
      Array.blit t.bhead 0 bhead 0 t.nb;
      Array.blit t.blen 0 blen 0 t.nb;
      t.bt <- bt;
      t.ba <- ba;
      t.bb <- bb;
      t.bhead <- bhead;
      t.blen <- blen
    end

let append_to_bucket t i a b =
  let qa = Array.unsafe_get t.ba i in
  let head = Array.unsafe_get t.bhead i in
  let n = Array.unsafe_get t.blen i in
  let pos = head + n in
  if pos < Array.length qa then begin
    Array.unsafe_set qa pos a;
    Array.unsafe_set (Array.unsafe_get t.bb i) pos b;
    Array.unsafe_set t.blen i (n + 1)
  end
  else begin
    let qb = t.bb.(i) in
    if head > 0 then begin
      (* Slide the live FIFO window back to the front. *)
      Array.blit qa head qa 0 n;
      Array.blit qb head qb 0 n
    end
    else begin
      let ncap = max initial_fifo (2 * Array.length qa) in
      let na = Array.make ncap 0 and nq = Array.make ncap 0 in
      Array.blit qa head na 0 n;
      Array.blit qb head nq 0 n;
      t.ba.(i) <- na;
      t.bb.(i) <- nq
    end;
    t.bhead.(i) <- 0;
    t.ba.(i).(n) <- a;
    t.bb.(i).(n) <- b;
    t.blen.(i) <- n + 1
  end

let fresh_bucket t pos time a b =
  let qa, qb =
    if t.pool_n > 0 then begin
      let k = t.pool_n - 1 in
      t.pool_n <- k;
      let qa = t.pool_a.(k) and qb = t.pool_b.(k) in
      t.pool_a.(k) <- [||];
      t.pool_b.(k) <- [||];
      (qa, qb)
    end
    else (Array.make initial_fifo 0, Array.make initial_fifo 0)
  in
  t.bt.(pos) <- time;
  t.ba.(pos) <- qa;
  t.bb.(pos) <- qb;
  t.bhead.(pos) <- 0;
  t.blen.(pos) <- 1;
  qa.(0) <- a;
  qb.(0) <- b

let push t ~time ~a ~b =
  t.counter <- t.counter + 1;
  t.len <- t.len + 1;
  ensure_slot t;
  let first = t.first in
  let last = first + t.nb - 1 in
  let bt = t.bt in
  (* Scan from the back: pushed times never precede the front bucket
     (delays are strictly positive) and are usually among the latest. *)
  let i = ref last in
  while !i >= first && Array.unsafe_get bt !i > time do
    decr i
  done;
  if !i >= first && Array.unsafe_get bt !i = time then
    append_to_bucket t !i a b
  else begin
    let pos = !i + 1 in
    let tail = last - pos + 1 in
    if tail > 0 then begin
      Array.blit t.bt pos t.bt (pos + 1) tail;
      Array.blit t.ba pos t.ba (pos + 1) tail;
      Array.blit t.bb pos t.bb (pos + 1) tail;
      Array.blit t.bhead pos t.bhead (pos + 1) tail;
      Array.blit t.blen pos t.blen (pos + 1) tail
    end;
    fresh_bucket t pos time a b;
    t.nb <- t.nb + 1
  end

let pop t =
  if t.len = 0 then false
  else begin
    let i = t.first in
    let head = Array.unsafe_get t.bhead i in
    Array.unsafe_set t.top_time 0 (Array.unsafe_get t.bt i);
    t.top_a <- Array.unsafe_get (Array.unsafe_get t.ba i) head;
    t.top_b <- Array.unsafe_get (Array.unsafe_get t.bb i) head;
    let n = Array.unsafe_get t.blen i - 1 in
    t.len <- t.len - 1;
    if n = 0 then begin
      retire_bucket t i;
      t.first <- i + 1;
      t.nb <- t.nb - 1;
      if t.nb = 0 then t.first <- 0
    end
    else begin
      Array.unsafe_set t.bhead i (head + 1);
      Array.unsafe_set t.blen i n
    end;
    true
  end

let peek_time t = if t.len = 0 then None else Some t.bt.(t.first)
