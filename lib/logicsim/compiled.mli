(** One-time compilation of a netlist into flat arrays, and the
    allocation-free event-driven kernel that runs on them.

    {!compile} lowers a {!Netlist.Circuit.t} into a {!static}: per-cell kind
    codes, CSR (offset + flat index) arrays for cell inputs, cell outputs
    (with the per-output delay alongside) and per-net combinational fanout,
    the driving cell of every net, the flip-flop list for {!clock_tick} and
    the power-up initialisation schedule. The event loop then touches only
    these arrays plus [Bytes.t] value planes — no [Cell.eval] input/output
    array allocation, no [option] boxing for pending transitions, no boxed
    queue entries (see {!Unboxed_heap}) — while committing {e exactly} the
    same event sequence as {!Reference}: same serial numbers, same
    tie-breaks, same toggle counts, same settled values. The differential
    suite in [test_logicsim.ml] holds the two kernels bitwise equal across
    the whole multiplier catalog.

    Logic values are coded [0 = Zero], [1 = One], [2 = X] (and [3 = no
    pending transition] in the pending plane). *)

(** {1 Compiled circuit} *)

type static = {
  circuit : Netlist.Circuit.t;  (** The source netlist (for names/VCD). *)
  n_nets : int;
  n_cells : int;
  kind : int array;  (** Per cell: {!code_of_kind} of its library kind. *)
  in_off : int array;  (** Cell inputs CSR: spans into [in_net]. *)
  in_net : int array;
  out_off : int array;  (** Cell outputs CSR: spans into [out_net]. *)
  out_net : int array;
  out_delay : float array;  (** Propagation delay, aligned with [out_net]. *)
  fan_off : int array;
      (** Per-net combinational fanout CSR: spans into [fan_cell]. Reader
          order (and multiplicity) matches [Circuit.fanout], with
          sequential readers dropped — the event loop never evaluates
          them. *)
  fan_cell : int array;
  driver : int array;  (** Per net: driving cell id, [-1] for inputs. *)
  dffs : int array;  (** Flip-flop cell ids, ascending. *)
  dff_init_code : int array;  (** Power-up Q value code, aligned. *)
  init_net : int array;
      (** Power-up schedule (ties and flip-flop Qs) in cell order. *)
  init_code : int array;
  pis : int array;  (** Primary inputs in declaration order. *)
  countable : int;  (** Cells that count towards activity (non-ties). *)
  topo : int array Lazy.t;
      (** Combinational cells in dependency order (for the zero-delay
          engines; forced on first use). *)
}

val code_of_kind : Netlist.Cell.kind -> int
val code_of_logic : Netlist.Logic.value -> int
val logic_of_code : int -> Netlist.Logic.value

val compile : Netlist.Circuit.t -> static
(** Lower the circuit. Does not validate — {!create} runs
    {!Netlist.Check.assert_well_formed} first, like the reference kernel. *)

(** {1 Event-driven kernel}

    Drop-in replacement for the reference simulator; {!Simulator} re-exports
    this interface. *)

type t

val create : Netlist.Circuit.t -> t
(** Compile, initialise ties and flip-flops, settle, zero the toggle
    counters. @raise Failure on a malformed circuit. *)

val of_static : static -> t
(** Fresh simulation state over an existing compilation. *)

val static : t -> static
val circuit : t -> Netlist.Circuit.t
val now : t -> float

val value : t -> Netlist.Circuit.net -> Netlist.Logic.value
val set_input : t -> Netlist.Circuit.net -> Netlist.Logic.value -> unit
val settle : ?event_limit:int -> t -> unit
val clock_tick : t -> unit

val cell_toggles : t -> int array
val cell_toggles_into : t -> int array -> unit
(** Copy the per-cell toggle counters into a caller-owned buffer
    (length [n_cells]) without allocating. *)

val total_toggles : t -> int
val reset_toggles : t -> unit
val snapshot_values : t -> Netlist.Logic.value array
val events_processed : t -> int

val countable_cells : t -> int
(** Hoisted activity denominator: cells that are not ties. *)

val has_dffs : t -> bool

(** {1 Incremental necessary-transition accounting}

    The kernel tracks which driven nets committed since the last baseline,
    so per-cycle necessary-transition counting costs O(nets touched) with
    zero allocation instead of a full-circuit scan against a fresh
    snapshot. *)

val snapshot_baseline : t -> unit
(** Record the current settled values as the comparison baseline and clear
    the touched-net set. *)

val necessary_transitions : t -> int
(** Number of driven nets whose settled value changed 0↔1 since the
    baseline (X resolutions are free, matching the reference accounting),
    then re-baseline. *)
