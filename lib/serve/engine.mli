(** The pure request engine — the one-shot execution paths behind both the
    CLI subcommands and the resident service, extracted so the two are the
    same code (and so the serve tests can assert replies bitwise-equal to
    the one-shot results).

    Every function is deterministic: results are bitwise-identical at any
    pool size ({!Parallel.Pool}'s contract), and the JSON encoders print
    floats with full round-trip precision, so two encodings are equal iff
    the underlying float64 bits are. *)

val problem_of_label :
  Device.Technology.t -> string -> Power_core.Power_law.problem
(** Calibrated problem for a Table 1 label on a flavor (memoized
    process-wide by {!Power_core.Calibration}). @raise Not_found on an
    unknown label — callers validate via {!Protocol}. *)

val optimum :
  ?tech:Device.Technology.t -> string -> Power_core.Numerical_opt.point
(** Cold seeded solve of one architecture's optimal working point —
    exactly what the table drivers run per row. Default tech: LL. *)

val sweep :
  ?pool:Parallel.Pool.t ->
  ?tech:Device.Technology.t ->
  ?samples:int ->
  ?vdd_lo:float ->
  ?vdd_hi:float ->
  string ->
  Power_core.Numerical_opt.point list
(** The [optpower sweep] body: Ptot(Vdd) locus for one architecture.
    Defaults match the CLI (25 samples, 0.25–1.2 V). *)

val rank_sort :
  (string * Power_core.Numerical_opt.point) list ->
  (string * Power_core.Numerical_opt.point) list
(** Stable sort by ascending optimal Ptot — the ordering step of {!rank},
    exposed so the batched session can rebuild a rank reply from chunk
    results. *)

val rank :
  ?pool:Parallel.Pool.t ->
  ?tech:Device.Technology.t ->
  ?archs:string list ->
  unit ->
  (string * Power_core.Numerical_opt.point) list
(** Solve the given architectures (default: the full Table 1 catalog) as
    one warm-start continuation family ({!Power_core.Numerical_opt.optima_continued})
    and return them sorted by ascending optimal Ptot (ties keep catalog
    order). *)

val lint :
  ?pool:Parallel.Pool.t -> ?only:string list -> unit ->
  Analysis.Engine.report
(** The [optpower lint] body: full engine run, optionally filtered to the
    given rule ids. *)

val certify :
  ?pool:Parallel.Pool.t ->
  ?flavors:Device.Technology.t list ->
  unit ->
  Report.Certify_report.row list
(** The [optpower certify] body. *)

val explore :
  ?pool:Parallel.Pool.t ->
  ?prune:bool ->
  ?store:Store.t ->
  ?max_latency:float ->
  ?max_area:float ->
  Power_core.Explorer.axes ->
  Power_core.Explorer.result
(** The [optpower explore] body — {!Power_core.Explorer.explore}, with
    the warm store and constraint caps threaded through. *)

(** {1 Wire encodings}

    Shared by the serve handlers, the CLI [client] printer and the
    equivalence tests. *)

val point_json : Power_core.Numerical_opt.point -> Json.t

val optimum_json :
  tech:Device.Technology.t -> arch:string ->
  Power_core.Numerical_opt.point -> Json.t

val sweep_json :
  tech:Device.Technology.t -> arch:string ->
  Power_core.Numerical_opt.point list -> Json.t

val rank_json :
  tech:Device.Technology.t ->
  (string * Power_core.Numerical_opt.point) list -> Json.t

val lint_json : Analysis.Engine.report -> Json.t
(** The {!Analysis.Render.json} document re-read into wire JSON, wrapped
    with the exit code. *)

val certify_json : Report.Certify_report.row list -> Json.t

val explore_json : Power_core.Explorer.result -> Json.t
(** Pareto fronts per slice plus the prune funnel totals. *)

val store_stats_json : Store.t option -> Json.t
(** Warm-store statistics payload; [None] encodes [{"enabled": false}]. *)

val run_call : ?pool:Parallel.Pool.t -> ?store:Store.t -> Protocol.call -> Json.t
(** One-shot execution of a validated call: dispatch to the function above
    and encode the reply payload. This is the reference the batched
    session must match bitwise — with the same [store] state, a warm
    reply replays the exact bits a cold solve would produce. *)
