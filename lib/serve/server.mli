(** JSON-lines socket front of the resident session (DESIGN.md §14).

    One systhread per connection reads request frames, submits them to the
    {!Session} and writes one reply line per frame {e in order} — per-client
    FIFO is a consequence of the handler being sequential. Malformed input
    (bad JSON, oversized or EOF-truncated frames, unknown methods, invalid
    parameters) always produces a structured error reply; nothing a client
    sends can crash or wedge the server. *)

val handle_connection : Session.t -> Unix.file_descr -> unit
(** Serve one already-connected stream until EOF, then close the
    descriptor. Exposed so tests can drive the full wire path over
    [socketpair]s without a listening socket. Oversized lines are
    discarded up to their terminating newline and answered with a
    [frame-error]; a final partial line (EOF before newline) is answered
    with a [frame-error] before closing. *)

type listener
(** A bound Unix-domain listening socket plus its accept thread. *)

val listen_unix : ?backlog:int -> Session.t -> path:string -> listener
(** Bind [path] (removing a stale socket file left by a dead server),
    start accepting. @raise Unix.Unix_error when the path is unusable or
    a live server already owns it. *)

val stop : listener -> unit
(** Ask the listener to shut down: stop accepting. The accept thread then
    joins every connection handler, drains the session ({!Session.shutdown})
    and unlinks the socket file. Returns immediately; {!wait} observes
    completion. Idempotent. *)

val wait : listener -> unit
(** Block until the listener has fully shut down (after {!stop}, or after
    a fatal accept error). *)
