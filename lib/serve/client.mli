(** Minimal blocking JSON-lines client for [optpower serve] — used by
    [optpower client], the serve tests and the load bench. *)

type t

val connect : string -> t
(** Connect to a server's Unix-domain socket path.
    @raise Unix.Unix_error when nothing is listening. *)

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected stream (tests use one end of a
    [socketpair]). *)

val send_line : t -> string -> unit
(** Write one raw frame plus the newline — also the escape hatch for
    sending deliberately malformed frames in tests. *)

val recv_line : t -> string option
(** Next reply line (newline stripped), [None] on EOF. *)

val request : t -> Json.t -> Json.t
(** Send one frame, read one reply line, parse it.
    @raise Failure on EOF or an unparseable reply. *)

val rpc :
  t -> ?id:Json.t -> meth:string -> (string * Json.t) list ->
  (Json.t, string * string) result
(** One call round-trip: builds [{"id":…,"method":…,"params":{…}}], sends
    it and splits the reply into [Ok payload] or [Error (code, message)].
    [id] defaults to an internal per-client sequence number. *)

val close : t -> unit
