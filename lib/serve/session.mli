(** The resident solve session — the engine-ownership layer behind
    [optpower serve] (DESIGN.md §14).

    A session owns, for the process lifetime, everything the one-shot CLI
    rebuilds per invocation: the domain pool, the calibration and
    linearisation memo tables it warms as a side effect of solving, and a
    result cache keyed by validated {!Protocol.call}. Requests from any
    number of threads funnel through a bounded queue into a single
    dispatcher, which drains up to [max_batch] requests per cycle and runs
    {e all} of their work units through one {!Parallel.Pool.map} dispatch.

    {b Bitwise equality.} A request's work units are a pure function of
    that request alone — an [optimum] is one cold chain of length 1, a
    [rank] contributes exactly the {!Power_core.Numerical_opt.solve_chain}
    chunks its own one-shot [optima_continued] would build, and [sweep] /
    [lint] / [certify] run as single units calling the same {!Engine}
    functions on the session pool. Co-batched requests share only the pool
    dispatch, never a warm-start chain, so every reply is bitwise-identical
    to {!Engine.run_call} on an idle process, whatever the batch
    composition or pool size.

    {b Backpressure.} {!submit} blocks while the queue holds
    [queue_capacity] requests — overload slows clients down; nothing is
    ever dropped.

    {b Observability.} [serve.requests] / [serve.replies] count accepted
    and answered requests (equal after a clean drain); [serve.batches],
    [serve.batched] and the [serve.queue_wait_ns] histogram carry the
    ["sched"] category because batch composition depends on timing. *)

exception Shutting_down
(** Raised by {!submit} when the session is draining — maps to the
    [shutting-down] wire error. *)

type config = {
  jobs : int option;  (** Session pool size; [None] = the default size. *)
  queue_capacity : int;  (** Bounded queue length (default 64). *)
  max_batch : int;  (** Max requests coalesced per cycle (default 32). *)
  cache : bool;  (** Memoise replies by call (default [true]). *)
  store : Store.t option;
      (** Warm store opened once per process and owned by the session
          ({!shutdown} closes it): [explore] and [optimum] answer warm
          after a restart, and [store_stats] reports it (that call
          bypasses the result cache — its counters are live). Default
          [None] (cold). *)
}

val default_config : config

type t

val create : ?autostart:bool -> ?config:config -> unit -> t
(** Build a session and (unless [autostart:false]) start its dispatcher.
    [autostart:false] lets tests enqueue several requests first and then
    {!start}, making a [>1]-request batch deterministic. *)

val start : t -> unit
(** Start the dispatcher thread. Idempotent; no-op after {!shutdown}. *)

val submit : t -> Protocol.call -> Json.t
(** Execute a validated call and return its reply payload (the [ok] field).
    Blocks for backpressure and for the result. Thread-safe; replies to
    one thread's successive submits are produced in submission order.
    @raise Shutting_down when the session no longer accepts work. *)

val pending : t -> int
(** Requests currently queued (not yet picked up by the dispatcher). *)

val pool : t -> Parallel.Pool.t
(** The session-owned pool — exposed for the drain assertion
    ([Pool.pending] = 0) and for tests. *)

val cache_stats : t -> Parallel.Memo.stats
(** Hit/miss/entry counts of the session result cache. *)

val shutdown : t -> unit
(** Graceful drain: stop accepting new work ({!submit} raises
    {!Shutting_down}), finish every queued request, join the dispatcher,
    shut the pool down. Idempotent. *)
