(** Minimal JSON for the wire protocol — zero dependencies, total parser.

    The service speaks JSON-lines: one value per frame, no newline inside a
    frame. This module guarantees two properties the protocol tests rely
    on:

    - {b Round trip.} [parse (to_string v)] succeeds and the result is
      {!equal} to [v] — numbers are printed with enough digits ([%.17g])
      that every float64 bit survives, so a reply built from solver output
      re-reads to the identical bits.
    - {b Totality.} [parse] never raises and never loops: malformed input,
      deeply nested input (depth capped) and non-finite number literals
      ([NaN], [Infinity] — invalid JSON) all return [Error]. Numeric
      {e overflow} (["1e999"]) parses to [infinity]; rejecting non-finite
      payloads is the protocol layer's job ({!Protocol}), not the
      grammar's. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error. *)

val to_string : t -> string
(** Compact one-line rendering (no newlines, ever — it must stay one
    frame). Integral numbers within the exact-float64 range print without
    an exponent or decimal point; everything else uses [%.17g].
    @raise Invalid_argument on a non-finite {!Num} — the protocol never
    emits NaN/Infinity. *)

val equal : t -> t -> bool
(** Structural equality; numbers compare by bit pattern (so [nan = nan]
    and [0.0 <> -0.0] — exactly the round-trip notion). Object fields
    compare in order: the printer preserves field order, so round-tripped
    values match without sorting. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else or when absent. *)
