module N = Power_core.Numerical_opt

let problem_of_label tech label =
  Power_core.Calibration.problem_of_row tech
    ~f:Power_core.Paper_data.frequency
    (Power_core.Paper_data.table1_find label)

let optimum ?(tech = Device.Technology.ll) arch =
  N.optimum (problem_of_label tech arch)

let sweep ?pool ?(tech = Device.Technology.ll) ?(samples = 25)
    ?(vdd_lo = 0.25) ?(vdd_hi = 1.2) arch =
  N.sweep_vdd ?pool ~samples ~vdd_lo ~vdd_hi (problem_of_label tech arch)

let catalog_labels =
  List.map
    (fun (r : Power_core.Paper_data.table1_row) -> r.label)
    Power_core.Paper_data.table1

(* Sorting is stable and the solve order is the catalog order, so ties
   (there are none today, but the contract matters) stay deterministic. *)
let rank_sort pairs =
  List.stable_sort
    (fun (_, (a : N.point)) (_, (b : N.point)) ->
      Float.compare a.total b.total)
    pairs

let rank ?pool ?(tech = Device.Technology.ll) ?archs () =
  let archs = match archs with Some a -> a | None -> catalog_labels in
  let points =
    N.optima_continued ?pool ~problem_of:(problem_of_label tech) archs
  in
  rank_sort (List.combine archs points)

let lint ?pool ?only () =
  let report = Analysis.Engine.run ?pool () in
  match only with
  | None -> report
  | Some ids -> Analysis.Engine.filter_rules ids report

let certify ?pool ?flavors () = Report.Certify_report.rows ?pool ?flavors ()

let explore ?pool ?prune ?store ?max_latency ?max_area axes =
  Power_core.Explorer.explore ?pool ?prune ?store ?max_latency ?max_area axes

(* Wire encodings. *)

let point_json (p : N.point) =
  Json.Obj
    [
      ("vdd", Json.Num p.vdd);
      ("vth", Json.Num p.vth);
      ("pdyn", Json.Num p.dynamic);
      ("pstat", Json.Num p.static);
      ("ptot", Json.Num p.total);
    ]

let optimum_json ~tech ~arch point =
  Json.Obj
    [
      ("method", Json.Str "optimum");
      ("tech", Json.Str (Device.Technology.name tech));
      ("arch", Json.Str arch);
      ("optimum", point_json point);
    ]

let sweep_json ~tech ~arch points =
  Json.Obj
    [
      ("method", Json.Str "sweep");
      ("tech", Json.Str (Device.Technology.name tech));
      ("arch", Json.Str arch);
      ("points", Json.Arr (List.map point_json points));
    ]

let rank_json ~tech ranked =
  Json.Obj
    [
      ("method", Json.Str "rank");
      ("tech", Json.Str (Device.Technology.name tech));
      ( "ranking",
        Json.Arr
          (List.map
             (fun (arch, (p : N.point)) ->
               Json.Obj
                 [
                   ("arch", Json.Str arch);
                   ("vdd", Json.Num p.vdd);
                   ("vth", Json.Num p.vth);
                   ("ptot", Json.Num p.total);
                 ])
             ranked) );
    ]

let lint_json report =
  (* The lint report already has a canonical JSON rendering
     (Analysis.Render.json, also what `optpower lint --format json`
     prints); re-read it into wire JSON rather than maintaining a second
     encoder. The parse cannot fail on our own renderer's output. *)
  let doc =
    match Json.parse (Analysis.Render.json report) with
    | Ok j -> j
    | Error msg -> failwith ("Engine.lint_json: unparseable report: " ^ msg)
  in
  Json.Obj
    [
      ("method", Json.Str "lint");
      ("exit_code", Json.Num (float_of_int (Analysis.Engine.exit_code report)));
      ("report", doc);
    ]

let certify_json rows =
  Json.Obj
    [
      ("method", Json.Str "certify");
      ( "violations",
        Json.Num (float_of_int (Report.Certify_report.violations rows)) );
      ( "rows",
        Json.Arr
          (List.map
             (fun (r : Report.Certify_report.row) ->
               let cert = r.cert in
               Json.Obj
                 [
                   ("label", Json.Str r.label);
                   ("ok", Json.Bool r.ok);
                   ("ptot_lo", Json.Num cert.ptot.lo);
                   ("ptot_hi", Json.Num cert.ptot.hi);
                   ("vdd_lo", Json.Num cert.vdd_bracket.lo);
                   ("vdd_hi", Json.Num cert.vdd_bracket.hi);
                   ("optimum", point_json r.optimum);
                 ])
             rows) );
    ]

let explore_json (r : Power_core.Explorer.result) =
  let entry_json (e : Power_core.Explorer.entry) =
    Json.Obj
      [
        ("design", Json.Str e.design);
        ("family", Json.Str (Power_core.Explorer.family_name e.family));
        ("radix", Json.Num (float_of_int e.radix));
        ( "signed",
          Json.Bool (e.signedness = Multipliers.Booth.Signed) );
        ("stages", Json.Num (float_of_int e.stages));
        ("copies", Json.Num (float_of_int e.copies));
        ("tech", Json.Str e.tech);
        ("ptot", Json.Num e.power);
        ("vdd", Json.Num e.vdd);
        ("cert_lo", Json.Num e.cert_lo);
        ("latency", Json.Num e.latency);
        ("area", Json.Num e.area);
      ]
  in
  let slice_json (s : Power_core.Explorer.slice) =
    Json.Obj
      [
        ("f", Json.Num s.f);
        ("front", Json.Arr (List.map entry_json s.front));
      ]
  in
  let t = r.totals in
  Json.Obj
    [
      ("method", Json.Str "explore");
      ("pruned", Json.Bool r.pruned);
      ( "totals",
        Json.Obj
          [
            ("enumerated", Json.Num (float_of_int t.enumerated));
            ("filtered", Json.Num (float_of_int t.filtered));
            ("bound_pruned", Json.Num (float_of_int t.bound_pruned));
            ("cert_pruned", Json.Num (float_of_int t.cert_pruned));
            ("store_hits", Json.Num (float_of_int t.store_hits));
            ("exact_solves", Json.Num (float_of_int t.exact_solves));
            ("front_size", Json.Num (float_of_int t.front_size));
          ] );
      ("slices", Json.Arr (List.map slice_json r.slices));
    ]

let store_stats_json store =
  Json.Obj
    (( "method", Json.Str "store_stats" )
     ::
     (match store with
     | None -> [ ("enabled", Json.Bool false) ]
     | Some st ->
       let s = Store.stats st in
       [
         ("enabled", Json.Bool true);
         ("path", Json.Str s.path);
         ( "mode",
           Json.Str
             (match s.mode with
             | Store.Read_write -> "read-write"
             | Store.Read_only -> "read-only") );
         ("fingerprint", Json.Str (Store.fingerprint st));
         ("entries", Json.Num (float_of_int s.entries));
         ("hits", Json.Num (float_of_int s.hits));
         ("misses", Json.Num (float_of_int s.misses));
         ("puts", Json.Num (float_of_int s.puts));
         ("invalidated", Json.Bool s.invalidated);
         ("recovered", Json.Num (float_of_int s.recovered));
         ("log_bytes", Json.Num (float_of_int s.log_bytes));
         ("index_bytes", Json.Num (float_of_int s.index_bytes));
       ]))

let run_call ?pool ?store (call : Protocol.call) =
  match call with
  | Protocol.Optimum { tech; arch } ->
    optimum_json ~tech ~arch
      (match store with
      | None -> optimum ~tech arch
      | Some st -> N.optimum_stored ~store:st (problem_of_label tech arch))
  | Protocol.Sweep { tech; arch; samples; vdd_lo; vdd_hi } ->
    sweep_json ~tech ~arch (sweep ?pool ~tech ~samples ~vdd_lo ~vdd_hi arch)
  | Protocol.Rank { tech; archs } ->
    rank_json ~tech (rank ?pool ~tech ~archs ())
  | Protocol.Lint { only } -> lint_json (lint ?pool ?only ())
  | Protocol.Certify { flavors } -> certify_json (certify ?pool ~flavors ())
  | Protocol.Explore
      { bits; families; radices; stages; copies; signed; fmults; techs;
        prune; max_latency; max_area } ->
    let axes =
      {
        Power_core.Explorer.bits;
        families;
        radices;
        signednesses =
          [ (if signed then Multipliers.Booth.Signed
             else Multipliers.Booth.Unsigned) ];
        stages;
        copies;
        fmults;
        techs;
      }
    in
    explore_json
      (explore ?pool ~prune ?store ?max_latency ?max_area axes)
  | Protocol.Store_stats -> store_stats_json store
