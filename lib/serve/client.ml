type t = {
  fd : Unix.file_descr;
  mutable residue : string;
  mutable next_id : int;
}

let of_fd fd = { fd; residue = ""; next_id = 1 }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let send_line c s =
  let line = s ^ "\n" in
  let rec w off len =
    if len > 0 then begin
      let n = Unix.write_substring c.fd line off len in
      w (off + n) (len - n)
    end
  in
  w 0 (String.length line)

let recv_line c =
  let chunk = Bytes.create 8192 in
  let rec go () =
    match String.index_opt c.residue '\n' with
    | Some i ->
      let line = String.sub c.residue 0 i in
      c.residue <-
        String.sub c.residue (i + 1) (String.length c.residue - i - 1);
      Some line
    | None -> (
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
        c.residue <- c.residue ^ Bytes.sub_string chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let request c frame =
  send_line c (Json.to_string frame);
  match recv_line c with
  | None -> failwith "Serve.Client.request: connection closed"
  | Some line -> (
    match Json.parse line with
    | Ok reply -> reply
    | Error msg -> failwith ("Serve.Client.request: bad reply: " ^ msg))

let rpc c ?id ~meth params =
  let id =
    match id with
    | Some id -> id
    | None ->
      let n = c.next_id in
      c.next_id <- n + 1;
      Json.Num (float_of_int n)
  in
  let reply =
    request c
      (Json.Obj
         [
           ("id", id);
           ("method", Json.Str meth);
           ("params", Json.Obj params);
         ])
  in
  match Json.member "ok" reply with
  | Some payload -> Ok payload
  | None -> (
    match Json.member "error" reply with
    | Some err ->
      let field name =
        match Json.member name err with Some (Json.Str s) -> s | _ -> ""
      in
      Error (field "code", field "message")
    | None -> failwith "Serve.Client.rpc: reply has neither ok nor error")

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
