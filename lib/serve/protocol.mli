(** The wire protocol of [optpower serve] — JSON-lines request/reply
    framing (DESIGN.md §14).

    One request per line, one reply line per request, in order:

    {v
    -> {"id":1,"method":"optimum","params":{"arch":"RCA","tech":"LL"}}
    <- {"id":1,"ok":{"method":"optimum","arch":"RCA","tech":"LL", ...}}
    -> {"id":2,"method":"nope"}
    <- {"id":2,"error":{"code":"unknown-method","message":"..."}}
    v}

    Every malformed frame yields a {e structured error reply} with a
    stable [code]; the session is never crashed or wedged by input. The
    parsed {!call} carries fully validated, defaulted parameters, so
    everything past this layer is total. *)

type error_code =
  | Parse  (** Frame is not valid JSON, or not a request object. *)
  | Frame  (** Frame exceeds {!max_frame_bytes} or was truncated by EOF. *)
  | Unknown_method
  | Params  (** Unknown architecture/technology/rule, non-finite or
                out-of-range numeric parameter, wrong type. *)
  | Shutdown  (** Session is draining; request was not accepted. *)
  | Internal

val code_string : error_code -> string
(** Stable wire names: ["parse-error"], ["frame-error"],
    ["unknown-method"], ["invalid-params"], ["shutting-down"],
    ["internal-error"]. *)

(** A validated request body. Parameter defaults are baked in here so that
    two frames differing only in explicit-vs-defaulted parameters are the
    {e same} call (and hit the same session cache entry). *)
type call =
  | Optimum of { tech : Device.Technology.t; arch : string }
  | Sweep of {
      tech : Device.Technology.t;
      arch : string;
      samples : int;  (** Default 25, the CLI sweep's default. *)
      vdd_lo : float;  (** Default 0.25 V. *)
      vdd_hi : float;  (** Default 1.2 V. *)
    }
  | Rank of { tech : Device.Technology.t; archs : string list }
      (** [archs] defaults to the full Table 1 catalog. *)
  | Lint of { only : string list option }
  | Certify of { flavors : Device.Technology.t list }
      (** Defaults to all three flavors. *)
  | Explore of {
      bits : int;  (** Even, in [4, 16]; default 8. *)
      families : Power_core.Explorer.family list;
          (** From ["families"]: a name or array of names among
              ["booth"], ["dadda"], ["wallace"]; default all three. *)
      radices : int list;  (** Subset of {2, 4, 8}; default all three. *)
      stages : int list;  (** Default [1; 2; 3]. *)
      copies : int list;  (** Default [1; 2; 4]. *)
      signed : bool;  (** Default false (unsigned operands). *)
      fmults : float list;  (** Default [0.5; 1; 2; 4], all > 0. *)
      techs : Device.Technology.t list;
          (** From ["tech"]: a single flavor or ["all"] (the default). *)
      prune : bool;  (** Default true; [false] forces exhaustive solves. *)
      max_latency : float option;
          (** Optional effective-logical-depth cap; must be finite > 0
              (NaN and negatives are [invalid-params]). *)
      max_area : float option;  (** Optional cell-count cap; same rules. *)
    }
      (** Design-space exploration ({!Power_core.Explorer.explore});
          the axes may enumerate at most {!max_explore_candidates}. *)
  | Store_stats
      (** Warm-store statistics of the serving process (entries, hit and
          put counts, mode, fingerprint); no parameters. *)

type request = { id : Json.t; call : call }
(** [id] is echoed verbatim in the reply ([Null] when absent). *)

val max_frame_bytes : int
(** Longest accepted request frame (bytes, newline excluded): 65536. *)

val max_sweep_samples : int
(** Upper bound on [sweep.samples] (16384) — a service-side sanity cap. *)

val max_explore_candidates : int
(** Upper bound on the candidate count an [explore] request's axes may
    enumerate (4096) — a service-side sanity cap. *)

val parse_frame :
  string -> (request, Json.t * error_code * string) result
(** Parse and validate one frame. The error carries the request id when
    one could be recovered from the malformed frame (so the client can
    still correlate), [Null] otherwise. *)

val method_name : call -> string

val ok_frame : id:Json.t -> Json.t -> string
(** [{"id":<id>,"ok":<payload>}] — no trailing newline. *)

val error_frame : id:Json.t -> error_code -> string -> string
(** [{"id":<id>,"error":{"code":...,"message":...}}] — no newline. *)
