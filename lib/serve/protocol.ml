type error_code =
  | Parse
  | Frame
  | Unknown_method
  | Params
  | Shutdown
  | Internal

let code_string = function
  | Parse -> "parse-error"
  | Frame -> "frame-error"
  | Unknown_method -> "unknown-method"
  | Params -> "invalid-params"
  | Shutdown -> "shutting-down"
  | Internal -> "internal-error"

type call =
  | Optimum of { tech : Device.Technology.t; arch : string }
  | Sweep of {
      tech : Device.Technology.t;
      arch : string;
      samples : int;
      vdd_lo : float;
      vdd_hi : float;
    }
  | Rank of { tech : Device.Technology.t; archs : string list }
  | Lint of { only : string list option }
  | Certify of { flavors : Device.Technology.t list }
  | Explore of {
      bits : int;
      families : Power_core.Explorer.family list;
      radices : int list;
      stages : int list;
      copies : int list;
      signed : bool;
      fmults : float list;
      techs : Device.Technology.t list;
      prune : bool;
      max_latency : float option;
      max_area : float option;
    }
  | Store_stats

type request = { id : Json.t; call : call }

let max_frame_bytes = 65536
let max_sweep_samples = 16384
let max_explore_candidates = 4096

let method_name = function
  | Optimum _ -> "optimum"
  | Sweep _ -> "sweep"
  | Rank _ -> "rank"
  | Lint _ -> "lint"
  | Certify _ -> "certify"
  | Explore _ -> "explore"
  | Store_stats -> "store_stats"

(* Validation helpers: every failure raises [Invalid Params] with a
   message; [parse_frame] catches and turns it into the error triple. *)

exception Invalid of error_code * string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid (Params, m))) fmt

let catalog_labels =
  List.map
    (fun (r : Power_core.Paper_data.table1_row) -> r.label)
    Power_core.Paper_data.table1

let arch_of_json = function
  | Some (Json.Str label) ->
    if List.mem label catalog_labels then label
    else invalid "unknown architecture %S (see Table 1 labels)" label
  | Some _ -> invalid "\"arch\" must be a string"
  | None -> invalid "missing required parameter \"arch\""

let tech_of_string = function
  | "ULL" -> Device.Technology.ull
  | "LL" -> Device.Technology.ll
  | "HS" -> Device.Technology.hs
  | s -> invalid "unknown technology %S (expected ULL, LL or HS)" s

let tech_of_json = function
  | None -> Device.Technology.ll
  | Some (Json.Str s) -> tech_of_string s
  | Some _ -> invalid "\"tech\" must be a string"

let finite_number name = function
  | Json.Num v when Float.is_finite v -> v
  | Json.Num _ -> invalid "%S must be finite" name
  | _ -> invalid "%S must be a number" name

let int_param name ~default ~min ~max params =
  match Json.member name params with
  | None -> default
  | Some j ->
    let v = finite_number name j in
    if Float.is_integer v && v >= float_of_int min && v <= float_of_int max
    then int_of_float v
    else invalid "%S must be an integer in [%d, %d]" name min max

let float_param name ~default params =
  match Json.member name params with
  | None -> default
  | Some j -> finite_number name j

let string_list name = function
  | Json.Arr items ->
    List.map
      (function
        | Json.Str s -> s
        | _ -> invalid "%S must be an array of strings" name)
      items
  | _ -> invalid "%S must be an array of strings" name

let bool_param name ~default params =
  match Json.member name params with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> invalid "%S must be a boolean" name

(* [name] given as a single number is accepted as a one-element axis. *)
let num_axis name ~default params =
  match Json.member name params with
  | None -> default
  | Some (Json.Num _ as j) -> [ finite_number name j ]
  | Some (Json.Arr items) ->
    if items = [] then invalid "%S must not be empty" name;
    List.map (finite_number name) items
  | Some _ -> invalid "%S must be a number or an array of numbers" name

let int_axis name ~default ~min ~max params =
  List.map
    (fun v ->
      if Float.is_integer v && v >= float_of_int min && v <= float_of_int max
      then int_of_float v
      else invalid "%S entries must be integers in [%d, %d]" name min max)
    (num_axis name ~default:(List.map float_of_int default) params)

let parse_call meth params =
  match meth with
  | "optimum" ->
    Optimum
      {
        tech = tech_of_json (Json.member "tech" params);
        arch = arch_of_json (Json.member "arch" params);
      }
  | "sweep" ->
    let samples =
      int_param "samples" ~default:25 ~min:2 ~max:max_sweep_samples params
    in
    let vdd_lo = float_param "vdd_lo" ~default:0.25 params in
    let vdd_hi = float_param "vdd_hi" ~default:1.2 params in
    if not (vdd_lo > 0.0 && vdd_hi > vdd_lo && vdd_hi <= 20.0) then
      invalid "sweep range must satisfy 0 < vdd_lo < vdd_hi <= 20";
    Sweep
      {
        tech = tech_of_json (Json.member "tech" params);
        arch = arch_of_json (Json.member "arch" params);
        samples;
        vdd_lo;
        vdd_hi;
      }
  | "rank" ->
    let archs =
      match Json.member "archs" params with
      | None -> catalog_labels
      | Some j ->
        let archs = string_list "archs" j in
        if archs = [] then invalid "\"archs\" must not be empty";
        List.iter
          (fun a ->
            if not (List.mem a catalog_labels) then
              invalid "unknown architecture %S (see Table 1 labels)" a)
          archs;
        archs
    in
    Rank { tech = tech_of_json (Json.member "tech" params); archs }
  | "lint" ->
    let only =
      match Json.member "only" params with
      | None -> None
      | Some j ->
        let ids = string_list "only" j in
        List.iter
          (fun id ->
            match Analysis.Rule.find id with
            | _ -> ()
            | exception Not_found ->
              invalid "unknown rule id %S (see lint --list-rules)" id)
          ids;
        Some ids
    in
    Lint { only }
  | "certify" ->
    let flavors =
      match Json.member "tech" params with
      | None -> Device.Technology.all
      | Some (Json.Str "all") -> Device.Technology.all
      | Some (Json.Str s) -> [ tech_of_string s ]
      | Some _ -> invalid "\"tech\" must be a string"
    in
    Certify { flavors }
  | "explore" ->
    let bits = int_param "bits" ~default:8 ~min:4 ~max:16 params in
    if bits mod 2 <> 0 then invalid "\"bits\" must be even";
    let radices = int_axis "radices" ~default:[ 2; 4; 8 ] ~min:2 ~max:8 params in
    List.iter
      (fun r ->
        if r <> 2 && r <> 4 && r <> 8 then
          invalid "\"radices\" entries must be 2, 4 or 8")
      radices;
    let stages = int_axis "stages" ~default:[ 1; 2; 3 ] ~min:1 ~max:16 params in
    let copies = int_axis "copies" ~default:[ 1; 2; 4 ] ~min:1 ~max:64 params in
    let signed = bool_param "signed" ~default:false params in
    let fmults =
      num_axis "fmults" ~default:[ 0.5; 1.0; 2.0; 4.0 ] params
    in
    List.iter
      (fun m -> if not (m > 0.0) then invalid "\"fmults\" entries must be > 0")
      fmults;
    let techs =
      match Json.member "tech" params with
      | None -> Device.Technology.all
      | Some (Json.Str "all") -> Device.Technology.all
      | Some (Json.Str s) -> [ tech_of_string s ]
      | Some _ -> invalid "\"tech\" must be a string"
    in
    let prune = bool_param "prune" ~default:true params in
    let family_of_name s =
      match Power_core.Explorer.family_of_string s with
      | Some f -> f
      | None ->
        invalid "unknown family %S (expected booth, dadda or wallace)" s
    in
    let families =
      match Json.member "families" params with
      | None ->
        [ Power_core.Explorer.Booth; Power_core.Explorer.Dadda;
          Power_core.Explorer.Wallace ]
      | Some (Json.Str s) -> [ family_of_name s ]
      | Some (Json.Arr _ as j) ->
        let names = string_list "families" j in
        if names = [] then invalid "\"families\" must not be empty";
        List.map family_of_name names
      | Some _ -> invalid "\"families\" must be a string or array of strings"
    in
    (* Constraint caps: absent = unconstrained; present must be a finite
       strictly positive number (NaN and negatives are invalid-params). *)
    let cap_param name =
      match Json.member name params with
      | None -> None
      | Some j ->
        let v = finite_number name j in
        if v > 0.0 then Some v else invalid "%S must be > 0" name
    in
    let max_latency = cap_param "max_latency" in
    let max_area = cap_param "max_area" in
    let axes =
      {
        Power_core.Explorer.bits;
        families;
        radices;
        signednesses =
          [ (if signed then Multipliers.Booth.Signed else Multipliers.Booth.Unsigned) ];
        stages;
        copies;
        fmults;
        techs;
      }
    in
    let size = Power_core.Explorer.space_size axes in
    if size = 0 then
      invalid "axes enumerate no candidates (no family/radix/stages combo validates)";
    if size > max_explore_candidates then
      invalid "axes enumerate %d candidates (cap %d); narrow an axis" size
        max_explore_candidates;
    Explore
      { bits; families; radices; stages; copies; signed; fmults; techs;
        prune; max_latency; max_area }
  | "store_stats" -> Store_stats
  | m -> raise (Invalid (Unknown_method, Printf.sprintf "unknown method %S" m))

let parse_frame line =
  if String.length line > max_frame_bytes then
    Error
      ( Json.Null,
        Frame,
        Printf.sprintf "frame exceeds %d bytes" max_frame_bytes )
  else
    match Json.parse line with
    | Error msg -> Error (Json.Null, Parse, msg)
    | Ok json ->
      let id = Option.value ~default:Json.Null (Json.member "id" json) in
      (match json with
      | Json.Obj _ -> (
        match Json.member "method" json with
        | Some (Json.Str meth) ->
          let params =
            Option.value ~default:(Json.Obj []) (Json.member "params" json)
          in
          (match params with
          | Json.Obj _ -> (
            match parse_call meth params with
            | call -> Ok { id; call }
            | exception Invalid (code, msg) -> Error (id, code, msg))
          | _ -> Error (id, Params, "\"params\" must be an object"))
        | Some _ -> Error (id, Parse, "\"method\" must be a string")
        | None -> Error (id, Parse, "missing \"method\""))
      | _ -> Error (id, Parse, "request frame must be a JSON object"))

let ok_frame ~id payload =
  Json.to_string (Json.Obj [ ("id", id); ("ok", payload) ])

let error_frame ~id code message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ( "error",
           Json.Obj
             [
               ("code", Json.Str (code_string code));
               ("message", Json.Str message);
             ] );
       ])
