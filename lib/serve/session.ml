module N = Power_core.Numerical_opt

exception Shutting_down

type config = {
  jobs : int option;
  queue_capacity : int;
  max_batch : int;
  cache : bool;
  store : Store.t option;
}

let default_config =
  { jobs = None; queue_capacity = 64; max_batch = 32; cache = true;
    store = None }

(* Deterministic per-workload counters keep the default category; batch
   composition and queue residency depend on wall-clock timing, so those
   carry "sched" and stay out of normalized profiles. *)
let c_requests = Obs.Counter.make "serve.requests"
let c_replies = Obs.Counter.make "serve.replies"
let c_batches = Obs.Counter.make ~cat:"sched" "serve.batches"
let c_batched = Obs.Counter.make ~cat:"sched" "serve.batched"
let h_queue_wait = Obs.Hist.make ~cat:"sched" "serve.queue_wait_ns"

type job = {
  call : Protocol.call;
  enqueued_at : float;
  jm : Mutex.t;
  jc : Condition.t;
  mutable outcome : (Json.t, exn) result option;
}

type t = {
  config : config;
  spool : Parallel.Pool.t;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  queue : job Queue.t;
  mutable closing : bool;
  mutable dispatcher : Thread.t option;
  mutable memo : (Protocol.call, Json.t) Parallel.Memo.t option;
}

(* A batch is planned as a flat list of work units, each writing into its
   own result cell, plus one [finish] closure per request that assembles
   the reply from its cells. Units are a pure function of their request
   alone — never of what else is in the batch — which is what makes the
   batched replies bitwise-equal to the one-shot paths (see the .mli). *)

let guard f = try Ok (f ()) with e -> Error e

let take cell =
  match !cell with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> failwith "Serve.Session: work unit never ran"

let plan ?store pool (call : Protocol.call) =
  match call with
  | Protocol.Optimum { tech; arch } ->
    let cell = ref None in
    ( [
        (fun () ->
          cell :=
            Some
              (guard (fun () ->
                   match store with
                   | None -> Engine.optimum ~tech arch
                   | Some st ->
                     N.optimum_stored ~store:st
                       (Engine.problem_of_label tech arch))));
      ],
      fun () -> Engine.optimum_json ~tech ~arch (take cell) )
  | Protocol.Rank { tech; archs } ->
    (* The exact chunk layout of a one-shot [optima_continued]: cold chunk
       heads every [continuation_chunk] items, warm chains within. *)
    let arr = Array.of_list archs in
    let n = Array.length arr in
    let chunk = N.continuation_chunk in
    let nchunks = (n + chunk - 1) / chunk in
    let cells = Array.init nchunks (fun _ -> ref None) in
    let units =
      List.init nchunks (fun c ->
          fun () ->
            cells.(c) :=
              Some
                (guard (fun () ->
                     let start = c * chunk in
                     let stop = Stdlib.min n (start + chunk) in
                     N.solve_chain
                       (List.init (stop - start) (fun k ->
                            Engine.problem_of_label tech arr.(start + k))))))
    in
    ( units,
      fun () ->
        let points = List.concat (List.map take (Array.to_list cells)) in
        Engine.rank_json ~tech (Engine.rank_sort (List.combine archs points))
    )
  | Protocol.Sweep { tech; arch; samples; vdd_lo; vdd_hi } ->
    let cell = ref None in
    ( [
        (fun () ->
          cell :=
            Some
              (guard (fun () ->
                   Engine.sweep ~pool ~tech ~samples ~vdd_lo ~vdd_hi arch)));
      ],
      fun () -> Engine.sweep_json ~tech ~arch (take cell) )
  | Protocol.Lint { only } ->
    let cell = ref None in
    ( [
        (fun () ->
          cell := Some (guard (fun () -> Engine.lint ~pool ?only ())));
      ],
      fun () -> Engine.lint_json (take cell) )
  | Protocol.Certify { flavors } ->
    let cell = ref None in
    ( [
        (fun () ->
          cell := Some (guard (fun () -> Engine.certify ~pool ~flavors ())));
      ],
      fun () -> Engine.certify_json (take cell) )
  | Protocol.Explore
      { bits; families; radices; stages; copies; signed; fmults; techs;
        prune; max_latency; max_area } ->
    let axes =
      {
        Power_core.Explorer.bits;
        families;
        radices;
        signednesses =
          [ (if signed then Multipliers.Booth.Signed
             else Multipliers.Booth.Unsigned) ];
        stages;
        copies;
        fmults;
        techs;
      }
    in
    let cell = ref None in
    ( [
        (fun () ->
          cell :=
            Some
              (guard (fun () ->
                   Engine.explore ~pool ~prune ?store ?max_latency ?max_area
                     axes)));
      ],
      fun () -> Engine.explore_json (take cell) )
  | Protocol.Store_stats ->
    (* Pure introspection: no pool work, assembled at finish time so the
       reply reflects the store state after the co-batched work ran. *)
    ([], fun () -> Engine.store_stats_json store)

let finalize job outcome =
  Mutex.lock job.jm;
  job.outcome <- Some outcome;
  Condition.signal job.jc;
  Mutex.unlock job.jm;
  Obs.Counter.incr c_replies

let execute_batch t batch =
  if Obs.enabled () then begin
    Obs.Counter.incr c_batches;
    (match batch with
    | _ :: _ :: _ -> Obs.Counter.add c_batched (List.length batch)
    | _ -> ());
    let now = Obs.now_ns () in
    List.iter
      (fun job -> Obs.Hist.observe h_queue_wait (now -. job.enqueued_at))
      batch
  end;
  Obs.Span.with_ ~name:"serve.batch" (fun () ->
      let plans =
        List.map
          (fun job -> (job, plan ?store:t.config.store t.spool job.call))
          batch
      in
      let units = List.concat_map (fun (_, (units, _)) -> units) plans in
      (* All units of all co-batched requests go through one pool dispatch;
         each unit traps its own exception into its cell, so [map] never
         raises here and one failing request cannot poison its batch. *)
      ignore (Parallel.Pool.map ~pool:t.spool (fun u -> u ()) units);
      List.iter
        (fun (job, (_, finish)) -> finalize job (guard finish))
        plans)

let rec dispatcher_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.not_empty t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closing: drained *)
  else begin
    let batch = ref [] in
    let taken = ref 0 in
    while (not (Queue.is_empty t.queue)) && !taken < t.config.max_batch do
      batch := Queue.pop t.queue :: !batch;
      incr taken
    done;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex;
    execute_batch t (List.rev !batch);
    dispatcher_loop t
  end

let enqueue_and_wait t call =
  let job =
    {
      call;
      enqueued_at = Obs.now_ns ();
      jm = Mutex.create ();
      jc = Condition.create ();
      outcome = None;
    }
  in
  Mutex.lock t.mutex;
  while
    (not t.closing) && Queue.length t.queue >= t.config.queue_capacity
  do
    Condition.wait t.not_full t.mutex
  done;
  if t.closing then begin
    Mutex.unlock t.mutex;
    raise Shutting_down
  end;
  Queue.push job t.queue;
  Obs.Counter.incr c_requests;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex;
  Mutex.lock job.jm;
  while Option.is_none job.outcome do
    Condition.wait job.jc job.jm
  done;
  Mutex.unlock job.jm;
  match Option.get job.outcome with Ok v -> v | Error e -> raise e

let start t =
  Mutex.lock t.mutex;
  let spawn = (not t.closing) && Option.is_none t.dispatcher in
  if spawn then t.dispatcher <- Some (Thread.create dispatcher_loop t);
  Mutex.unlock t.mutex

let create ?(autostart = true) ?(config = default_config) () =
  if config.queue_capacity < 1 then
    invalid_arg "Serve.Session.create: queue_capacity < 1";
  if config.max_batch < 1 then
    invalid_arg "Serve.Session.create: max_batch < 1";
  let t =
    {
      config;
      spool = Parallel.Pool.create ?jobs:config.jobs ();
      mutex = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      closing = false;
      dispatcher = None;
      memo = None;
    }
  in
  t.memo <-
    Some
      (Parallel.Memo.create ~name:"serve.results" (fun call ->
           enqueue_and_wait t call));
  if autostart then start t;
  t

let submit t call =
  match call with
  | Protocol.Store_stats ->
    (* Never memoised: the whole point is the live counters. *)
    enqueue_and_wait t call
  | _ ->
    if t.config.cache then Parallel.Memo.find (Option.get t.memo) call
    else enqueue_and_wait t call

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let pool t = t.spool

let cache_stats t = Parallel.Memo.stats (Option.get t.memo)

let shutdown t =
  Mutex.lock t.mutex;
  if t.closing then Mutex.unlock t.mutex
  else begin
    t.closing <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    let d = t.dispatcher in
    t.dispatcher <- None;
    Mutex.unlock t.mutex;
    Option.iter Thread.join d;
    (* Never-started session: fail whatever is still queued so no waiter
       hangs. With a dispatcher this queue is empty — it drains fully
       before exiting. *)
    Mutex.lock t.mutex;
    let orphans = ref [] in
    Queue.iter (fun j -> orphans := j :: !orphans) t.queue;
    Queue.clear t.queue;
    Mutex.unlock t.mutex;
    List.iter (fun j -> finalize j (Error Shutting_down)) !orphans;
    Parallel.Pool.shutdown t.spool;
    (* The session owns the store handle it was configured with: flush
       and release the lock so the next process starts warm. *)
    Option.iter Store.close t.config.store
  end
