type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Parser: recursive descent over the input string. Depth is capped so an
   adversarial frame of 100k nested brackets returns an error instead of
   overflowing the stack ("never a crash" protocol contract). *)

let max_depth = 64

exception Fail of string

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Fail (Printf.sprintf "%s at byte %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

(* Encode a Unicode scalar value as UTF-8 bytes into the buffer. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let digit () =
    match peek st with
    | Some c ->
      advance st;
      (match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "invalid \\u escape")
    | None -> fail st "truncated \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let u = hex4 st in
          (* Surrogate pair: a high surrogate must be followed by an
             escaped low surrogate; combine them, else reject. *)
          if u >= 0xD800 && u <= 0xDBFF then begin
            if peek st = Some '\\' then advance st
            else fail st "unpaired surrogate";
            if peek st = Some 'u' then advance st
            else fail st "unpaired surrogate";
            let lo = hex4 st in
            if lo < 0xDC00 || lo > 0xDFFF then fail st "unpaired surrogate";
            add_utf8 buf
              (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if u >= 0xDC00 && u <= 0xDFFF then fail st "unpaired surrogate"
          else add_utf8 buf u
        | _ -> fail st "invalid escape"));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st "raw control byte in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
        advance st;
        go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek st = Some '.' then begin
    advance st;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let token = String.sub st.s start (st.pos - start) in
  match float_of_string_opt token with
  | Some v -> v
  | None -> fail st (Printf.sprintf "invalid number %S" token)

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st (depth + 1) in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ()
        | Some '}' -> advance st
        | _ -> fail st "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st (depth + 1) in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements ()
        | Some ']' -> advance st
        | _ -> fail st "expected ',' or ']'"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st 0 with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
  | exception Fail msg -> Error msg

(* Printer. *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* 2^53: the largest power of two below which every integer is exact in
   float64 and %.0f prints it verbatim. *)
let max_exact_int = 9007199254740992.0

let number_to_string v =
  if not (Float.is_finite v) then
    invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer v && Float.abs v < max_exact_int then
    Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.17g" v in
    (* %.17g always round-trips float64; it never emits 'inf'/'nan' here
       because non-finite values were rejected above. *)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num v -> Buffer.add_string buf (number_to_string v)
    | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit v)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          emit v)
        fields;
      Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.equal equal a b
  | Obj a, Obj b ->
    List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
