let c_connections = Obs.Counter.make "serve.connections"
let c_frames = Obs.Counter.make "serve.frames"
let c_frame_errors = Obs.Counter.make "serve.frame_errors"

let write_line fd s =
  let line = s ^ "\n" in
  let rec w off len =
    if len > 0 then begin
      let n = Unix.write_substring fd line off len in
      w (off + n) (len - n)
    end
  in
  (* A client that hung up mid-reply is its own problem; the handler just
     keeps draining its remaining input. *)
  try w 0 (String.length line) with Unix.Unix_error _ -> ()

let handle_connection session fd =
  let reply_error ~id code msg =
    Obs.Counter.incr c_frame_errors;
    write_line fd (Protocol.error_frame ~id code msg)
  in
  let handle_line line =
    Obs.Counter.incr c_frames;
    if String.trim line = "" then ()
    else
      match Protocol.parse_frame line with
      | Error (id, code, msg) -> reply_error ~id code msg
      | Ok { id; call } -> (
        match Session.submit session call with
        | payload -> write_line fd (Protocol.ok_frame ~id payload)
        | exception Session.Shutting_down ->
          reply_error ~id Protocol.Shutdown "session is draining"
        | exception e ->
          reply_error ~id Protocol.Internal (Printexc.to_string e))
  in
  let chunk = Bytes.create 8192 in
  let acc = Buffer.create 256 in
  (* When a line overruns the frame cap we stop buffering it and remember
     only that it did — the reply waits for its terminating newline so the
     stream stays framed. *)
  let oversized = ref false in
  let oversize_msg =
    Printf.sprintf "frame exceeds %d bytes" Protocol.max_frame_bytes
  in
  let on_newline () =
    if !oversized then begin
      Obs.Counter.incr c_frames;
      oversized := false;
      write_line fd (Protocol.error_frame ~id:Json.Null Protocol.Frame
                       oversize_msg);
      Obs.Counter.incr c_frame_errors
    end
    else begin
      let line = Buffer.contents acc in
      handle_line line
    end;
    Buffer.clear acc
  in
  let on_eof () =
    if !oversized then begin
      Obs.Counter.incr c_frames;
      reply_error ~id:Json.Null Protocol.Frame oversize_msg
    end
    else if Buffer.length acc > 0 then begin
      Obs.Counter.incr c_frames;
      reply_error ~id:Json.Null Protocol.Frame
        "truncated frame (connection closed before newline)"
    end
  in
  let rec pump () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> on_eof ()
    | n ->
      for i = 0 to n - 1 do
        let c = Bytes.get chunk i in
        if c = '\n' then on_newline ()
        else if not !oversized then begin
          Buffer.add_char acc c;
          if Buffer.length acc > Protocol.max_frame_bytes then begin
            oversized := true;
            Buffer.clear acc
          end
        end
      done;
      pump ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
    | exception Unix.Unix_error _ -> ()
  in
  pump ();
  try Unix.close fd with Unix.Unix_error _ -> ()

type listener = {
  session : Session.t;
  lfd : Unix.file_descr;
  path : string;
  mutable accept_thread : Thread.t option;
  mutex : Mutex.t;
  mutable conns : Thread.t list;
  mutable stopping : bool;
}

let stopping l =
  Mutex.lock l.mutex;
  let s = l.stopping in
  Mutex.unlock l.mutex;
  s

let finish l =
  (* Runs on the accept thread once accepting has ended: let every
     in-flight connection finish, then drain the session and remove the
     socket file. *)
  (try Unix.close l.lfd with Unix.Unix_error _ -> ());
  let conns =
    Mutex.lock l.mutex;
    let c = l.conns in
    l.conns <- [];
    Mutex.unlock l.mutex;
    c
  in
  List.iter Thread.join conns;
  Session.shutdown l.session;
  (try Unix.unlink l.path with Unix.Unix_error _ -> ())

let rec accept_loop l =
  if stopping l then finish l
  else
    match Unix.accept l.lfd with
    | fd, _ ->
      if stopping l then begin
        (* The wake-up connection from [stop], or a client racing the
           shutdown: either way accepting is over. *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        finish l
      end
      else begin
        Obs.Counter.incr c_connections;
        let th = Thread.create (fun () -> handle_connection l.session fd) () in
        Mutex.lock l.mutex;
        l.conns <- th :: l.conns;
        Mutex.unlock l.mutex;
        accept_loop l
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop l
    | exception Unix.Unix_error _ ->
      (* [stop] shut the listener down, or a fatal socket error: wind
         down either way. *)
      finish l

let listen_unix ?(backlog = 64) session ~path =
  (* Refuse to clobber a live server; remove a stale socket file. *)
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      raise
        (Unix.Unix_error (Unix.EADDRINUSE, "listen_unix", path))
    | exception Unix.Unix_error _ ->
      Unix.close probe;
      Unix.unlink path)
  | _ -> raise (Unix.Unix_error (Unix.EEXIST, "listen_unix", path))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind lfd (Unix.ADDR_UNIX path);
     Unix.listen lfd backlog
   with e ->
     Unix.close lfd;
     raise e);
  let l =
    {
      session;
      lfd;
      path;
      accept_thread = None;
      mutex = Mutex.create ();
      conns = [];
      stopping = false;
    }
  in
  l.accept_thread <- Some (Thread.create accept_loop l);
  l

let stop l =
  Mutex.lock l.mutex;
  let first = not l.stopping in
  l.stopping <- true;
  Mutex.unlock l.mutex;
  if first then begin
    (* Closing the descriptor would NOT unblock a thread already parked in
       accept(2) on Linux; shutting the listening socket down does, and a
       throwaway self-connection covers platforms where that shutdown is a
       no-op. The accept thread owns the close. *)
    (try Unix.shutdown l.lfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX l.path)
       with Unix.Unix_error _ -> ());
      Unix.close fd
    with Unix.Unix_error _ -> ()
  end

let wait l = Option.iter Thread.join l.accept_thread
