(** Crash-safe, content-addressed on-disk warm store.

    A store is a directory holding a compact index snapshot ([index.bin]),
    an append-only record log ([log.bin]) and a PID lock file ([LOCK]).
    Both files carry a caller-supplied {e fingerprint} in their header;
    opening with a different fingerprint discards every stale entry, so a
    model change invalidates the store by construction rather than by
    discipline.

    Records are namespaced [(ns, key) -> value] blobs, each framed with a
    length header and an FNV-1a-64 checksum. Reads stop at the first torn
    or corrupt record, so a crash mid-append loses at most the tail of the
    log — never the snapshot. {!flush} compacts the table into a fresh
    snapshot via write-to-temp + [rename] (atomic on POSIX) and only then
    resets the log; a crash between the two replays harmless duplicates.

    Cross-process safety: the writer holds [LOCK] (created [O_EXCL],
    containing its PID). A second opener detects the live owner and falls
    back to a read-only view; a lock left by a dead process is reclaimed.

    Every outcome is counted under the [store.*] {!Obs} counters. *)

type t

type mode =
  | Read_write  (** Holds the lock; puts are persisted. *)
  | Read_only  (** Lock contention fallback; puts are dropped. *)

type stats = {
  path : string;
  mode : mode;
  entries : int;  (** Live [(ns, key)] pairs in memory. *)
  hits : int;  (** {!find} successes since open. *)
  misses : int;  (** {!find} failures since open. *)
  puts : int;  (** Value-changing {!put}s since open. *)
  invalidated : bool;  (** Open discarded a stale-fingerprint store. *)
  recovered : int;  (** Torn/corrupt records dropped at open. *)
  log_bytes : int;  (** Current size of the append log. *)
  index_bytes : int;  (** Current size of the snapshot. *)
}

val open_ :
  ?readonly:bool -> path:string -> fingerprint:string -> unit -> (t, string) result
(** Open (creating if needed) the store directory at [path]. With
    [readonly] (default false) no lock is taken and no file is written.
    Lock contention from a live process degrades to {!Read_only} rather
    than failing; only filesystem errors (permissions, [path] exists as a
    file, ...) return [Error]. *)

val mode : t -> mode
val path : t -> string
val fingerprint : t -> string

val find : t -> ns:string -> string -> string option
val mem : t -> ns:string -> string -> bool

val put : t -> ns:string -> string -> string -> unit
(** Insert or replace. Re-putting the identical value is free (no log
    traffic); in a {!Read_only} store the call is dropped and counted. *)

val iter : t -> ns:string -> (string -> string -> unit) -> unit
(** Apply [f key value] to every entry of the namespace (unspecified
    order). *)

val entries : t -> int

val flush : t -> unit
(** Compact into a fresh snapshot (write-temp, [fsync], [rename]) and
    reset the log. No-op when nothing changed or {!Read_only}. *)

val gc : t -> int
(** {!flush}, returning how many superseded log records the compaction
    retired. *)

val clear : t -> unit
(** Drop every entry and persist the empty state. *)

val close : t -> unit
(** {!flush} if dirty, release the lock, close descriptors. The handle
    must not be used afterwards; [close] is idempotent. *)

val stats : t -> stats
