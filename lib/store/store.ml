let c_hit = Obs.Counter.make "store.hit"
let c_miss = Obs.Counter.make "store.miss"
let c_put = Obs.Counter.make "store.put"
let c_put_skip = Obs.Counter.make "store.put_skip"
let c_drop = Obs.Counter.make "store.readonly_drop"
let c_flush = Obs.Counter.make "store.flush"
let c_evict = Obs.Counter.make "store.evict"
let c_invalid = Obs.Counter.make "store.invalidated"
let c_recovered = Obs.Counter.make "store.recovered"
let c_contention = Obs.Counter.make "store.lock_contention"
let c_stale_lock = Obs.Counter.make "store.lock_stale"

type mode = Read_write | Read_only

type stats = {
  path : string;
  mode : mode;
  entries : int;
  hits : int;
  misses : int;
  puts : int;
  invalidated : bool;
  recovered : int;
  log_bytes : int;
  index_bytes : int;
}

type t = {
  dir : string;
  fp : string;
  mode : mode;
  table : (string * string, string) Hashtbl.t;
  mutable log_oc : out_channel option;  (* None once closed / read-only *)
  mutable dirty : bool;
  mutable closed : bool;
  mutable hits : int;
  mutable misses : int;
  mutable puts : int;
  mutable superseded : int;  (* log records a later put made dead *)
  mutable invalidated : bool;
  mutable recovered : int;
  lock : Mutex.t;
}

let index_file t = Filename.concat t.dir "index.bin"
let log_file t = Filename.concat t.dir "log.bin"
let tmp_file t = Filename.concat t.dir "index.tmp"
let lock_file dir = Filename.concat dir "LOCK"

(* ------------------------------------------------------------------ *)
(* Record framing: 'R' | ns_len u16 | key_len u32 | val_len u32 |
   ns key value | fnv1a64 over everything before the checksum.        *)

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 s lo hi =
  let h = ref fnv_basis in
  for i = lo to hi - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) fnv_prime
  done;
  !h

let header_line fp = Printf.sprintf "optstore 1 %s\n" fp
let max_blob = 64 * 1024 * 1024

let add_record buf ~ns ~key ~value =
  let start = Buffer.length buf in
  Buffer.add_char buf 'R';
  Buffer.add_uint16_le buf (String.length ns);
  Buffer.add_int32_le buf (Int32.of_int (String.length key));
  Buffer.add_int32_le buf (Int32.of_int (String.length value));
  Buffer.add_string buf ns;
  Buffer.add_string buf key;
  Buffer.add_string buf value;
  let body = Buffer.contents buf in
  Buffer.add_int64_le buf (fnv64 body start (String.length body))

(* Parse records of [s] starting at [off]; feed each to [f]. Returns
   [(good_offset, torn)]: the end of the last intact record and whether
   anything after it had to be discarded. *)
let parse_records s off f =
  let len = String.length s in
  let pos = ref off and good = ref off and torn = ref false in
  (try
     while !pos < len do
       let p = !pos in
       if len - p < 11 then raise Exit;
       if s.[p] <> 'R' then raise Exit;
       let ns_len = String.get_uint16_le s (p + 1) in
       let key_len = Int32.to_int (String.get_int32_le s (p + 3)) in
       let val_len = Int32.to_int (String.get_int32_le s (p + 7)) in
       if
         key_len < 0 || val_len < 0 || key_len > max_blob || val_len > max_blob
       then raise Exit;
       let body_end = p + 11 + ns_len + key_len + val_len in
       if body_end + 8 > len then raise Exit;
       let sum = fnv64 s p body_end in
       if String.get_int64_le s body_end <> sum then raise Exit;
       let ns = String.sub s (p + 11) ns_len in
       let key = String.sub s (p + 11 + ns_len) key_len in
       let value = String.sub s (p + 11 + ns_len + key_len) val_len in
       f ns key value;
       pos := body_end + 8;
       good := !pos
     done
   with Exit -> torn := true);
  (!good, !torn)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception _ -> None)

(* ------------------------------------------------------------------ *)
(* Locking *)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM etc.: someone owns it *)

let try_lock dir =
  let path = lock_file dir in
  let attempt () =
    match Unix.openfile path [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 with
    | fd ->
        let pid = string_of_int (Unix.getpid ()) in
        ignore (Unix.write_substring fd pid 0 (String.length pid));
        Unix.close fd;
        `Locked
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> `Held
    | exception Unix.Unix_error _ -> `Error
  in
  match attempt () with
  | (`Locked | `Error) as r -> r
  | `Held -> (
      let owner =
        match read_file path with
        | Some s -> int_of_string_opt (String.trim s)
        | None -> None
      in
      match owner with
      | Some pid when pid <> Unix.getpid () && pid_alive pid -> `Busy
      | _ ->
          (* Stale (dead owner, unreadable, or our own leftover). *)
          Obs.Counter.incr c_stale_lock;
          (try Sys.remove path with Sys_error _ -> ());
          (match attempt () with
          | `Locked -> `Locked
          | `Held -> `Busy
          | `Error -> `Error))

(* ------------------------------------------------------------------ *)

let load t =
  let check_header s =
    let h = header_line t.fp in
    let n = String.length h in
    if String.length s >= n && String.sub s 0 n = h then `Ok n
    else if String.length s >= 9 && String.sub s 0 9 = "optstore " then `Stale
    else `Corrupt
  in
  let replay s off =
    let replaced = ref 0 in
    let good, torn =
      parse_records s off (fun ns key value ->
          if Hashtbl.mem t.table (ns, key) then incr replaced;
          Hashtbl.replace t.table (ns, key) value)
    in
    t.superseded <- t.superseded + !replaced;
    if torn then begin
      t.recovered <- t.recovered + 1;
      Obs.Counter.incr c_recovered
    end;
    (good, torn)
  in
  let stale = ref false in
  let load_one path =
    match read_file path with
    | None -> `Absent
    | Some s -> (
        match check_header s with
        | `Ok off ->
            let good, torn = replay s off in
            if torn then `Torn good else `Ok
        | `Stale ->
            stale := true;
            `Bad
        | `Corrupt ->
            t.recovered <- t.recovered + 1;
            Obs.Counter.incr c_recovered;
            `Bad)
  in
  let idx = load_one (index_file t) in
  (* A stale index means every entry predates the current model: drop
     the log too, whatever it says. *)
  let log = if !stale then `Bad else load_one (log_file t) in
  if !stale then begin
    Hashtbl.reset t.table;
    t.invalidated <- true;
    Obs.Counter.incr c_invalid
  end;
  if t.mode = Read_write then begin
    (* Retire unusable files so appends land on a clean prefix. *)
    let remove p = try Sys.remove p with Sys_error _ -> () in
    (match idx with
    | `Bad -> remove (index_file t)
    | `Torn _ | `Ok | `Absent -> ());
    match log with
    | `Bad -> remove (log_file t)
    | `Torn good -> (
        try Unix.truncate (log_file t) good with Unix.Unix_error _ -> ())
    | `Ok | `Absent -> ()
  end

let open_log t =
  if t.mode = Read_write then begin
    let fresh = not (Sys.file_exists (log_file t)) in
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (log_file t)
    in
    if fresh || (Unix.stat (log_file t)).Unix.st_size = 0 then begin
      output_string oc (header_line t.fp);
      flush oc
    end;
    t.log_oc <- Some oc
  end

let open_ ?(readonly = false) ~path ~fingerprint () =
  match
    if Sys.file_exists path then
      if Sys.is_directory path then Ok ()
      else Error (Printf.sprintf "%s exists and is not a directory" path)
    else
      match Unix.mkdir path 0o755 with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "cannot create %s: %s" path (Unix.error_message e))
  with
  | Error _ as e -> e
  | Ok () ->
      (* A temp snapshot left by a killed flush is garbage by definition:
         the rename never happened. *)
      if not readonly then
        (try Sys.remove (Filename.concat path "index.tmp") with Sys_error _ -> ());
      let mode =
        if readonly then Read_only
        else
          match try_lock path with
          | `Locked -> Read_write
          | `Busy | `Error ->
              Obs.Counter.incr c_contention;
              Read_only
      in
      let t =
        {
          dir = path;
          fp = fingerprint;
          mode;
          table = Hashtbl.create 256;
          log_oc = None;
          dirty = false;
          closed = false;
          hits = 0;
          misses = 0;
          puts = 0;
          superseded = 0;
          invalidated = false;
          recovered = 0;
          lock = Mutex.create ();
        }
      in
      load t;
      (match open_log t with
      | () -> ()
      | exception (Sys_error _ | Unix.Unix_error _) -> t.log_oc <- None);
      Ok t

let mode t = t.mode
let path t = t.dir
let fingerprint t = t.fp

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~ns key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table (ns, key) with
      | Some v ->
          t.hits <- t.hits + 1;
          Obs.Counter.incr c_hit;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          Obs.Counter.incr c_miss;
          None)

let mem t ~ns key = Option.is_some (find t ~ns key)

let append_record t ~ns ~key ~value =
  match t.log_oc with
  | None -> ()
  | Some oc ->
      let buf = Buffer.create (String.length value + String.length key + 32) in
      add_record buf ~ns ~key ~value;
      (try
         Buffer.output_buffer oc buf;
         flush oc
       with Sys_error _ -> ())

let put t ~ns key value =
  with_lock t (fun () ->
      if t.closed || t.mode = Read_only then Obs.Counter.incr c_drop
      else
        match Hashtbl.find_opt t.table (ns, key) with
        | Some v when String.equal v value -> Obs.Counter.incr c_put_skip
        | prior ->
            if prior <> None then t.superseded <- t.superseded + 1;
            Hashtbl.replace t.table (ns, key) value;
            append_record t ~ns ~key ~value;
            t.dirty <- true;
            t.puts <- t.puts + 1;
            Obs.Counter.incr c_put)

let iter t ~ns f =
  let snapshot =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun (n, k) v acc -> if String.equal n ns then (k, v) :: acc else acc)
          t.table [])
  in
  List.iter (fun (k, v) -> f k v) snapshot

let entries t = with_lock t (fun () -> Hashtbl.length t.table)

(* Atomic snapshot: write everything to index.tmp, fsync, rename over
   index.bin, then reset the log. A crash before the rename leaves the
   old snapshot + full log; after it, replaying the old log records is
   an idempotent no-op. *)
let flush_locked t =
  if t.mode = Read_write && t.dirty && not t.closed then begin
    let buf = Buffer.create 65536 in
    Buffer.add_string buf (header_line t.fp);
    Hashtbl.iter
      (fun (ns, key) value -> add_record buf ~ns ~key ~value)
      t.table;
    let ok =
      match
        Unix.openfile (tmp_file t)
          [ Unix.O_CREAT; Unix.O_TRUNC; Unix.O_WRONLY ]
          0o644
      with
      | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let s = Buffer.contents buf in
              let n = Unix.write_substring fd s 0 (String.length s) in
              (try Unix.fsync fd with Unix.Unix_error _ -> ());
              n = String.length s)
      | exception Unix.Unix_error _ -> false
    in
    if ok then begin
      match Unix.rename (tmp_file t) (index_file t) with
      | () ->
          (match t.log_oc with Some oc -> close_out_noerr oc | None -> ());
          t.log_oc <- None;
          (try
             let oc = open_out_bin (log_file t) in
             output_string oc (header_line t.fp);
             flush oc;
             t.log_oc <- Some oc
           with Sys_error _ -> ());
          t.dirty <- false;
          Obs.Counter.incr c_flush
      | exception Unix.Unix_error _ -> ()
    end
  end

let flush t = with_lock t (fun () -> flush_locked t)

let gc t =
  with_lock t (fun () ->
      let dead = t.superseded in
      t.superseded <- 0;
      t.dirty <- t.dirty || (dead > 0 && t.mode = Read_write);
      flush_locked t;
      Obs.Counter.add c_evict dead;
      dead)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.superseded <- 0;
      if t.mode = Read_write && not t.closed then begin
        t.dirty <- true;
        flush_locked t
      end)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        flush_locked t;
        (match t.log_oc with Some oc -> close_out_noerr oc | None -> ());
        t.log_oc <- None;
        t.closed <- true;
        if t.mode = Read_write then
          try Sys.remove (lock_file t.dir) with Sys_error _ -> ()
      end)

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

let stats t =
  with_lock t (fun () ->
      {
        path = t.dir;
        mode = t.mode;
        entries = Hashtbl.length t.table;
        hits = t.hits;
        misses = t.misses;
        puts = t.puts;
        invalidated = t.invalidated;
        recovered = t.recovered;
        log_bytes = file_size (log_file t);
        index_bytes = file_size (index_file t);
      })
