type t = {
  psize : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

(* Worker domains block here until a task arrives or the pool stops. *)
let worker_loop pool =
  let rec take () =
    Mutex.lock pool.mutex;
    let rec wait () =
      match Queue.take_opt pool.tasks with
      | Some task -> Some task
      | None ->
        if pool.stopped then None
        else begin
          Condition.wait pool.nonempty pool.mutex;
          wait ()
        end
    in
    let task = wait () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some task ->
      task ();
      take ()
  in
  take ()

let submit pool task =
  Mutex.lock pool.mutex;
  Queue.add task pool.tasks;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mutex

let env_jobs () =
  match Sys.getenv_opt "OPTPOWER_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | Some _ | None -> None)

let jobs_override = ref None

let default_jobs () =
  match !jobs_override with
  | Some j -> j
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> Domain.recommended_domain_count ())

let create ?jobs () =
  let psize = match jobs with Some j -> j | None -> default_jobs () in
  if psize < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      psize;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      stopped = false;
      workers = [||];
    }
  in
  if psize > 1 then
    pool.workers <-
      Array.init (psize - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.psize

let shutdown pool =
  Mutex.lock pool.mutex;
  let was_stopped = pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  if not was_stopped then Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let pending pool =
  Mutex.lock pool.mutex;
  let n = Queue.length pool.tasks in
  Mutex.unlock pool.mutex;
  n

(* Shared default pool, created lazily and torn down at exit so worker
   domains never outlive the main one. *)
let default_mutex = Mutex.create ()
let default_pool = ref None
let exit_hook_installed = ref false

let shutdown_default_locked () =
  match !default_pool with
  | None -> ()
  | Some pool ->
    default_pool := None;
    shutdown pool

let get_default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some pool -> pool
    | None ->
      let pool = create () in
      default_pool := Some pool;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            Mutex.lock default_mutex;
            shutdown_default_locked ();
            Mutex.unlock default_mutex)
      end;
      pool
  in
  Mutex.unlock default_mutex;
  pool

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_mutex;
  jobs_override := Some jobs;
  shutdown_default_locked ();
  Mutex.unlock default_mutex

(* Observability: scheduling artefacts carry the "sched" category so the
   normalized profile (which must be identical at any pool size) can drop
   them; the caller's span context is re-installed on every worker so the
   logical span tree is independent of where a slot actually ran. *)
let c_maps = Obs.Counter.make ~cat:"sched" "pool.maps"
let c_tasks = Obs.Counter.make ~cat:"sched" "pool.tasks"
let c_items = Obs.Counter.make ~cat:"sched" "pool.items"
let h_task_wait = Obs.Hist.make ~cat:"sched" "pool.task_wait_ns"

(* A parallel map is one shared job: an atomic cursor over the input, a
   slot array for the outputs, and a completion count. Helpers grab chunks
   until the cursor runs dry; queued helpers that only start after the job
   has finished see an exhausted cursor and return immediately, so nested
   maps issued from inside a worker task cannot deadlock — the nested
   caller simply does the work itself. *)
let run_job pool f (input : 'a array) : 'b array =
  let n = Array.length input in
  let results : 'b option array = Array.make n None in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  (* First failure by item index, kept minimal so the raised exception is
     independent of scheduling. *)
  let error :
      (int * exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let record_error i exn bt =
    let rec cas () =
      let current = Atomic.get error in
      match current with
      | Some (j, _, _) when j <= i -> ()
      | _ ->
        if not (Atomic.compare_and_set error current (Some (i, exn, bt))) then
          cas ()
    in
    cas ()
  in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let chunk = Int.max 1 (n / (pool.psize * 4)) in
  let work () =
    let rec grab () =
      let lo = Atomic.fetch_and_add next chunk in
      if lo < n then begin
        let hi = Int.min n (lo + chunk) in
        for i = lo to hi - 1 do
          (if Atomic.get error = None then
             match f input.(i) with
             | v -> results.(i) <- Some v
             | exception exn -> record_error i exn (Printexc.get_raw_backtrace ()));
          Atomic.incr completed
        done;
        grab ()
      end
    in
    grab ();
    Mutex.lock done_mutex;
    Condition.broadcast done_cond;
    Mutex.unlock done_mutex
  in
  let helpers = Int.min (pool.psize - 1) (n - 1) in
  let helper_work =
    (* Wrapping only matters when recording; otherwise keep the exact task
       closure so the disabled path is untouched. *)
    if not (Obs.enabled ()) then work
    else begin
      let ctx = Obs.Span.current () in
      let submit_ns = Obs.now_ns () in
      fun () ->
        Obs.Hist.observe h_task_wait (Obs.now_ns () -. submit_ns);
        Obs.Counter.incr c_tasks;
        Obs.Span.with_ctx ctx (fun () ->
            Obs.Span.with_detached ~cat:"sched" ~name:"pool.task" work)
    end
  in
  for _ = 1 to helpers do
    submit pool helper_work
  done;
  Obs.Counter.incr c_maps;
  Obs.Counter.add c_items n;
  work ();
  Obs.Span.with_detached ~cat:"sched" ~name:"pool.join" (fun () ->
      Mutex.lock done_mutex;
      while Atomic.get completed < n do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex);
  (match Atomic.get error with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let map_array ?pool f input =
  let n = Array.length input in
  if n = 0 then [||]
  else
    let pool = match pool with Some p -> p | None -> get_default () in
    if pool.psize = 1 || n = 1 then Array.map f input
    else
      Obs.Span.with_detached ~cat:"sched" ~name:"pool.map" (fun () ->
          run_job pool f input)

let map ?pool f items =
  Array.to_list (map_array ?pool f (Array.of_list items))

let mapi ?pool f items =
  Array.to_list
    (map_array ?pool (fun (i, x) -> f i x)
       (Array.of_list (List.mapi (fun i x -> (i, x)) items)))

let map_reduce ?pool ~map:mapper ~reduce ~init items =
  let mapped = map_array ?pool mapper (Array.of_list items) in
  Array.fold_left reduce init mapped

let map_rounds ?pool ~round ~plan ~task ~fold ~init items =
  if round < 1 then invalid_arg "Pool.map_rounds: round must be >= 1";
  let items = Array.of_list items in
  let n = Array.length items in
  let acc = ref init in
  let base = ref 0 in
  while !base < n do
    let count = Int.min round (n - !base) in
    (* Planning is sequential on the caller against the round-start
       accumulator: which items get work is a pure function of the fold
       history, never of scheduling. *)
    let planned =
      Array.init count (fun i -> plan !acc items.(!base + i))
    in
    let work =
      Array.of_list
        (List.filteri
           (fun _ -> Option.is_some)
           (Array.to_list planned))
    in
    let outputs =
      map_array ?pool (fun w -> task (Option.get w)) work
    in
    (* Re-align results with their items and fold in order. *)
    let cursor = ref 0 in
    for i = 0 to count - 1 do
      let result =
        match planned.(i) with
        | None -> None
        | Some _ ->
          let r = outputs.(!cursor) in
          incr cursor;
          Some r
      in
      acc := fold !acc items.(!base + i) result
    done;
    base := !base + count
  done;
  !acc
