type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  mutex : Mutex.t;
  compute : 'k -> 'v;
  obs : (Obs.Counter.t * Obs.Counter.t) option; (* hit, miss *)
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int }

let create ?name ?(size = 16) compute =
  (* Hit/miss splits can depend on warm-up order and same-key races, so the
     counters live in the "cache" category, which normalized profiles
     drop. *)
  let obs =
    Option.map
      (fun n ->
        ( Obs.Counter.make ~cat:"cache" ("memo." ^ n ^ ".hit"),
          Obs.Counter.make ~cat:"cache" ("memo." ^ n ^ ".miss") ))
      name
  in
  { table = Hashtbl.create size; mutex = Mutex.create (); compute; obs;
    hits = 0; misses = 0 }

let count_hit t =
  match t.obs with Some (hit, _) -> Obs.Counter.incr hit | None -> ()

let count_miss t =
  match t.obs with Some (_, miss) -> Obs.Counter.incr miss | None -> ()

let find t key =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some v ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    count_hit t;
    v
  | None ->
    Mutex.unlock t.mutex;
    (* Compute outside the lock; on a same-key race the first insertion
       wins so every caller shares one physical value. *)
    let v = t.compute key in
    Mutex.lock t.mutex;
    let v, was_hit =
      match Hashtbl.find_opt t.table key with
      | Some winner ->
        t.hits <- t.hits + 1;
        (winner, true)
      | None ->
        t.misses <- t.misses + 1;
        Hashtbl.add t.table key v;
        (v, false)
    in
    Mutex.unlock t.mutex;
    if was_hit then count_hit t else count_miss t;
    v

let stats t =
  Mutex.lock t.mutex;
  let s = { hits = t.hits; misses = t.misses;
            entries = Hashtbl.length t.table } in
  Mutex.unlock t.mutex;
  s

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.mutex
