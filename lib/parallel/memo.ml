type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  mutex : Mutex.t;
  compute : 'k -> 'v;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int }

let create ?(size = 16) compute =
  { table = Hashtbl.create size; mutex = Mutex.create (); compute;
    hits = 0; misses = 0 }

let find t key =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some v ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    v
  | None ->
    Mutex.unlock t.mutex;
    (* Compute outside the lock; on a same-key race the first insertion
       wins so every caller shares one physical value. *)
    let v = t.compute key in
    Mutex.lock t.mutex;
    let v =
      match Hashtbl.find_opt t.table key with
      | Some winner ->
        t.hits <- t.hits + 1;
        winner
      | None ->
        t.misses <- t.misses + 1;
        Hashtbl.add t.table key v;
        v
    in
    Mutex.unlock t.mutex;
    v

let stats t =
  Mutex.lock t.mutex;
  let s = { hits = t.hits; misses = t.misses;
            entries = Hashtbl.length t.table } in
  Mutex.unlock t.mutex;
  s

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.mutex
