(** Reusable domain pool with deterministic-order parallel map.

    The pool owns [size - 1] worker domains blocked on a shared task queue;
    the caller of {!map} participates as the remaining worker, so a pool of
    size 1 spawns no domains and degrades to plain sequential iteration.

    {b Determinism contract.} [map f xs] writes [f x] into a slot fixed by
    the position of [x] in [xs]; work distribution (chunked work-stealing
    over an atomic index) only decides {e which domain} computes a slot,
    never the slot itself. As long as [f] is pure, the result — including
    every floating-point bit — is independent of the pool size and of
    scheduling. All call sites in this repository rely on that contract
    (see DESIGN.md, "Parallel execution").

    {b Exceptions.} If one or more applications of [f] raise, the failure
    with the {e lowest item index} is re-raised on the caller (with its
    backtrace) once all in-flight work has drained — again independent of
    scheduling. Remaining items are skipped, not computed.

    {b Observability.} When {!Obs} recording is enabled, every [map]
    re-installs the caller's span context on the worker domains, so spans
    opened inside [f] aggregate under the caller's enclosing spans whatever
    the pool size. The pool's own artefacts (the [pool.map] / [pool.task] /
    [pool.join] spans, the [pool.maps] / [pool.tasks] / [pool.items]
    counters and the [pool.task_wait_ns] histogram) carry the ["sched"]
    category and are excluded from normalized profiles, which therefore
    stay byte-identical at any pool size. Disabled, the instrumentation
    costs one branch per map. *)

type t
(** A pool of worker domains. Pools are cheap to keep around and are meant
    to be reused across many [map] calls. *)

val default_jobs : unit -> int
(** Pool size used by the shared default pool: the value set with
    {!set_default_jobs} if any, else the [OPTPOWER_JOBS] environment
    variable (when it parses as a positive integer), else
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override the default pool size. Shuts the current default pool down and
    lazily re-creates it at the new size on the next {!map}.
    @raise Invalid_argument if the argument is not positive. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}). @raise Invalid_argument if [jobs < 1]. *)

val size : t -> int
(** Total parallelism of the pool, caller included. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Subsequent [map]s on the pool still
    return correct results but run entirely on the caller. Idempotent. *)

val pending : t -> int
(** Tasks currently sitting in the pool's queue, not yet picked up by any
    worker. 0 on an idle or shut-down pool — the "no leaked tasks" drain
    assertion of the serve layer. *)

val get_default : unit -> t
(** The shared process-wide pool, created on first use and shut down
    automatically at exit. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] honouring the determinism contract above.
    Uses {!get_default} when [?pool] is omitted. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], same contract. *)

val mapi : ?pool:t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Parallel [List.mapi], same contract. *)

val map_reduce :
  ?pool:t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc
(** [map_reduce ~map ~reduce ~init xs] maps in parallel, then folds the
    results {e in list order} on the caller — [reduce] need not be
    associative or commutative for the outcome to be deterministic. *)

val map_rounds :
  ?pool:t ->
  round:int ->
  plan:('acc -> 'a -> 'b option) ->
  task:('b -> 'c) ->
  fold:('acc -> 'a -> 'c option -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** Deterministic incumbent-style processing: items advance in rounds of
    [round]. Each round, [plan acc item] runs {e sequentially on the
    caller} against the round-start accumulator and either schedules work
    ([Some payload]) or skips the item ([None]); the scheduled payloads
    are mapped through [task] on the pool (pure, parallel); then [fold]
    consumes every item of the round {e in list order} with its result
    ([None] when planned away). Because planning sees only the fold
    history — never partial results from its own round — and folding is
    ordered, the final accumulator is bitwise independent of the pool
    size: the explorer's any-[-j] reproducibility rests on this.
    @raise Invalid_argument if [round < 1]. *)
