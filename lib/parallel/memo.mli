(** Keyed, mutex-guarded memoisation of pure functions.

    A memo table is sound only when the cached function is {e pure}: the
    value must be fully determined by the key, and the cached value must be
    treated as read-only by every consumer (all users in this repository
    cache immutable records — netlists after clean-up, calibrated problems,
    linearisation fits).

    The compute function runs {e outside} the lock, so distinct keys never
    serialise on one another and a slow build cannot block cache hits. Two
    domains racing on the same missing key may both compute it; the first
    insertion wins and both callers receive the winning (physically
    identical) value, so [find t k == find t k] holds for boxed values once
    a key is cached. Exceptions raised by the compute function propagate to
    the caller and are never cached. *)

type ('k, 'v) t

type stats = { hits : int; misses : int; entries : int }
(** [misses] counts inserted computations; a lost same-key race counts as a
    hit for the loser (it received the cached value). *)

val create : ?name:string -> ?size:int -> ('k -> 'v) -> ('k, 'v) t
(** [create compute] builds an empty table over structural key equality.
    [size] is the initial hash-table capacity (default 16). When [name] is
    given, every lookup also feeds the [memo.<name>.hit] /
    [memo.<name>.miss] observability counters (category ["cache"] — see
    {!Obs}); without it the table stays invisible to the metrics layer. *)

val find : ('k, 'v) t -> 'k -> 'v
(** Cached application. *)

val stats : ('k, 'v) t -> stats

val clear : ('k, 'v) t -> unit
(** Drop every cached entry (counters included). *)
