(** Transistor current and gate delay models — Eqs. 2, 3 and 4 of the paper.

    The on-current is the modified alpha-power law
    [Ion = Io * (alpha * (Vdd - Vth) / (e * n * Ut))^alpha] (Eq. 2), which
    meets the sub-threshold characteristic continuously at Vgs = Vth. The
    DIBL effect lowers the effective threshold linearly with the supply
    (Eq. 3). The gate delay is [t = zeta * Vdd / Ion] (Eq. 4). *)

val vth_effective : Technology.t -> vth0:float -> vdd:float -> float
(** Eq. 3: [Vth = Vth0 - eta * Vdd]. *)

val on_current : Technology.t -> vdd:float -> vth:float -> float
(** Eq. 2 with [vth] the {e effective} threshold (DIBL already applied).
    Defined for [vdd > vth]; @raise Invalid_argument otherwise. *)

val off_current : Technology.t -> vth:float -> float
(** Sub-threshold off-current per cell at Vgs = 0:
    [Io * exp (-vth / (n * Ut))]. *)

val gate_delay : Technology.t -> zeta:float -> vdd:float -> vth:float -> float
(** Eq. 4: [zeta * Vdd / Ion], seconds. [zeta] is the per-gate delay
    coefficient (e.g. {!Technology.gate_zeta}). *)

val delay_scaling : Technology.t -> vdd:float -> vth:float -> float
(** Delay relative to the nominal operating point:
    [t(vdd, vth) / t(vdd_nom, vth_nom_effective)]. Both points use effective
    thresholds; ζ cancels. Used to scale a measured nominal critical path. *)

val off_current_iv :
  Technology.t -> vth:Numerics.Interval.t -> Numerics.Interval.t
(** Sound enclosure of {!off_current} over a threshold box. *)

val on_current_iv :
  Technology.t ->
  vdd:Numerics.Interval.t ->
  vth:Numerics.Interval.t ->
  Numerics.Interval.t
(** Sound enclosure of {!on_current} over an operating-point box. The
    naive [vdd - vth] overdrive ignores the (vdd, vth) correlation — use
    the affine machinery in {!Numerics.Interval.Affine} when the two are
    functionally linked. @raise Invalid_argument when the overdrive box
    is not strictly positive. *)
