type flavor =
  | Ultra_low_leakage
  | Low_leakage
  | High_speed
  | Custom of string

type t = {
  flavor : flavor;
  vdd_nom : float;
  vth0_nom : float;
  io : float;
  zeta_ro : float;
  ring_divisor : float;
  alpha : float;
  n : float;
  eta : float;
  temperature : float;
  cell_cap : float;
}

(* Table 2 of the paper; n = 1.33 is given in the text for the LL fit and is
   kept for all flavors. The remaining fields are calibrated against the
   published optima (EXPERIMENTS.md): eta is a typical 0.13 um value;
   cell_cap is back-solved from Table 1's dynamic power for LL (60-76 fF
   across architectures, ~65 fF average) and scaled by the per-technology
   capacitance factor fitted on Tables 3/4 (ULL 1.07x, HS 2.12x — the
   "increased capacitance C" of the HS flavor the paper points to);
   ring_divisor is the median of zeta_ro / zeta_gate over the published
   rows (HS is ill-conditioned there, a representative value is kept). *)
let base flavor ~vth0_nom ~io ~zeta_ro ~alpha ~cell_cap ~ring_divisor =
  {
    flavor;
    vdd_nom = 1.2;
    vth0_nom;
    io;
    zeta_ro;
    ring_divisor;
    alpha;
    n = 1.33;
    eta = 0.08;
    temperature = Constants.room_temperature;
    cell_cap;
  }

let ull =
  base Ultra_low_leakage ~vth0_nom:0.466 ~io:2.11e-6 ~zeta_ro:7.5e-12
    ~alpha:1.95 ~cell_cap:70e-15 ~ring_divisor:65.0

let ll =
  base Low_leakage ~vth0_nom:0.354 ~io:3.34e-6 ~zeta_ro:5.5e-12 ~alpha:1.86
    ~cell_cap:65e-15 ~ring_divisor:66.5

let hs =
  base High_speed ~vth0_nom:0.328 ~io:7.08e-6 ~zeta_ro:6.1e-12 ~alpha:1.58
    ~cell_cap:138e-15 ~ring_divisor:150.0

let all = [ ull; ll; hs ]

let name t =
  match t.flavor with
  | Ultra_low_leakage -> "ULL"
  | Low_leakage -> "LL"
  | High_speed -> "HS"
  | Custom s -> s

let ut t = Constants.thermal_voltage ~temperature:t.temperature
let n_ut t = t.n *. ut t
let gate_zeta t = t.zeta_ro /. t.ring_divisor
let vth_nom_effective t = t.vth0_nom -. (t.eta *. t.vdd_nom)
let with_ring_divisor ring_divisor t = { t with ring_divisor }

let alpha_valid_range = (1.0, 2.0)
let slope_valid_range = (1.0, 2.0)
let strong_inversion_margin t = 3.0 *. n_ut t

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: Vdd_nom=%.2f V, Vth0=%.3f V, Io=%.3g A, zeta_ro=%.3g F,@ \
     alpha=%.2f, n=%.2f, eta=%.2f, T=%.0f K, C_cell=%.3g F@]"
    (name t) t.vdd_nom t.vth0_nom t.io t.zeta_ro t.alpha t.n t.eta
    t.temperature t.cell_cap
