type t = {
  alpha : float;
  a : float;
  b : float;
  lo : float;
  hi : float;
  max_error : float;
}

let default_lo = 0.3
let default_hi = 1.0

let fit_uncached ~lo ~hi ~samples ~alpha =
  if alpha <= 0.0 then invalid_arg "Linearization.fit: alpha must be positive";
  if lo <= 0.0 || hi <= lo then
    invalid_arg "Linearization.fit: need 0 < lo < hi";
  let f vdd = vdd ** (1.0 /. alpha) in
  let line = Numerics.Fit.linear_on ~f ~lo ~hi ~samples in
  {
    alpha;
    a = line.slope;
    b = line.intercept;
    lo;
    hi;
    max_error = line.max_residual;
  }

(* The fit is a pure function of (alpha, range, samples) and every caller
   in the hot paths re-fits the same handful of keys, so the results are
   memoised. Invalid arguments raise on every call (errors are not
   cached). *)
let fit_cache =
  Parallel.Memo.create ~name:"linfit" (fun (lo, hi, samples, alpha) ->
      fit_uncached ~lo ~hi ~samples ~alpha)

let fit ?(lo = default_lo) ?(hi = default_hi) ?(samples = 201) ~alpha () =
  Parallel.Memo.find fit_cache (lo, hi, samples, alpha)

let for_technology (tech : Technology.t) = fit ~alpha:tech.alpha ()
let eval_exact t vdd = vdd ** (1.0 /. t.alpha)
let eval_linear t vdd = (t.a *. vdd) +. t.b

let figure2_series t ~samples =
  if samples < 2 then invalid_arg "Linearization.figure2_series: samples < 2";
  let step = (t.hi -. t.lo) /. float_of_int (samples - 1) in
  List.init samples (fun i ->
      let vdd = t.lo +. (float_of_int i *. step) in
      (vdd, eval_exact t vdd, eval_linear t vdd))
