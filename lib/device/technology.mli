(** Technology descriptions — the STM CMOS09 0.13 µm flavors of Table 2.

    A technology bundles the device-model parameters used throughout the
    paper's equations: average per-cell off-current [Io], weak-inversion slope
    [n], alpha-power exponent [α], delay coefficient [ζ], DIBL coefficient
    [η], plus the nominal operating point.

    Units note (documented in DESIGN.md §2): the published ζ values
    (5.5–7.5 pF) are consistent with a fit to a complete ring-oscillator
    chain. Back-solving the paper's own published optimal working points gives
    a per-gate delay coefficient ζ_gate = ζ_ro / ring_divisor with
    ring_divisor ≈ 68 (≈ 2 × 34 stages). [gate_zeta] applies that divisor. *)

type flavor =
  | Ultra_low_leakage
  | Low_leakage
  | High_speed
  | Custom of string

type t = {
  flavor : flavor;
  vdd_nom : float;  (** Nominal supply voltage, V. *)
  vth0_nom : float;  (** Nominal zero-bias threshold voltage, V. *)
  io : float;  (** Average off-current per cell at Vgs = Vth, A. *)
  zeta_ro : float;  (** Published ring-oscillator delay coefficient, F. *)
  ring_divisor : float;  (** ζ_ro / ζ_gate; calibrated, see above. *)
  alpha : float;  (** Alpha-power-law exponent. *)
  n : float;  (** Weak-inversion slope factor. *)
  eta : float;  (** DIBL coefficient, V/V. *)
  temperature : float;  (** Operating temperature, K. *)
  cell_cap : float;  (** Average switched capacitance per cell, F. *)
}

val ull : t
(** Ultra Low Leakage flavor (Table 2 row 1). *)

val ll : t
(** Low Leakage flavor (Table 2 row 2) — the paper's main technology. *)

val hs : t
(** High Speed flavor (Table 2 row 3). *)

val all : t list
(** The three STM flavors, in Table 2 order. *)

val name : t -> string

val ut : t -> float
(** Thermal voltage at the technology's temperature, V. *)

val n_ut : t -> float
(** [n * Ut] — the sub-threshold slope voltage, V. *)

val gate_zeta : t -> float
(** Per-gate delay coefficient ζ_gate = ζ_ro / ring_divisor, F. *)

val vth_nom_effective : t -> float
(** Effective nominal threshold including DIBL at Vdd_nom (Eq. 3). *)

val with_ring_divisor : float -> t -> t
(** Functional update of the calibrated ring divisor. *)

(** {1 Model validity ranges}

    The alpha-power law (Eq. 2) and the weak-inversion leakage expression
    (Eq. 1) are empirical fits with bounded domains; the static-analysis
    model rules ([Analysis.Model_rules]) gate every technology and every
    optimisation result on these ranges. *)

val alpha_valid_range : float * float
(** [(1.0, 2.0)] — the velocity-saturation exponent interpolates between
    fully saturated ([α = 1]) and the long-channel square law ([α = 2]);
    values outside have no physical reading in the Sakurai-Newton model. *)

val slope_valid_range : float * float
(** [(1.0, 2.0)] — the weak-inversion slope factor n; 1 is the ideal
    60 mV/dec limit, real 0.13 µm bulk sits near 1.3–1.5 and anything
    beyond 2 indicates a broken extraction. *)

val strong_inversion_margin : t -> float
(** Minimum gate overdrive [Vdd − Vth] (V) for the alpha-power delay fit to
    remain trustworthy: a few sub-threshold slopes above threshold,
    [3 · n · Ut]. Below it the device is in moderate/weak inversion where
    Eq. 2 underestimates delay and the optimum of Eq. 13 drifts. *)

val pp : Format.formatter -> t -> unit
