let vth_effective (tech : Technology.t) ~vth0 ~vdd = vth0 -. (tech.eta *. vdd)

let overdrive_scale (tech : Technology.t) =
  (* alpha / (e * n * Ut): the normalisation making Ion = Io at the point
     where the alpha-power law meets the sub-threshold characteristic. *)
  tech.alpha /. (Float.exp 1.0 *. Technology.n_ut tech)

let on_current (tech : Technology.t) ~vdd ~vth =
  if vdd <= vth then
    invalid_arg "Alpha_power.on_current: vdd must exceed vth";
  tech.io *. (((vdd -. vth) *. overdrive_scale tech) ** tech.alpha)

let off_current (tech : Technology.t) ~vth =
  tech.io *. Float.exp (-.vth /. Technology.n_ut tech)

let gate_delay tech ~zeta ~vdd ~vth = zeta *. vdd /. on_current tech ~vdd ~vth

let delay_scaling (tech : Technology.t) ~vdd ~vth =
  let nominal =
    gate_delay tech ~zeta:1.0 ~vdd:tech.vdd_nom
      ~vth:(Technology.vth_nom_effective tech)
  in
  gate_delay tech ~zeta:1.0 ~vdd ~vth /. nominal

(* Interval lifts. The scalar technology constants stay points; only the
   operating point (vdd, vth) widens to a box. *)

module Iv = Numerics.Interval

let off_current_iv (tech : Technology.t) ~vth =
  Iv.scale tech.io (Iv.exp (Iv.scale (-1.0 /. Technology.n_ut tech) vth))

let on_current_iv (tech : Technology.t) ~vdd ~vth =
  let over = Iv.sub vdd vth in
  if over.Iv.lo <= 0.0 then
    invalid_arg "Alpha_power.on_current_iv: vdd box must exceed vth box";
  Iv.scale tech.io
    (Iv.pow_scalar (Iv.scale (overdrive_scale tech) over) tech.alpha)
