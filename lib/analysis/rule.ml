type meta = {
  id : string;
  title : string;
  severity : Diagnostic.severity;
  guards : string;
}

let rule id severity title guards = { id; title; severity; guards }

let netlist =
  [
    rule "net.undriven" Diagnostic.Error "Undriven net"
      "N and a are extracted from a simulable netlist; a floating input \
       makes every downstream toggle count undefined";
    rule "net.comb-cycle" Diagnostic.Error "Combinational cycle"
      "LD (Eq. 6) is the longest acyclic path; a combinational loop has no \
       logical depth and the simulator cannot settle";
    rule "net.dangling-output" Diagnostic.Warning "Dangling cell output"
      "An unread output still switches: N and a include a cell whose power \
       a synthesis flow would have swept";
    rule "net.dead-logic" Diagnostic.Warning "Dead logic"
      "Cells outside the cone of influence of every primary output burn \
       dynamic and static power without contributing to the function";
    rule "net.const-fold" Diagnostic.Warning "Constant-foldable gate"
      "A gate fed by a tie evaluates (partly) to a constant - wasted \
       switched capacitance that inflates a*C in Eq. 1";
    rule "net.duplicate-cell" Diagnostic.Info "Structurally duplicate cell"
      "Two cells of the same kind reading the same nets compute the same \
       value; hash-consing one away lowers N at equal function";
    rule "net.fanout-budget" Diagnostic.Warning "Fanout over budget"
      "The per-cell average delay model assumes bounded load; a net fanning \
       out beyond the kind's budget invalidates the LD calibration";
    rule "net.unused-input" Diagnostic.Warning "Unused primary input"
      "An input no cell reads suggests a malformed generator - the \
       activity extraction would silently drive a dead port";
    rule "net.unbalanced-pipeline" Diagnostic.Warning "Unbalanced stage delays"
      "Gates whose inputs arrive far apart emit glitches (the paper's \
       diagonal pipelines): measured a exceeds the zero-delay activity";
  ]

let model =
  [
    rule "model.tech-range" Diagnostic.Error "Technology parameter range"
      "Io, zeta, C and the nominal point must be positive and ordered \
       (Vdd_nom > Vth0) for Eqs. 1-6 to be evaluable at all";
    rule "model.alpha-range" Diagnostic.Error "Alpha-power exponent domain"
      "alpha in [1, 2] - outside, the Sakurai-Newton drive model (Eq. 2) \
       has no physical reading and Eq. 7's linearisation breaks";
    rule "model.slope-range" Diagnostic.Error "Weak-inversion slope domain"
      "n in [1, 2] - the sub-threshold current (Eq. 1) grows as \
       exp(-Vth/(n*Ut)); a slope outside the physical band poisons the \
       optimal Vth of Eq. 9";
    rule "model.alpha-power-region" Diagnostic.Warning
      "Optimum outside strong inversion"
      "Eq. 2 is a strong-inversion fit; an optimal gate overdrive Vdd-Vth \
       under ~3*n*Ut drifts into moderate inversion where the delay (and \
       hence chi) is underestimated";
    rule "model.eq13-domain" Diagnostic.Error "Eq. 13 applicability"
      "The closed form needs chi*A < 1 and a positive logarithm argument \
       in Eq. 9; outside, no optimal working point exists at this \
       frequency";
    rule "model.sweep-bracket" Diagnostic.Warning "Optimum pinned at bracket"
      "A numerical optimum on the sweep boundary is a clamp, not a \
       stationary point - the reported minimum is untrustworthy";
    rule "model.calibration-range" Diagnostic.Error "Calibration row sanity"
      "Published rows are inverted back into model inputs; a row with \
       non-positive N, a, LD or powers would calibrate garbage silently";
    rule "model.finite" Diagnostic.Error "Non-finite emitted value"
      "Infinity/NaN sentinels must not escape into tables: every emitted \
       voltage and power is audited with the shared finite guard";
    rule "model.newton-divergence" Diagnostic.Error "Newton divergence"
      "The timing-constraint inversion must converge when cross-checked by \
       Newton from the closed-form optimum; divergence flags an \
       ill-conditioned chi";
  ]

let cert =
  [
    rule "cert.solver-in-enclosure" Diagnostic.Error
      "Solver result outside certified enclosure"
      "The seeded Brent optimum must land inside the interval \
       branch-and-bound's proven minimiser bracket and power enclosure - \
       a violation means the solver, not the proof, is wrong";
    rule "cert.eq13-seed" Diagnostic.Warning
      "Eq. 13 seed outside certified bracket"
      "The closed-form vdd_opt seeds the production solver; a seed \
       further from the certified bracket than the bracket-expansion \
       trust radius could park Brent in the wrong basin";
    rule "cert.lin-residual" Diagnostic.Warning
      "Linearization residual exceeds recorded bound"
      "Eq. 7's fit ships a sampled max_error; the certified (interval) \
       residual bound over the fit range must not exceed it by more than \
       rounding, or every Eq. 8-13 error bound is understated";
    rule "cert.warm-chain" Diagnostic.Error
      "Warm-start step escaped certified bracket"
      "A continuation step to a neighbouring frequency must stay inside \
       the neighbour's certified bracket - escape means warm chains can \
       silently drift off the optimum across a sweep";
    rule "cert.finite-box" Diagnostic.Error
      "Certified enclosure not finite"
      "The Ptot enclosure over the whole search box must be NaN/Inf-free \
       and non-negative, or the branch-and-bound's comparisons (and \
       every bound derived from them) are vacuous";
    rule "cert.sweep-coverage" Diagnostic.Warning
      "Certified bracket touches the sweep boundary"
      "A minimiser bracket reaching the Vdd search bracket's edge proves \
       the optimum may be a clamp - the certified analogue of the \
       sweep-bracket audit";
  ]

let dse =
  [
    rule "dse.generator-params" Diagnostic.Error "Generator parameter validity"
      "The explorer's substrate axis is only meaningful over the \
       generator's contract: radix in {2,4,8}, even width >= 4 and a \
       pipeline depth within the recoded row count - an invalid grid \
       would silently characterise the wrong circuit family";
    rule "dse.front-nonempty" Diagnostic.Error "Certified prune emptied a feasible front"
      "Pruning discards a candidate only when a surviving front member \
       dominates it, so a feasible candidate set must always leave a \
       non-empty Pareto front - an empty one means a bound was used as \
       an achieved value (the admissible-bound property is broken)";
  ]

let all = netlist @ model @ cert @ dse

let find id = List.find (fun m -> m.id = id) all
