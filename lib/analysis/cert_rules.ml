(* Certificate cross-check rules: every diagnostic here compares an
   executed result (solver, closed form, warm chain, fit record) against
   a machine-checked interval enclosure from Power_core.Absint. The
   enclosures are the ground truth — a finding always indicts the
   executed side. *)

module Iv = Numerics.Interval
module Ab = Power_core.Absint
module Pl = Power_core.Power_law

let model_loc ?parameter model = Diagnostic.Model_loc { model; parameter }

let diag rule model ?parameter ?severity ?fix_hint message =
  let meta = Rule.find rule in
  Diagnostic.make ~rule
    ~severity:(Option.value severity ~default:meta.Rule.severity)
    ~location:(model_loc ?parameter model)
    ?fix_hint message

(* --- cert.lin-residual ------------------------------------------------ *)

(* Certified sup-bound of |v^(1/alpha) - (a v + b)| over the fit range,
   by mean-value interval evaluation on a uniform subdivision: on each
   piece, r(v) in r(mid) + r'(piece) * (v - mid) with
   r'(v) = (1/alpha) v^(1/alpha - 1) - a. *)
let certified_residual_bound (lin : Device.Linearization.t) =
  let pieces = 512 in
  let p = 1.0 /. lin.alpha in
  let step = (lin.hi -. lin.lo) /. float_of_int pieces in
  let bound = ref 0.0 in
  for i = 0 to pieces - 1 do
    let a = lin.lo +. (float_of_int i *. step) in
    let piece = Iv.make a (Float.min lin.hi (a +. step)) in
    let m = Iv.mid piece in
    let r_mid =
      Iv.sub
        (Iv.pow_scalar (Iv.of_float m) p)
        (Iv.of_float ((lin.a *. m) +. lin.b))
    in
    let r_slope =
      Iv.add_scalar
        (Iv.scale p (Iv.pow_scalar piece (p -. 1.0)))
        (-.lin.a)
    in
    let enc =
      Iv.add r_mid (Iv.mul r_slope (Iv.add_scalar piece (-.m)))
    in
    bound := Float.max !bound (Iv.mag enc)
  done;
  !bound

let linearization ~label (tech : Device.Technology.t) =
  let lin = Device.Linearization.fit ~alpha:tech.alpha () in
  let certified = certified_residual_bound lin in
  if certified <= (lin.max_error *. 1.25) +. 1e-5 then []
  else
    [
      diag "cert.lin-residual" label ~parameter:"max_error"
        ~fix_hint:"refit Eq. 7 with more samples or store the certified \
                   bound instead of the sampled one"
        (Printf.sprintf
           "certified residual bound %.3e exceeds the recorded sampled \
            max_error %.3e over [%.2f, %.2f]"
           certified lin.max_error lin.lo lin.hi);
    ]

(* --- per-problem certificate audits ----------------------------------- *)

(* Slack for comparing an executed point against a certified interval:
   the solver refines to ~1e-9 absolute in vdd and the enclosure ends are
   outward-rounded, so 1e-6 relative covers both. *)
let vdd_slack v = 1e-6 *. Float.max 1.0 (Float.abs v)

let in_bracket bracket v =
  v >= bracket.Iv.lo -. vdd_slack v && v <= bracket.Iv.hi +. vdd_slack v

(* The seeded solver's initial bracket expansion works at a 5% scale
   (Numerics.Minimize.seeded_bracket via Numerical_opt.optimum); a seed
   further than that from the certified bracket could start Brent in the
   wrong basin without tripping the expansion. *)
let seed_trust_radius = 0.05

let certificate ~label (problem : Pl.problem) =
  let box = Ab.box problem in
  let cert = Ab.certify box in
  let bracket = cert.Ab.vdd_bracket in
  let enclosure = cert.Ab.ptot in
  let finite =
    let bad part (which, violation) =
      diag "cert.finite-box" label ~parameter:(part ^ "." ^ which)
        ~fix_hint:"shrink the parameter box; an unbounded enclosure \
                   certifies nothing"
        (Printf.sprintf "certified %s has a %s %s endpoint" part which
           (Numerics.Finite.violation_to_string violation))
    in
    List.filter_map Fun.id
      [
        Option.map (bad "ptot enclosure") (Iv.finite_violation enclosure);
        Option.map (bad "vdd bracket") (Iv.finite_violation bracket);
        (if enclosure.Iv.lo < 0.0 then
           Some
             (diag "cert.finite-box" label ~parameter:"ptot.lo"
                ~fix_hint:"a negative certified power bound means the \
                           interval model, not the circuit, is broken"
                (Printf.sprintf
                   "certified Ptot lower bound %.3e is negative"
                   enclosure.Iv.lo))
         else None);
      ]
  in
  if finite <> [] then finite
  else
    let optimum = Power_core.Numerical_opt.optimum problem in
    let solver =
      let vdd_ok = in_bracket bracket optimum.Pl.vdd in
      let ptot_ok =
        optimum.Pl.total >= enclosure.Iv.lo *. (1.0 -. 1e-9)
        && optimum.Pl.total <= enclosure.Iv.hi *. (1.0 +. 1e-6)
      in
      if vdd_ok && ptot_ok then []
      else
        [
          diag "cert.solver-in-enclosure" label ~parameter:"vdd"
            ~fix_hint:"the enclosure is a proof; debug the solver (seed, \
                       bracket expansion, Brent tolerance)"
            (Printf.sprintf
               "solver optimum (Vdd %.6g V, Ptot %.6g W) outside certified \
                bracket %s / enclosure %s"
               optimum.Pl.vdd optimum.Pl.total (Iv.to_string bracket)
               (Iv.to_string enclosure));
        ]
    in
    let seed =
      match Power_core.Closed_form.evaluate problem with
      | exception Power_core.Closed_form.Infeasible _ ->
        (* model.eq13-domain owns infeasibility; no seed, no check. *)
        []
      | r ->
        let v = r.Power_core.Closed_form.vdd_opt in
        let dist =
          Float.max 0.0
            (Float.max (bracket.Iv.lo -. v) (v -. bracket.Iv.hi))
        in
        if dist <= seed_trust_radius then []
        else
          [
            diag "cert.eq13-seed" label ~parameter:"vdd_opt"
              ~fix_hint:"the closed form left its validity domain; widen \
                         the seeded bracket expansion or force the grid \
                         fallback here"
              (Printf.sprintf
                 "Eq. 13 seed Vdd = %.4g V is %.4g V outside the \
                  certified bracket %s (trust radius %.2g V)"
                 v dist (Iv.to_string bracket) seed_trust_radius);
          ]
    in
    let warm =
      (* One continuation step to a 2% higher throughput, seeded from
         this problem's optimum — the exact move optima_continued makes —
         checked against the perturbed problem's own certificate. *)
      let problem' = Pl.at_frequency problem ~f:(problem.Pl.f *. 1.02) in
      let cert' = Ab.certify (Ab.box problem') in
      let warm = Power_core.Numerical_opt.optimum_warm ~from:optimum problem' in
      let ok =
        in_bracket cert'.Ab.vdd_bracket warm.Pl.vdd
        && warm.Pl.total <= cert'.Ab.ptot.Iv.hi *. (1.0 +. 1e-6)
        && warm.Pl.total >= cert'.Ab.ptot.Iv.lo *. (1.0 -. 1e-9)
      in
      if ok then []
      else
        [
          diag "cert.warm-chain" label ~parameter:"vdd"
            ~fix_hint:"shrink the continuation step or re-solve cold when \
                       the warm result leaves the certified bracket"
            (Printf.sprintf
               "warm step to f*1.02 landed at (Vdd %.6g V, Ptot %.6g W) \
                outside certified bracket %s / enclosure %s"
               warm.Pl.vdd warm.Pl.total
               (Iv.to_string cert'.Ab.vdd_bracket)
               (Iv.to_string cert'.Ab.ptot));
        ]
    in
    let coverage =
      let lo, hi = Pl.vdd_search_range in
      let step = (hi -. lo) /. 255.0 in
      if bracket.Iv.lo <= lo +. step || bracket.Iv.hi >= hi -. step then
        [
          diag "cert.sweep-coverage" label ~parameter:"vdd"
            ~fix_hint:"widen Power_law.vdd_search_range - the certified \
                       minimiser may sit on the wall"
            (Printf.sprintf
               "certified bracket %s is within one grid step of the \
                search bracket [%.2f, %.2f]"
               (Iv.to_string bracket) lo hi);
        ]
      else []
    in
    solver @ seed @ warm @ coverage
