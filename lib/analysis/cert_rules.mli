(** Certificate cross-check rules (the [cert.*] family of {!Rule.cert}).

    Each rule compares an {e executed} artefact — the seeded solver
    optimum, the Eq. 13 seed, a warm continuation step, the recorded
    linearization error — against a {e proven} interval enclosure from
    {!Power_core.Absint}. The enclosures are sound by construction, so a
    finding always indicts the executed side (or a box too wide to
    certify anything, reported by [cert.finite-box]). *)

val linearization : label:string -> Device.Technology.t -> Diagnostic.t list
(** [cert.lin-residual]: certified sup-bound of the Eq. 7 fit residual
    over the fit range vs the recorded sampled [max_error]. *)

val certificate : label:string -> Power_core.Power_law.problem -> Diagnostic.t list
(** The per-problem audits over the default search box:
    [cert.finite-box], [cert.solver-in-enclosure], [cert.eq13-seed],
    [cert.warm-chain], [cert.sweep-coverage]. Runs {!Power_core.Absint.certify}
    twice (base problem and a 2% continuation step) and the production
    solver once. *)
