(** Report renderers: plain text for terminals, a stable JSON encoding for
    scripting, and SARIF 2.1.0 for code-scanning UIs. All three are pure
    functions of the report — byte-identical across runs and pool sizes. *)

val text : ?max_per_rule:int -> Engine.report -> string
(** Per-target sections with one line per diagnostic
    ([severity rule location: message (hint)]). [max_per_rule] caps the
    lines printed per (target, rule) pair — remaining findings are
    summarised as a count (default: unlimited). *)

val json : Engine.report -> string
(** [{ "targets": [...], "summary": {...} }] with every diagnostic field
    spelled out. *)

val sarif : ?run_id:string -> Engine.report -> string
(** SARIF 2.1.0: one run with [automationDetails.id] (default
    ["optpower-lint/catalog"]), the full {!Rule.all} catalog as
    [tool.driver.rules] (id, description, default level), and one result
    per diagnostic with a logical location. *)
