(* Design-space explorer rules (the dse.* family of Rule.dse). *)

module B = Multipliers.Booth
module E = Power_core.Explorer

let model_loc ?parameter model = Diagnostic.Model_loc { model; parameter }

let diag rule model ?parameter ?severity ?fix_hint message =
  let meta = Rule.find rule in
  Diagnostic.make ~rule
    ~severity:(Option.value severity ~default:meta.Rule.severity)
    ~location:(model_loc ?parameter model)
    ?fix_hint message

let sign_tag = function B.Unsigned -> "u" | B.Signed -> "s"

(* Every point of the axes grid must either satisfy the generator contract
   or be a depth overshoot the enumeration is allowed to skip; anything
   else (bad radix, odd width, non-positive copies) poisons the whole
   grid and is an error. A grid whose every substrate combo is skipped
   enumerates nothing at all — also an error. *)
let generator_params ~label (axes : E.axes) =
  (* The Booth generator is the only family with a rejectable parameter
     grid (radix/signedness/stages contracts); Dadda is combinational-only
     and Wallace pipelines any depth, so only the Booth part is audited —
     and only when the axes enumerate it. *)
  let combos =
    if not (List.mem E.Booth axes.families) then []
    else
      List.concat_map
        (fun radix ->
          List.concat_map
            (fun signedness ->
              List.map (fun stages -> (radix, signedness, stages)) axes.stages)
            axes.signednesses)
        axes.radices
  in
  let findings =
    List.filter_map
      (fun (radix, signedness, stages) ->
        match
          B.validate ~radix ~signedness ~stages ~copies:1 ~bits:axes.bits
        with
        | Ok () -> None
        | Error msg ->
          let parameter =
            Printf.sprintf "r%d%s p%d w%d" radix (sign_tag signedness) stages
              axes.bits
          in
          let depth_overshoot =
            radix = 2 || radix = 4 || radix = 8
          in
          let depth_overshoot =
            depth_overshoot && axes.bits >= 4 && axes.bits mod 2 = 0
            && stages >= 1
          in
          Some
            (diag "dse.generator-params" label ~parameter
               ~severity:
                 (if depth_overshoot then Diagnostic.Info
                  else Diagnostic.Error)
               ~fix_hint:
                 (if depth_overshoot then
                    "the explorer skips this point; narrow the stages axis \
                     to silence"
                  else "fix the axes grid - see Booth.validate")
               msg))
      combos
  in
  let copies =
    List.filter_map
      (fun c ->
        if c >= 1 then None
        else
          Some
            (diag "dse.generator-params" label
               ~parameter:(Printf.sprintf "copies=%d" c)
               ~fix_hint:"parallelisation copies must be >= 1"
               (Printf.sprintf "copies must be >= 1 (got %d)" c)))
      axes.copies
  in
  let empty =
    if E.substrate_combos axes = [] then
      [
        diag "dse.generator-params" label
          ~fix_hint:"widen the family/radix/stages axes"
          "no (family, radix, signedness, stages) combination validates - \
           the grid enumerates nothing";
      ]
    else []
  in
  findings @ copies @ empty

(* Differential audit of the admissible-bound property: the pruned run
   must never finish a slice with an empty front while the exhaustive run
   (same axes) found feasible candidates there. *)
let front_nonempty ?pool ~label (axes : E.axes) =
  let pruned = E.explore ?pool ~prune:true axes in
  let exhaustive = E.explore ?pool ~prune:false axes in
  List.concat
    (List.map2
       (fun (p : E.slice) (x : E.slice) ->
         if x.front <> [] && p.front = [] then
           [
             diag "dse.front-nonempty" label
               ~parameter:(Printf.sprintf "f=%g" p.f)
               ~fix_hint:
                 "a certified lower bound was compared non-strictly, or an \
                  achieved value entered the ledger - audit \
                  Explorer.threshold_against and the ledger sourcing"
               (Printf.sprintf
                  "pruned front empty at f = %g Hz while the exhaustive \
                   front holds %d entries"
                  p.f (List.length x.front));
           ]
         else [])
       pruned.slices exhaustive.slices)
