module T = Device.Technology

let model_loc ?parameter model = Diagnostic.Model_loc { model; parameter }

let diag rule model ?parameter ?severity ?fix_hint message =
  let meta = Rule.find rule in
  Diagnostic.make ~rule
    ~severity:(Option.value severity ~default:meta.Rule.severity)
    ~location:(model_loc ?parameter model)
    ?fix_hint message

(* --- Technology parameter ranges --- *)

let in_range (lo, hi) x = x >= lo && x <= hi

let technology (tech : T.t) =
  let name = T.name tech in
  let positive =
    List.filter_map
      (fun (parameter, v) ->
        if v > 0.0 then None
        else
          Some
            (diag "model.tech-range" name ~parameter
               ~fix_hint:"fix the technology record - Table 2 values are \
                          all positive"
               (Printf.sprintf "%s = %g must be positive" parameter v)))
      [
        ("io", tech.io);
        ("zeta_ro", tech.zeta_ro);
        ("ring_divisor", tech.ring_divisor);
        ("cell_cap", tech.cell_cap);
        ("temperature", tech.temperature);
        ("vdd_nom", tech.vdd_nom);
      ]
  in
  let ordered =
    if tech.vdd_nom > tech.vth0_nom then []
    else
      [
        diag "model.tech-range" name ~parameter:"vth0_nom"
          ~fix_hint:"a nominal threshold at or above the nominal supply \
                     leaves no operating window"
          (Printf.sprintf "vth0_nom = %.3f V >= vdd_nom = %.3f V"
             tech.vth0_nom tech.vdd_nom);
      ]
  in
  let alpha =
    if in_range T.alpha_valid_range tech.alpha then []
    else
      let lo, hi = T.alpha_valid_range in
      [
        diag "model.alpha-range" name ~parameter:"alpha"
          ~fix_hint:"re-extract alpha from the ring-oscillator fit \
                     (Spice.Param_extract)"
          (Printf.sprintf "alpha = %.2f outside [%g, %g]" tech.alpha lo hi);
      ]
  in
  let slope =
    if in_range T.slope_valid_range tech.n then []
    else
      let lo, hi = T.slope_valid_range in
      [
        diag "model.slope-range" name ~parameter:"n"
          ~fix_hint:"re-extract n from the sub-threshold I-V slope"
          (Printf.sprintf "n = %.2f outside [%g, %g]" tech.n lo hi);
      ]
  in
  positive @ ordered @ alpha @ slope

(* --- Calibration row sanity --- *)

let calibration_row (row : Power_core.Paper_data.table1_row) =
  let model = "table1/" ^ row.label in
  let bad parameter message hint =
    diag "model.calibration-range" model ~parameter ~fix_hint:hint message
  in
  let checks =
    [
      ( row.n_cells > 0,
        "n_cells",
        Printf.sprintf "N = %d must be positive" row.n_cells );
      (row.area > 0.0, "area", Printf.sprintf "area = %g um^2" row.area);
      ( row.activity > 0.0 && row.activity <= 8.0,
        "activity",
        Printf.sprintf "a = %g outside (0, 8]" row.activity );
      ( row.ld_eff >= 1.0,
        "ld_eff",
        Printf.sprintf "LDeff = %g below one gate delay" row.ld_eff );
      ( row.vdd > 0.0 && row.vdd <= 3.0,
        "vdd",
        Printf.sprintf "Vdd = %g V outside (0, 3]" row.vdd );
      ( row.vth > -0.5 && row.vth < 1.0,
        "vth",
        Printf.sprintf "Vth = %g V outside (-0.5, 1)" row.vth );
      ( row.vdd > row.vth,
        "vth",
        Printf.sprintf "Vth = %g V at or above Vdd = %g V" row.vth row.vdd );
      (row.pdyn > 0.0, "pdyn", Printf.sprintf "Pdyn = %g W" row.pdyn);
      (row.pstat > 0.0, "pstat", Printf.sprintf "Pstat = %g W" row.pstat);
      (row.ptot > 0.0, "ptot", Printf.sprintf "Ptot = %g W" row.ptot);
      ( row.ptot_eq13 > 0.0,
        "ptot_eq13",
        Printf.sprintf "Eq.13 Ptot = %g W" row.ptot_eq13 );
      ( Float.abs row.err_pct < 20.0,
        "err_pct",
        Printf.sprintf "published Eq. 13 error %g%% is implausibly large"
          row.err_pct );
    ]
  in
  let unit_hint = "check the units: the paper prints uW, the rows store W" in
  let structural =
    List.filter_map
      (fun (ok, parameter, message) ->
        if ok then None else Some (bad parameter message unit_hint))
      checks
  in
  let balance =
    (* The published split must add up to the published total (rounding
       slack only) - a unit slip on one component breaks this first. *)
    let sum = row.pdyn +. row.pstat in
    if row.ptot <= 0.0 || Float.abs (sum -. row.ptot) /. row.ptot <= 0.02 then
      []
    else
      [
        bad "ptot"
          (Printf.sprintf "Pdyn + Pstat = %g W but Ptot = %g W (%.1f%% off)"
             sum row.ptot
             (100.0 *. Float.abs (sum -. row.ptot) /. row.ptot))
          unit_hint;
      ]
  in
  structural @ balance

(* --- Optimisation-result audits --- *)

let audit_finite model values =
  List.filter_map
    (fun (parameter, v) ->
      match Numerics.Finite.violation v with
      | None -> None
      | Some violation ->
        Some
          (diag "model.finite" model ~parameter
             ~fix_hint:"clamp with Numerics.Finite before emitting, or \
                        treat the point as infeasible"
             (Printf.sprintf "%s = %s escaped into an emitted result"
                parameter
                (Numerics.Finite.violation_to_string violation))))
    values

(* Default bracket of Numerical_opt.optimum (the one shared constant,
   Power_law.vdd_search_range); a minimum within one coarse grid step of
   either end is a clamp, not a stationary point. *)
let sweep_lo, sweep_hi = Power_core.Power_law.vdd_search_range
let sweep_samples = 256

let optimisation ~label (problem : Power_core.Power_law.problem) =
  let tech = problem.tech in
  let closed_form, domain =
    match Power_core.Closed_form.evaluate problem with
    | result -> (Some result, [])
    | exception Power_core.Closed_form.Infeasible reason ->
      ( None,
        [
          diag "model.eq13-domain" label
            ~fix_hint:"lower the frequency or pick a faster architecture \
                       (chi*A must stay below 1)"
            (Printf.sprintf "closed form infeasible: %s" reason);
        ] )
  in
  let optimum =
    Power_core.Numerical_opt.optimum ~vdd_lo:sweep_lo ~vdd_hi:sweep_hi
      ~samples:sweep_samples problem
  in
  let bracket =
    let step = (sweep_hi -. sweep_lo) /. float_of_int (sweep_samples - 1) in
    if optimum.vdd <= sweep_lo +. step || optimum.vdd >= sweep_hi -. step then
      [
        diag "model.sweep-bracket" label ~parameter:"vdd"
          ~fix_hint:"widen the Vdd sweep bracket"
          (Printf.sprintf
             "numerical optimum Vdd = %.3f V sits on the sweep boundary \
              [%.2f, %.2f]"
             optimum.vdd sweep_lo sweep_hi);
      ]
    else []
  in
  let region =
    let margin = optimum.vdd -. optimum.vth in
    let floor = T.strong_inversion_margin tech in
    if margin <= 0.0 then
      [
        diag "model.alpha-power-region" label ~parameter:"vdd-vth"
          ~severity:Diagnostic.Error
          ~fix_hint:"the operating point cannot switch - the calibration \
                     or the constraint is broken"
          (Printf.sprintf "optimal overdrive Vdd - Vth = %.3f V is not \
                           positive" margin);
      ]
    else if margin < floor then
      [
        diag "model.alpha-power-region" label ~parameter:"vdd-vth"
          ~fix_hint:"treat the alpha-power delay (and the optimum) as \
                     approximate below the strong-inversion floor"
          (Printf.sprintf
             "optimal overdrive Vdd - Vth = %.3f V is below the \
              strong-inversion floor %.3f V (3*n*Ut)"
             margin floor);
      ]
    else []
  in
  let newton =
    (* Cross-check the timing-constraint inversion: Newton on
       g(v) = v - (chi' v)^(1/alpha) - Vth* must land back on a supply
       solving Eq. 5. Cold-started from the nominal supply — at the
       optimum g is already zero and the check would be vacuous; from
       Vdd_nom it exercises the actual iteration, and an overshoot into
       v < 0 (where the fractional power is NaN) surfaces as Diverged. *)
    let chi_prime = problem.chi_prime and alpha = tech.alpha in
    let g v =
      (* Supplies <= 0 are outside the locus domain; NaN (rather than the
         builder's Invalid_argument) lets Newton classify the overshoot. *)
      if v <= 0.0 then Float.nan
      else Power_core.Power_law.vth_of_vdd problem v -. optimum.vth
    in
    let dg v =
      1.0 -. (chi_prime ** (1.0 /. alpha) *. (v ** ((1.0 /. alpha) -. 1.0))
              /. alpha)
    in
    match Numerics.Rootfind.newton ~f:g ~df:dg tech.vdd_nom with
    | _converged -> []
    | exception Numerics.Rootfind.Diverged { last; iterations; reason } ->
      [
        diag "model.newton-divergence" label ~parameter:"vdd"
          ~fix_hint:"the constraint locus is ill-conditioned here; check \
                     chi' and alpha"
          (Printf.sprintf
             "Newton inversion of Eq. 5 diverged (%s) after %d iterations \
              at Vdd = %g V"
             reason iterations last);
      ]
  in
  let finite =
    let closed_values =
      match closed_form with
      | None -> []
      | Some (r : Power_core.Closed_form.result) ->
        [
          ("vdd_opt", r.vdd_opt);
          ("vth_opt", r.vth_opt);
          ("ptot_eq13", r.ptot);
          ("ptot_eq11", r.ptot_eq11);
          ("chi", r.chi);
          ("one_minus_chi_a", r.one_minus_chi_a);
        ]
    in
    audit_finite label
      (closed_values
      @ [
          ("vdd", optimum.vdd);
          ("vth", optimum.vth);
          ("pdyn", optimum.dynamic);
          ("pstat", optimum.static);
          ("ptot", optimum.total);
        ])
  in
  domain @ bracket @ region @ newton @ finite
