type severity =
  | Error
  | Warning
  | Info

type location =
  | Circuit_loc of {
      circuit : string;
      cell : string option;
      net : string option;
    }
  | Model_loc of {
      model : string;
      parameter : string option;
    }

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
  fix_hint : string option;
}

let make ~rule ~severity ~location ?fix_hint message =
  { rule; severity; location; message; fix_hint }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let location_to_string = function
  | Circuit_loc { circuit; cell; net } ->
    String.concat ":"
      (circuit :: List.filter_map Fun.id [ cell; net ])
  | Model_loc { model; parameter } ->
    String.concat ":" (model :: Option.to_list parameter)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c =
    String.compare (location_to_string a.location)
      (location_to_string b.location)
  in
  if c <> 0 then c
  else
    let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.message b.message

(* Stable identity of a finding, independent of which driver produced it:
   two engine passes visiting the same target must collapse to one
   diagnostic. fix_hint is advisory and deliberately excluded. *)
let fingerprint d =
  String.concat "|"
    [
      d.rule;
      severity_to_string d.severity;
      location_to_string d.location;
      d.message;
    ]

let count diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diags

let worst_exit_code diags =
  let e, w, _ = count diags in
  if e > 0 then 2 else if w > 0 then 1 else 0
