(** Structured diagnostics — the common currency of the static-analysis
    engine. Every rule ({!Netlist_rules}, {!Model_rules}) emits values of
    this type; the renderers ({!Render}) turn them into text, JSON or
    SARIF without the rules knowing about output formats. *)

type severity =
  | Error  (** The model output is meaningless (e.g. undriven net,
               Eq. 13 log domain violated). *)
  | Warning  (** The output is computable but an assumption is strained
                (e.g. weak-inversion optimum, unbalanced pipeline). *)
  | Info  (** Opportunity or notice (e.g. duplicate cells). *)

type location =
  | Circuit_loc of {
      circuit : string;  (** Circuit/catalog label, e.g. "RCA diagpipe2". *)
      cell : string option;  (** Cell label ([Check.cell_label]). *)
      net : string option;  (** Net label ([Check.net_label]). *)
    }
  | Model_loc of {
      model : string;  (** Technology or "tech/architecture" label. *)
      parameter : string option;  (** Offending parameter, e.g. "alpha". *)
    }

type t = {
  rule : string;  (** Rule id, e.g. "net.undriven" — keys into {!Rule}. *)
  severity : severity;
  location : location;
  message : string;
  fix_hint : string option;  (** One-line suggested remedy. *)
}

val make :
  rule:string ->
  severity:severity ->
  location:location ->
  ?fix_hint:string ->
  string ->
  t

val severity_to_string : severity -> string
(** ["error" | "warning" | "info"]. *)

val location_to_string : location -> string
(** ["circuit:cell:net"] resp. ["model:parameter"], omitting absent
    parts — stable, colon-separated, used by the text renderer and tests. *)

val compare : t -> t -> int
(** Deterministic report order: location, then severity (errors first),
    then rule id, then message. *)

val fingerprint : t -> string
(** Stable identity of a finding — rule, severity, location and message
    ([fix_hint] excluded). The engine deduplicates by this key when
    several drivers visit the same target, and the SARIF renderer emits
    it as [partialFingerprints]. *)

val count : t list -> int * int * int
(** (errors, warnings, infos). *)

val worst_exit_code : t list -> int
(** 2 if any error, 1 if any warning, 0 otherwise — the [optpower lint]
    exit-code contract. Infos never fail a run. *)
