(** The rule registry — one metadata record per static-analysis rule.

    Rule {e implementations} live in {!Netlist_rules} and {!Model_rules};
    this module is the single source of truth for ids, titles, default
    severities and the paper assumption each rule guards, consumed by the
    SARIF renderer (tool.driver.rules), the documentation table in
    DESIGN.md and the tests. *)

type meta = {
  id : string;  (** Stable id, e.g. "net.undriven". *)
  title : string;  (** One-line human description. *)
  severity : Diagnostic.severity;  (** Default severity of findings. *)
  guards : string;  (** The Eq. 13 / model assumption the rule protects. *)
}

val netlist : meta list
(** Rules over a {!Netlist.Circuit.t}, in catalog order. *)

val model : meta list
(** Rules over technologies, calibration rows and optimisation results. *)

val cert : meta list
(** Rules cross-checking solver results against the interval certifier
    ({!Power_core.Absint}) — implementations in {!Cert_rules}. *)

val dse : meta list
(** Rules guarding the design-space explorer ({!Power_core.Explorer}) —
    implementations in [Dse_rules]. *)

val all : meta list
(** [netlist @ model @ cert @ dse]. *)

val find : string -> meta
(** @raise Not_found for an unregistered id. *)
