(** Orchestration: run every registered rule over the full multiplier
    catalog and the technology/calibration data, in parallel over the
    domain pool, and aggregate a deterministic report.

    The report groups diagnostics per audited target so renderers can emit
    per-circuit sections; {b determinism}: targets appear in catalog /
    Table 1 order and each target's diagnostics are sorted with
    {!Diagnostic.compare}, independent of the pool size
    ([Parallel.Pool.map]'s contract). *)

type target = {
  title : string;  (** e.g. ["netlist RCA"], ["technology LL"],
                       ["model LL/RCA"]. *)
  diagnostics : Diagnostic.t list;
}

type report = {
  targets : target list;
  errors : int;
  warnings : int;
  infos : int;
}

val of_targets : target list -> report
(** Aggregates counts. Targets sharing a title (visited from several
    drivers) are merged and their findings deduplicated by
    {!Diagnostic.fingerprint}, keeping first-appearance order — a
    single-driver report passes through unchanged. *)

val lint_circuit :
  ?config:Netlist_rules.config -> Netlist.Circuit.t -> Diagnostic.t list
(** All netlist rules over one circuit. *)

val netlist_targets :
  ?pool:Parallel.Pool.t -> ?config:Netlist_rules.config ->
  ?labels:string list -> unit -> target list
(** One target per catalog label (default: the paper's thirteen), built
    with [Multipliers.Catalog.build] and linted in parallel. *)

val model_targets :
  ?pool:Parallel.Pool.t -> ?tech:Device.Technology.t -> unit -> target list
(** Technology audits for every flavor, then one target per Table 1 row:
    calibration-row sanity plus the optimisation audit of the row's
    calibrated problem on [tech] (default LL), in parallel. *)

val cert_targets :
  ?pool:Parallel.Pool.t -> ?flavors:Device.Technology.t list -> unit ->
  target list
(** Certificate cross-checks ({!Cert_rules}): one linearization-residual
    target per flavor, then one target per flavor × Table 1 row auditing
    the row's calibrated problem against its interval certificate, in
    parallel. Default: all three flavors. *)

val dse_targets : ?pool:Parallel.Pool.t -> unit -> target list
(** Design-space explorer audits ({!Dse_rules}): the default axes grid
    against the generator contract, and the differential front-nonempty
    check on a small analytic grid. *)

val run :
  ?pool:Parallel.Pool.t -> ?config:Netlist_rules.config -> unit -> report
(** [netlist_targets], then [model_targets], then [cert_targets], then
    [dse_targets] — everything [optpower lint] checks. [pool] (default:
    the shared process-wide pool) carries every parallel map, so a
    resident serve session can keep lint work on its own domains. *)

val filter_rules : string list -> report -> report
(** Keep only findings whose rule id is in the list (targets stay, counts
    and hence {!exit_code} are recomputed) — the engine side of
    [optpower lint --only]. *)

val exit_code : report -> int
(** 2 on errors, 1 on warnings, 0 when clean (infos don't fail). *)
