(** Design-space explorer rules (the [dse.*] family of {!Rule.dse}).

    [dse.generator-params] audits an axes grid against the Booth
    generator's validity contract before any netlist is built;
    [dse.front-nonempty] differentially audits the admissible-bound
    property — the certified prune must never empty a front the
    exhaustive path found feasible candidates for. *)

val generator_params :
  label:string -> Power_core.Explorer.axes -> Diagnostic.t list
(** Grid-level validity: every (radix, signedness, stages) point either
    satisfies {!Multipliers.Booth.validate} or is a pipeline-depth
    overshoot the enumeration skips (reported [Info]); bad radices, odd
    widths and non-positive copies are errors, as is a grid with no valid
    substrate at all. *)

val front_nonempty :
  ?pool:Parallel.Pool.t ->
  label:string ->
  Power_core.Explorer.axes ->
  Diagnostic.t list
(** Runs the pruned and exhaustive explorers on the axes and reports an
    error for any slice where pruning emptied a feasible front. Run it on
    a small analytic grid — it costs two full explorations. *)
