(** Netlist lint rules — structural well-formedness (subsuming
    [Netlist.Check]) plus power-hygiene checks over a gate-level circuit.

    Every rule is a pure function [Circuit.t -> Diagnostic.t list]; {!run}
    executes the full set in {!Rule.netlist} order and returns a
    deterministically sorted report. Rules that need static timing are
    skipped when the circuit has a combinational cycle (the cycle itself is
    reported by {!comb_cycle}). *)

module C := Netlist.Circuit

type config = {
  fanout_budget : Netlist.Cell.kind -> int;
      (** Max readers of a net per driving-cell kind. *)
  slack_spread_max : float;
      (** {!Netlist.Timing.slack_spread} above which a circuit counts as
          glitch-prone even when its per-gate skew is low (a lone critical
          path towering over everything else). *)
  glitch_skew_max : float;
      (** {!Netlist.Timing.input_skew} / {!Netlist.Timing.logical_depth}
          above which arrival skew at gate inputs counts as glitch-prone. *)
}

val default_config : config
(** Buffers/inverters/flip-flops may drive 64 loads, ties are exempt,
    everything else 32. Glitch-skew threshold 0.14: on the catalog this
    flags both diagonal pipeline cuts (0.15–0.19, full-length carry chains
    inside each stage) and the 2-stage horizontal cut (0.18, whose stages
    still hold full ripple rows) while passing the flat arrays (≤ 0.12),
    Wallace trees (≤ 0.06) and sequential designs (≤ 0.08). Slack-spread
    threshold 0.99 — a backstop no catalog circuit reaches. *)

val undriven : C.t -> Diagnostic.t list
val comb_cycle : C.t -> Diagnostic.t list
val dangling_output : C.t -> Diagnostic.t list

val dead_logic : C.t -> Diagnostic.t list
(** Cells outside the cone of influence of every primary output
    (backward reachability over driver edges, flip-flops included). *)

val const_fold : C.t -> Diagnostic.t list
(** Non-tie cells with at least one input wired to a tie. *)

val duplicate_cell : C.t -> Diagnostic.t list
(** Structural hash-consing sweep: groups of same-kind cells reading the
    same input nets (same power-up value for flip-flops); one diagnostic
    per group. *)

val fanout_budget : ?config:config -> C.t -> Diagnostic.t list
val unused_input : C.t -> Diagnostic.t list
val unbalanced_pipeline : ?config:config -> C.t -> Diagnostic.t list

val run : ?config:config -> C.t -> Diagnostic.t list
(** All netlist rules, sorted with {!Diagnostic.compare}. *)
