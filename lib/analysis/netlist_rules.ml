module C = Netlist.Circuit
module Cell = Netlist.Cell
module Check = Netlist.Check

type config = {
  fanout_budget : Cell.kind -> int;
  slack_spread_max : float;
  glitch_skew_max : float;
}

let default_config =
  {
    fanout_budget =
      (function
      | Cell.Tie0 | Cell.Tie1 -> max_int  (* constants distribute freely *)
      | Cell.Buf | Cell.Inv | Cell.Dff -> 64
      | _ -> 32);
    slack_spread_max = 0.99;
    glitch_skew_max = 0.14;
  }

let circuit_loc ?cell ?net circuit =
  Diagnostic.Circuit_loc { circuit = C.name circuit; cell; net }

let diag rule circuit ?severity ?cell ?net ?fix_hint message =
  let meta = Rule.find rule in
  let severity = Option.value severity ~default:meta.Rule.severity in
  Diagnostic.make ~rule ~severity
    ~location:(circuit_loc ?cell ?net circuit)
    ?fix_hint message

let is_tie = function Cell.Tie0 | Cell.Tie1 -> true | _ -> false

(* --- Structural well-formedness (the former Netlist.Check findings) --- *)

let undriven circuit =
  List.filter_map
    (function
      | Check.Undriven_net (_, label) ->
        Some
          (diag "net.undriven" circuit ~net:label
             ~fix_hint:"drive the net from a cell output or declare it a \
                        primary input"
             (Printf.sprintf "net %s is read but has no driver" label))
      | _ -> None)
    (Check.undriven circuit)

let comb_cycle circuit =
  List.filter_map
    (function
      | Check.Combinational_cycle cells ->
        let labels = List.map (Check.cell_label circuit) cells in
        Some
          (diag "net.comb-cycle" circuit
             ~cell:(match labels with l :: _ -> l | [] -> "?")
             ~fix_hint:"break the loop with a flip-flop or rewire the \
                        feedback path"
             (Printf.sprintf "combinational cycle through [%s]"
                (String.concat "; " labels)))
      | _ -> None)
    (Check.cycles circuit)

let dangling_output circuit =
  List.filter_map
    (function
      | Check.Dangling_output (n, label) ->
        let driver = C.driver circuit n in
        let cell =
          Option.map (fun (id, _) -> Check.cell_label circuit id) driver
        in
        (* An unread tie costs nothing (constants never switch): demote to
           Info so real swept-logic candidates stand out. *)
        let severity =
          match driver with
          | Some (id, _) when is_tie (C.get_cell circuit id).kind ->
            Some Diagnostic.Info
          | _ -> None
        in
        Some
          (diag "net.dangling-output" circuit ?severity ?cell ~net:label
             ~fix_hint:"mark the net as a primary output or sweep the \
                        driving cell"
             (Printf.sprintf "cell output %s has no reader" label))
      | _ -> None)
    (Check.dangling circuit)

(* --- Cone-of-influence reachability from the primary outputs --- *)

let dead_logic circuit =
  let live = Array.make (C.cell_count circuit) false in
  let stack = ref [] in
  let mark_net n =
    match C.driver circuit n with
    | Some (id, _) when not live.(id) ->
      live.(id) <- true;
      stack := id :: !stack
    | Some _ | None -> ()
  in
  List.iter (fun (n, _) -> mark_net n) (C.primary_outputs circuit);
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
      stack := rest;
      Array.iter mark_net (C.get_cell circuit id).inputs;
      drain ()
  in
  drain ();
  C.fold_cells
    (fun acc (cell : C.cell) ->
      (* Ties are constants, not logic: an unread tie is the dangling-output
         rule's business, and a read one is const-fold's. *)
      if live.(cell.id) || Cell.arity cell.kind = 0 then acc
      else
        diag "net.dead-logic" circuit ~cell:(Check.cell_label circuit cell.id)
          ~fix_hint:"remove the cell (Netlist.Optimize sweeps dead cones) \
                     or mark its cone's output"
          (Printf.sprintf "%s reaches no primary output"
             (Check.cell_label circuit cell.id))
        :: acc)
    [] circuit
  |> List.rev

(* --- Constant-foldable gates --- *)

let const_fold circuit =
  C.fold_cells
    (fun acc (cell : C.cell) ->
      if is_tie cell.kind then acc
      else begin
        let tied =
          Array.to_list cell.inputs
          |> List.mapi (fun i n -> (i, n))
          |> List.filter_map (fun (i, n) ->
                 match C.driver circuit n with
                 | Some (id, _) when is_tie (C.get_cell circuit id).kind ->
                   Some (i, (C.get_cell circuit id).kind)
                 | Some _ | None -> None)
        in
        match tied with
        | [] -> acc
        | _ ->
          let slots =
            String.concat ", "
              (List.map
                 (fun (i, k) ->
                   Printf.sprintf "input %d = %s" i
                     (if k = Cell.Tie0 then "0" else "1"))
                 tied)
          in
          diag "net.const-fold" circuit
            ~cell:(Check.cell_label circuit cell.id)
            ~fix_hint:"run Netlist.Optimize to fold the constant and \
                       simplify the gate"
            (Printf.sprintf "%s has constant %s"
               (Check.cell_label circuit cell.id) slots)
          :: acc
      end)
    [] circuit
  |> List.rev

(* --- Structural duplicates (hash-consing sweep) --- *)

let duplicate_cell circuit =
  let table : (string, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  C.iter_cells
    (fun (cell : C.cell) ->
      if Cell.arity cell.kind > 0 then begin
        let init =
          if Cell.is_sequential cell.kind then
            String.make 1 (Netlist.Logic.to_char (C.dff_init circuit cell.id))
          else ""
        in
        let key =
          Printf.sprintf "%s(%s)%s" (Cell.name cell.kind)
            (String.concat ","
               (List.map string_of_int (Array.to_list cell.inputs)))
            init
        in
        match Hashtbl.find_opt table key with
        | Some ids -> ids := cell.id :: !ids
        | None ->
          let ids = ref [ cell.id ] in
          Hashtbl.add table key ids;
          order := ids :: !order
      end)
    circuit;
  List.rev !order
  |> List.filter_map (fun ids ->
         match List.rev !ids with
         | first :: (_ :: _ as rest) ->
           Some
             (diag "net.duplicate-cell" circuit
                ~cell:(Check.cell_label circuit first)
                ~fix_hint:"hash-cons: rewire readers to one instance and \
                           sweep the rest"
                (Printf.sprintf "%d cells identical to %s: [%s]"
                   (1 + List.length rest)
                   (Check.cell_label circuit first)
                   (String.concat "; "
                      (List.map (Check.cell_label circuit) rest))))
         | _ -> None)

(* --- Fanout ERC --- *)

let fanout_budget ?(config = default_config) circuit =
  let fanout = C.fanout circuit in
  let diags = ref [] in
  Array.iteri
    (fun n readers ->
      match C.driver circuit n with
      | None -> ()  (* primary inputs answer to the testbench, not the ERC *)
      | Some (id, _) ->
        let kind = (C.get_cell circuit id).kind in
        let budget = config.fanout_budget kind in
        let loads = List.length readers in
        if loads > budget then
          diags :=
            diag "net.fanout-budget" circuit
              ~cell:(Check.cell_label circuit id)
              ~net:(Check.net_label circuit n)
              ~fix_hint:"buffer the net or duplicate the driver"
              (Printf.sprintf "%s drives %d loads (budget for %s: %d)"
                 (Check.net_label circuit n) loads (Cell.name kind) budget)
            :: !diags)
    fanout;
  List.rev !diags

(* --- Unused primary inputs --- *)

let unused_input circuit =
  let fanout = C.fanout circuit in
  let outputs = C.primary_outputs circuit in
  List.filter_map
    (fun n ->
      if fanout.(n) = [] && not (List.mem_assoc n outputs) then
        Some
          (diag "net.unused-input" circuit ~net:(Check.net_label circuit n)
             ~fix_hint:"drop the port from the generator or wire it into \
                        the datapath"
             (Printf.sprintf "primary input %s is never read"
                (Check.net_label circuit n)))
      else None)
    (C.primary_inputs circuit)

(* --- Pipeline balance (glitch-proneness) --- *)

let unbalanced_pipeline ?(config = default_config) circuit =
  if Check.cycles circuit <> [] then []
  else begin
    let spread = Netlist.Timing.slack_spread circuit in
    let depth = Netlist.Timing.logical_depth circuit in
    let skew =
      if depth > 0.0 then Netlist.Timing.input_skew circuit /. depth else 0.0
    in
    if skew > config.glitch_skew_max then
      [
        diag "net.unbalanced-pipeline" circuit
          ~fix_hint:"rebalance the stage cuts (horizontal rather than \
                     diagonal) or retime registers"
          (Printf.sprintf
             "mean per-gate input skew is %.0f%% of the stage depth \
              (budget %.0f%%) - skewed arrivals glitch"
             (100.0 *. skew)
             (100.0 *. config.glitch_skew_max));
      ]
    else if spread > config.slack_spread_max then
      [
        diag "net.unbalanced-pipeline" circuit
          ~fix_hint:"rebalance the stage cuts (horizontal rather than \
                     diagonal) or retime registers"
          (Printf.sprintf
             "endpoint slack spread %.2f exceeds %.2f - almost every path \
              is far faster than the critical one"
             spread config.slack_spread_max);
      ]
    else []
  end

let run ?(config = default_config) circuit =
  List.concat
    [
      undriven circuit;
      comb_cycle circuit;
      dangling_output circuit;
      dead_logic circuit;
      const_fold circuit;
      duplicate_cell circuit;
      fanout_budget ~config circuit;
      unused_input circuit;
      unbalanced_pipeline ~config circuit;
    ]
  |> List.stable_sort Diagnostic.compare
