type target = {
  title : string;
  diagnostics : Diagnostic.t list;
}

type report = {
  targets : target list;
  errors : int;
  warnings : int;
  infos : int;
}

let c_targets = Obs.Counter.make "lint.targets"
let c_diags = Obs.Counter.make "lint.diags"

let dedupe_diagnostics diags =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let fp = Diagnostic.fingerprint d in
      if Hashtbl.mem seen fp then false
      else (
        Hashtbl.add seen fp ();
        true))
    diags

(* Merge targets sharing a title (a target visited from several drivers)
   and collapse findings with equal fingerprints, keeping first-appearance
   order for both — a single-driver report passes through unchanged. *)
let merge_targets targets =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun t ->
      match Hashtbl.find_opt tbl t.title with
      | None ->
        Hashtbl.add tbl t.title t.diagnostics;
        order := t.title :: !order
      | Some ds -> Hashtbl.replace tbl t.title (ds @ t.diagnostics))
    targets;
  List.rev_map
    (fun title ->
      { title; diagnostics = dedupe_diagnostics (Hashtbl.find tbl title) })
    !order

let of_targets targets =
  let targets = merge_targets targets in
  let errors, warnings, infos =
    List.fold_left
      (fun (e, w, i) t ->
        let te, tw, ti = Diagnostic.count t.diagnostics in
        (e + te, w + tw, i + ti))
      (0, 0, 0) targets
  in
  { targets; errors; warnings; infos }

let lint_circuit ?config circuit = Netlist_rules.run ?config circuit

let catalog_labels () =
  List.map (fun e -> e.Multipliers.Catalog.label) Multipliers.Catalog.entries

let netlist_targets ?pool ?config ?labels () =
  let labels = match labels with Some l -> l | None -> catalog_labels () in
  (* Catalog builds are memoised process-wide; the pool workers share the
     physically-shared read-only specs. *)
  Parallel.Pool.map ?pool
    (fun label ->
      Obs.Span.with_ ~name:"lint.netlist" ~attrs:[ ("target", label) ]
      @@ fun () ->
      let spec = Multipliers.Catalog.build label in
      let diagnostics = Netlist_rules.run ?config spec.Multipliers.Spec.circuit in
      Obs.Counter.incr c_targets;
      Obs.Counter.add c_diags (List.length diagnostics);
      { title = "netlist " ^ label; diagnostics })
    labels

let model_targets ?pool ?(tech = Device.Technology.ll) () =
  let technologies =
    List.map
      (fun t ->
        Obs.Span.with_ ~name:"lint.technology"
          ~attrs:[ ("target", Device.Technology.name t) ]
        @@ fun () ->
        let diagnostics =
          List.stable_sort Diagnostic.compare (Model_rules.technology t)
        in
        Obs.Counter.incr c_targets;
        Obs.Counter.add c_diags (List.length diagnostics);
        { title = "technology " ^ Device.Technology.name t; diagnostics })
      Device.Technology.all
  in
  let f = Power_core.Paper_data.frequency in
  let rows =
    Parallel.Pool.map ?pool
      (fun (row : Power_core.Paper_data.table1_row) ->
        let label = Device.Technology.name tech ^ "/" ^ row.label in
        Obs.Span.with_ ~name:"lint.model" ~attrs:[ ("target", label) ]
        @@ fun () ->
        let problem = Power_core.Calibration.problem_of_row tech ~f row in
        let diagnostics =
          List.stable_sort Diagnostic.compare
            (Model_rules.calibration_row row
            @ Model_rules.optimisation ~label problem)
        in
        Obs.Counter.incr c_targets;
        Obs.Counter.add c_diags (List.length diagnostics);
        { title = "model " ^ label; diagnostics })
      Power_core.Paper_data.table1
  in
  technologies @ rows

let cert_targets ?pool ?(flavors = Device.Technology.all) () =
  let f = Power_core.Paper_data.frequency in
  let technologies =
    List.map
      (fun t ->
        let name = Device.Technology.name t in
        Obs.Span.with_ ~name:"lint.cert" ~attrs:[ ("target", name) ]
        @@ fun () ->
        let diagnostics =
          List.stable_sort Diagnostic.compare
            (Cert_rules.linearization ~label:name t)
        in
        Obs.Counter.incr c_targets;
        Obs.Counter.add c_diags (List.length diagnostics);
        { title = "cert technology " ^ name; diagnostics })
      flavors
  in
  let cases =
    List.concat_map
      (fun tech ->
        List.map (fun row -> (tech, row)) Power_core.Paper_data.table1)
      flavors
  in
  let rows =
    Parallel.Pool.map ?pool
      (fun (tech, (row : Power_core.Paper_data.table1_row)) ->
        let label = Device.Technology.name tech ^ "/" ^ row.label in
        Obs.Span.with_ ~name:"lint.cert" ~attrs:[ ("target", label) ]
        @@ fun () ->
        let problem = Power_core.Calibration.problem_of_row tech ~f row in
        let diagnostics =
          List.stable_sort Diagnostic.compare
            (Cert_rules.certificate ~label problem)
        in
        Obs.Counter.incr c_targets;
        Obs.Counter.add c_diags (List.length diagnostics);
        { title = "cert " ^ label; diagnostics })
      cases
  in
  technologies @ rows

(* A small analytic grid keeps the differential front audit cheap (one
   4-bit substrate build, cached process-wide) while still exercising the
   full prune pipeline. *)
let dse_audit_axes =
  {
    Power_core.Explorer.bits = 4;
    families = [ Power_core.Explorer.Booth ];
    radices = [ 4 ];
    signednesses = [ Multipliers.Booth.Unsigned ];
    stages = [ 1 ];
    copies = [ 1; 2 ];
    fmults = [ 0.5; 1.0 ];
    techs = Device.Technology.all;
  }

let dse_targets ?pool () =
  let grid =
    Obs.Span.with_ ~name:"lint.dse" ~attrs:[ ("target", "axes default") ]
    @@ fun () ->
    let diagnostics =
      List.stable_sort Diagnostic.compare
        (Dse_rules.generator_params ~label:"axes default"
           Power_core.Explorer.default_axes)
    in
    Obs.Counter.incr c_targets;
    Obs.Counter.add c_diags (List.length diagnostics);
    { title = "dse axes default"; diagnostics }
  in
  let front =
    Obs.Span.with_ ~name:"lint.dse" ~attrs:[ ("target", "front audit") ]
    @@ fun () ->
    let diagnostics =
      List.stable_sort Diagnostic.compare
        (Dse_rules.front_nonempty ?pool ~label:"front audit" dse_audit_axes)
    in
    Obs.Counter.incr c_targets;
    Obs.Counter.add c_diags (List.length diagnostics);
    { title = "dse front audit"; diagnostics }
  in
  [ grid; front ]

let run ?pool ?config () =
  Obs.Span.with_ ~name:"lint.run" (fun () ->
      of_targets
        (netlist_targets ?pool ?config ()
        @ model_targets ?pool ()
        @ cert_targets ?pool ()
        @ dse_targets ?pool ()))

let filter_rules ids report =
  of_targets
    (List.map
       (fun t ->
         {
           t with
           diagnostics =
             List.filter
               (fun (d : Diagnostic.t) -> List.mem d.rule ids)
               t.diagnostics;
         })
       report.targets)

let exit_code report =
  if report.errors > 0 then 2 else if report.warnings > 0 then 1 else 0
