type target = {
  title : string;
  diagnostics : Diagnostic.t list;
}

type report = {
  targets : target list;
  errors : int;
  warnings : int;
  infos : int;
}

let of_targets targets =
  let errors, warnings, infos =
    List.fold_left
      (fun (e, w, i) t ->
        let te, tw, ti = Diagnostic.count t.diagnostics in
        (e + te, w + tw, i + ti))
      (0, 0, 0) targets
  in
  { targets; errors; warnings; infos }

let lint_circuit ?config circuit = Netlist_rules.run ?config circuit

let catalog_labels () =
  List.map (fun e -> e.Multipliers.Catalog.label) Multipliers.Catalog.entries

let netlist_targets ?config ?labels () =
  let labels = match labels with Some l -> l | None -> catalog_labels () in
  (* Catalog builds are memoised process-wide; the pool workers share the
     physically-shared read-only specs. *)
  Parallel.Pool.map
    (fun label ->
      let spec = Multipliers.Catalog.build label in
      {
        title = "netlist " ^ label;
        diagnostics = Netlist_rules.run ?config spec.Multipliers.Spec.circuit;
      })
    labels

let model_targets ?(tech = Device.Technology.ll) () =
  let technologies =
    List.map
      (fun t ->
        {
          title = "technology " ^ Device.Technology.name t;
          diagnostics =
            List.stable_sort Diagnostic.compare (Model_rules.technology t);
        })
      Device.Technology.all
  in
  let f = Power_core.Paper_data.frequency in
  let rows =
    Parallel.Pool.map
      (fun (row : Power_core.Paper_data.table1_row) ->
        let label = Device.Technology.name tech ^ "/" ^ row.label in
        let problem = Power_core.Calibration.problem_of_row tech ~f row in
        {
          title = "model " ^ label;
          diagnostics =
            List.stable_sort Diagnostic.compare
              (Model_rules.calibration_row row
              @ Model_rules.optimisation ~label problem);
        })
      Power_core.Paper_data.table1
  in
  technologies @ rows

let run ?config () =
  of_targets (netlist_targets ?config () @ model_targets ())

let exit_code report =
  if report.errors > 0 then 2 else if report.warnings > 0 then 1 else 0
