(** Model-validity rules — audits of technology descriptions, calibration
    rows and optimisation results against the operating region in which the
    paper's equations hold.

    Three entry points, one per auditable object:
    - {!technology}: a {!Device.Technology.t} in isolation (parameter
      ranges);
    - {!calibration_row}: a published Table 1 row before it is inverted
      into model inputs (units, positivity, Pdyn + Pstat = Ptot);
    - {!optimisation}: a calibrated {!Power_core.Power_law.problem} — runs
      the closed form and the numerical optimum and checks Eq. 13's domain,
      the strong-inversion margin at the optimum, bracket pinning, Newton
      convergence of the constraint inversion, and that every emitted value
      is finite. *)

val technology : Device.Technology.t -> Diagnostic.t list

val calibration_row : Power_core.Paper_data.table1_row -> Diagnostic.t list

val optimisation :
  label:string -> Power_core.Power_law.problem -> Diagnostic.t list
(** [label] names the audited result in diagnostics, e.g. ["LL/RCA"]. *)
