(* Minimal JSON tree + printer, enough for the JSON and SARIF outputs
   (no JSON library in the toolchain image). *)
type json =
  | Str of string
  | Int of int
  | Obj of (string * json) list
  | Arr of json list

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string root =
  let buf = Buffer.create 4096 in
  let pad depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec emit depth = function
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_json s);
      Buffer.add_char buf '"'
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_json k);
          Buffer.add_string buf "\": ";
          emit (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          emit (depth + 1) v)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
  in
  emit 0 root;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- Text --- *)

let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let text ?(max_per_rule = max_int) (report : Engine.report) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (t : Engine.target) ->
      let e, w, i = Diagnostic.count t.diagnostics in
      Buffer.add_string buf
        (Printf.sprintf "== %s: %s, %s, %s\n" t.title (plural e "error")
           (plural w "warning") (plural i "info"));
      let shown : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let suppressed = ref [] in
      List.iter
        (fun (d : Diagnostic.t) ->
          let count =
            Option.value ~default:0 (Hashtbl.find_opt shown d.rule)
          in
          Hashtbl.replace shown d.rule (count + 1);
          if count < max_per_rule then
            Buffer.add_string buf
              (Printf.sprintf "  %-7s %-24s %s: %s%s\n"
                 (Diagnostic.severity_to_string d.severity)
                 d.rule
                 (Diagnostic.location_to_string d.location)
                 d.message
                 (match d.fix_hint with
                 | Some hint -> " (fix: " ^ hint ^ ")"
                 | None -> ""))
          else if not (List.mem_assoc d.rule !suppressed) then
            suppressed := (d.rule, ref 1) :: !suppressed
          else incr (List.assoc d.rule !suppressed))
        t.diagnostics;
      List.iter
        (fun (rule, n) ->
          Buffer.add_string buf
            (Printf.sprintf "  ... %s suppressed\n"
               (plural !n (rule ^ " finding"))))
        (List.rev !suppressed))
    report.targets;
  Buffer.add_string buf
    (Printf.sprintf "lint: %s, %s, %s, %s\n"
       (plural (List.length report.targets) "target")
       (plural report.errors "error")
       (plural report.warnings "warning")
       (plural report.infos "info"));
  Buffer.contents buf

(* --- JSON --- *)

let location_json = function
  | Diagnostic.Circuit_loc { circuit; cell; net } ->
    Obj
      (("kind", Str "circuit") :: ("circuit", Str circuit)
      :: List.filter_map
           (fun (k, v) -> Option.map (fun v -> (k, Str v)) v)
           [ ("cell", cell); ("net", net) ])
  | Diagnostic.Model_loc { model; parameter } ->
    Obj
      (("kind", Str "model") :: ("model", Str model)
      ::
      (match parameter with
      | Some p -> [ ("parameter", Str p) ]
      | None -> []))

let diagnostic_json (d : Diagnostic.t) =
  Obj
    ([
       ("rule", Str d.rule);
       ("severity", Str (Diagnostic.severity_to_string d.severity));
       ("location", location_json d.location);
       ("message", Str d.message);
     ]
    @ match d.fix_hint with Some h -> [ ("fixHint", Str h) ] | None -> [])

let json (report : Engine.report) =
  to_string
    (Obj
       [
         ( "targets",
           Arr
             (List.map
                (fun (t : Engine.target) ->
                  Obj
                    [
                      ("title", Str t.title);
                      ("diagnostics", Arr (List.map diagnostic_json t.diagnostics));
                    ])
                report.targets) );
         ( "summary",
           Obj
             [
               ("errors", Int report.errors);
               ("warnings", Int report.warnings);
               ("infos", Int report.infos);
               ("exitCode", Int (Engine.exit_code report));
             ] );
       ])

(* --- SARIF 2.1.0 --- *)

let sarif_level = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

(* The family prefix of a rule id ("net", "model", "cert") — SARIF
   consumers group and filter on it via properties.category / tags. *)
let rule_category id =
  match String.index_opt id '.' with
  | Some i -> String.sub id 0 i
  | None -> id

(* Every rule is documented in DESIGN.md's rule catalog under a stable
   anchor derived from its id ("cert.eq13-seed" -> #rule-cert-eq13-seed). *)
let rule_help_uri (m : Rule.meta) =
  let anchor = String.map (fun c -> if c = '.' then '-' else c) m.id in
  "https://github.com/optpower/optpower/blob/main/DESIGN.md#rule-" ^ anchor

let sarif_rule (m : Rule.meta) =
  Obj
    [
      ("id", Str m.id);
      ("name", Str m.title);
      ("shortDescription", Obj [ ("text", Str m.title) ]);
      ("fullDescription", Obj [ ("text", Str m.guards) ]);
      ("helpUri", Str (rule_help_uri m));
      ("defaultConfiguration", Obj [ ("level", Str (sarif_level m.severity)) ]);
      ( "properties",
        Obj
          [
            ("category", Str (rule_category m.id));
            ("severity", Str (Diagnostic.severity_to_string m.severity));
            ( "tags",
              Arr [ Str "power-model"; Str (rule_category m.id) ] );
          ] );
    ]

let rule_index id =
  let rec go i = function
    | [] -> -1
    | (m : Rule.meta) :: rest -> if m.id = id then i else go (i + 1) rest
  in
  go 0 Rule.all

let sarif_result (d : Diagnostic.t) =
  Obj
    ([
       ("ruleId", Str d.rule);
       ("ruleIndex", Int (rule_index d.rule));
       ("level", Str (sarif_level d.severity));
       ("message", Obj [ ("text", Str d.message) ]);
       ( "partialFingerprints",
         Obj [ ("optpowerDiagnostic/v1", Str (Diagnostic.fingerprint d)) ] );
       ( "locations",
         Arr
           [
             Obj
               [
                 ( "logicalLocations",
                   Arr
                     [
                       Obj
                         [
                           ( "name",
                             Str
                               (match d.location with
                               | Diagnostic.Circuit_loc { circuit; _ } ->
                                 circuit
                               | Diagnostic.Model_loc { model; _ } -> model) );
                           ( "fullyQualifiedName",
                             Str (Diagnostic.location_to_string d.location) );
                           ( "kind",
                             Str
                               (match d.location with
                               | Diagnostic.Circuit_loc _ -> "module"
                               | Diagnostic.Model_loc _ -> "parameter") );
                         ];
                     ] );
               ];
           ] );
     ]
    @
    match d.fix_hint with
    | Some h -> [ ("properties", Obj [ ("fixHint", Str h) ]) ]
    | None -> [])

let sarif ?(run_id = "optpower-lint/catalog") (report : Engine.report) =
  let results =
    List.concat_map
      (fun (t : Engine.target) -> List.map sarif_result t.diagnostics)
      report.targets
  in
  to_string
    (Obj
       [
         ("$schema", Str "https://json.schemastore.org/sarif-2.1.0.json");
         ("version", Str "2.1.0");
         ( "runs",
           Arr
             [
               Obj
                 [
                   ("automationDetails", Obj [ ("id", Str run_id) ]);
                   ( "tool",
                     Obj
                       [
                         ( "driver",
                           Obj
                             [
                               ("name", Str "optpower-lint");
                               ("version", Str "1.0.0");
                               ( "informationUri",
                                 Str
                                   "https://github.com/optpower/optpower" );
                               ("rules", Arr (List.map sarif_rule Rule.all));
                             ] );
                       ] );
                   ("results", Arr results);
                 ];
             ] );
       ])
