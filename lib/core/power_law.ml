type problem = {
  tech : Device.Technology.t;
  params : Arch_params.t;
  f : float;
  chi_prime : float;
}

(* (e * n * Ut / alpha)^alpha — the drive normalisation of Eq. 2. *)
let drive_norm (tech : Device.Technology.t) =
  (Float.exp 1.0 *. Device.Technology.n_ut tech /. tech.alpha) ** tech.alpha

let chi_prime_of_tech (tech : Device.Technology.t) ~ld_eff ~f =
  f *. ld_eff
  *. Device.Technology.gate_zeta tech
  *. drive_norm tech /. tech.io

let chi_prime_of_point (tech : Device.Technology.t) ~vdd ~vth =
  if vdd <= vth then
    invalid_arg "Power_law.chi_prime_of_point: vdd must exceed vth";
  ((vdd -. vth) ** tech.alpha) /. vdd

let make tech params ~f =
  {
    tech;
    params;
    f;
    chi_prime = chi_prime_of_tech tech ~ld_eff:params.Arch_params.ld_eff ~f;
  }

let make_calibrated tech params ~f ~vdd_ref ~vth_ref =
  { tech; params; f; chi_prime = chi_prime_of_point tech ~vdd:vdd_ref ~vth:vth_ref }

let at_frequency t ~f =
  if f <= 0.0 then invalid_arg "Power_law.at_frequency: f <= 0";
  { t with f; chi_prime = t.chi_prime *. f /. t.f }

let chi_linear t = t.chi_prime ** (1.0 /. t.tech.alpha)

let vth_of_vdd t vdd =
  if vdd <= 0.0 then invalid_arg "Power_law.vth_of_vdd: vdd <= 0";
  vdd -. ((t.chi_prime *. vdd) ** (1.0 /. t.tech.alpha))

let vdd_of_vth t vth =
  let f vdd = vth_of_vdd t vdd -. vth in
  (* vth_of_vdd is increasing in vdd for vdd above a small floor. *)
  Numerics.Rootfind.brent ~f (Float.max 1e-6 (vth +. 1e-9)) 20.0

let pdyn t ~vdd =
  let p = t.params in
  p.Arch_params.activity *. p.n_cells *. p.avg_cap *. t.f *. vdd *. vdd

let pstat t ~vdd ~vth =
  let p = t.params in
  p.Arch_params.n_cells *. vdd *. p.io_cell
  *. Float.exp (-.vth /. Device.Technology.n_ut t.tech)

type breakdown = {
  vdd : float;
  vth : float;
  dynamic : float;
  static : float;
  total : float;
}

let at_free t ~vdd ~vth =
  let dynamic = pdyn t ~vdd and static = pstat t ~vdd ~vth in
  { vdd; vth; dynamic; static; total = dynamic +. static }

let at t ~vdd = at_free t ~vdd ~vth:(vth_of_vdd t vdd)

let meets_timing t ~vdd ~vth =
  vdd > vth && ((vdd -. vth) ** t.tech.alpha) /. vdd >= t.chi_prime

(* One shared default supply bracket for every optimiser. 0.05 V keeps the
   lower end clear of the vdd -> 0 singularity of the constraint locus;
   3.0 V is comfortably above any optimum of the paper's technologies. *)
let vdd_search_range = (0.05, 3.0)
