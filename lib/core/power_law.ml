type problem = {
  tech : Device.Technology.t;
  params : Arch_params.t;
  f : float;
  chi_prime : float;
}

(* (e * n * Ut / alpha)^alpha — the drive normalisation of Eq. 2. *)
let drive_norm (tech : Device.Technology.t) =
  (Float.exp 1.0 *. Device.Technology.n_ut tech /. tech.alpha) ** tech.alpha

let chi_prime_of_tech (tech : Device.Technology.t) ~ld_eff ~f =
  f *. ld_eff
  *. Device.Technology.gate_zeta tech
  *. drive_norm tech /. tech.io

let chi_prime_of_point (tech : Device.Technology.t) ~vdd ~vth =
  if vdd <= vth then
    invalid_arg "Power_law.chi_prime_of_point: vdd must exceed vth";
  ((vdd -. vth) ** tech.alpha) /. vdd

let make tech params ~f =
  {
    tech;
    params;
    f;
    chi_prime = chi_prime_of_tech tech ~ld_eff:params.Arch_params.ld_eff ~f;
  }

let make_calibrated tech params ~f ~vdd_ref ~vth_ref =
  { tech; params; f; chi_prime = chi_prime_of_point tech ~vdd:vdd_ref ~vth:vth_ref }

let at_frequency t ~f =
  if f <= 0.0 then invalid_arg "Power_law.at_frequency: f <= 0";
  { t with f; chi_prime = t.chi_prime *. f /. t.f }

let chi_linear t = t.chi_prime ** (1.0 /. t.tech.alpha)

let vth_of_vdd t vdd =
  if vdd <= 0.0 then invalid_arg "Power_law.vth_of_vdd: vdd <= 0";
  vdd -. ((t.chi_prime *. vdd) ** (1.0 /. t.tech.alpha))

let vdd_of_vth t vth =
  let f vdd = vth_of_vdd t vdd -. vth in
  (* vth_of_vdd is increasing in vdd for vdd above a small floor. *)
  Numerics.Rootfind.brent ~f (Float.max 1e-6 (vth +. 1e-9)) 20.0

let pdyn t ~vdd =
  let p = t.params in
  p.Arch_params.activity *. p.n_cells *. p.avg_cap *. t.f *. vdd *. vdd

let pstat t ~vdd ~vth =
  let p = t.params in
  p.Arch_params.n_cells *. vdd *. p.io_cell
  *. Float.exp (-.vth /. Device.Technology.n_ut t.tech)

type breakdown = {
  vdd : float;
  vth : float;
  dynamic : float;
  static : float;
  total : float;
}

let at_free t ~vdd ~vth =
  let dynamic = pdyn t ~vdd and static = pstat t ~vdd ~vth in
  { vdd; vth; dynamic; static; total = dynamic +. static }

let at t ~vdd = at_free t ~vdd ~vth:(vth_of_vdd t vdd)

let meets_timing t ~vdd ~vth =
  vdd > vth && ((vdd -. vth) ** t.tech.alpha) /. vdd >= t.chi_prime

(* One shared default supply bracket for every optimiser. 0.05 V keeps the
   lower end clear of the vdd -> 0 singularity of the constraint locus;
   3.0 V is comfortably above any optimum of the paper's technologies. *)
let vdd_search_range = (0.05, 3.0)

(* Interval lifts of the on-constraint power model. These are the naive
   (syntactic) enclosures: each occurrence of vdd widens independently, so
   they over-approximate on wide boxes — Absint tightens them with affine
   mean-value forms before branch-and-bound. Soundness is all that matters
   here: every returned box contains the exact value for every point of
   the input boxes. *)

module Iv = Numerics.Interval

let chi_prime_iv t ~f =
  if f.Iv.lo <= 0.0 then invalid_arg "Power_law.chi_prime_iv: f box <= 0";
  (* chi' is exactly proportional to f (Eq. 6). *)
  Iv.scale (t.chi_prime /. t.f) f

let vth_of_vdd_iv t ~chi_prime vdd =
  if vdd.Iv.lo <= 0.0 then
    invalid_arg "Power_law.vth_of_vdd_iv: vdd box <= 0";
  Iv.sub vdd
    (Iv.pow_scalar (Iv.mul chi_prime vdd) (1.0 /. t.tech.alpha))

let pdyn_iv t ~f ~vdd =
  let p = t.params in
  Iv.scale
    (p.Arch_params.activity *. p.n_cells *. p.avg_cap)
    (Iv.mul f (Iv.sqr vdd))

let pstat_iv t ~vdd ~vth =
  let p = t.params in
  Iv.scale
    (p.Arch_params.n_cells *. p.io_cell)
    (Iv.mul vdd
       (Iv.exp (Iv.scale (-1.0 /. Device.Technology.n_ut t.tech) vth)))

let ptot_on_constraint_iv t ~f ~vdd =
  let chi_prime = chi_prime_iv t ~f in
  let vth = vth_of_vdd_iv t ~chi_prime vdd in
  Iv.add (pdyn_iv t ~f ~vdd) (pstat_iv t ~vdd ~vth)

(* Enclosure of d(Ptot)/dVdd along the constraint locus. With
   g(v) = (chi' v)^(1/alpha) and vth = v - g:
     g'    = g / (alpha v)
     vth'  = 1 - g'
     pdyn' = 2 a N C f v
     pstat'= N io_cell e^{-vth/nUt} (1 - v vth'/nUt)
   A sign-definite result over a box proves Ptot monotone there — the
   branch-and-bound derivative-sign pruning rule. *)
let dptot_on_constraint_iv t ~f ~vdd =
  if vdd.Iv.lo <= 0.0 then
    invalid_arg "Power_law.dptot_on_constraint_iv: vdd box <= 0";
  let p = t.params in
  let n_ut = Device.Technology.n_ut t.tech in
  let chi_prime = chi_prime_iv t ~f in
  let g = Iv.pow_scalar (Iv.mul chi_prime vdd) (1.0 /. t.tech.alpha) in
  let g' = Iv.scale (1.0 /. t.tech.alpha) (Iv.div g vdd) in
  let vth = Iv.sub vdd g in
  let vth' = Iv.sub Iv.one g' in
  let pdyn' =
    Iv.scale
      (2.0 *. p.Arch_params.activity *. p.n_cells *. p.avg_cap)
      (Iv.mul f vdd)
  in
  let pstat' =
    Iv.scale
      (p.Arch_params.n_cells *. p.io_cell)
      (Iv.mul
         (Iv.exp (Iv.scale (-1.0 /. n_ut) vth))
         (Iv.sub Iv.one (Iv.scale (1.0 /. n_ut) (Iv.mul vdd vth'))))
  in
  Iv.add pdyn' pstat'
