(** Technology selection (Section 5): rank technology flavors by the
    optimal total power they allow a given architecture at a given
    throughput. *)

type entry = {
  tech : Device.Technology.t;
  closed_form : Closed_form.result option;
      (** [None] when the flavor cannot meet timing (Infeasible). *)
  numerical : Numerical_opt.point option;
}

val adapt_params :
  reference:Device.Technology.t ->
  Device.Technology.t ->
  Arch_params.t ->
  Arch_params.t
(** Re-express parameters extracted on [reference] for another flavor: the
    per-cell leakage scales with the technology's Io and the switched
    capacitance with its average cell capacitance (the paper's explanation
    of why HS loses: higher C, higher leakage). N, a and LDeff are
    netlist properties and stay. *)

val rank :
  ?techs:Device.Technology.t list ->
  ?reference:Device.Technology.t ->
  f:float ->
  Arch_params.t ->
  entry list
(** Evaluate each technology (default: the three STM flavors) on the
    architecture; parameters are adapted from [reference] (default LL, the
    flavor the architectures were characterised on); sorted by numerical
    optimal Ptot, infeasible flavors last. χ′ is derived from each
    technology's own ζ and Io (Eq. 6). The flavors form a continuation
    ladder: each feasible solve warm-starts from the previous flavor's
    optimum. *)

val best : entries:entry list -> entry option
(** First feasible entry. *)

val sweep_frequencies :
  ?reference:Device.Technology.t ->
  Device.Technology.t ->
  fs:float list ->
  Arch_params.t ->
  (float * Numerical_opt.point option) list
(** One flavor across a list of throughputs, solved as a single
    continuation chain (each feasible point warm-starts from the previous
    one's optimum). [None] marks frequencies the flavor cannot meet.
    Results are in [fs] order and independent of the pool size — the chain
    is sequential. *)

val crossover_frequency :
  ?f_lo:float -> ?f_hi:float ->
  Device.Technology.t -> Device.Technology.t -> Arch_params.t -> float option
(** Throughput at which two flavors swap rank (bisection on the Ptot
    difference), if one exists in the range — the "moderate trade-off wins
    in the middle" picture of Section 5. *)
