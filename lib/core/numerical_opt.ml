type point = Power_law.breakdown

(* Counter catalog of the solver: one [opt.solve] span per (Vdd, Vth)
   optimisation; iteration and probe counts as counters. All are
   deterministic for a given problem, so they survive into normalized
   profiles. [opt.grid_evals] / [opt.golden_iters] only move on the blind
   grid-scan path (the differential oracle and the seed fallback);
   [opt.seeded_solves] / [opt.brent_iters] only on the analytically seeded
   path; [opt.seed_fallbacks] counts cold solves that could not be seeded
   because the problem sits outside the Eq. 7 linearization's validity
   domain. *)
let c_solves = Obs.Counter.make "opt.solves"
let c_golden_iters = Obs.Counter.make "opt.golden_iters"
let c_grid_evals = Obs.Counter.make "opt.grid_evals"
let c_seeded_solves = Obs.Counter.make "opt.seeded_solves"
let c_brent_iters = Obs.Counter.make "opt.brent_iters"
let c_seed_fallbacks = Obs.Counter.make "opt.seed_fallbacks"
let c_sweep_points = Obs.Counter.make "opt.sweep_points"
let c_grid2_solves = Obs.Counter.make "opt.grid2_solves"

let default_vdd_lo, default_vdd_hi = Power_law.vdd_search_range

let ptot_on_constraint problem vdd =
  if vdd <= 0.0 then infinity
  else begin
    let b = Power_law.at problem ~vdd in
    if Float.is_finite b.total then b.total else infinity
  end

(* The pre-seeding solver: a blind 256-point scan localises the optimum
   basin, golden section refines it. Kept verbatim as the differential
   oracle for the seeded path (see test_solver_equiv) and as the fallback
   when no analytic seed is available. *)
let optimum_grid ?(vdd_lo = default_vdd_lo) ?(vdd_hi = default_vdd_hi)
    ?(samples = 256) problem =
  Obs.Span.with_ ~name:"opt.solve" (fun () ->
      let r =
        Numerics.Minimize.grid_then_golden ~samples ~tol:1e-9
          ~f:(ptot_on_constraint problem) vdd_lo vdd_hi
      in
      Obs.Counter.incr c_solves;
      Obs.Counter.add c_golden_iters r.iterations;
      Obs.Counter.add c_grid_evals samples;
      Power_law.at problem ~vdd:r.x)

(* Refine from a seed supply: expand a bracket geometrically around the
   seed until unimodality is established, then Brent. [scale] is the
   relative trust radius — Eq. 13 seeds are good to a few percent, warm
   starts from a neighbouring solve usually much better, but the expansion
   makes the exact value uncritical. *)
let solve_seeded ~vdd_lo ~vdd_hi ~seed ~scale problem =
  let x0 = Float.min vdd_hi (Float.max vdd_lo seed) in
  let r =
    Numerics.Minimize.seeded_bracket ~tol:1e-9 ~f:(ptot_on_constraint problem)
      ~x0
      ~scale:(scale *. x0)
      vdd_lo vdd_hi
  in
  Obs.Counter.incr c_solves;
  Obs.Counter.incr c_seeded_solves;
  Obs.Counter.add c_brent_iters r.iterations;
  Power_law.at problem ~vdd:r.x

(* The closed form is a trustworthy seed only where its own derivation
   holds: the Eq. 7 linearization must be feasible and the predicted
   optimum must fall inside the fitted range (extrapolated fits can be
   badly off) and inside the caller's search bracket. *)
let eq13_seed ~vdd_lo ~vdd_hi (problem : Power_law.problem) =
  match Closed_form.evaluate problem with
  | exception Closed_form.Infeasible _ -> None
  | cf ->
    let lin = Device.Linearization.fit ~alpha:problem.tech.alpha () in
    if
      cf.vdd_opt >= Float.max vdd_lo lin.lo
      && cf.vdd_opt <= Float.min vdd_hi lin.hi
    then Some cf.vdd_opt
    else None

let optimum ?(vdd_lo = default_vdd_lo) ?(vdd_hi = default_vdd_hi)
    ?(samples = 256) problem =
  match eq13_seed ~vdd_lo ~vdd_hi problem with
  | Some seed ->
    Obs.Span.with_ ~name:"opt.solve" (fun () ->
        solve_seeded ~vdd_lo ~vdd_hi ~seed ~scale:0.05 problem)
  | None ->
    Obs.Counter.incr c_seed_fallbacks;
    optimum_grid ~vdd_lo ~vdd_hi ~samples problem

let optimum_warm ?(vdd_lo = default_vdd_lo) ?(vdd_hi = default_vdd_hi)
    ~from:(from : point) problem =
  Obs.Span.with_ ~name:"opt.solve" (fun () ->
      solve_seeded ~vdd_lo ~vdd_hi ~seed:from.vdd ~scale:0.02 problem)

let c_store_hits = Obs.Counter.make "opt.store_hits"
let c_store_misses = Obs.Counter.make "opt.store_misses"
let c_hint_hits = Obs.Counter.make "opt.hint_hits"

let optimum_hinted ?vdd_lo ?vdd_hi ~hint problem =
  match hint with
  | Some from -> optimum_warm ?vdd_lo ?vdd_hi ~from problem
  | None -> optimum ?vdd_lo ?vdd_hi problem

(* Keys for the solver namespace carry the search bracket too: a solve is
   only replayable when the bracket — which shapes the result — matches. *)
let solve_key ~vdd_lo ~vdd_hi problem =
  Printf.sprintf "%s|b:%h %h" (Warm.problem_key problem) vdd_lo vdd_hi

(* The frequency segment of a stored key: "...|f:<hex>|x:...". *)
let key_frequency key =
  match String.index_opt key '|' with
  | None -> None
  | Some _ -> (
      let marker = "|f:" in
      let rec find i =
        if i + String.length marker > String.length key then None
        else if String.sub key i (String.length marker) = marker then
          Some (i + String.length marker)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some start ->
          let stop =
            match String.index_from_opt key start '|' with
            | Some j -> j
            | None -> String.length key
          in
          float_of_string_opt (String.sub key start (stop - start)))

let warm_hint ?(vdd_lo = default_vdd_lo) ?(vdd_hi = default_vdd_hi) ~store
    (problem : Power_law.problem) =
  let exact = solve_key ~vdd_lo ~vdd_hi problem in
  match Option.bind (Store.find store ~ns:Warm.ns_solve exact) Warm.decode_point
  with
  | Some p ->
      Obs.Counter.incr c_hint_hits;
      Some p
  | None ->
      (* Nearest stored neighbour of the same design at another f. *)
      let prefix = Warm.design_key problem ^ "|f:" in
      let best = ref None in
      Store.iter store ~ns:Warm.ns_solve (fun k v ->
          if String.starts_with ~prefix k then
            match (key_frequency k, Warm.decode_point v) with
            | Some f, Some p -> (
                let d = Float.abs (f -. problem.f) in
                match !best with
                | Some (d0, _) when d0 <= d -> ()
                | _ -> best := Some (d, p))
            | _ -> ());
      (match !best with
      | Some _ -> Obs.Counter.incr c_hint_hits
      | None -> ());
      Option.map snd !best

let optimum_stored ?(vdd_lo = default_vdd_lo) ?(vdd_hi = default_vdd_hi)
    ~store problem =
  let key = solve_key ~vdd_lo ~vdd_hi problem in
  match Option.bind (Store.find store ~ns:Warm.ns_solve key) Warm.decode_point
  with
  | Some p ->
      Obs.Counter.incr c_store_hits;
      p
  | None ->
      Obs.Counter.incr c_store_misses;
      let p = optimum ~vdd_lo ~vdd_hi problem in
      Store.put store ~ns:Warm.ns_solve key (Warm.encode_point p);
      p

(* Continuation over a family of related problems: fixed-size contiguous
   chunks are mapped through the domain pool; within a chunk each solve is
   warm-started from its predecessor's optimum, the chunk head from the
   Eq. 13 seed (or the grid fallback). The chunk size is a constant — NOT
   derived from the pool size — so the warm chains, and with them every
   floating-point bit of the result, are identical at any [-j]. *)
let continuation_chunk = 16

(* One warm chain on the calling domain: the head solves cold (Eq. 13 seed
   or grid fallback), every successor warm-starts from its predecessor's
   optimum. This is exactly the chunk body of [optima_continued]; the serve
   layer re-batches chunks from several concurrent requests through one
   pool dispatch by calling it directly, which is why results there are
   bitwise-identical to a one-shot [optima_continued] per request. *)
let solve_chain ?(vdd_lo = default_vdd_lo) ?(vdd_hi = default_vdd_hi) problems
    =
  let prev = ref None in
  List.map
    (fun problem ->
      let pt =
        match !prev with
        | None -> optimum ~vdd_lo ~vdd_hi problem
        | Some p -> optimum_warm ~vdd_lo ~vdd_hi ~from:p problem
      in
      prev := Some pt;
      pt)
    problems

let optima_continued ?pool ?(vdd_lo = default_vdd_lo)
    ?(vdd_hi = default_vdd_hi) ?(chunk = continuation_chunk) ~problem_of items
    =
  if chunk < 1 then invalid_arg "Numerical_opt.optima_continued: chunk < 1";
  let arr = Array.of_list items in
  let n = Array.length arr in
  let nchunks = (n + chunk - 1) / chunk in
  Obs.Span.with_ ~name:"opt.continued" (fun () ->
      List.concat
        (Parallel.Pool.map ?pool
           (fun c ->
             let start = c * chunk in
             let stop = Stdlib.min n (start + chunk) in
             solve_chain ~vdd_lo ~vdd_hi
               (List.init (stop - start) (fun k -> problem_of arr.(start + k))))
           (List.init nchunks Fun.id)))

(* Array-flavoured warm chain for the streaming Monte-Carlo engine: one
   contiguous run of related problems solved sequentially on the calling
   domain, each solve warm-started from its predecessor and the results
   handed to [write] instead of consed into a list. [head] warm-starts the
   first solve too — the yield engine passes the nominal optimum, which
   keeps per-die solves off the Eq. 13 seeding path entirely (the seed's
   per-alpha linearization memo would otherwise grow without bound under
   continuously varying alpha). *)
let solve_chain_into ?(vdd_lo = default_vdd_lo) ?(vdd_hi = default_vdd_hi)
    ?head ~problem_of ~n ~write () =
  let prev = ref head in
  for i = 0 to n - 1 do
    let problem = problem_of i in
    let pt =
      match !prev with
      | None -> optimum ~vdd_lo ~vdd_hi problem
      | Some p -> optimum_warm ~vdd_lo ~vdd_hi ~from:p problem
    in
    prev := Some pt;
    write i pt
  done

let optimum_grid2 ?(vdd_range = Power_law.vdd_search_range)
    ?(vth_range = (-0.2, 0.8)) ?(samples = 400) problem =
  let vdd_lo, vdd_hi = vdd_range and vth_lo, vth_hi = vth_range in
  let cost vdd vth =
    if vdd <= 0.0 || not (Power_law.meets_timing problem ~vdd ~vth) then
      infinity
    else (Power_law.at_free problem ~vdd ~vth).total
  in
  let r =
    Obs.Span.with_ ~name:"opt.grid2" (fun () ->
        Numerics.Minimize.grid2 ~f:cost ~x0_range:(vdd_lo, vdd_hi)
          ~x1_range:(vth_lo, vth_hi) ~samples)
  in
  Obs.Counter.incr c_grid2_solves;
  Power_law.at_free problem ~vdd:r.x0 ~vth:r.x1

(* Fixed-size index chunks cut the pool's per-task overhead on fine-grained
   sweeps; each point is still a pure function of its index, so the sweep
   stays bitwise-identical to the unchunked map at any pool size. *)
let sweep_chunk = 32

let sweep_vdd ?pool ?(samples = 200) ~vdd_lo ~vdd_hi problem =
  if samples < 2 then invalid_arg "Numerical_opt.sweep_vdd: samples < 2";
  let step = (vdd_hi -. vdd_lo) /. float_of_int (samples - 1) in
  let nchunks = (samples + sweep_chunk - 1) / sweep_chunk in
  Obs.Span.with_ ~name:"opt.sweep" (fun () ->
      List.concat
        (Parallel.Pool.map ?pool
           (fun c ->
             let start = c * sweep_chunk in
             let stop = Stdlib.min samples (start + sweep_chunk) in
             List.init (stop - start) (fun k ->
                 Obs.Counter.incr c_sweep_points;
                 let vdd =
                   vdd_lo +. (float_of_int (start + k) *. step)
                 in
                 Power_law.at problem ~vdd))
           (List.init nchunks Fun.id)))

let dyn_static_ratio (p : point) =
  if p.static = 0.0 then infinity else p.dynamic /. p.static
