type point = Power_law.breakdown

(* Counter catalog of the solver: one [opt.solve] span per (Vdd, Vth)
   optimisation, golden-section iterations and grid probes as counters.
   All are deterministic for a given problem, so they survive into
   normalized profiles. *)
let c_solves = Obs.Counter.make "opt.solves"
let c_golden_iters = Obs.Counter.make "opt.golden_iters"
let c_grid_evals = Obs.Counter.make "opt.grid_evals"
let c_sweep_points = Obs.Counter.make "opt.sweep_points"
let c_grid2_solves = Obs.Counter.make "opt.grid2_solves"

let ptot_on_constraint problem vdd =
  if vdd <= 0.0 then infinity
  else begin
    let b = Power_law.at problem ~vdd in
    if Float.is_finite b.total then b.total else infinity
  end

let optimum ?(vdd_lo = 0.05) ?(vdd_hi = 3.0) ?(samples = 256) problem =
  Obs.Span.with_ ~name:"opt.solve" (fun () ->
      let r =
        Numerics.Minimize.grid_then_golden ~samples ~tol:1e-9
          ~f:(ptot_on_constraint problem) vdd_lo vdd_hi
      in
      Obs.Counter.incr c_solves;
      Obs.Counter.add c_golden_iters r.iterations;
      Obs.Counter.add c_grid_evals samples;
      Power_law.at problem ~vdd:r.x)

let optimum_grid2 ?(vdd_range = (0.05, 2.0)) ?(vth_range = (-0.2, 0.8))
    ?(samples = 400) problem =
  let vdd_lo, vdd_hi = vdd_range and vth_lo, vth_hi = vth_range in
  let cost vdd vth =
    if vdd <= 0.0 || not (Power_law.meets_timing problem ~vdd ~vth) then
      infinity
    else (Power_law.at_free problem ~vdd ~vth).total
  in
  let r =
    Obs.Span.with_ ~name:"opt.grid2" (fun () ->
        Numerics.Minimize.grid2 ~f:cost ~x0_range:(vdd_lo, vdd_hi)
          ~x1_range:(vth_lo, vth_hi) ~samples)
  in
  Obs.Counter.incr c_grid2_solves;
  Power_law.at_free problem ~vdd:r.x0 ~vth:r.x1

let sweep_vdd ?(samples = 200) ~vdd_lo ~vdd_hi problem =
  if samples < 2 then invalid_arg "Numerical_opt.sweep_vdd: samples < 2";
  let step = (vdd_hi -. vdd_lo) /. float_of_int (samples - 1) in
  (* Points are independent evaluations on a fixed grid — mapped through
     the domain pool; each slot's Vdd depends only on its index. *)
  Obs.Span.with_ ~name:"opt.sweep" (fun () ->
      Parallel.Pool.map
        (fun i ->
          Obs.Counter.incr c_sweep_points;
          let vdd = vdd_lo +. (float_of_int i *. step) in
          Power_law.at problem ~vdd)
        (List.init samples Fun.id))

let dyn_static_ratio (p : point) =
  if p.static = 0.0 then infinity else p.dynamic /. p.static
