type spread = {
  sigma_leak : float;
  sigma_cap : float;
  sigma_speed : float;
  sigma_alpha : float;
}

let default_spread =
  { sigma_leak = 0.30; sigma_cap = 0.05; sigma_speed = 0.10; sigma_alpha = 0.03 }

type sample = {
  leak_factor : float;
  cap_factor : float;
  speed_factor : float;
  alpha : float;
  optimum : Numerical_opt.point;
}

type result = {
  nominal : Numerical_opt.point;
  samples : sample list;
  ptot_stats : Numerics.Stats.summary;
  ptot_p95 : float;
  vdd_stats : Numerics.Stats.summary;
}

let c_samples = Obs.Counter.make "mc.samples"

(* The die's parameter draw, separated from its re-optimisation so the
   solves can run as warm-started continuation chains. *)
let draw_factors spread rng (problem : Power_law.problem) =
  let leak_factor =
    Float.exp (Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_leak)
  in
  let cap_factor =
    Float.max 0.5 (1.0 +. Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_cap)
  in
  let speed_factor =
    Float.exp (Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_speed)
  in
  let alpha =
    Float.max 1.1
      (problem.tech.alpha
      +. Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_alpha)
  in
  let varied =
    {
      problem with
      Power_law.tech = { problem.tech with alpha };
      params =
        {
          problem.params with
          Arch_params.io_cell = problem.params.io_cell *. leak_factor;
          avg_cap = problem.params.avg_cap *. cap_factor;
        };
      chi_prime = problem.chi_prime *. speed_factor;
    }
  in
  (leak_factor, cap_factor, speed_factor, alpha, varied)

let monte_carlo ?(spread = default_spread) ?(samples = 200) ~rng problem =
  if samples < 2 then invalid_arg "Variation.monte_carlo: samples < 2";
  Obs.Span.with_ ~name:"mc.run" (fun () ->
  let nominal = Numerical_opt.optimum problem in
  (* Each die draws from its own stream, split sequentially from the
     caller's generator before any parallel work starts. The stream a die
     sees therefore depends only on its index and the caller's seed — never
     on how the pool schedules the re-optimisations — so the result is
     bitwise-identical at any pool size. Tracing never touches the streams:
     spans and counters only observe, so enabling Obs cannot change a
     single drawn bit. The draws themselves are cheap and happen on the
     caller; the expensive re-optimisations run as fixed-chunk continuation
     chains through the pool ([Numerical_opt.optima_continued]), each die
     warm-started from its chunk predecessor — the chunking is pool-size
     independent, so the chains (and every result bit) are too. *)
  let streams = List.init samples (fun _ -> Numerics.Rng.split rng) in
  let draws =
    List.map
      (fun stream ->
        Obs.Span.with_ ~name:"mc.sample" (fun () ->
            Obs.Counter.incr c_samples;
            draw_factors spread stream problem))
      streams
  in
  let optima =
    Numerical_opt.optima_continued
      ~problem_of:(fun (_, _, _, _, varied) -> varied)
      draws
  in
  let samples =
    List.map2
      (fun (leak_factor, cap_factor, speed_factor, alpha, _) optimum ->
        { leak_factor; cap_factor; speed_factor; alpha; optimum })
      draws optima
  in
  let ptots = List.map (fun s -> s.optimum.Power_law.total) samples in
  let vdds = List.map (fun s -> s.optimum.Power_law.vdd) samples in
  {
    nominal;
    samples;
    ptot_stats = Numerics.Stats.summarize ptots;
    ptot_p95 = Numerics.Stats.percentile ptots 95.0;
    vdd_stats = Numerics.Stats.summarize vdds;
  })

let vth_absorption problem ~dvth0 =
  (* A rigid Vth0 shift moves every feasible couple by the same amount in
     effective-threshold space while chi-prime (defined on the effective
     threshold) is unchanged: the optimisation problem is literally the
     same, so the optimal power is too. The working point absorbs the shift
     through body bias / supply choice. *)
  ignore dvth0;
  (Numerical_opt.optimum problem).Power_law.total
