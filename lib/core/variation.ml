type spread = {
  sigma_leak : float;
  sigma_cap : float;
  sigma_speed : float;
  sigma_alpha : float;
}

let default_spread =
  { sigma_leak = 0.30; sigma_cap = 0.05; sigma_speed = 0.10; sigma_alpha = 0.03 }

type sample = {
  leak_factor : float;
  cap_factor : float;
  speed_factor : float;
  alpha : float;
  optimum : Numerical_opt.point;
}

type result = {
  nominal : Numerical_opt.point;
  samples : sample list;
  ptot_stats : Numerics.Stats.summary;
  ptot_p95 : float;
  vdd_stats : Numerics.Stats.summary;
}

let c_samples = Obs.Counter.make "mc.samples"

(* The die's parameter draw, separated from its re-optimisation so the
   solves can run as warm-started continuation chains. [draw_raw] produces
   the four factors only (what the streaming engine stores in its flat
   per-chunk arrays); [apply_factors] turns them into the varied problem.
   The draw order (leak, cap, speed, alpha) is part of the determinism
   contract: the engine's per-die pseudo draws must be bitwise-identical to
   [monte_carlo]'s, which the differential oracle test relies on. *)
let draw_raw spread rng ~alpha0 =
  let leak_factor =
    Float.exp (Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_leak)
  in
  let cap_factor =
    Float.max 0.5 (1.0 +. Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_cap)
  in
  let speed_factor =
    Float.exp (Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_speed)
  in
  let alpha =
    Float.max 1.1
      (alpha0 +. Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:spread.sigma_alpha)
  in
  (leak_factor, cap_factor, speed_factor, alpha)

let apply_factors (problem : Power_law.problem) ~leak_factor ~cap_factor
    ~speed_factor ~alpha =
  {
    problem with
    Power_law.tech = { problem.tech with alpha };
    params =
      {
        problem.params with
        Arch_params.io_cell = problem.params.io_cell *. leak_factor;
        avg_cap = problem.params.avg_cap *. cap_factor;
      };
    chi_prime = problem.chi_prime *. speed_factor;
  }

let draw_factors spread rng (problem : Power_law.problem) =
  let leak_factor, cap_factor, speed_factor, alpha =
    draw_raw spread rng ~alpha0:problem.tech.alpha
  in
  ( leak_factor,
    cap_factor,
    speed_factor,
    alpha,
    apply_factors problem ~leak_factor ~cap_factor ~speed_factor ~alpha )

let monte_carlo ?(spread = default_spread) ?(samples = 200) ~rng problem =
  if samples < 2 then invalid_arg "Variation.monte_carlo: samples < 2";
  Obs.Span.with_ ~name:"mc.run" (fun () ->
  let nominal = Numerical_opt.optimum problem in
  (* Each die draws from its own stream, split sequentially from the
     caller's generator before any parallel work starts. The stream a die
     sees therefore depends only on its index and the caller's seed — never
     on how the pool schedules the re-optimisations — so the result is
     bitwise-identical at any pool size. Tracing never touches the streams:
     spans and counters only observe, so enabling Obs cannot change a
     single drawn bit. The draws themselves are cheap and happen on the
     caller; the expensive re-optimisations run as fixed-chunk continuation
     chains through the pool ([Numerical_opt.optima_continued]), each die
     warm-started from its chunk predecessor — the chunking is pool-size
     independent, so the chains (and every result bit) are too. *)
  let streams = List.init samples (fun _ -> Numerics.Rng.split rng) in
  let draws =
    List.map
      (fun stream ->
        Obs.Span.with_ ~name:"mc.sample" (fun () ->
            Obs.Counter.incr c_samples;
            draw_factors spread stream problem))
      streams
  in
  let optima =
    Numerical_opt.optima_continued
      ~problem_of:(fun (_, _, _, _, varied) -> varied)
      draws
  in
  let samples =
    List.map2
      (fun (leak_factor, cap_factor, speed_factor, alpha, _) optimum ->
        { leak_factor; cap_factor; speed_factor; alpha; optimum })
      draws optima
  in
  let ptots = List.map (fun s -> s.optimum.Power_law.total) samples in
  let vdds = List.map (fun s -> s.optimum.Power_law.vdd) samples in
  {
    nominal;
    samples;
    ptot_stats = Numerics.Stats.summarize ptots;
    ptot_p95 = Numerics.Stats.percentile ptots 95.0;
    vdd_stats = Numerics.Stats.summarize vdds;
  })

(* ------------------------------------------------------------------ *)
(* Streaming million-die yield engine.                                 *)
(* ------------------------------------------------------------------ *)

type sampler = [ `Pseudo | `Sobol ]

type yield_stats = {
  summary : Numerics.Stats.summary;
  q01 : float;
  q05 : float;
  q50 : float;
  q95 : float;
  q99 : float;
}

type yield_result = {
  nominal : Numerical_opt.point;
  dies : int;
  sampler : sampler;
  ptot : yield_stats;
  vdd : yield_stats;
  yield_curve : (float * float) array;
}

let c_chunks = Obs.Counter.make "mc.chunks"
let c_sobol_draws = Obs.Counter.make "mc.sobol_draws"
let c_merges = Obs.Counter.make "sketch.merges"

let default_specs nominal_total =
  Array.init 17 (fun i -> nominal_total *. (0.8 +. (0.05 *. float_of_int i)))

(* One chunk's worth of aggregation state — merged on the caller in chunk
   index order, so the (float) moment merges see a fixed operand order and
   the result stays bitwise-identical at any pool size. *)
type chunk_acc = {
  ptot_m : Numerics.Sketch.Moments.t;
  ptot_q : Numerics.Sketch.Quantile.t;
  vdd_m : Numerics.Sketch.Moments.t;
  vdd_q : Numerics.Sketch.Quantile.t;
  curve : Numerics.Sketch.Yield.t;
}

let fresh_acc ~specs () =
  {
    ptot_m = Numerics.Sketch.Moments.create ();
    ptot_q = Numerics.Sketch.Quantile.create ();
    vdd_m = Numerics.Sketch.Moments.create ();
    vdd_q = Numerics.Sketch.Quantile.create ();
    curve = Numerics.Sketch.Yield.create ~specs;
  }

let merge_acc into from =
  Numerics.Sketch.Moments.merge_into into.ptot_m from.ptot_m;
  Numerics.Sketch.Quantile.merge_into into.ptot_q from.ptot_q;
  Numerics.Sketch.Moments.merge_into into.vdd_m from.vdd_m;
  Numerics.Sketch.Quantile.merge_into into.vdd_q from.vdd_q;
  Numerics.Sketch.Yield.merge_into into.curve from.curve;
  Obs.Counter.add c_merges 5

let yield_stats_of m q =
  {
    summary = Numerics.Sketch.Moments.summary m;
    q01 = Numerics.Sketch.Quantile.quantile q 1.0;
    q05 = Numerics.Sketch.Quantile.quantile q 5.0;
    q50 = Numerics.Sketch.Quantile.quantile q 50.0;
    q95 = Numerics.Sketch.Quantile.quantile q 95.0;
    q99 = Numerics.Sketch.Quantile.quantile q 99.0;
  }

let yield_mc ?(spread = default_spread) ?(dies = 10_000) ?(chunk = 4096)
    ?(chain = 64) ?(sampler = `Pseudo) ?specs ~rng
    (problem : Power_law.problem) =
  if dies < 1 then invalid_arg "Variation.yield_mc: dies < 1";
  if chain < 1 then invalid_arg "Variation.yield_mc: chain < 1";
  if chunk < chain || chunk mod chain <> 0 then
    invalid_arg "Variation.yield_mc: chunk must be a positive multiple of chain";
  Obs.Span.with_ ~name:"yield.run" (fun () ->
      let nominal = Numerical_opt.optimum problem in
      let specs =
        match specs with
        | Some s -> Array.copy s
        | None -> default_specs nominal.Power_law.total
      in
      (* Both samplers index their randomness by absolute die number, never
         by generator history: die [i] reads pseudo stream [split_nth rng i]
         or Sobol point [i]. The caller's generator is NOT advanced — the
         whole run is a pure function of its state — and which pool chunk
         computes a die cannot change a single drawn bit. *)
      let sobol =
        match sampler with
        | `Pseudo -> None
        | `Sobol ->
          Some
            (Numerics.Sobol.create
               ~scramble:(Numerics.Rng.split_nth rng 0)
               ~dims:4 ())
      in
      let alpha0 = problem.tech.alpha in
      let nchunks = (dies + chunk - 1) / chunk in
      let process c =
        Obs.Span.with_ ~name:"yield.chunk" (fun () ->
            Obs.Counter.incr c_chunks;
            let start = c * chunk in
            let len = Stdlib.min chunk (dies - start) in
            Obs.Counter.add c_samples len;
            (* SoA draw stage: one flat array per varied parameter — the
               only per-die storage in the engine, scoped to the chunk. *)
            let leak = Array.make len 0.0
            and cap = Array.make len 0.0
            and speed = Array.make len 0.0
            and alpha = Array.make len 0.0 in
            (match sobol with
            | None ->
              for k = 0 to len - 1 do
                let stream = Numerics.Rng.split_nth rng (start + k) in
                let lf, cf, sf, al = draw_raw spread stream ~alpha0 in
                leak.(k) <- lf;
                cap.(k) <- cf;
                speed.(k) <- sf;
                alpha.(k) <- al
              done
            | Some sobol ->
              (* Inverse-CDF transform: Box-Muller on a low-discrepancy
                 sequence would destroy its equidistribution. *)
              let pt = Array.make 4 0.0 in
              for k = 0 to len - 1 do
                Numerics.Sobol.point_into sobol (start + k) pt;
                leak.(k) <-
                  Float.exp
                    (spread.sigma_leak *. Numerics.Stats.normal_quantile pt.(0));
                cap.(k) <-
                  Float.max 0.5
                    (1.0
                    +. (spread.sigma_cap *. Numerics.Stats.normal_quantile pt.(1))
                    );
                speed.(k) <-
                  Float.exp
                    (spread.sigma_speed *. Numerics.Stats.normal_quantile pt.(2));
                alpha.(k) <-
                  Float.max 1.1
                    (alpha0
                    +. (spread.sigma_alpha
                       *. Numerics.Stats.normal_quantile pt.(3)))
              done;
              Obs.Counter.add c_sobol_draws len);
            (* Solve stage: warm chains of [chain] dies, each head seeded
               from the nominal optimum. [chunk mod chain = 0] keeps chain
               boundaries aligned to chunk starts, so the chains are the
               same whatever the pool size. Heads start warm rather than
               from the Eq. 13 closed form because per-die alpha draws
               would miss (and grow) the linearization memo on every cold
               solve. *)
            let ptot_a = Array.make len 0.0
            and vdd_a = Array.make len 0.0 in
            let pos = ref 0 in
            while !pos < len do
              let base = !pos in
              let cl = Stdlib.min chain (len - base) in
              Numerical_opt.solve_chain_into ~head:nominal
                ~problem_of:(fun k ->
                  let k = base + k in
                  apply_factors problem ~leak_factor:leak.(k)
                    ~cap_factor:cap.(k) ~speed_factor:speed.(k)
                    ~alpha:alpha.(k))
                ~n:cl
                ~write:(fun k (pt : Numerical_opt.point) ->
                  ptot_a.(base + k) <- pt.Power_law.total;
                  vdd_a.(base + k) <- pt.Power_law.vdd)
                ();
              pos := base + cl
            done;
            (* Aggregate stage: per-die values leave the chunk only through
               O(1)-memory sketches. *)
            let acc = fresh_acc ~specs () in
            for k = 0 to len - 1 do
              Numerics.Sketch.Moments.add acc.ptot_m ptot_a.(k);
              Numerics.Sketch.Quantile.add acc.ptot_q ptot_a.(k);
              Numerics.Sketch.Moments.add acc.vdd_m vdd_a.(k);
              Numerics.Sketch.Quantile.add acc.vdd_q vdd_a.(k);
              Numerics.Sketch.Yield.add acc.curve ptot_a.(k)
            done;
            acc)
      in
      let chunks = Parallel.Pool.map process (List.init nchunks Fun.id) in
      let acc = fresh_acc ~specs () in
      List.iter (merge_acc acc) chunks;
      {
        nominal;
        dies;
        sampler;
        ptot = yield_stats_of acc.ptot_m acc.ptot_q;
        vdd = yield_stats_of acc.vdd_m acc.vdd_q;
        yield_curve = Numerics.Sketch.Yield.curve acc.curve;
      })

let vth_absorption problem ~dvth0 =
  (* A rigid Vth0 shift moves every feasible couple by the same amount in
     effective-threshold space while chi-prime (defined on the effective
     threshold) is unchanged: the optimisation problem is literally the
     same, so the optimal power is too. The working point absorbs the shift
     through body bias / supply choice. *)
  ignore dvth0;
  (Numerical_opt.optimum problem).Power_law.total
