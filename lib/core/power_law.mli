(** The fundamental power and timing equations — Eqs. 1–6 of the paper.

    A {!problem} ties an architecture, a technology and a throughput
    frequency together with the timing-constraint coefficient χ′ defined by

      (Vdd − Vth)^α = χ′ · Vdd            (Eq. 5, exact form)

    where χ′ = f · LD · ζ_gate · (e·n·Ut/α)^α / Io  (Eq. 6). Every supply
    voltage then implies the unique threshold that makes the critical path
    exactly meet the clock — the locus on which the optimum lives. *)

type problem = {
  tech : Device.Technology.t;
  params : Arch_params.t;
  f : float;  (** Data (throughput) clock frequency, Hz. *)
  chi_prime : float;  (** Timing coefficient χ′ of Eq. 5/6. *)
}

val chi_prime_of_tech :
  Device.Technology.t -> ld_eff:float -> f:float -> float
(** Eq. 6 from first principles: the technology's per-gate ζ and drive
    current set the gate delay, LDeff gates must fit in 1/f. *)

val chi_prime_of_point :
  Device.Technology.t -> vdd:float -> vth:float -> float
(** χ′ back-solved from a known on-constraint operating point —
    [(vdd − vth)^α / vdd]. Used to calibrate against published optima. *)

val make : Device.Technology.t -> Arch_params.t -> f:float -> problem
(** Problem with χ′ from {!chi_prime_of_tech}. *)

val make_calibrated :
  Device.Technology.t -> Arch_params.t -> f:float ->
  vdd_ref:float -> vth_ref:float -> problem
(** Problem with χ′ from a reference operating point. *)

val at_frequency : problem -> f:float -> problem
(** The same architecture and technology at another throughput: χ′ scales
    proportionally with f (Eq. 6), preserving whichever calibration built
    the problem. *)

val chi_linear : problem -> float
(** χ = χ′^(1/α) — the coefficient multiplying (A·Vdd + B) in Eq. 8. *)

val vth_of_vdd : problem -> float -> float
(** The threshold imposed by the timing constraint at a given supply
    (Eq. 5): [vdd − (χ′·vdd)^(1/α)]. May be negative — such supplies
    cannot meet timing with a physical threshold. *)

val vdd_of_vth : problem -> float -> float
(** Inverse of {!vth_of_vdd} (monotone; solved numerically).
    @raise Numerics.Rootfind.No_bracket if no supply in (vth, 20 V] works. *)

val pdyn : problem -> vdd:float -> float
(** Dynamic power [a·N·C·f·Vdd²] (Eq. 1), W. *)

val pstat : problem -> vdd:float -> vth:float -> float
(** Static power [N·Vdd·Io_cell·exp(−Vth/(n·Ut))] (Eq. 1), W. *)

type breakdown = {
  vdd : float;
  vth : float;
  dynamic : float;
  static : float;
  total : float;
}

val at : problem -> vdd:float -> breakdown
(** Power on the timing-constraint locus at the given supply. *)

val at_free : problem -> vdd:float -> vth:float -> breakdown
(** Power at an arbitrary (possibly infeasible) couple — used by the
    two-dimensional maps of Figure 1. *)

val meets_timing : problem -> vdd:float -> vth:float -> bool
(** Whether the couple satisfies the speed requirement (delay ≤ 1/f). *)

val vdd_search_range : float * float
(** The default supply bracket [(0.05, 3.0)] V shared by every optimiser —
    {!Numerical_opt.optimum}, {!Numerical_opt.optimum_grid2} and the
    static-analysis sweep-bracket rule all search this range unless told
    otherwise, so a result on its boundary always means "widen the
    bracket", never a range mismatch between layers. *)

(** {2 Interval lifts}

    Sound (naive, syntactic) enclosures of the on-constraint power model
    over boxes of supply voltage and frequency. Each occurrence of [vdd]
    widens independently, so wide boxes over-approximate; {!Absint}
    tightens with affine mean-value forms. Every result is guaranteed to
    contain the exact scalar value for every point of the input boxes. *)

val chi_prime_iv :
  problem -> f:Numerics.Interval.t -> Numerics.Interval.t
(** χ′ over a frequency box — exactly proportional to f (Eq. 6).
    @raise Invalid_argument when the f box is not strictly positive. *)

val vth_of_vdd_iv :
  problem ->
  chi_prime:Numerics.Interval.t ->
  Numerics.Interval.t ->
  Numerics.Interval.t
(** Enclosure of the constraint-locus threshold [vdd − (χ′·vdd)^(1/α)].
    @raise Invalid_argument when the vdd box is not strictly positive. *)

val pdyn_iv :
  problem ->
  f:Numerics.Interval.t ->
  vdd:Numerics.Interval.t ->
  Numerics.Interval.t

val pstat_iv :
  problem ->
  vdd:Numerics.Interval.t ->
  vth:Numerics.Interval.t ->
  Numerics.Interval.t

val ptot_on_constraint_iv :
  problem ->
  f:Numerics.Interval.t ->
  vdd:Numerics.Interval.t ->
  Numerics.Interval.t
(** Enclosure of {!Numerical_opt.ptot_on_constraint} over a (f, vdd) box. *)

val dptot_on_constraint_iv :
  problem ->
  f:Numerics.Interval.t ->
  vdd:Numerics.Interval.t ->
  Numerics.Interval.t
(** Enclosure of d(Ptot)/dVdd along the constraint locus. A sign-definite
    result proves Ptot monotone on the box — the derivative-sign pruning
    rule of {!Absint.certify}.
    @raise Invalid_argument when the vdd box is not strictly positive. *)
