(** Warm-store glue: the model fingerprint and the exact codecs that let
    {!Explorer}, {!Numerical_opt} and the serve layer persist results
    across runs without ever compromising bitwise reproducibility.

    Two invariants carry the whole design:

    - {b Exact keys.} Store keys are full serializations ([%h] hex
      floats) of every quantity the solver reads — never lossy hashes —
      so a hit can only come from the byte-identical problem, and the
      solver being deterministic, the stored bits equal what a cold
      re-solve would produce.
    - {b Fingerprint invalidation.} {!fingerprint} digests every
      calibration and technology constant plus a codec version; the store
      header carries it, so any model change discards stale entries by
      construction. *)

val codec_version : string

val fingerprint : unit -> string
(** Hex FNV-1a-64 digest over {!codec_version}, every float field of the
    three {!Device.Technology} flavors and the paper's reference
    frequency. *)

val default_path : unit -> string
(** [$OPTPOWER_STORE] when set, else [".optpower-store"]. *)

val open_store :
  ?readonly:bool -> ?path:string -> unit -> Store.t option
(** Open the warm store at [path] (default {!default_path}) with the
    current {!fingerprint}. Filesystem errors degrade to [None] (cold),
    never raise. *)

(** {2 Namespaces} *)

val ns_chars : string
(** Substrate characterizations, keyed by generator parameters. *)

val ns_opt : string
(** Exact optima, keyed by the full problem serialization. *)

val ns_ledger : string
(** Certified lower bounds, keyed by (design, frequency slice). *)

val ns_solve : string
(** Standalone solver optima ({!Numerical_opt.optimum_stored}), keyed by
    problem plus search bracket. Separate from {!ns_opt} because these
    records carry no certificate. *)

(** {2 Codecs — exact hex-float round-trips} *)

val encode_floats : float list -> string
val decode_floats : string -> float list option

val design_key : Power_law.problem -> string
(** Serialization of the technology and architecture fields only — the
    frequency-independent identity of a design. *)

val problem_key : Power_law.problem -> string
(** {!design_key} plus [f] and [chi_prime]: the exact solve identity. *)

val encode_point : Power_law.breakdown -> string
val decode_point : string -> Power_law.breakdown option

val encode_opt : (Power_law.breakdown * float) option -> string
(** A stored exact-solve outcome: the optimum plus its certified lower
    bound, or the infeasibility marker. *)

val decode_opt : string -> (Power_law.breakdown * float) option option
(** [None] = undecodable; [Some None] = recorded infeasible. *)
