(** Pruned Pareto design-space exploration — ROADMAP item 1.

    Enumerates a (generator family × analytic parallelisation × technology
    flavor × throughput) candidate space — thousands of points per run —
    and emits one power/latency/area Pareto front per frequency slice.
    The pruned path ranks candidates with the Eq. 13 closed form (a cheap
    admissible pre-ordering), discards candidates whose {e certified}
    lower bound on min Ptot strictly exceeds an achieved front value (an
    O(1) per-design ledger lookup, then an {!Absint.excludes} interval
    proof), and runs the exact seeded solves only for the survivors, in
    incumbent-first order through {!Parallel.Pool.map_rounds}.

    {b Invariants.} The pruned and exhaustive paths produce bitwise
    identical fronts at any pool size: pruning discards only candidates
    strictly dominated by a surviving front member (dominance is
    transitive through later culling), both arms run the identical exact
    task, and all front/ledger state advances sequentially on the caller.
    The ledger carries certified bounds across slices in ascending
    frequency, sound because min-over-vdd Ptot on the constraint locus is
    nondecreasing in f. A feasible candidate set always yields a
    non-empty front — the empty-threshold case prunes nothing (the
    [dse.front-nonempty] lint rule).

    {b Warm store.} With [?store], substrate characterizations, exact
    solve outcomes and the certified ledger persist across runs. Replay is
    exact-key only (full hex-float problem serializations), and the solver
    is deterministic, so a warm run's fronts are byte-identical to a cold
    run's at any pool size — only [store_hits]/prune counters move.

    Counters: [dse.enumerated], [dse.constraint_filtered],
    [dse.bound_pruned], [dse.cert_pruned], [dse.store_hits],
    [dse.exact_solves], [pareto.front_size]; caches [memo.dse.build.*],
    [memo.dse.chars.*]; store traffic under [store.*]. *)

type family = Booth | Dadda | Wallace

val family_name : family -> string
val family_of_string : string -> family option

type axes = {
  bits : int;
  families : family list;  (** Generator families to enumerate. *)
  radices : int list;  (** Booth recoding radices (Booth only). *)
  signednesses : Multipliers.Booth.signedness list;  (** Booth only. *)
  stages : int list;  (** Pipeline depths; combos beyond
      {!Multipliers.Booth.max_stages} for a radix are skipped, Dadda is
      combinational-only (kept iff 1 is listed). *)
  copies : int list;  (** Analytic {!Transform.parallelize} axis. *)
  fmults : float list;  (** Multiples of {!Paper_data.frequency};
      deduplicated and processed in ascending order. *)
  techs : Device.Technology.t list;
}

val default_axes : axes
(** 8-bit, all three families, radix {2,4,8}, unsigned, 1–3 stages,
    1/2/4 copies, f × {0.5,1,2,4}, all three STM flavors —
    468 candidates. *)

type substrate = {
  family : family;
  radix : int;  (** Booth recoding radix; 0 for Dadda/Wallace. *)
  signedness : Multipliers.Booth.signedness;
  stages : int;
}

val substrate_combos : axes -> substrate list
(** The valid generator builds the axes induce — Booth combos
    {!Multipliers.Booth.validate} rejects are skipped, Dadda appears iff
    stage 1 is listed, Wallace pipelines any listed depth. *)

val space_size : axes -> int
(** Candidates the axes enumerate (invalid combos excluded). *)

type entry = {
  label : string;
  design : string;  (** Tech-qualified design identity — the ledger key. *)
  family : family;
  radix : int;  (** 0 for non-Booth families. *)
  signedness : Multipliers.Booth.signedness;
  stages : int;
  copies : int;
  tech : string;
  f : float;
  power : float;  (** Achieved optimal Ptot, W. *)
  vdd : float;  (** Supply at the optimum, V. *)
  cert_lo : float;  (** Certified lower bound on min Ptot, W. *)
  latency : float;  (** Effective logical depth after transforms. *)
  area : float;  (** Cell count after transforms (area proxy). *)
}

type slice = { f : float; front : entry list }
(** One frequency's Pareto front, sorted by ascending power (ties by
    design label). *)

type totals = {
  enumerated : int;
  filtered : int;  (** Dropped by the latency/area constraint caps. *)
  bound_pruned : int;  (** Discarded by the O(1) ledger lookup. *)
  cert_pruned : int;  (** Discarded by an {!Absint.excludes} proof. *)
  store_hits : int;  (** Exact outcomes replayed from the warm store. *)
  exact_solves : int;
  front_size : int;  (** Summed over slices. *)
}

type result = { pruned : bool; slices : slice list; totals : totals }

val explore :
  ?pool:Parallel.Pool.t ->
  ?round:int ->
  ?prune:bool ->
  ?seed:int ->
  ?cycles:int ->
  ?reference:Device.Technology.t ->
  ?store:Store.t ->
  ?max_latency:float ->
  ?max_area:float ->
  axes ->
  result
(** Run the exploration. [prune] (default true) selects the pruned path;
    [false] solves every candidate exactly — the differential oracle the
    A/B bench and the [@explore] property test compare against. [round]
    (default 16) is the {!Parallel.Pool.map_rounds} scheduling quantum
    (any value yields the same fronts). [seed]/[cycles] (defaults 7/160)
    parameterize the activity characterization; [reference] (default LL)
    is the flavor substrates are characterised on before
    {!Tech_compare.adapt_params}. [store] makes the run warm (see the
    module header); [max_latency]/[max_area] cap the candidates before
    either arm sees them.
    @raise Invalid_argument on empty axes, non-positive frequencies,
    copies, or constraint caps (NaN included), or when no substrate combo
    validates. *)
