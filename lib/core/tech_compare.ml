type entry = {
  tech : Device.Technology.t;
  closed_form : Closed_form.result option;
  numerical : Numerical_opt.point option;
}

let adapt_params ~(reference : Device.Technology.t)
    (tech : Device.Technology.t) (params : Arch_params.t) =
  {
    params with
    Arch_params.io_cell = params.io_cell *. tech.io /. reference.io;
    avg_cap = params.avg_cap *. tech.cell_cap /. reference.cell_cap;
  }

let evaluate ?(reference = Device.Technology.ll) ?warm_from tech ~f params =
  let problem = Power_law.make tech (adapt_params ~reference tech params) ~f in
  let closed_form =
    match Closed_form.evaluate problem with
    | result -> Some result
    | exception Closed_form.Infeasible _ -> None
  in
  let numerical =
    match closed_form with
    | None -> None
    | Some _ ->
      Some
        (match warm_from with
        | Some from -> Numerical_opt.optimum_warm ~from problem
        | None -> Numerical_opt.optimum problem)
  in
  { tech; closed_form; numerical }

let rank ?(techs = Device.Technology.all) ?reference ~f params =
  (* The flavors form a ladder of closely related problems (same
     architecture, same f, scaled leakage/capacitance): each feasible
     flavor warm-starts from the previous one's optimum. The chain is
     sequential and in [techs] order, so ranking stays deterministic. *)
  let warm = ref None in
  let entries =
    List.map
      (fun tech ->
        let entry = evaluate ?reference ?warm_from:!warm tech ~f params in
        (match entry.numerical with
        | Some p -> warm := Some p
        | None -> ());
        entry)
      techs
  in
  let key e =
    match e.numerical with
    | Some p -> p.Power_law.total
    | None -> infinity
  in
  List.sort (fun a b -> Float.compare (key a) (key b)) entries

let best ~entries = List.find_opt (fun e -> e.numerical <> None) entries

let sweep_frequencies ?reference tech ~fs params =
  (* One warm chain along the frequency axis: consecutive points move the
     optimum smoothly (χ′ scales with f), so every solve after the first
     feasible one starts a couple of percent from its answer. Infeasible
     points leave the chain untouched. *)
  let warm = ref None in
  List.map
    (fun f ->
      let entry = evaluate ?reference ?warm_from:!warm tech ~f params in
      (match entry.numerical with
      | Some p -> warm := Some p
      | None -> ());
      (f, entry.numerical))
    fs

let crossover_frequency ?(f_lo = 1e6) ?(f_hi = 1e9) tech_a tech_b params =
  (* The grid walk and the bisection probe nearby frequencies, so each
     flavor carries its own warm chain across the whole search. *)
  let warm_a = ref None and warm_b = ref None in
  let diff f =
    let total warm tech =
      match (evaluate ?warm_from:!warm tech ~f params).numerical with
      | Some p ->
        warm := Some p;
        p.Power_law.total
      | None -> infinity
    in
    let a = total warm_a tech_a and b = total warm_b tech_b in
    (* An infeasible flavor counts as infinitely bad; only both-infeasible
       is undefined. *)
    if Float.is_finite a || Float.is_finite b then a -. b else Float.nan
  in
  (* Localise a sign change on a log-frequency grid (the difference can be
     undefined at the extremes where both flavors fail timing), then bisect
     inside the bracketing interval. *)
  let samples = 25 in
  let lf_lo = Float.log f_lo and lf_hi = Float.log f_hi in
  let step = (lf_hi -. lf_lo) /. float_of_int (samples - 1) in
  let grid =
    List.init samples (fun i ->
        let lf = lf_lo +. (float_of_int i *. step) in
        (lf, diff (Float.exp lf)))
  in
  let defined = List.filter (fun (_, d) -> not (Float.is_nan d)) grid in
  let rec bracket = function
    | (lf0, d0) :: ((lf1, d1) :: _ as rest) ->
      if (d0 < 0.0 && d1 > 0.0) || (d0 > 0.0 && d1 < 0.0) then Some (lf0, lf1)
      else bracket rest
    | [ _ ] | [] -> None
  in
  match bracket defined with
  | None -> None
  | Some (lf0, lf1) ->
    (* The bisection needs finite ordinates; an undefined difference (both
       flavors infeasible) counts as "no preference" at that frequency. *)
    let finite_diff lf = Numerics.Finite.clamp ~nan:0.0 (diff (Float.exp lf)) in
    let log_root = Numerics.Rootfind.bisect ~tol:1e-4 ~f:finite_diff lf0 lf1 in
    Some (Float.exp log_root)
