(** Full numerical optimisation of the working point — the reference against
    which the closed form's < 3 % error claim is checked (Section 3), and
    the machinery behind Figure 1.

    Since the Eq. 13 rework the production entry point {!optimum} is
    {e analytically seeded}: the closed form's [vdd_opt] (within 3 % of the
    numerical optimum inside its validity domain — the paper's headline
    result) starts a bracket expansion + Brent refinement instead of a
    blind 256-point grid scan. {!optimum_grid} keeps the pre-seeding
    scan-then-golden solver as the differential oracle; the two agree to
    better than 1e-6 relative in both the optimal supply and the optimal
    power (property-tested, [@solver-equiv]). Families of related problems
    (sweeps, ladders, Monte-Carlo dies) should go through
    {!optima_continued}, which warm-starts each solve from its
    neighbour's optimum. *)

type point = Power_law.breakdown

val ptot_on_constraint : Power_law.problem -> float -> float
(** Total power at a supply, threshold set by the timing constraint.
    Returns [infinity] for supplies whose implied threshold is absurd
    (vdd ≤ 0). *)

val optimum :
  ?vdd_lo:float -> ?vdd_hi:float -> ?samples:int ->
  Power_law.problem -> point
(** One-dimensional search over Vdd on the constraint locus. Seeds from
    {!Closed_form}'s Eq. 10 [vdd_opt] when the problem is inside the
    linearization's validity domain (the closed form is feasible and its
    predicted optimum falls inside both the Eq. 7 fit range and the search
    bracket), then refines with {!Numerics.Minimize.seeded_bracket}. Falls
    back to the {!optimum_grid} scan otherwise, counted by the
    [opt.seed_fallbacks] counter. [samples] only affects the fallback
    path. Default search range {!Power_law.vdd_search_range}
    (0.05–3.0 V). *)

val optimum_grid :
  ?vdd_lo:float -> ?vdd_hi:float -> ?samples:int ->
  Power_law.problem -> point
(** The blind solver: [samples]-point grid scan (default 256) to localise
    the global-minimum basin, golden section to refine. Robust to mild
    non-unimodality and independent of the closed form — the differential
    oracle the seeded {!optimum} is property-tested against, and its
    fallback. Default search range {!Power_law.vdd_search_range}. *)

val optimum_warm :
  ?vdd_lo:float -> ?vdd_hi:float -> from:point -> Power_law.problem -> point
(** [optimum_warm ~from problem] re-optimises a problem known to be close
    to an already solved one, seeding from [from]'s optimal supply with a
    tight (2 %) trust radius. The bracket expansion makes the result exact
    even when the neighbour is further away than that — only the iteration
    count grows. *)

val optimum_hinted :
  ?vdd_lo:float -> ?vdd_hi:float -> hint:point option ->
  Power_law.problem -> point
(** Hint path: [Some from] seeds via {!optimum_warm}, [None] solves cold.
    Hinted results agree with the grid oracle to 1e-6 relative
    (property-tested, like the Eq. 13 seeding of PR 5) but are {e not}
    bitwise-equal to a cold solve — bitwise-critical paths (explorer
    fronts, serve replies) must use {!optimum_stored} instead. *)

val warm_hint :
  ?vdd_lo:float -> ?vdd_hi:float -> store:Store.t ->
  Power_law.problem -> point option
(** A stored optimum usable as an {!optimum_warm} seed: the exact problem
    key when present, else the stored solve of the same design at the
    nearest frequency. [None] when the store knows nothing related. *)

val optimum_stored :
  ?vdd_lo:float -> ?vdd_hi:float -> store:Store.t ->
  Power_law.problem -> point
(** Bitwise-safe store path: an exact-key hit replays the stored bits
    (the solver is deterministic, so they equal what a cold solve would
    produce); a miss solves via {!optimum} and persists the result.
    Counted by [opt.store_hits] / [opt.store_misses]. *)

val continuation_chunk : int
(** The fixed chunk length (16) {!optima_continued} cuts item lists into.
    Exposed so the serve layer can re-create the exact same chunking when
    it coalesces several requests into one pool dispatch. *)

val solve_chain :
  ?vdd_lo:float -> ?vdd_hi:float -> Power_law.problem list -> point list
(** One warm-start continuation chain, entirely on the calling domain: the
    head solves cold via {!optimum}, every successor via {!optimum_warm}
    from its predecessor. [optima_continued] is exactly [solve_chain]
    applied to each fixed-size chunk through the pool; callers that own
    their parallel decomposition (the serve batcher) use this directly. *)

val optima_continued :
  ?pool:Parallel.Pool.t ->
  ?vdd_lo:float ->
  ?vdd_hi:float ->
  ?chunk:int ->
  problem_of:('a -> Power_law.problem) ->
  'a list ->
  point list
(** Continuation solve of a family of related problems (a Vdd or frequency
    sweep, a technology ladder, Monte-Carlo dies): the items are cut into
    contiguous chunks of [chunk] (default {!continuation_chunk}) mapped
    through {!Parallel.Pool} ([pool] defaults to the shared process-wide
    pool), and inside each chunk every solve is warm-started from its
    predecessor's optimum ({!optimum_warm}); chunk heads solve cold via
    {!optimum}. Results are returned in item order. The chunk size is a
    constant independent of the pool size, so the warm chains — and every
    floating-point bit of the result — are identical at any [-j].
    [problem_of] must be pure (it may run on any pool domain).
    @raise Invalid_argument if [chunk < 1]. *)

val solve_chain_into :
  ?vdd_lo:float ->
  ?vdd_hi:float ->
  ?head:point ->
  problem_of:(int -> Power_law.problem) ->
  n:int ->
  write:(int -> point -> unit) ->
  unit ->
  unit
(** [solve_chain_into ~problem_of ~n ~write ()] solves the [n] problems
    [problem_of 0 .. problem_of (n-1)] as one warm-started continuation
    chain on the calling domain: solve [i+1] seeds from solve [i]'s
    optimum ({!optimum_warm}), and solve 0 seeds from [head] when given
    (else it solves cold via {!optimum}). Each result is passed to
    [write i point] as soon as it is available — nothing is retained, so
    the caller can stream into flat arrays or sketches without per-die
    allocation. This is the building block under {!Variation.yield_mc}'s
    per-chunk solver; unlike {!optima_continued} it does not touch the
    pool, letting the caller own the parallel decomposition. *)

val optimum_grid2 :
  ?vdd_range:float * float ->
  ?vth_range:float * float ->
  ?samples:int ->
  Power_law.problem -> point
(** Brute-force reference: minimise over all feasible (Vdd, Vth) couples on
    a dense grid (Vth free, feasibility = meets timing). Validates that the
    constrained 1-D search loses nothing — a positive slack never helps
    (the argument below Eq. 5). [vdd_range] defaults to
    {!Power_law.vdd_search_range}, the same bracket as {!optimum}. *)

val sweep_vdd :
  ?pool:Parallel.Pool.t -> ?samples:int -> vdd_lo:float -> vdd_hi:float ->
  Power_law.problem -> point list
(** Ptot(Vdd) along the constraint locus — one Figure 1 curve. Points whose
    implied threshold is negative are included (the paper's curves extend
    there); callers may filter. Evaluated through the domain pool in
    fixed-size contiguous chunks ([pool] defaults to the shared pool);
    bitwise-identical at any pool size. *)

val dyn_static_ratio : point -> float
(** Pdyn/Pstat — the ratio annotated at each optimum in Figure 1. *)
