(** Process-variation Monte Carlo over the optimal working point.

    A consequence of the paper's premise (freely adjustable Vdd and Vth)
    worth making explicit: die-to-die threshold shifts are {e absorbed} by
    the working-point adjustment — only the required bias moves, not the
    achievable optimum. What does move the optimum is variation in the
    leakage magnitude (Io), the switched capacitance (C), the drive/delay
    (χ′) and the alpha exponent. This module samples those and returns the
    distribution of the re-optimised total power. *)

type spread = {
  sigma_leak : float;
      (** Log-normal sigma of the per-die leakage multiplier (≈ 0.2–0.5 at
          0.13 µm). *)
  sigma_cap : float;  (** Relative normal sigma on C. *)
  sigma_speed : float;  (** Log-normal sigma on the χ′ (delay) factor. *)
  sigma_alpha : float;  (** Absolute normal sigma on α. *)
}

val default_spread : spread
(** 0.30 / 0.05 / 0.10 / 0.03 — representative 0.13 µm die-to-die values. *)

type sample = {
  leak_factor : float;
  cap_factor : float;
  speed_factor : float;
  alpha : float;
  optimum : Numerical_opt.point;
}

type result = {
  nominal : Numerical_opt.point;
  samples : sample list;
  ptot_stats : Numerics.Stats.summary;
  ptot_p95 : float;  (** 95th percentile of the optimal power, W. *)
  vdd_stats : Numerics.Stats.summary;
}

val monte_carlo :
  ?spread:spread -> ?samples:int -> rng:Numerics.Rng.t ->
  Power_law.problem -> result
(** Default 200 samples. Each die draws its parameters from its own
    generator, split deterministically from [rng] before any parallel
    work; the re-optimisations then run as fixed-chunk warm-started
    continuation chains ({!Numerical_opt.optima_continued}) through the
    pool. Both the chunking and the streams are pool-size independent, so
    the result is a pure function of the generator state and bitwise
    independent of {!Parallel.Pool} size. *)

val vth_absorption :
  Power_law.problem -> dvth0:float -> float
(** The bias shift absorbing a Vth0 excursion of [dvth0]: the optimum's
    power is unchanged (returns the unchanged Ptot, asserted in tests) —
    the "adjustable Vdd/Vth hides threshold variation" observation. *)
