(** Process-variation Monte Carlo over the optimal working point.

    A consequence of the paper's premise (freely adjustable Vdd and Vth)
    worth making explicit: die-to-die threshold shifts are {e absorbed} by
    the working-point adjustment — only the required bias moves, not the
    achievable optimum. What does move the optimum is variation in the
    leakage magnitude (Io), the switched capacitance (C), the drive/delay
    (χ′) and the alpha exponent. This module samples those and returns the
    distribution of the re-optimised total power. *)

type spread = {
  sigma_leak : float;
      (** Log-normal sigma of the per-die leakage multiplier (≈ 0.2–0.5 at
          0.13 µm). *)
  sigma_cap : float;  (** Relative normal sigma on C. *)
  sigma_speed : float;  (** Log-normal sigma on the χ′ (delay) factor. *)
  sigma_alpha : float;  (** Absolute normal sigma on α. *)
}

val default_spread : spread
(** 0.30 / 0.05 / 0.10 / 0.03 — representative 0.13 µm die-to-die values. *)

type sample = {
  leak_factor : float;
  cap_factor : float;
  speed_factor : float;
  alpha : float;
  optimum : Numerical_opt.point;
}

type result = {
  nominal : Numerical_opt.point;
  samples : sample list;
  ptot_stats : Numerics.Stats.summary;
  ptot_p95 : float;  (** 95th percentile of the optimal power, W. *)
  vdd_stats : Numerics.Stats.summary;
}

val monte_carlo :
  ?spread:spread -> ?samples:int -> rng:Numerics.Rng.t ->
  Power_law.problem -> result
(** Default 200 samples. Each die draws its parameters from its own
    generator, split deterministically from [rng] before any parallel
    work; the re-optimisations then run as fixed-chunk warm-started
    continuation chains ({!Numerical_opt.optima_continued}) through the
    pool. Both the chunking and the streams are pool-size independent, so
    the result is a pure function of the generator state and bitwise
    independent of {!Parallel.Pool} size. *)

val draw_factors :
  spread ->
  Numerics.Rng.t ->
  Power_law.problem ->
  float * float * float * float * Power_law.problem
(** [draw_factors spread rng problem] draws one die's
    [(leak_factor, cap_factor, speed_factor, alpha, varied_problem)] from
    [rng], advancing it. The gaussian draw order (leak, cap, speed, alpha)
    is part of the determinism contract between {!monte_carlo} and
    {!yield_mc}'s [`Pseudo] sampler. Exposed for differential tests and
    benchmark baselines. *)

(** {1 Streaming parametric yield}

    {!yield_mc} scales the Monte Carlo to millions of dies by never
    materialising per-die results: parameter draws land in flat per-chunk
    arrays (structure-of-arrays), the re-optimisations run as warm chains
    over those arrays, and every per-die value is absorbed into mergeable
    O(1)-memory sketches ({!Numerics.Sketch}) before the chunk retires. *)

type sampler = [ `Pseudo | `Sobol ]
(** [`Pseudo]: one SplitMix64 stream per die ({!Numerics.Rng.split_nth} of
    the caller's generator at the die index — bitwise the same draws as
    {!monte_carlo}). [`Sobol]: scrambled low-discrepancy points mapped
    through {!Numerics.Stats.normal_quantile}, converging on smooth
    statistics with several-fold fewer dies. *)

type yield_stats = {
  summary : Numerics.Stats.summary;
      (** Exact count/mean/min/max; stddev via compensated one-pass
          moments. *)
  q01 : float;
  q05 : float;
  q50 : float;
  q95 : float;
  q99 : float;
      (** Sketch quantiles, each within the sketch's relative-error bound
          (1 %) of the matching exact order statistic. *)
}

type yield_result = {
  nominal : Numerical_opt.point;
  dies : int;
  sampler : sampler;
  ptot : yield_stats;  (** Optimal total power across dies, W. *)
  vdd : yield_stats;  (** Optimal supply across dies, V. *)
  yield_curve : (float * float) array;
      (** [(power spec, fraction of dies with optimal Ptot <= spec)] on a
          fixed grid — parametric yield vs power budget. *)
}

val yield_mc :
  ?spread:spread ->
  ?dies:int ->
  ?chunk:int ->
  ?chain:int ->
  ?sampler:sampler ->
  ?specs:float array ->
  rng:Numerics.Rng.t ->
  Power_law.problem ->
  yield_result
(** [yield_mc ~rng problem] re-optimises [dies] (default 10_000) varied
    dies and streams the optimal-power / optimal-supply distributions into
    sketches. Defaults: [chunk = 4096] dies per pool task, [chain = 64]
    dies per warm-started continuation chain, [sampler = `Pseudo], [specs]
    a 17-point grid spanning 0.8–1.6 × the nominal optimal power.

    Determinism: die [i]'s randomness is indexed by [i] alone — pseudo
    stream [split_nth rng i], Sobol point [i] (scramble drawn from
    [split_nth rng 0]) — the chunking constants are independent of the
    pool, and chunk sketches merge on the caller in chunk order, so the
    result is bitwise-identical at any {!Parallel.Pool} size (including
    the Obs counter fingerprint: [mc.chunks], [mc.sobol_draws],
    [sketch.merges], [mc.samples]). The caller's [rng] is {e not}
    advanced: the run is a pure function of its state.

    Memory: O(chunk) scratch per in-flight pool task plus O(1) per
    statistic — independent of [dies].

    @raise Invalid_argument if [dies < 1], [chain < 1], or [chunk] is not
    a positive multiple of [chain]. *)

val vth_absorption :
  Power_law.problem -> dvth0:float -> float
(** The bias shift absorbing a Vth0 excursion of [dvth0]: the optimum's
    power is unchanged (returns the unchanged Ptot, asserted in tests) —
    the "adjustable Vdd/Vth hides threshold variation" observation. *)
