type row = {
  params : Arch_params.t;
  glitch_ratio : float;
  numerical : Numerical_opt.point;
  eq13 : Closed_form.result option;
}

(* Netlist statistics, effective logical depth (an STA pass) and the
   wire-lumped average capacitance (a placement pass) are deterministic per
   circuit, and [run_spec] is re-entered for the same memoized catalog specs
   by benchmarks and sweeps — cache them like [Harness.compiled_static]
   caches the lowered netlist. Keyed by spec name with a physical-identity
   check on the circuit; the mutex keeps the table safe under
   [Parallel.Pool]. The placement pass runs outside the lock so first-time
   misses on different specs do not serialize a pool. *)
type substrate = {
  circuit : Netlist.Circuit.t;
  stats : Netlist.Stats.t;
  ld_eff : float;
  mutable wire_cap : float option;
}

let substrate_cache : (string, substrate) Hashtbl.t = Hashtbl.create 16
let substrate_mutex = Mutex.create ()

let substrate_of_spec (spec : Multipliers.Spec.t) =
  Mutex.protect substrate_mutex (fun () ->
      match Hashtbl.find_opt substrate_cache spec.name with
      | Some s when s.circuit == spec.circuit -> s
      | Some _ | None ->
        let s =
          {
            circuit = spec.circuit;
            stats = Multipliers.Spec.stats spec;
            ld_eff = Multipliers.Spec.logical_depth_effective spec;
            wire_cap = None;
          }
        in
        Hashtbl.replace substrate_cache spec.name s;
        s)

let wire_cap_of_spec (spec : Multipliers.Spec.t) substrate =
  match substrate.wire_cap with
  | Some cap -> cap
  | None ->
    (* Place the netlist and fold estimated wiring capacitance into the
       per-cell average — the lumping the paper performs implicitly. A
       concurrent duplicate computation is harmless: the result is
       deterministic. *)
    let placement = Netlist.Placement.place spec.circuit in
    let cap =
      (Netlist.Placement.refine_stats spec.circuit placement)
        .avg_cap_with_wires
    in
    substrate.wire_cap <- Some cap;
    cap

let run_spec ?(seed = 7) ?(cycles = 160) ?(wire_caps = true)
    (tech : Device.Technology.t) ~f (spec : Multipliers.Spec.t) =
  Obs.Span.with_ ~name:"scratch.spec" ~attrs:[ ("arch", spec.name) ]
  @@ fun () ->
  let substrate = substrate_of_spec spec in
  let stats = substrate.stats in
  let avg_cap =
    if wire_caps then wire_cap_of_spec spec substrate
    else stats.avg_switched_cap
  in
  let measured = Multipliers.Harness.measure_activity ~seed ~cycles spec in
  let params =
    {
      Arch_params.label = spec.name;
      n_cells = float_of_int stats.cell_total;
      activity = measured.activity;
      avg_cap;
      io_cell = stats.avg_leak_factor *. tech.io;
      ld_eff = substrate.ld_eff;
      area = stats.area;
    }
  in
  let problem = Power_law.make tech params ~f in
  let numerical = Numerical_opt.optimum problem in
  (* The paper's linearisation range (0.3-1.0 V) covers its optima; slow
     from-scratch architectures can land above it, where Eq. 13 degrades —
     refit Eq. 7 around the actual optimum in that case. *)
  let lin =
    let default = Device.Linearization.fit ~alpha:tech.alpha () in
    if numerical.Power_law.vdd <= default.hi then default
    else
      Device.Linearization.fit ~alpha:tech.alpha
        ~hi:(1.3 *. numerical.Power_law.vdd) ()
  in
  let eq13 =
    match Closed_form.evaluate ~lin problem with
    | result -> Some result
    | exception Closed_form.Infeasible _ -> None
  in
  { params; glitch_ratio = measured.glitch_ratio; numerical; eq13 }

let run_label ?seed ?cycles ?wire_caps tech ~f label =
  let entry = Multipliers.Catalog.find label in
  run_spec ?seed ?cycles ?wire_caps tech ~f (entry.build ())

let run_all ?seed ?cycles ?wire_caps tech ~f () =
  (* Each architecture builds (or fetches from the catalog cache), places
     and simulates independently; every task owns its simulator instance. *)
  Parallel.Pool.map
    (fun (entry : Multipliers.Catalog.entry) ->
      run_spec ?seed ?cycles ?wire_caps tech ~f (entry.build ()))
    Multipliers.Catalog.entries

let eq13_error_pct row =
  Option.map
    (fun (r : Closed_form.result) ->
      100.0 *. (r.ptot -. row.numerical.Power_law.total)
      /. row.numerical.Power_law.total)
    row.eq13
