type row = {
  params : Arch_params.t;
  glitch_ratio : float;
  numerical : Numerical_opt.point;
  eq13 : Closed_form.result option;
}

let run_spec ?(seed = 7) ?(cycles = 160) ?(wire_caps = true)
    (tech : Device.Technology.t) ~f (spec : Multipliers.Spec.t) =
  Obs.Span.with_ ~name:"scratch.spec" ~attrs:[ ("arch", spec.name) ]
  @@ fun () ->
  let stats = Multipliers.Spec.stats spec in
  let avg_cap =
    if wire_caps then begin
      (* Place the netlist and fold estimated wiring capacitance into the
         per-cell average — the lumping the paper performs implicitly. *)
      let placement = Netlist.Placement.place spec.circuit in
      (Netlist.Placement.refine_stats spec.circuit placement)
        .avg_cap_with_wires
    end
    else stats.avg_switched_cap
  in
  let measured = Multipliers.Harness.measure_activity ~seed ~cycles spec in
  let params =
    {
      Arch_params.label = spec.name;
      n_cells = float_of_int stats.cell_total;
      activity = measured.activity;
      avg_cap;
      io_cell = stats.avg_leak_factor *. tech.io;
      ld_eff = Multipliers.Spec.logical_depth_effective spec;
      area = stats.area;
    }
  in
  let problem = Power_law.make tech params ~f in
  let numerical = Numerical_opt.optimum problem in
  (* The paper's linearisation range (0.3-1.0 V) covers its optima; slow
     from-scratch architectures can land above it, where Eq. 13 degrades —
     refit Eq. 7 around the actual optimum in that case. *)
  let lin =
    let default = Device.Linearization.fit ~alpha:tech.alpha () in
    if numerical.Power_law.vdd <= default.hi then default
    else
      Device.Linearization.fit ~alpha:tech.alpha
        ~hi:(1.3 *. numerical.Power_law.vdd) ()
  in
  let eq13 =
    match Closed_form.evaluate ~lin problem with
    | result -> Some result
    | exception Closed_form.Infeasible _ -> None
  in
  { params; glitch_ratio = measured.glitch_ratio; numerical; eq13 }

let run_label ?seed ?cycles ?wire_caps tech ~f label =
  let entry = Multipliers.Catalog.find label in
  run_spec ?seed ?cycles ?wire_caps tech ~f (entry.build ())

let run_all ?seed ?cycles ?wire_caps tech ~f () =
  (* Each architecture builds (or fetches from the catalog cache), places
     and simulates independently; every task owns its simulator instance. *)
  Parallel.Pool.map
    (fun (entry : Multipliers.Catalog.entry) ->
      run_spec ?seed ?cycles ?wire_caps tech ~f (entry.build ()))
    Multipliers.Catalog.entries

let eq13_error_pct row =
  Option.map
    (fun (r : Closed_form.result) ->
      100.0 *. (r.ptot -. row.numerical.Power_law.total)
      /. row.numerical.Power_law.total)
    row.eq13
