(* Pruned Pareto design-space exploration (ROADMAP item 1): the 13-row
   table blown open into an enumerable (generator × transform × flavor)
   space, evaluated exactly only where a candidate could still matter.

   Soundness of the pruning ledger. The per-design ledger stores only
   certified lower bounds on min-over-vdd Ptot: the .lo of an
   Absint.certify enclosure from an exact evaluation, or a threshold an
   Absint.excludes proof showed the design to be strictly above. Achieved
   solver totals are never entered — an achieved value bounds the minimum
   from above, not below. Slices run in ascending frequency and
   min-over-vdd Ptot on the constraint locus is nondecreasing in f (pdyn
   grows ∝ f; χ′ ∝ f lowers the implied vth, raising pstat pointwise), so
   a ledger bound certified at a lower f keeps bounding the design at
   every later slice.

   Front identity. A candidate is discarded only when its certified lower
   bound strictly exceeds the achieved power of a front member no worse in
   latency and area — that member then dominates the candidate outright,
   and dominance is transitive through any later front culling. Hence the
   pruned and exhaustive paths finish every slice with the same front set;
   both arms run the identical exact-evaluation task (seeded solve +
   certification), so the retained floats agree bit for bit. Planning and
   folding happen sequentially on the caller against round-start state
   (Pool.map_rounds), which extends the bit-identity to any pool size. *)

module Iv = Numerics.Interval

type axes = {
  bits : int;
  radices : int list;
  signednesses : Multipliers.Booth.signedness list;
  stages : int list;
  copies : int list;
  fmults : float list;  (** Multiples of {!Paper_data.frequency}. *)
  techs : Device.Technology.t list;
}

let default_axes =
  {
    bits = 8;
    radices = [ 2; 4; 8 ];
    signednesses = [ Multipliers.Booth.Unsigned ];
    stages = [ 1; 2; 3 ];
    copies = [ 1; 2; 4 ];
    fmults = [ 0.5; 1.0; 2.0; 4.0 ];
    techs = Device.Technology.all;
  }

(* Substrates: one generator build per (radix, signedness, stages) at the
   axes' width. The parallelism axis is the analytic Transform.parallelize
   scaling — matching how Section 4 reasons about replication — so copies
   never trigger a rebuild. *)
let substrate_combos axes =
  List.concat_map
    (fun radix ->
      List.concat_map
        (fun signedness ->
          List.filter_map
            (fun stages ->
              match
                Multipliers.Booth.validate ~radix ~signedness ~stages
                  ~copies:1 ~bits:axes.bits
              with
              | Ok () -> Some (radix, signedness, stages)
              | Error _ -> None)
            axes.stages)
        axes.signednesses)
    axes.radices

let space_size axes =
  List.length (substrate_combos axes)
  * List.length axes.copies * List.length axes.techs
  * List.length axes.fmults

(* Tech-free netlist characterization, shared across every candidate that
   reuses a substrate. *)
type chars = {
  n_cells : float;
  activity : float;
  avg_cap : float;
  avg_leak_factor : float;
  ld_eff : float;
  area : float;
}

let build_memo =
  Memo.create ~name:"dse.build" (fun (radix, signedness, stages, bits) ->
      Multipliers.Booth.generate ~signedness ~stages ~radix ~bits ())

(* Keyed by the circuit's structural hash (plus the stimulus parameters),
   not the generator tuple: distinct parameter points that elaborate to the
   same structure share one STA/placement/activity run. Hand-rolled rather
   than Parallel.Memo because the compute needs the spec, which is not part
   of the key. *)
let chars_mutex = Mutex.create ()

let chars_table : (int * int * int, chars) Hashtbl.t = Hashtbl.create 64

let c_chars_hit = Obs.Counter.make ~cat:"cache" "memo.dse.chars.hit"
let c_chars_miss = Obs.Counter.make ~cat:"cache" "memo.dse.chars.miss"

let characterize ~seed ~cycles (spec : Multipliers.Spec.t) =
  let key = (Netlist.Circuit.structural_hash spec.circuit, seed, cycles) in
  Mutex.lock chars_mutex;
  let cached = Hashtbl.find_opt chars_table key in
  Mutex.unlock chars_mutex;
  match cached with
  | Some c ->
    Obs.Counter.incr c_chars_hit;
    c
  | None ->
    Obs.Counter.incr c_chars_miss;
    let stats = Multipliers.Spec.stats spec in
    let placement = Netlist.Placement.place spec.circuit in
    let avg_cap =
      (Netlist.Placement.refine_stats spec.circuit placement)
        .avg_cap_with_wires
    in
    let measured = Multipliers.Harness.measure_activity ~seed ~cycles spec in
    let c =
      {
        n_cells = float_of_int stats.cell_total;
        activity = measured.activity;
        avg_cap;
        avg_leak_factor = stats.avg_leak_factor;
        ld_eff = Multipliers.Spec.logical_depth_effective spec;
        area = stats.area;
      }
    in
    Mutex.lock chars_mutex;
    Hashtbl.replace chars_table key c;
    Mutex.unlock chars_mutex;
    c

let params_of_chars ~label ~reference (c : chars) =
  {
    Arch_params.label;
    n_cells = c.n_cells;
    activity = c.activity;
    avg_cap = c.avg_cap;
    io_cell = c.avg_leak_factor *. reference.Device.Technology.io;
    ld_eff = c.ld_eff;
    area = c.area;
  }

type entry = {
  label : string;
  design : string;  (** Tech-qualified design identity — the ledger key. *)
  radix : int;
  signedness : Multipliers.Booth.signedness;
  stages : int;
  copies : int;
  tech : string;
  f : float;
  power : float;  (** Achieved optimal Ptot, W. *)
  vdd : float;  (** Supply at the optimum, V. *)
  cert_lo : float;  (** Certified lower bound on min Ptot, W. *)
  latency : float;  (** Effective logical depth after transforms. *)
  area : float;  (** Cell count after transforms (area proxy). *)
}

type slice = { f : float; front : entry list }

type totals = {
  enumerated : int;
  bound_pruned : int;  (** Discarded by the O(1) ledger lookup. *)
  cert_pruned : int;  (** Discarded by an {!Absint.excludes} proof. *)
  exact_solves : int;
  front_size : int;  (** Summed over slices. *)
}

type result = { pruned : bool; slices : slice list; totals : totals }

let c_enumerated = Obs.Counter.make "dse.enumerated"
let c_bound_pruned = Obs.Counter.make "dse.bound_pruned"
let c_cert_pruned = Obs.Counter.make "dse.cert_pruned"
let c_exact_solves = Obs.Counter.make "dse.exact_solves"
let c_front_size = Obs.Counter.make "pareto.front_size"

(* [a] dominates [b]: no worse on every axis, strictly better somewhere. *)
let dominates a b =
  a.power <= b.power && a.latency <= b.latency && a.area <= b.area
  && (a.power < b.power || a.latency < b.latency || a.area < b.area)

(* In-place dominance culling: drop the newcomer if any incumbent covers
   it, else evict everything it covers. *)
let front_insert front e =
  if List.exists (fun s -> dominates s e) front then front
  else e :: List.filter (fun s -> not (dominates e s)) front

(* Least achieved power among front members no worse than the candidate on
   the other two axes; pruning against the front alone loses nothing — a
   front member dominating a culled solution also dominates anything that
   solution dominated. *)
let threshold_against front ~latency ~area =
  List.fold_left
    (fun acc s ->
      if s.latency <= latency && s.area <= area then Float.min acc s.power
      else acc)
    infinity front

type cand = {
  idx : int;
  design : string;
  label : string;
  radix : int;
  signedness : Multipliers.Booth.signedness;
  stages : int;
  copies : int;
  tech_name : string;
  problem : Power_law.problem;
  rank : float;  (** Eq. 13 closed-form Ptot; [infinity] when infeasible. *)
  latency : float;
  carea : float;
}

let sign_tag = function
  | Multipliers.Booth.Unsigned -> "u"
  | Multipliers.Booth.Signed -> "s"

let design_label ~radix ~signedness ~stages ~copies ~bits ~tech =
  Printf.sprintf "r%d%s w%d p%d x%d @%s" radix (sign_tag signedness) bits
    stages copies tech

(* Rank-gate heuristic for the certified prune: attempt the interval proof
   only when the closed form puts the candidate well above the threshold
   (or could not place it at all). Affects which proofs are attempted —
   never the front, since a skipped proof just means an exact solve. *)
let excludes_gate ~rank ~threshold =
  (not (Float.is_finite rank)) || rank > 1.02 *. threshold

type acc = {
  front : entry list;
  a_bound_pruned : int;
  a_cert_pruned : int;
  a_exact : int;
}

let explore ?pool ?(round = 16) ?(prune = true) ?(seed = 7) ?(cycles = 160)
    ?(reference = Device.Technology.ll) axes =
  if axes.fmults = [] then invalid_arg "Explorer.explore: empty fmults";
  if axes.techs = [] then invalid_arg "Explorer.explore: empty techs";
  if axes.copies = [] then invalid_arg "Explorer.explore: empty copies";
  List.iter
    (fun c ->
      if c < 1 then invalid_arg "Explorer.explore: copies must be >= 1")
    axes.copies;
  let combos = substrate_combos axes in
  if combos = [] then
    invalid_arg "Explorer.explore: no valid (radix, signedness, stages) combo";
  (* Build + characterize each substrate once, in parallel; the memo pair
     makes repeat explorations (and the exhaustive arm of an A/B run)
     skip straight to cached characterizations. *)
  let substrates =
    Parallel.Pool.map ?pool
      (fun (radix, signedness, stages) ->
        let spec = Memo.find build_memo (radix, signedness, stages, axes.bits) in
        ((radix, signedness, stages), characterize ~seed ~cycles spec))
      combos
  in
  (* Design axes (everything except f), enumerated in a fixed order. *)
  let designs =
    List.concat_map
      (fun ((radix, signedness, stages), chars) ->
        List.concat_map
          (fun copies ->
            let base =
              params_of_chars
                ~label:
                  (Printf.sprintf "booth r%d%s w%d p%d" radix
                     (sign_tag signedness) axes.bits stages)
                ~reference chars
            in
            let transformed =
              if copies = 1 then base
              else (Transform.parallelize ~copies ()).Transform.apply base
            in
            List.map
              (fun tech ->
                let tech_name = Device.Technology.name tech in
                let params =
                  Tech_compare.adapt_params ~reference tech transformed
                in
                let design =
                  design_label ~radix ~signedness ~stages ~copies
                    ~bits:axes.bits ~tech:tech_name
                in
                (radix, signedness, stages, copies, tech, tech_name, design,
                 params))
              axes.techs)
          axes.copies)
      substrates
  in
  let fs =
    List.sort_uniq compare
      (List.map (fun m -> m *. Paper_data.frequency) axes.fmults)
  in
  List.iter
    (fun f -> if f <= 0.0 then invalid_arg "Explorer.explore: fmult <= 0")
    fs;
  (* Certified lower bounds per design, carried across ascending-f slices
     (see the header comment for why that is sound). *)
  let ledger : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let ledger_raise design lo =
    if Float.is_finite lo then
      match Hashtbl.find_opt ledger design with
      | Some prev when prev >= lo -> ()
      | _ -> Hashtbl.replace ledger design lo
  in
  let totals = ref { enumerated = 0; bound_pruned = 0; cert_pruned = 0;
                     exact_solves = 0; front_size = 0 }
  in
  let slices =
    List.map
      (fun f ->
        let cands =
          List.mapi
            (fun idx
                 (radix, signedness, stages, copies, tech, tech_name, design,
                  params) ->
              let problem = Power_law.make tech params ~f in
              let rank =
                match Closed_form.evaluate problem with
                | r -> r.Closed_form.ptot
                | exception Closed_form.Infeasible _ -> infinity
              in
              {
                idx;
                design;
                label = design;
                radix;
                signedness;
                stages;
                copies;
                tech_name;
                problem;
                rank;
                latency = params.Arch_params.ld_eff;
                carea = params.Arch_params.n_cells;
              })
            designs
        in
        Obs.Counter.add c_enumerated (List.length cands);
        (* Incumbent-first order: cheap closed-form rank ascending, so the
           strongest thresholds form before the bulk of the space plans. *)
        let sorted =
          List.sort
            (fun a b ->
              match Float.compare a.rank b.rank with
              | 0 -> Int.compare a.idx b.idx
              | c -> c)
            cands
        in
        (* Plan and fold both run sequentially on the caller over the same
           items in the same order, so a queue of prune reasons pushed by
           plan is popped by fold in lockstep. *)
        let reasons : [ `Bound | `Cert ] Queue.t = Queue.create () in
        let plan acc c =
          if not prune then Some c.problem
          else begin
            let threshold =
              threshold_against acc.front ~latency:c.latency ~area:c.carea
            in
            let ledger_lo =
              Option.value ~default:neg_infinity
                (Hashtbl.find_opt ledger c.design)
            in
            if ledger_lo > threshold then begin
              Obs.Counter.incr c_bound_pruned;
              Queue.add `Bound reasons;
              None
            end
            else if
              Float.is_finite threshold
              && excludes_gate ~rank:c.rank ~threshold
              && Dse.prune_against (Absint.box c.problem)
                   ~incumbent:threshold
            then begin
              Obs.Counter.incr c_cert_pruned;
              ledger_raise c.design threshold;
              Queue.add `Cert reasons;
              None
            end
            else Some c.problem
          end
        in
        let task problem =
          let point = Numerical_opt.optimum problem in
          if Float.is_finite point.Power_law.total then
            Some (point, Absint.certify (Absint.box problem))
          else None
        in
        let fold acc c result =
          match result with
          | None -> (
            match Queue.pop reasons with
            | `Bound -> { acc with a_bound_pruned = acc.a_bound_pruned + 1 }
            | `Cert -> { acc with a_cert_pruned = acc.a_cert_pruned + 1 })
          | Some None ->
            (* Solver found no finite working point: infeasible at this
               throughput — drop, but count the solve. *)
            Obs.Counter.incr c_exact_solves;
            { acc with a_exact = acc.a_exact + 1 }
          | Some (Some (point, cert)) ->
            Obs.Counter.incr c_exact_solves;
            ledger_raise c.design cert.Absint.ptot.Iv.lo;
            let e =
              {
                label = c.label;
                design = c.design;
                radix = c.radix;
                signedness = c.signedness;
                stages = c.stages;
                copies = c.copies;
                tech = c.tech_name;
                f;
                power = point.Power_law.total;
                vdd = point.Power_law.vdd;
                cert_lo = cert.Absint.ptot.Iv.lo;
                latency = c.latency;
                area = c.carea;
              }
            in
            {
              acc with
              a_exact = acc.a_exact + 1;
              front = front_insert acc.front e;
            }
        in
        let final =
          Parallel.Pool.map_rounds ?pool ~round ~plan ~task ~fold
            ~init:
              { front = []; a_bound_pruned = 0; a_cert_pruned = 0;
                a_exact = 0 }
            sorted
        in
        let front =
          List.sort
            (fun a b ->
              match Float.compare a.power b.power with
              | 0 -> String.compare a.design b.design
              | c -> c)
            final.front
        in
        Obs.Counter.add c_front_size (List.length front);
        let t = !totals in
        totals :=
          {
            enumerated = t.enumerated + List.length cands;
            bound_pruned = t.bound_pruned + final.a_bound_pruned;
            cert_pruned = t.cert_pruned + final.a_cert_pruned;
            exact_solves = t.exact_solves + final.a_exact;
            front_size = t.front_size + List.length front;
          };
        { f; front })
      fs
  in
  { pruned = prune; slices; totals = !totals }
