(* Pruned Pareto design-space exploration (ROADMAP item 1): the 13-row
   table blown open into an enumerable (generator × transform × flavor)
   space, evaluated exactly only where a candidate could still matter.

   Soundness of the pruning ledger. The per-design ledger stores only
   certified lower bounds on min-over-vdd Ptot: the .lo of an
   Absint.certify enclosure from an exact evaluation, or a threshold an
   Absint.excludes proof showed the design to be strictly above. Achieved
   solver totals are never entered — an achieved value bounds the minimum
   from above, not below. Slices run in ascending frequency and
   min-over-vdd Ptot on the constraint locus is nondecreasing in f (pdyn
   grows ∝ f; χ′ ∝ f lowers the implied vth, raising pstat pointwise), so
   a ledger bound certified at a lower f keeps bounding the design at
   every later slice.

   Front identity. A candidate is discarded only when its certified lower
   bound strictly exceeds the achieved power of a front member no worse in
   latency and area — that member then dominates the candidate outright,
   and dominance is transitive through any later front culling. Hence the
   pruned and exhaustive paths finish every slice with the same front set;
   both arms run the identical exact-evaluation task (seeded solve +
   certification), so the retained floats agree bit for bit. Planning and
   folding happen sequentially on the caller against round-start state
   (Pool.map_rounds), which extends the bit-identity to any pool size.

   Warm store. With [?store], three record families persist across runs:
   substrate characterizations (keyed by generator parameters, so a hit
   skips the build entirely), exact solve outcomes (keyed by the full
   hex-float problem serialization — a hit replays the very bits a cold
   solve would produce, the solver being deterministic), and the certified
   ledger (keyed by design serialization + slice frequency). All store
   reads and writes happen on the calling domain (plan/fold and the
   substrate pre/post passes), so warm runs stay bitwise-identical to
   cold runs at any pool size; only the prune/hit counters move. *)

module Iv = Numerics.Interval

type family = Booth | Dadda | Wallace

let family_name = function
  | Booth -> "booth"
  | Dadda -> "dadda"
  | Wallace -> "wallace"

let family_of_string = function
  | "booth" -> Some Booth
  | "dadda" -> Some Dadda
  | "wallace" -> Some Wallace
  | _ -> None

type axes = {
  bits : int;
  families : family list;
  radices : int list;
  signednesses : Multipliers.Booth.signedness list;
  stages : int list;
  copies : int list;
  fmults : float list;  (** Multiples of {!Paper_data.frequency}. *)
  techs : Device.Technology.t list;
}

let default_axes =
  {
    bits = 8;
    families = [ Booth; Dadda; Wallace ];
    radices = [ 2; 4; 8 ];
    signednesses = [ Multipliers.Booth.Unsigned ];
    stages = [ 1; 2; 3 ];
    copies = [ 1; 2; 4 ];
    fmults = [ 0.5; 1.0; 2.0; 4.0 ];
    techs = Device.Technology.all;
  }

type substrate = {
  family : family;
  radix : int;  (** Booth recoding radix; 0 for Dadda/Wallace. *)
  signedness : Multipliers.Booth.signedness;
  stages : int;
}

(* Substrates: one generator build per (family, radix, signedness, stages)
   at the axes' width. Booth combos go through Booth.validate; the Dadda
   reducer is combinational-only (pipeline depth 1); Wallace pipelines any
   depth >= 2 via Pipeliner.by_depth. The parallelism axis is the analytic
   Transform.parallelize scaling — matching how Section 4 reasons about
   replication — so copies never trigger a rebuild. *)
let substrate_combos axes =
  List.concat_map
    (fun family ->
      match family with
      | Booth ->
        List.concat_map
          (fun radix ->
            List.concat_map
              (fun signedness ->
                List.filter_map
                  (fun stages ->
                    match
                      Multipliers.Booth.validate ~radix ~signedness ~stages
                        ~copies:1 ~bits:axes.bits
                    with
                    | Ok () ->
                      Some { family = Booth; radix; signedness; stages }
                    | Error _ -> None)
                  axes.stages)
              axes.signednesses)
          axes.radices
      | Dadda ->
        if List.mem 1 axes.stages && axes.bits >= 2 then
          [ { family = Dadda; radix = 0;
              signedness = Multipliers.Booth.Unsigned; stages = 1 } ]
        else []
      | Wallace ->
        if axes.bits < 2 then []
        else
          List.filter_map
            (fun stages ->
              if stages >= 1 then
                Some
                  { family = Wallace; radix = 0;
                    signedness = Multipliers.Booth.Unsigned; stages }
              else None)
            axes.stages)
    axes.families

let space_size axes =
  List.length (substrate_combos axes)
  * List.length axes.copies * List.length axes.techs
  * List.length axes.fmults

(* Tech-free netlist characterization, shared across every candidate that
   reuses a substrate. *)
type chars = {
  n_cells : float;
  activity : float;
  avg_cap : float;
  avg_leak_factor : float;
  ld_eff : float;
  area : float;
}

let build_memo =
  Memo.create ~name:"dse.build" (fun (family, radix, signedness, stages, bits) ->
      match family with
      | Booth -> Multipliers.Booth.generate ~signedness ~stages ~radix ~bits ()
      | Dadda -> Multipliers.Spec_optimize.run (Multipliers.Dadda.basic ~bits)
      | Wallace ->
        Multipliers.Spec_optimize.run
          (if stages <= 1 then Multipliers.Wallace.basic ~bits
           else Multipliers.Wallace.pipelined ~bits ~stages))

(* Keyed by the circuit's structural hash (plus the stimulus parameters),
   not the generator tuple: distinct parameter points that elaborate to the
   same structure share one STA/placement/activity run. Hand-rolled rather
   than Parallel.Memo because the compute needs the spec, which is not part
   of the key. *)
let chars_mutex = Mutex.create ()

let chars_table : (int * int * int, chars) Hashtbl.t = Hashtbl.create 64

let c_chars_hit = Obs.Counter.make ~cat:"cache" "memo.dse.chars.hit"
let c_chars_miss = Obs.Counter.make ~cat:"cache" "memo.dse.chars.miss"

let characterize ~seed ~cycles (spec : Multipliers.Spec.t) =
  let key = (Netlist.Circuit.structural_hash spec.circuit, seed, cycles) in
  Mutex.lock chars_mutex;
  let cached = Hashtbl.find_opt chars_table key in
  Mutex.unlock chars_mutex;
  match cached with
  | Some c ->
    Obs.Counter.incr c_chars_hit;
    c
  | None ->
    Obs.Counter.incr c_chars_miss;
    let stats = Multipliers.Spec.stats spec in
    let placement = Netlist.Placement.place spec.circuit in
    let avg_cap =
      (Netlist.Placement.refine_stats spec.circuit placement)
        .avg_cap_with_wires
    in
    let measured = Multipliers.Harness.measure_activity ~seed ~cycles spec in
    let c =
      {
        n_cells = float_of_int stats.cell_total;
        activity = measured.activity;
        avg_cap;
        avg_leak_factor = stats.avg_leak_factor;
        ld_eff = Multipliers.Spec.logical_depth_effective spec;
        area = stats.area;
      }
    in
    Mutex.lock chars_mutex;
    Hashtbl.replace chars_table key c;
    Mutex.unlock chars_mutex;
    c

(* Store codec for a characterization: six exact hex floats, keyed by the
   generator parameters (never the structural hash — the whole point is to
   answer before building the netlist). *)
let sign_tag = function
  | Multipliers.Booth.Unsigned -> "u"
  | Multipliers.Booth.Signed -> "s"

let chars_store_key ~bits ~seed ~cycles sub =
  Printf.sprintf "%s r%d%s p%d w%d|seed:%d cyc:%d" (family_name sub.family)
    sub.radix (sign_tag sub.signedness) sub.stages bits seed cycles

let encode_chars c =
  Warm.encode_floats
    [ c.n_cells; c.activity; c.avg_cap; c.avg_leak_factor; c.ld_eff; c.area ]

let decode_chars s =
  match Warm.decode_floats s with
  | Some [ n_cells; activity; avg_cap; avg_leak_factor; ld_eff; area ] ->
    Some { n_cells; activity; avg_cap; avg_leak_factor; ld_eff; area }
  | _ -> None

let params_of_chars ~label ~reference (c : chars) =
  {
    Arch_params.label;
    n_cells = c.n_cells;
    activity = c.activity;
    avg_cap = c.avg_cap;
    io_cell = c.avg_leak_factor *. reference.Device.Technology.io;
    ld_eff = c.ld_eff;
    area = c.area;
  }

type entry = {
  label : string;
  design : string;  (** Tech-qualified design identity — the ledger key. *)
  family : family;
  radix : int;
  signedness : Multipliers.Booth.signedness;
  stages : int;
  copies : int;
  tech : string;
  f : float;
  power : float;  (** Achieved optimal Ptot, W. *)
  vdd : float;  (** Supply at the optimum, V. *)
  cert_lo : float;  (** Certified lower bound on min Ptot, W. *)
  latency : float;  (** Effective logical depth after transforms. *)
  area : float;  (** Cell count after transforms (area proxy). *)
}

type slice = { f : float; front : entry list }

type totals = {
  enumerated : int;
  filtered : int;  (** Dropped by the latency/area constraint caps. *)
  bound_pruned : int;  (** Discarded by the O(1) ledger lookup. *)
  cert_pruned : int;  (** Discarded by an {!Absint.excludes} proof. *)
  store_hits : int;  (** Exact outcomes replayed from the warm store. *)
  exact_solves : int;
  front_size : int;  (** Summed over slices. *)
}

type result = { pruned : bool; slices : slice list; totals : totals }

let c_enumerated = Obs.Counter.make "dse.enumerated"
let c_filtered = Obs.Counter.make "dse.constraint_filtered"
let c_bound_pruned = Obs.Counter.make "dse.bound_pruned"
let c_cert_pruned = Obs.Counter.make "dse.cert_pruned"
let c_store_hits = Obs.Counter.make "dse.store_hits"
let c_exact_solves = Obs.Counter.make "dse.exact_solves"
let c_front_size = Obs.Counter.make "pareto.front_size"

(* [a] dominates [b]: no worse on every axis, strictly better somewhere. *)
let dominates a b =
  a.power <= b.power && a.latency <= b.latency && a.area <= b.area
  && (a.power < b.power || a.latency < b.latency || a.area < b.area)

(* In-place dominance culling: drop the newcomer if any incumbent covers
   it, else evict everything it covers. *)
let front_insert front e =
  if List.exists (fun s -> dominates s e) front then front
  else e :: List.filter (fun s -> not (dominates e s)) front

(* Least achieved power among front members no worse than the candidate on
   the other two axes; pruning against the front alone loses nothing — a
   front member dominating a culled solution also dominates anything that
   solution dominated. *)
let threshold_against front ~latency ~area =
  List.fold_left
    (fun acc s ->
      if s.latency <= latency && s.area <= area then Float.min acc s.power
      else acc)
    infinity front

type cand = {
  idx : int;
  design : string;
  label : string;
  cfamily : family;
  radix : int;
  signedness : Multipliers.Booth.signedness;
  stages : int;
  copies : int;
  tech_name : string;
  problem : Power_law.problem;
  dkey : string;  (** {!Warm.design_key} — the persisted-ledger identity. *)
  rank : float;  (** Eq. 13 closed-form Ptot; [infinity] when infeasible. *)
  latency : float;
  carea : float;
}

let design_label ~family ~radix ~signedness ~stages ~copies ~bits ~tech =
  match family with
  | Booth ->
    Printf.sprintf "r%d%s w%d p%d x%d @%s" radix (sign_tag signedness) bits
      stages copies tech
  | Dadda -> Printf.sprintf "dadda w%d x%d @%s" bits copies tech
  | Wallace ->
    Printf.sprintf "wallace w%d p%d x%d @%s" bits stages copies tech

let substrate_label ~bits (sub : substrate) =
  match sub.family with
  | Booth ->
    Printf.sprintf "booth r%d%s w%d p%d" sub.radix (sign_tag sub.signedness)
      bits sub.stages
  | Dadda -> Printf.sprintf "dadda w%d" bits
  | Wallace -> Printf.sprintf "wallace w%d p%d" bits sub.stages

(* Rank-gate heuristic for the certified prune: attempt the interval proof
   only when the closed form puts the candidate well above the threshold
   (or could not place it at all). Affects which proofs are attempted —
   never the front, since a skipped proof just means an exact solve. *)
let excludes_gate ~rank ~threshold =
  (not (Float.is_finite rank)) || rank > 1.02 *. threshold

type acc = {
  front : entry list;
  a_bound_pruned : int;
  a_cert_pruned : int;
  a_store : int;
  a_exact : int;
}

(* The store key of an exact per-slice solve outcome. *)
let opt_key c = Warm.problem_key c.problem

let ledger_key ~dkey ~f = Printf.sprintf "%s|f:%h" dkey f

let explore ?pool ?(round = 16) ?(prune = true) ?(seed = 7) ?(cycles = 160)
    ?(reference = Device.Technology.ll) ?store ?max_latency ?max_area axes =
  if axes.fmults = [] then invalid_arg "Explorer.explore: empty fmults";
  if axes.techs = [] then invalid_arg "Explorer.explore: empty techs";
  if axes.copies = [] then invalid_arg "Explorer.explore: empty copies";
  if axes.families = [] then invalid_arg "Explorer.explore: empty families";
  List.iter
    (fun c ->
      if c < 1 then invalid_arg "Explorer.explore: copies must be >= 1")
    axes.copies;
  let check_cap name = function
    | None -> ()
    | Some x ->
      if not (Float.is_finite x) || x <= 0.0 then
        invalid_arg (Printf.sprintf "Explorer.explore: %s must be finite > 0" name)
  in
  check_cap "max_latency" max_latency;
  check_cap "max_area" max_area;
  let combos = substrate_combos axes in
  if combos = [] then
    invalid_arg
      "Explorer.explore: no valid (family, radix, signedness, stages) combo";
  (* Build + characterize each substrate once, in parallel; the memo pair
     makes repeat explorations (and the exhaustive arm of an A/B run) skip
     straight to cached characterizations. Warm-store lookups and writes
     both run on the caller — a hit skips the build entirely. *)
  let lookups =
    List.map
      (fun sub ->
        let skey = chars_store_key ~bits:axes.bits ~seed ~cycles sub in
        let stored =
          match store with
          | None -> None
          | Some st ->
            Option.bind (Store.find st ~ns:Warm.ns_chars skey) decode_chars
        in
        (sub, skey, stored))
      combos
  in
  let substrates =
    Parallel.Pool.map ?pool
      (fun ((sub : substrate), skey, stored) ->
        match stored with
        | Some c -> (sub, skey, c, false)
        | None ->
          let spec =
            Memo.find build_memo
              (sub.family, sub.radix, sub.signedness, sub.stages, axes.bits)
          in
          (sub, skey, characterize ~seed ~cycles spec, true))
      lookups
  in
  (match store with
  | None -> ()
  | Some st ->
    List.iter
      (fun (_, skey, c, fresh) ->
        if fresh then Store.put st ~ns:Warm.ns_chars skey (encode_chars c))
      substrates);
  (* Design axes (everything except f), enumerated in a fixed order. *)
  let designs =
    List.concat_map
      (fun (sub, _, chars, _) ->
        List.concat_map
          (fun copies ->
            let base =
              params_of_chars
                ~label:(substrate_label ~bits:axes.bits sub)
                ~reference chars
            in
            let transformed =
              if copies = 1 then base
              else (Transform.parallelize ~copies ()).Transform.apply base
            in
            List.map
              (fun tech ->
                let tech_name = Device.Technology.name tech in
                let params =
                  Tech_compare.adapt_params ~reference tech transformed
                in
                let design =
                  design_label ~family:sub.family ~radix:sub.radix
                    ~signedness:sub.signedness ~stages:sub.stages ~copies
                    ~bits:axes.bits ~tech:tech_name
                in
                let dkey =
                  Warm.design_key
                    { Power_law.tech; params; f = 1.0; chi_prime = 0.0 }
                in
                (sub, copies, tech, tech_name, design, dkey, params))
              axes.techs)
          axes.copies)
      substrates
  in
  let fs =
    List.sort_uniq compare
      (List.map (fun m -> m *. Paper_data.frequency) axes.fmults)
  in
  List.iter
    (fun f -> if f <= 0.0 then invalid_arg "Explorer.explore: fmult <= 0")
    fs;
  (* Certified lower bounds per design, carried across ascending-f slices
     (see the header comment for why that is sound). *)
  let ledger : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let ledger_raise design lo =
    if Float.is_finite lo then
      match Hashtbl.find_opt ledger design with
      | Some prev when prev >= lo -> ()
      | _ -> Hashtbl.replace ledger design lo
  in
  let totals =
    ref
      { enumerated = 0; filtered = 0; bound_pruned = 0; cert_pruned = 0;
        store_hits = 0; exact_solves = 0; front_size = 0 }
  in
  let slices =
    List.map
      (fun f ->
        (* Seed the in-run ledger with bounds a previous run certified for
           this exact (design, f): they were carried to f by the same
           ascending-slice monotonicity argument before being persisted. *)
        (match store with
        | None -> ()
        | Some st ->
          List.iter
            (fun (_, _, _, _, design, dkey, _) ->
              match Store.find st ~ns:Warm.ns_ledger (ledger_key ~dkey ~f) with
              | None -> ()
              | Some v -> (
                match Warm.decode_floats v with
                | Some [ lo ] -> ledger_raise design lo
                | _ -> ()))
            designs);
        let cands =
          List.mapi
            (fun idx
                 ((sub : substrate), copies, tech, tech_name, design, dkey,
                  params) ->
              let problem = Power_law.make tech params ~f in
              let rank =
                match Closed_form.evaluate problem with
                | r -> r.Closed_form.ptot
                | exception Closed_form.Infeasible _ -> infinity
              in
              {
                idx;
                design;
                label = design;
                cfamily = sub.family;
                radix = sub.radix;
                signedness = sub.signedness;
                stages = sub.stages;
                copies;
                tech_name;
                problem;
                dkey;
                rank;
                latency = params.Arch_params.ld_eff;
                carea = params.Arch_params.n_cells;
              })
            designs
        in
        Obs.Counter.add c_enumerated (List.length cands);
        (* Constraint caps apply identically in both arms — a pure
           candidate predicate, so fronts stay bitwise-comparable. *)
        let cands, n_filtered =
          match (max_latency, max_area) with
          | None, None -> (cands, 0)
          | _ ->
            let keep c =
              (match max_latency with
               | Some cap -> c.latency <= cap
               | None -> true)
              && match max_area with
                 | Some cap -> c.carea <= cap
                 | None -> true
            in
            let kept, dropped = List.partition keep cands in
            (kept, List.length dropped)
        in
        Obs.Counter.add c_filtered n_filtered;
        (* Incumbent-first order: cheap closed-form rank ascending, so the
           strongest thresholds form before the bulk of the space plans. *)
        let sorted =
          List.sort
            (fun a b ->
              match Float.compare a.rank b.rank with
              | 0 -> Int.compare a.idx b.idx
              | c -> c)
            cands
        in
        (* Plan and fold both run sequentially on the caller over the same
           items in the same order, so a queue of prune reasons pushed by
           plan is popped by fold in lockstep. Store replay rides the task
           payload: a hit carries the stored outcome through the pool
           untouched, so fold sees solve and replay results uniformly. *)
        let reasons : [ `Bound | `Cert ] Queue.t = Queue.create () in
        let replay c =
          match store with
          | None -> None
          | Some st -> (
            match Store.find st ~ns:Warm.ns_opt (opt_key c) with
            | None -> None
            | Some v -> Warm.decode_opt v)
        in
        let plan acc c =
          if not prune then
            match replay c with
            | Some outcome -> Some (`Hit outcome)
            | None -> Some (`Solve c.problem)
          else begin
            let threshold =
              threshold_against acc.front ~latency:c.latency ~area:c.carea
            in
            let ledger_lo =
              Option.value ~default:neg_infinity
                (Hashtbl.find_opt ledger c.design)
            in
            if ledger_lo > threshold then begin
              Obs.Counter.incr c_bound_pruned;
              Queue.add `Bound reasons;
              None
            end
            else
              match replay c with
              | Some outcome -> Some (`Hit outcome)
              | None ->
                if
                  Float.is_finite threshold
                  && excludes_gate ~rank:c.rank ~threshold
                  && Dse.prune_against (Absint.box c.problem)
                       ~incumbent:threshold
                then begin
                  Obs.Counter.incr c_cert_pruned;
                  (* The proof is strict (min Ptot > threshold), so the
                     next float up is still a sound lower bound — and it
                     makes the persisted ledger able to re-prune this
                     candidate without re-running the proof. *)
                  ledger_raise c.design (Float.succ threshold);
                  Queue.add `Cert reasons;
                  None
                end
                else Some (`Solve c.problem)
          end
        in
        let task = function
          | `Hit outcome -> `Hit outcome
          | `Solve problem ->
            let point = Numerical_opt.optimum problem in
            if Float.is_finite point.Power_law.total then
              let cert = Absint.certify (Absint.box problem) in
              `Solved (Some (point, cert.Absint.ptot.Iv.lo))
            else `Solved None
        in
        let consume_outcome acc c outcome =
          match outcome with
          | None ->
            (* No finite working point: infeasible at this throughput. *)
            acc
          | Some (point, cert_lo) ->
            ledger_raise c.design cert_lo;
            let e =
              {
                label = c.label;
                design = c.design;
                family = c.cfamily;
                radix = c.radix;
                signedness = c.signedness;
                stages = c.stages;
                copies = c.copies;
                tech = c.tech_name;
                f;
                power = point.Power_law.total;
                vdd = point.Power_law.vdd;
                cert_lo;
                latency = c.latency;
                area = c.carea;
              }
            in
            { acc with front = front_insert acc.front e }
        in
        let fold acc c result =
          match result with
          | None -> (
            match Queue.pop reasons with
            | `Bound -> { acc with a_bound_pruned = acc.a_bound_pruned + 1 }
            | `Cert -> { acc with a_cert_pruned = acc.a_cert_pruned + 1 })
          | Some (`Hit outcome) ->
            Obs.Counter.incr c_store_hits;
            let acc = consume_outcome acc c outcome in
            { acc with a_store = acc.a_store + 1 }
          | Some (`Solved outcome) ->
            Obs.Counter.incr c_exact_solves;
            (match store with
            | None -> ()
            | Some st ->
              Store.put st ~ns:Warm.ns_opt (opt_key c)
                (Warm.encode_opt outcome));
            let acc = consume_outcome acc c outcome in
            { acc with a_exact = acc.a_exact + 1 }
        in
        let final =
          Parallel.Pool.map_rounds ?pool ~round ~plan ~task ~fold
            ~init:
              { front = []; a_bound_pruned = 0; a_cert_pruned = 0;
                a_store = 0; a_exact = 0 }
            sorted
        in
        (* Persist this slice's certified bounds for the designs it
           actually walked — the next run's slice preload. *)
        (match store with
        | None -> ()
        | Some st ->
          List.iter
            (fun c ->
              match Hashtbl.find_opt ledger c.design with
              | Some lo when Float.is_finite lo ->
                Store.put st ~ns:Warm.ns_ledger
                  (ledger_key ~dkey:c.dkey ~f)
                  (Warm.encode_floats [ lo ])
              | _ -> ())
            sorted);
        let front =
          List.sort
            (fun a b ->
              match Float.compare a.power b.power with
              | 0 -> String.compare a.design b.design
              | c -> c)
            final.front
        in
        Obs.Counter.add c_front_size (List.length front);
        let t = !totals in
        totals :=
          {
            enumerated = t.enumerated + List.length cands + n_filtered;
            filtered = t.filtered + n_filtered;
            bound_pruned = t.bound_pruned + final.a_bound_pruned;
            cert_pruned = t.cert_pruned + final.a_cert_pruned;
            store_hits = t.store_hits + final.a_store;
            exact_solves = t.exact_solves + final.a_exact;
            front_size = t.front_size + List.length front;
          };
        { f; front })
      fs
  in
  { pruned = prune; slices; totals = !totals }
