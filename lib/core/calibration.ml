let params_of_row (tech : Device.Technology.t) ~f (row : Paper_data.table1_row)
    =
  let n = float_of_int row.n_cells in
  let n_ut = Device.Technology.n_ut tech in
  let avg_cap = row.pdyn /. (row.activity *. n *. f *. row.vdd *. row.vdd) in
  let io_cell =
    row.pstat /. (n *. row.vdd) *. Float.exp (row.vth /. n_ut)
  in
  {
    Arch_params.label = row.label;
    n_cells = n;
    activity = row.activity;
    avg_cap;
    io_cell;
    ld_eff = row.ld_eff;
    area = row.area;
  }

(* Calibrated problems are pure functions of (technology, frequency, row) —
   all plain records of floats and strings, so structural hashing on the
   full inputs is a sound cache key. Table and sweep drivers rebuild the
   same handful of problems on every call; the memo makes that free. *)
let problem_cache =
  Memo.create ~name:"calibration" (fun (tech, f, (row : Paper_data.table1_row)) ->
      Power_law.make_calibrated tech (params_of_row tech ~f row) ~f
        ~vdd_ref:row.Paper_data.vdd ~vth_ref:row.vth)

let problem_of_row tech ~f row = Memo.find problem_cache (tech, f, row)

let implied_gate_zeta (tech : Device.Technology.t) ~f
    (row : Paper_data.table1_row) =
  let chi_prime =
    Power_law.chi_prime_of_point tech ~vdd:row.vdd ~vth:row.vth
  in
  let drive_norm =
    (Float.exp 1.0 *. Device.Technology.n_ut tech /. tech.alpha) ** tech.alpha
  in
  chi_prime *. tech.io /. (f *. row.ld_eff *. drive_norm)

let fit_ring_divisor (tech : Device.Technology.t) ~f rows =
  match rows with
  | [] -> invalid_arg "Calibration.fit_ring_divisor: no rows"
  | _ ->
    let ratios =
      List.map (fun row -> tech.zeta_ro /. implied_gate_zeta tech ~f row) rows
    in
    Numerics.Stats.percentile ratios 50.0

let problem_of_wallace_row tech ~f ~(ll_row : Paper_data.table1_row)
    ~(target : Paper_data.wallace_row) ~cap_scale =
  let ll_tech = Device.Technology.ll in
  let ll_params = params_of_row ll_tech ~f ll_row in
  let leak_ratio = ll_params.io_cell /. ll_tech.io in
  let params =
    {
      ll_params with
      Arch_params.avg_cap = ll_params.avg_cap *. cap_scale;
      io_cell = leak_ratio *. tech.Device.Technology.io;
    }
  in
  Power_law.make_calibrated tech params ~f ~vdd_ref:target.w_vdd
    ~vth_ref:target.w_vth

let fit_cap_scale tech ~f ~rows =
  if rows = [] then invalid_arg "Calibration.fit_cap_scale: no rows";
  (* Each row's re-optimisation is independent; the residuals come back in
     row order and are compensated-summed on the caller, so the cost — and
     therefore the fitted scale — is bitwise-identical at any pool size.
     Successive cost evaluations move the scale smoothly, so each row
     warm-starts from its own optimum at the previously probed scale: the
     chain in [warm] is indexed by row slot and advanced exactly once per
     cost call whatever domain computes the slot, keeping the fit
     deterministic while cutting each inner solve to a few Brent steps. *)
  let warm = Array.make (List.length rows) None in
  let cost scale =
    Numerics.Kahan.sum_list
      (Parallel.Pool.mapi
         (fun i
              ((ll_row : Paper_data.table1_row),
               (target : Paper_data.wallace_row)) ->
           let problem =
             problem_of_wallace_row tech ~f ~ll_row ~target ~cap_scale:scale
           in
           let optimum =
             match warm.(i) with
             | None -> Numerical_opt.optimum problem
             | Some from -> Numerical_opt.optimum_warm ~from problem
           in
           warm.(i) <- Some optimum;
           let rel = (optimum.total -. target.w_ptot) /. target.w_ptot in
           rel *. rel)
         rows)
  in
  let r = Numerics.Minimize.grid_then_golden ~samples:48 ~f:cost 0.3 3.0 in
  r.x
