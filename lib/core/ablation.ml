type dibl_row = {
  eta : float;
  vth_effective : float;
  vth0_required : float;
  ptot : float;
}

let dibl_sweep ?(etas = [ 0.0; 0.04; 0.08; 0.12; 0.16 ]) problem =
  (* The whole optimisation lives in effective-threshold space (DIBL already
     applied); eta only maps the result back to the Vth0 a device must
     provide: Vth0 = Vth_eff + eta * Vdd (Eq. 3). *)
  let optimum = Numerical_opt.optimum problem in
  List.map
    (fun eta ->
      {
        eta;
        vth_effective = optimum.vth;
        vth0_required = optimum.vth +. (eta *. optimum.vdd);
        ptot = optimum.total;
      })
    etas

type glitch_row = {
  label : string;
  activity_full : float;
  activity_no_glitch : float;
  ptot_full : float;
  ptot_no_glitch : float;
  glitch_power_pct : float;
}

let glitch_ablation ?(cycles = 120) tech ~f ~labels =
  let run label =
    let entry = Multipliers.Catalog.find label in
    let spec = entry.build () in
    let row = Scratch_pipeline.run_spec ~cycles tech ~f spec in
    let params = row.params in
    let activity_no_glitch = params.activity *. (1.0 -. row.glitch_ratio) in
    let quiet = { params with Arch_params.activity = activity_no_glitch } in
    let quiet_opt = Numerical_opt.optimum (Power_law.make tech quiet ~f) in
    {
      label;
      activity_full = params.activity;
      activity_no_glitch;
      ptot_full = row.numerical.Power_law.total;
      ptot_no_glitch = quiet_opt.Power_law.total;
      glitch_power_pct =
        100.0
        *. (row.numerical.Power_law.total -. quiet_opt.Power_law.total)
        /. row.numerical.Power_law.total;
    }
  in
  (* One netlist + simulator per label; rows stay in label order. *)
  Parallel.Pool.map run labels

type lin_range_row = { hi : float; max_abs_err_pct : float }

let linearization_range_sweep ?(his = [ 0.6; 0.8; 1.0; 1.2; 1.4; 1.6 ]) () =
  let tech = Device.Technology.ll in
  let f = Paper_data.frequency in
  let score hi =
    let lin = Device.Linearization.fit ~alpha:tech.alpha ~hi () in
    let worst =
      List.fold_left
        (fun acc row ->
          let problem = Calibration.problem_of_row tech ~f row in
          let opt = Numerical_opt.optimum problem in
          let cf = Closed_form.evaluate ~lin problem in
          Float.max acc
            (Float.abs
               (100.0 *. (cf.Closed_form.ptot -. opt.Power_law.total)
               /. opt.Power_law.total)))
        0.0 Paper_data.table1
    in
    { hi; max_abs_err_pct = worst }
  in
  List.map score his

type freq_point = { f : float; per_tech : (string * float option) list }

let frequency_sweep ?(f_lo = 1e6) ?(f_hi = 500e6) ?(points = 13) params =
  if points < 2 then invalid_arg "Ablation.frequency_sweep: points < 2";
  let step =
    (Float.log f_hi -. Float.log f_lo) /. float_of_int (points - 1)
  in
  let fs =
    List.init points (fun i ->
        Float.exp (Float.log f_lo +. (float_of_int i *. step)))
  in
  (* One continuation chain per flavor along the frequency axis, the
     flavors mapped through the pool; the chains are sequential inside
     each flavor, so the table is identical at any pool size. *)
  let columns =
    Parallel.Pool.map
      (fun tech ->
        let name = Device.Technology.name tech in
        List.map
          (fun (_, numerical) ->
            (name, Option.map (fun (p : Power_law.breakdown) -> p.total) numerical))
          (Tech_compare.sweep_frequencies tech ~fs params))
      Device.Technology.all
  in
  List.mapi
    (fun i f -> { f; per_tech = List.map (fun column -> List.nth column i) columns })
    fs

type width_row = { bits : int; rca_ptot : float; wallace_ptot : float }

let width_scaling ?(widths = [ 8; 12; 16; 20; 24 ]) ?(cycles = 80) tech ~f =
  let optimum spec =
    (Scratch_pipeline.run_spec ~cycles tech ~f spec).numerical.Power_law.total
  in
  List.map
    (fun bits ->
      {
        bits;
        rca_ptot = optimum (Multipliers.Rca.basic ~bits);
        wallace_ptot = optimum (Multipliers.Wallace.basic ~bits);
      })
    widths
