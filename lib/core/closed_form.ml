type result = {
  vdd_opt : float;
  vth_opt : float;
  ptot : float;
  ptot_eq11 : float;
  chi : float;
  one_minus_chi_a : float;
}

exception Infeasible of string

let c_evals = Obs.Counter.make "eq13.evals"
let c_infeasible = Obs.Counter.make "eq13.infeasible"

let evaluate ?lin (t : Power_law.problem) =
  Obs.Counter.incr c_evals;
  let tech = t.tech and p = t.params in
  let lin =
    match lin with
    | Some l -> l
    | None -> Device.Linearization.fit ~alpha:tech.alpha ()
  in
  let n_ut = Device.Technology.n_ut tech in
  let chi = Power_law.chi_linear t in
  let one_minus_chi_a = 1.0 -. (chi *. lin.a) in
  let infeasible msg =
    Obs.Counter.incr c_infeasible;
    raise (Infeasible msg)
  in
  if one_minus_chi_a <= 0.0 then
    infeasible
      (Printf.sprintf
         "%s: chi*A = %.3f >= 1 — architecture too slow for f=%.3g Hz"
         p.Arch_params.label (chi *. lin.a) t.f);
  let a_c_f = p.activity *. p.avg_cap *. t.f in
  let log_arg = p.io_cell *. one_minus_chi_a /. (2.0 *. a_c_f *. n_ut) in
  if log_arg <= 0.0 || not (Float.is_finite log_arg) then
    infeasible (p.Arch_params.label ^ ": Eq. 9 logarithm undefined");
  (* Eq. 9 rearranged: optimal effective threshold. *)
  let vth_opt = n_ut *. Float.log log_arg in
  (* Eq. 10. *)
  let vdd_opt = (vth_opt +. (chi *. lin.b)) /. one_minus_chi_a in
  if vdd_opt <= 0.0 then
    infeasible (p.Arch_params.label ^ ": non-positive optimal Vdd");
  (* Eq. 11: exact total power expression at the optimum. *)
  let ptot_eq11 =
    a_c_f *. p.n_cells *. vdd_opt
    *. (vdd_opt +. (2.0 *. n_ut /. one_minus_chi_a))
  in
  (* Eq. 13: the closed form. *)
  let bracket =
    (n_ut *. (Float.log log_arg +. 1.0)) +. (chi *. lin.b)
  in
  let ptot =
    a_c_f *. p.n_cells /. (one_minus_chi_a *. one_minus_chi_a)
    *. bracket *. bracket
  in
  { vdd_opt; vth_opt; ptot; ptot_eq11; chi; one_minus_chi_a }

let ptot_eq13 ?lin t = (evaluate ?lin t).ptot
