type result = {
  vdd_opt : float;
  vth_opt : float;
  ptot : float;
  ptot_eq11 : float;
  chi : float;
  one_minus_chi_a : float;
}

exception Infeasible of string

let c_evals = Obs.Counter.make "eq13.evals"
let c_infeasible = Obs.Counter.make "eq13.infeasible"

let evaluate ?lin (t : Power_law.problem) =
  Obs.Counter.incr c_evals;
  let tech = t.tech and p = t.params in
  let lin =
    match lin with
    | Some l -> l
    | None -> Device.Linearization.fit ~alpha:tech.alpha ()
  in
  let n_ut = Device.Technology.n_ut tech in
  let chi = Power_law.chi_linear t in
  let one_minus_chi_a = 1.0 -. (chi *. lin.a) in
  let infeasible msg =
    Obs.Counter.incr c_infeasible;
    raise (Infeasible msg)
  in
  if one_minus_chi_a <= 0.0 then
    infeasible
      (Printf.sprintf
         "%s: chi*A = %.3f >= 1 — architecture too slow for f=%.3g Hz"
         p.Arch_params.label (chi *. lin.a) t.f);
  let a_c_f = p.activity *. p.avg_cap *. t.f in
  let log_arg = p.io_cell *. one_minus_chi_a /. (2.0 *. a_c_f *. n_ut) in
  if log_arg <= 0.0 || not (Float.is_finite log_arg) then
    infeasible (p.Arch_params.label ^ ": Eq. 9 logarithm undefined");
  (* Eq. 9 rearranged: optimal effective threshold. *)
  let vth_opt = n_ut *. Float.log log_arg in
  (* Eq. 10. *)
  let vdd_opt = (vth_opt +. (chi *. lin.b)) /. one_minus_chi_a in
  if vdd_opt <= 0.0 then
    infeasible (p.Arch_params.label ^ ": non-positive optimal Vdd");
  (* Eq. 11: exact total power expression at the optimum. *)
  let ptot_eq11 =
    a_c_f *. p.n_cells *. vdd_opt
    *. (vdd_opt +. (2.0 *. n_ut /. one_minus_chi_a))
  in
  (* Eq. 13: the closed form. *)
  let bracket =
    (n_ut *. (Float.log log_arg +. 1.0)) +. (chi *. lin.b)
  in
  let ptot =
    a_c_f *. p.n_cells /. (one_minus_chi_a *. one_minus_chi_a)
    *. bracket *. bracket
  in
  { vdd_opt; vth_opt; ptot; ptot_eq11; chi; one_minus_chi_a }

let ptot_eq13 ?lin t = (evaluate ?lin t).ptot

module Iv = Numerics.Interval

type enclosure = {
  vdd_opt_iv : Iv.t;
  vth_opt_iv : Iv.t;
  ptot_iv : Iv.t;
}

(* Interval lift of Eqs. 9/10/13 over a frequency box. chi' is exactly
   proportional to f, so the whole chain is a composition of the monotone
   interval primitives; the two feasibility guards split into "certified
   infeasible on the whole box" ([Error] with the reason) versus "not
   certified" (the box straddles the feasibility boundary — a narrower box
   may still certify either way). *)
let evaluate_iv ?lin (t : Power_law.problem) ~f =
  Obs.Counter.incr c_evals;
  let tech = t.tech and p = t.params in
  let lin =
    match lin with
    | Some l -> l
    | None -> Device.Linearization.fit ~alpha:tech.alpha ()
  in
  let n_ut = Device.Technology.n_ut tech in
  let chi_prime = Power_law.chi_prime_iv t ~f in
  let chi = Iv.pow_scalar chi_prime (1.0 /. tech.alpha) in
  let one_minus_chi_a = Iv.sub Iv.one (Iv.scale lin.a chi) in
  if one_minus_chi_a.Iv.hi <= 0.0 then (
    Obs.Counter.incr c_infeasible;
    Error
      (Printf.sprintf "%s: chi*A >= 1 over the whole f box"
         p.Arch_params.label))
  else if one_minus_chi_a.Iv.lo <= 0.0 then
    Error
      (Printf.sprintf "%s: feasibility (1 - chi*A > 0) not certified"
         p.Arch_params.label)
  else
    let a_c_f = Iv.scale (p.activity *. p.avg_cap) f in
    let log_arg =
      Iv.div
        (Iv.scale p.io_cell one_minus_chi_a)
        (Iv.scale (2.0 *. n_ut) a_c_f)
    in
    if log_arg.Iv.hi <= 0.0 then (
      Obs.Counter.incr c_infeasible;
      Error (p.Arch_params.label ^ ": Eq. 9 logarithm certified undefined"))
    else if log_arg.Iv.lo <= 0.0 then
      Error (p.Arch_params.label ^ ": Eq. 9 logarithm not certified")
    else
      let log_la = Iv.log log_arg in
      let vth_opt_iv = Iv.scale n_ut log_la in
      let vdd_opt_iv =
        Iv.div
          (Iv.add vth_opt_iv (Iv.scale lin.b chi))
          one_minus_chi_a
      in
      let bracket =
        Iv.add
          (Iv.scale n_ut (Iv.add_scalar log_la 1.0))
          (Iv.scale lin.b chi)
      in
      let ptot_iv =
        Iv.mul
          (Iv.scale p.n_cells
             (Iv.div a_c_f (Iv.sqr one_minus_chi_a)))
          (Iv.sqr bracket)
      in
      Ok { vdd_opt_iv; vth_opt_iv; ptot_iv }
