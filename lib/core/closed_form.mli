(** The paper's contribution: the closed-form approximation of the optimal
    working point — Eqs. 7–13.

    Linearising Vdd^(1/α) ≈ A·Vdd + B (Eq. 7) makes the timing constraint
    affine, Vth ≈ Vdd·(1 − χA) − χB (Eq. 8); zeroing dPtot/dVdd then gives
    the optimal threshold (Eq. 9), supply (Eq. 10) and, substituting back,
    the famous closed-form total power (Eq. 13):

      Ptot ≈ a·C·N·f / (1−χA)² · [ n·Ut·(ln(Io·(1−χA)/(2aCf·n·Ut)) + 1) + χB ]²
*)

type result = {
  vdd_opt : float;  (** Eq. 10. *)
  vth_opt : float;  (** From Eq. 9: n·Ut · ln(Io·(1−χA)/(2aCf·n·Ut)). *)
  ptot : float;  (** Eq. 13, W. *)
  ptot_eq11 : float;  (** The un-approximated Eq. 11 at vdd_opt, W. *)
  chi : float;  (** χ (linear form). *)
  one_minus_chi_a : float;  (** The critical (1 − χA) factor. *)
}

exception Infeasible of string
(** Raised when (1 − χA) ≤ 0 or the Eq. 9 logarithm's argument is not
    positive: the architecture cannot meet timing in the linearised model
    (χ too large — an extremely slow architecture at this frequency). *)

val evaluate :
  ?lin:Device.Linearization.t -> Power_law.problem -> result
(** Closed-form optimum for the problem. [lin] defaults to the fit over the
    paper's 0.3–1.0 V range for the problem's technology α.
    @raise Infeasible (see above). *)

val ptot_eq13 :
  ?lin:Device.Linearization.t -> Power_law.problem -> float
(** Just Eq. 13. *)

type enclosure = {
  vdd_opt_iv : Numerics.Interval.t;  (** Enclosure of Eq. 10. *)
  vth_opt_iv : Numerics.Interval.t;  (** Enclosure of Eq. 9. *)
  ptot_iv : Numerics.Interval.t;  (** Enclosure of Eq. 13. *)
}

val evaluate_iv :
  ?lin:Device.Linearization.t ->
  Power_law.problem ->
  f:Numerics.Interval.t ->
  (enclosure, string) Stdlib.result
(** Sound enclosure of the closed form over a frequency box: for every f
    in the box, the scalar {!evaluate} results lie inside the returned
    intervals. [Error] distinguishes certified infeasibility ("over the
    whole f box") from a box straddling the feasibility boundary ("not
    certified") — only the former proves {!evaluate} would raise
    {!Infeasible} everywhere. *)
