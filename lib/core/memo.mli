(** Keyed, mutex-guarded memo table — alias of {!Parallel.Memo}.

    See {!Parallel.Memo} for the soundness contract (pure compute
    functions, read-only cached values, race semantics). *)

include module type of struct
  include Parallel.Memo
end
