let codec_version = "optpower-warm/1"

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let tech_fields (t : Device.Technology.t) =
  [
    t.vdd_nom;
    t.vth0_nom;
    t.io;
    t.zeta_ro;
    t.ring_divisor;
    t.alpha;
    t.n;
    t.eta;
    t.temperature;
    t.cell_cap;
  ]

let fingerprint () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf codec_version;
  List.iter
    (fun t ->
      Buffer.add_string buf (Device.Technology.name t);
      List.iter
        (fun x -> Buffer.add_string buf (Printf.sprintf " %h" x))
        (tech_fields t))
    Device.Technology.all;
  Buffer.add_string buf (Printf.sprintf " f=%h" Paper_data.frequency);
  Printf.sprintf "%016Lx" (fnv_string fnv_basis (Buffer.contents buf))

let default_path () =
  match Sys.getenv_opt "OPTPOWER_STORE" with
  | Some p when p <> "" -> p
  | _ -> ".optpower-store"

let open_store ?readonly ?path () =
  let path = match path with Some p -> p | None -> default_path () in
  match Store.open_ ?readonly ~path ~fingerprint:(fingerprint ()) () with
  | Ok t -> Some t
  | Error _ -> None

let ns_chars = "chars"
let ns_opt = "opt"
let ns_ledger = "ledger"
let ns_solve = "solve"

let encode_floats xs =
  String.concat " " (List.map (fun x -> Printf.sprintf "%h" x) xs)

let decode_floats s =
  let parts = String.split_on_char ' ' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | "" :: rest -> go acc rest
    | x :: rest -> (
        match float_of_string_opt x with
        | Some v -> go (v :: acc) rest
        | None -> None)
  in
  go [] parts

let design_key (p : Power_law.problem) =
  let t = p.tech and a = p.params in
  Printf.sprintf "t:%s %s|a:%h %h %h %h %h %h"
    (Device.Technology.name t)
    (encode_floats (tech_fields t))
    a.n_cells a.activity a.avg_cap a.io_cell a.ld_eff a.area

let problem_key (p : Power_law.problem) =
  Printf.sprintf "%s|f:%h|x:%h" (design_key p) p.f p.chi_prime

let encode_point (b : Power_law.breakdown) =
  encode_floats [ b.vdd; b.vth; b.dynamic; b.static; b.total ]

let decode_point s =
  match decode_floats s with
  | Some [ vdd; vth; dynamic; static; total ] ->
      Some { Power_law.vdd; vth; dynamic; static; total }
  | _ -> None

let encode_opt = function
  | None -> "I"
  | Some (point, cert_lo) ->
      Printf.sprintf "F %s %h" (encode_point point) cert_lo

let decode_opt s =
  if String.equal s "I" then Some None
  else if String.length s > 2 && s.[0] = 'F' && s.[1] = ' ' then
    match decode_floats (String.sub s 2 (String.length s - 2)) with
    | Some [ vdd; vth; dynamic; static; total; cert_lo ] ->
        Some (Some ({ Power_law.vdd; vth; dynamic; static; total }, cert_lo))
    | _ -> None
  else None
