(** Verified pruning for the design-space explorer.

    The Pareto DSE of ROADMAP item 2 enumerates thousands of candidate
    (architecture × depth × parallelism × flavor) boxes; most cannot
    possibly hold the optimum. {!prune} discards a candidate only on a
    machine-checked argument — the early-exit incumbent query
    ({!Absint.beats}) proves its min Ptot exceeds a certified achievable
    value in some other candidate — so the box containing the true
    optimum always survives (the admissible-bound property). *)

type candidate = {
  label : string;
  box : Absint.box;
}

type result = {
  kept : candidate list;  (** Original order preserved. *)
  pruned : candidate list;
  incumbent : float;
      (** The achievable upper bound candidates were pruned against: the
          least certified point evaluation over all candidates. *)
}

val prune : ?tol:float -> ?max_splits:int -> candidate list -> result
(** [tol] and [max_splits] bound the per-candidate {!Absint.beats} work
    (defaults [1e-3] and 64): tighter and higher prune more, never
    unsoundly. Counters [dse.candidates], [dse.pruned]. *)

val prune_against :
  ?tol:float -> ?max_splits:int -> Absint.box -> incumbent:float -> bool
(** Single-candidate incumbent pruning for the streaming explorer:
    [true] certifies the box's min Ptot is strictly above [incumbent]
    (via {!Absint.excludes} — its pdyn clip plus lower-bound-only
    branch-and-bound), so a candidate whose power can only land above an
    already-achieved value is discarded without an exact solve. [false]
    keeps the candidate. Defaults [tol] 2e-3, [max_splits] 32. *)
