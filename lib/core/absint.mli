(** Abstract interpretation of the power model: certified enclosures.

    The concrete semantics is {!Numerical_opt.ptot_on_constraint}; the
    abstract domain is outward-rounded intervals
    ({!Numerics.Interval}) tightened with affine mean-value forms and
    derivative-sign (monotonicity) arguments. {!certify} runs an interval
    branch-and-bound over the supply axis and returns a {e proof}: a
    guaranteed enclosure of the minimum total power and a bracket
    guaranteed to contain every minimiser — without executing the solver
    it cross-checks. *)

type box = {
  problem : Power_law.problem;
  f : Numerics.Interval.t;  (** Frequency range, must be > 0. *)
  vdd : Numerics.Interval.t;  (** Supply range, must be > 0. *)
}

val box :
  ?f:Numerics.Interval.t ->
  ?vdd:Numerics.Interval.t ->
  Power_law.problem ->
  box
(** [f] defaults to the problem's (degenerate) frequency, [vdd] to
    {!Power_law.vdd_search_range}.
    @raise Invalid_argument on non-positive boxes. *)

val ptot_over : box -> Numerics.Interval.t
(** Certified enclosure of the {e range} of Ptot over the whole box:
    naive interval evaluation, intersected with an affine mean-value
    evaluation (which keeps the vdd correlation through the
    [vdd − (χ′·vdd)^(1/α)] cancellation) and, when the derivative is
    certified sign-definite, with the exact endpoint-spanned range. *)

val dptot_over : box -> Numerics.Interval.t
(** Certified enclosure of d(Ptot)/dVdd over the box. *)

type certificate = {
  ptot : Numerics.Interval.t;
      (** Enclosure of [min Ptot] over the box. The upper end is an
          {e achieved} point evaluation, so it is attainable. *)
  vdd_bracket : Numerics.Interval.t;
      (** Certified bracket: every minimiser of Ptot over the box lies
          inside it. *)
  boxes : int;  (** Sub-boxes examined. *)
  splits : int;  (** Bisections performed. *)
  prunes : int;  (** Sub-boxes discarded (bound or monotonicity). *)
}

val certify : ?tol:float -> ?max_splits:int -> box -> certificate
(** Interval branch-and-bound over the supply axis. Boxes are discarded
    when their certified lower bound exceeds the incumbent (an achieved
    point value) or when their derivative enclosure is sign-definite and
    they are interior (domain-edge monotone boxes collapse to the edge
    point). Surviving boxes are bisected down to width [tol] (default
    2e-3 V); [max_splits] (default 20000) bounds the work, trading
    tightness — never soundness — when exhausted. Counters [cert.boxes],
    [cert.splits], [cert.prunes]. *)

val lower_bound : ?tol:float -> ?max_splits:int -> box -> float
(** Cheap certified lower bound of [min Ptot] over the box — a shallow
    {!certify} (default [max_splits] 64; [tol] defaults to a coarse
    [width/16]-scaled tolerance, pass a tighter one when the candidate
    boxes are wide). *)

val beats : ?tol:float -> ?max_splits:int -> box -> threshold:float -> bool
(** [beats b ~threshold] — could [min Ptot] over [b] be at or below
    [threshold]? [false] is a certified "no" (every supply sub-range's
    lower bound exceeds the threshold); [true] is conservative. The
    early-exit admissible bound {!Dse.prune} discards candidates with:
    prunable boxes resolve in a few shallow evaluations, survivors stop
    at the first inconclusive leaf. [tol] (default [1e-3]) is the
    refinement floor, [max_splits] (default 64) the work budget —
    exhausting either returns [true], never an unsound [false]. *)

val excludes :
  ?tol:float -> ?max_splits:int -> box -> threshold:float -> bool
(** [excludes b ~threshold] — is [min Ptot] over [b] certifiably {e strictly
    above} [threshold]? [true] is the proof; [false] is conservative (an
    inconclusive leaf at the [tol]/[max_splits] floor). The dual of
    {!beats}, specialised for the explorer's incumbent pruning: a
    one-shot pdyn-based clip discards the high-supply tail (Pdyn =
    K·vdd² already exceeds the threshold there) before a lower-bound-only
    branch-and-bound works the remaining prefix, skipping the achieved
    upper values, derivative enclosures and endpoint refinements that
    two-sided certification pays for. Defaults: [tol] 2e-3, [max_splits]
    32. Counters [cert.boxes]/[cert.splits]/[cert.prunes]. *)
