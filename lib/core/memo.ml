(* Re-export of the parallel subsystem's memo table under Power_core, so
   power-model code and downstream users say [Power_core.Memo] without
   depending on the parallel library directly. The canonical implementation
   lives in lib/parallel (it must sit below both power_core and
   multipliers in the dependency order). *)
include Parallel.Memo
