(* Verified candidate pruning for the design-space explorer (ROADMAP
   item 2). A candidate box is discarded only on a machine-checked
   argument: its certified lower bound on min Ptot (the early-exit
   incumbent query Absint.beats) exceeds a certified achievable value
   elsewhere (the incumbent — the outward-rounded .hi of a point
   evaluation in some other candidate). The box holding the true optimum
   can therefore never be pruned. *)

module Iv = Numerics.Interval

type candidate = {
  label : string;
  box : Absint.box;
}

type result = {
  kept : candidate list;
  pruned : candidate list;
  incumbent : float;
}

let c_candidates = Obs.Counter.make "dse.candidates"
let c_pruned = Obs.Counter.make "dse.pruned"

(* An achieved (certified attainable) upper bound inside one candidate:
   Ptot at the supply-box midpoint, upper end of the interval over the
   candidate's whole f box — sound whatever f the optimum picks. *)
let achieved (c : candidate) =
  let b = c.box in
  (Absint.ptot_over { b with Absint.vdd = Iv.of_float (Iv.mid b.Absint.vdd) })
    .Iv.hi

let prune ?tol ?max_splits candidates =
  match candidates with
  | [] -> { kept = []; pruned = []; incumbent = infinity }
  | _ ->
    Obs.Counter.add c_candidates (List.length candidates);
    let incumbent =
      List.fold_left (fun acc c -> Float.min acc (achieved c)) infinity
        candidates
    in
    let kept, pruned =
      List.partition
        (fun c -> Absint.beats ?tol ?max_splits c.box ~threshold:incumbent)
        candidates
    in
    Obs.Counter.add c_pruned (List.length pruned);
    { kept; pruned; incumbent }

let prune_against ?tol ?max_splits box ~incumbent =
  Absint.excludes ?tol ?max_splits box ~threshold:incumbent
