let energy_per_op (problem : Power_law.problem) =
  (Numerical_opt.optimum problem).Power_law.total /. problem.f

type sweep_point = {
  f : float;
  energy : float;
  ptot : float;
  vdd : float;
  vth : float;
}

let sweep ?(f_lo = 0.1e6) ?(f_hi = 500e6) ?(points = 25) problem =
  if points < 2 then invalid_arg "Energy.sweep: points < 2";
  let step = (Float.log f_hi -. Float.log f_lo) /. float_of_int (points - 1) in
  let fs =
    List.init points (fun i ->
        Float.exp (Float.log f_lo +. (float_of_int i *. step)))
  in
  (* The log-spaced throughputs are a monotone problem family — solved as
     warm-started continuation chunks through the pool. *)
  let optima =
    Numerical_opt.optima_continued
      ~problem_of:(fun f -> Power_law.at_frequency problem ~f)
      fs
  in
  List.map2
    (fun f (opt : Power_law.breakdown) ->
      {
        f;
        energy = opt.total /. f;
        ptot = opt.total;
        vdd = opt.vdd;
        vth = opt.vth;
      })
    fs optima

type mep = {
  f_mep : float;
  energy_mep : float;
  vdd_mep : float;
  overhead_at : float -> float;
}

let minimum_energy_point ?(f_lo = 0.1e6) ?(f_hi = 500e6) problem =
  (* The scan-and-refine over log f probes nearby frequencies over and
     over; one sequential warm chain across all probes keeps each inner
     (Vdd, Vth) solve down to a few Brent steps. *)
  let warm = ref None in
  let optimum_at f =
    let p = Power_law.at_frequency problem ~f in
    let opt =
      match !warm with
      | None -> Numerical_opt.optimum p
      | Some from -> Numerical_opt.optimum_warm ~from p
    in
    warm := Some opt;
    opt
  in
  let energy_at_log lf =
    let f = Float.exp lf in
    (optimum_at f).Power_law.total /. f
  in
  let r =
    Numerics.Minimize.grid_then_golden ~samples:48 ~tol:1e-6 ~f:energy_at_log
      (Float.log f_lo) (Float.log f_hi)
  in
  let f_mep = Float.exp r.x in
  let at_mep = optimum_at f_mep in
  let energy_mep = at_mep.Power_law.total /. f_mep in
  {
    f_mep;
    energy_mep;
    vdd_mep = at_mep.Power_law.vdd;
    overhead_at =
      (fun f -> energy_per_op (Power_law.at_frequency problem ~f) /. energy_mep);
  }
