(* Abstract interpretation of the on-constraint power model over parameter
   boxes. The concrete semantics is Numerical_opt.ptot_on_constraint; the
   abstract domain is outward-rounded intervals (Numerics.Interval)
   tightened with affine mean-value forms. Everything returned here is a
   machine-checked enclosure: no result depends on executing the solver. *)

module Iv = Numerics.Interval
module Af = Numerics.Interval.Affine

type box = {
  problem : Power_law.problem;
  f : Iv.t;
  vdd : Iv.t;
}

let box ?f ?vdd (problem : Power_law.problem) =
  let f = match f with Some f -> f | None -> Iv.of_float problem.f in
  let vdd =
    match vdd with
    | Some v -> v
    | None ->
      let lo, hi = Power_law.vdd_search_range in
      Iv.make lo hi
  in
  if f.Iv.lo <= 0.0 then invalid_arg "Absint.box: f box <= 0";
  if vdd.Iv.lo <= 0.0 then invalid_arg "Absint.box: vdd box <= 0";
  { problem; f; vdd }

(* The noise symbol carrying the supply voltage through the affine
   computation. A single box has a single correlated variable. *)
let vdd_symbol = 0

(* Affine evaluation of Ptot over the box: vdd is one shared noise symbol,
   so the vth = vdd - (chi' vdd)^(1/alpha) cancellation — which naive
   intervals lose entirely — survives as a linear correlation. The two
   nonlinear links (the alpha-power root and the leakage exponential) go
   through mean-value forms with interval-enclosed slopes. Returns None
   when an intermediate leaves the regime where the tightening is valid
   (the caller falls back to the naive enclosure, which is always sound). *)
let affine_range (t : Power_law.problem) ~f ~vdd =
  if not (Iv.is_finite vdd && Iv.is_finite f) then None
  else
    let p = t.params in
    let n_ut = Device.Technology.n_ut t.tech in
    let chi_prime = Power_law.chi_prime_iv t ~f in
    if not (Iv.is_finite chi_prime) then None
    else
      let v = Af.of_interval ~id:vdd_symbol vdd in
      let u = Af.mul_interval chi_prime v in
      let u_iv = Af.to_interval u in
      if u_iv.Iv.lo <= 0.0 then None
      else
        let p_exp = 1.0 /. t.tech.alpha in
        let g_mid = Iv.mid u_iv in
        let g_slope = Iv.scale p_exp (Iv.pow_scalar u_iv (p_exp -. 1.0)) in
        let g_fmid = Iv.pow_scalar (Iv.of_float g_mid) p_exp in
        if not (Iv.is_finite g_slope && Iv.is_finite g_fmid) then None
        else
          let g = Af.mean_value ~x0:g_mid ~fmid:g_fmid ~slope:g_slope u in
          let vth = Af.sub v g in
          let w = Af.scale (-1.0 /. n_ut) vth in
          let w_iv = Af.to_interval w in
          let e_slope = Iv.exp w_iv in
          let e_fmid = Iv.exp (Iv.of_float (Iv.mid w_iv)) in
          if not (Iv.is_finite e_slope && Iv.is_finite e_fmid) then None
          else
            let e =
              Af.mean_value ~x0:(Iv.mid w_iv) ~fmid:e_fmid ~slope:e_slope w
            in
            let pstat =
              Af.scale
                (p.Arch_params.n_cells *. p.io_cell)
                (Af.mul v e)
            in
            let pdyn =
              Af.mul_interval
                (Iv.scale
                   (p.Arch_params.activity *. p.n_cells *. p.avg_cap)
                   f)
                (Af.sqr v)
            in
            Some (Af.to_interval (Af.add pdyn pstat))

let tighten base candidate =
  match Iv.intersect base candidate with Some t -> t | None -> base

let point_range (b : box) v =
  Power_law.ptot_on_constraint_iv b.problem ~f:b.f ~vdd:(Iv.of_float v)

let dptot_over (b : box) =
  Power_law.dptot_on_constraint_iv b.problem ~f:b.f ~vdd:b.vdd

let ptot_over (b : box) =
  let naive = Power_law.ptot_on_constraint_iv b.problem ~f:b.f ~vdd:b.vdd in
  let enc =
    match affine_range b.problem ~f:b.f ~vdd:b.vdd with
    | Some aff -> tighten naive aff
    | None -> naive
  in
  if Iv.width b.vdd <= 0.0 then enc
  else
    (* Sign-definite derivative: Ptot is monotone on the box, the exact
       range is spanned by the two endpoint values. *)
    let d = dptot_over b in
    if d.Iv.lo >= 0.0 || d.Iv.hi <= 0.0 then
      tighten enc
        (Iv.hull (point_range b b.vdd.Iv.lo) (point_range b b.vdd.Iv.hi))
    else enc

type certificate = {
  ptot : Iv.t;
  vdd_bracket : Iv.t;
  boxes : int;
  splits : int;
  prunes : int;
}

let c_boxes = Obs.Counter.make "cert.boxes"
let c_splits = Obs.Counter.make "cert.splits"
let c_prunes = Obs.Counter.make "cert.prunes"

(* Interval branch-and-bound over the supply axis. Invariants:
   - [ub] is always an achieved value: the .hi of a point evaluation, so
     min Ptot <= ub with certainty even over a non-degenerate f box.
   - a sub-box is discarded only when its certified lower bound exceeds
     [ub] (cannot contain the minimiser), or when its derivative is
     certified sign-definite and it is interior (the minimum then sits on
     a shared endpoint owned by the neighbouring box; domain-edge boxes
     collapse to the degenerate edge point instead of vanishing).
   Hence every minimiser of Ptot over the box survives in some kept leaf:
   the hull of the kept leaves is a certified bracket, and
   [min lo over kept leaves, ub] a certified enclosure of the minimum. *)
let certify ?(tol = 2e-3) ?(max_splits = 20_000) (b : box) =
  let domain = b.vdd in
  let point_hi v = (point_range b v).Iv.hi in
  let ub = ref (point_hi (Iv.mid domain)) in
  let boxes = ref 0 and splits = ref 0 and prunes = ref 0 in
  let survivors = ref [] in
  let keep vdd enc = survivors := (vdd, enc) :: !survivors in
  let rec go = function
    | [] -> ()
    | vdd :: rest ->
      incr boxes;
      Obs.Counter.incr c_boxes;
      let sub = { b with vdd } in
      let enc = ptot_over sub in
      if enc.Iv.lo > !ub then (
        incr prunes;
        Obs.Counter.incr c_prunes;
        go rest)
      else (
        let pm = point_hi (Iv.mid vdd) in
        if pm < !ub then ub := pm;
        let monotone =
          if Iv.width vdd <= tol then `No
          else
            let d = dptot_over sub in
            if d.Iv.lo > 0.0 then `Min_at vdd.Iv.lo
            else if d.Iv.hi < 0.0 then `Min_at vdd.Iv.hi
            else `No
        in
        match monotone with
        | `Min_at edge ->
          incr prunes;
          Obs.Counter.incr c_prunes;
          (* Interior edges are shared with a neighbouring sub-box which
             keeps covering them; domain edges have no neighbour and stay
             as degenerate leaves. *)
          if edge <= domain.Iv.lo || edge >= domain.Iv.hi then (
            let pt = Iv.of_float edge in
            keep pt (ptot_over { b with vdd = pt }));
          go rest
        | `No ->
          if Iv.width vdd <= tol || !splits >= max_splits then (
            keep vdd enc;
            go rest)
          else (
            match Iv.split vdd with
            | None ->
              keep vdd enc;
              go rest
            | Some (l, r) ->
              incr splits;
              Obs.Counter.incr c_splits;
              go (l :: r :: rest)))
  in
  go [ domain ];
  let kept = List.filter (fun (_, enc) -> enc.Iv.lo <= !ub) !survivors in
  let ptot, vdd_bracket =
    match kept with
    | [] ->
      (* Unreachable when the invariants hold — the minimiser's leaf
         always survives — but degrade soundly rather than raise. *)
      (Iv.make (Float.min !ub !ub) !ub, domain)
    | (v0, e0) :: tl ->
      let lo, bracket =
        List.fold_left
          (fun (lo, h) (v, e) -> (Float.min lo e.Iv.lo, Iv.hull h v))
          (e0.Iv.lo, v0) tl
      in
      (Iv.make (Float.min lo !ub) !ub, bracket)
  in
  { ptot; vdd_bracket; boxes = !boxes; splits = !splits; prunes = !prunes }

let lower_bound ?tol ?(max_splits = 64) (b : box) =
  let tol =
    match tol with
    | Some t -> t
    | None -> Float.max 1e-3 (Iv.width b.vdd /. 16.0)
  in
  (certify ~tol ~max_splits b).ptot.Iv.lo

(* Early-exit incumbent test: could min Ptot over the box be <=
   [threshold]? [false] is a proof — every region of the supply axis got
   a certified lower bound above the threshold. [true] is conservative:
   a region certifiably at-or-below the threshold ([enc.hi <=
   threshold]), or one that stayed inconclusive at the resolution/budget
   floor. Much cheaper than comparing a tight {!lower_bound}: prunable
   boxes resolve at shallow depth, surviving boxes return at the first
   inconclusive leaf instead of refining the whole axis. *)
let beats ?(tol = 1e-3) ?(max_splits = 64) (b : box) ~threshold =
  let splits = ref 0 in
  let rec go = function
    | [] -> false
    | vdd :: rest ->
      Obs.Counter.incr c_boxes;
      let enc = ptot_over { b with vdd } in
      if enc.Iv.lo > threshold then (
        Obs.Counter.incr c_prunes;
        go rest)
      else if
        enc.Iv.hi <= threshold
        || Iv.width vdd <= tol
        || !splits >= max_splits
      then true
      else
        match Iv.split vdd with
        | None -> true
        | Some (l, r) ->
          incr splits;
          Obs.Counter.incr c_splits;
          go (l :: r :: rest)
  in
  go [ b.vdd ]

(* One-sided exclusion test: a certified "min Ptot over the box is
   strictly above [threshold]". Two structural cheapenings over [beats]:

   - pdyn clip. Pdyn = K vdd^2 with K = a N Cavg f.lo is a monotone lower
     envelope of Ptot, so any vdd with K vdd^2 > threshold cannot hold a
     sub-threshold point. One square root locates the crossing; a single
     interval evaluation at the clip point verifies it outward-rounded,
     after which the branch-and-bound only ever works the [lo, clip]
     prefix of the supply axis.

   - lower-bound-only leaves. Exclusion never needs the achieved upper
     values [certify] maintains, so leaves evaluate the naive/affine .lo
     alone and skip the derivative enclosure and the endpoint-spanned
     refinement that [ptot_over] pays for two-sided tightness.

   [true] is the proof (candidate cannot reach the threshold); [false] is
   conservative — an inconclusive leaf at the tol/budget floor, never an
   unsound exclusion. *)
let excludes ?(tol = 2e-3) ?(max_splits = 32) (b : box) ~threshold =
  if not (threshold > 0.0 && Float.is_finite threshold) then false
  else begin
    let p = b.problem.Power_law.params in
    let k =
      p.Arch_params.activity *. p.n_cells *. p.avg_cap *. b.f.Iv.lo
    in
    let domain =
      if k <= 0.0 then b.vdd
      else
        let guess = Float.sqrt (threshold /. k) *. 1.0001 in
        if guess >= b.vdd.Iv.hi || guess <= b.vdd.Iv.lo then b.vdd
        else
          let clip = Iv.make guess b.vdd.Iv.hi in
          let pdyn_at = Power_law.pdyn_iv b.problem ~f:b.f ~vdd:clip in
          if pdyn_at.Iv.lo > threshold then Iv.make b.vdd.Iv.lo guess
          else b.vdd
    in
    let lower vdd =
      let sub = { b with vdd } in
      let naive =
        Power_law.ptot_on_constraint_iv sub.problem ~f:sub.f ~vdd:sub.vdd
      in
      match affine_range sub.problem ~f:sub.f ~vdd:sub.vdd with
      | Some aff -> Float.max naive.Iv.lo aff.Iv.lo
      | None -> naive.Iv.lo
    in
    let splits = ref 0 in
    let rec go = function
      | [] -> true
      | vdd :: rest ->
        Obs.Counter.incr c_boxes;
        if lower vdd > threshold then (
          Obs.Counter.incr c_prunes;
          go rest)
        else if Iv.width vdd <= tol || !splits >= max_splits then false
        else (
          match Iv.split vdd with
          | None -> false
          | Some (l, r) ->
            incr splits;
            Obs.Counter.incr c_splits;
            go (l :: r :: rest))
    in
    go [ domain ]
  end
