(** Streaming statistics sketches: O(1) memory per statistic, mergeable.

    The aggregation layer of the million-die Monte-Carlo engine: per-chunk
    accumulators absorb one value per die, chunk results merge in fixed
    chunk order, and no per-die value is ever materialised.

    Merge determinism: {!Quantile} and {!Yield} hold integer counts, so
    their merges are {e exactly} associative and commutative
    (property-tested). {!Moments} merges compensated float sums —
    associative to rounding only, which is why the engine fixes the merge
    order (chunk index order) and results stay bitwise identical at any
    pool size. {!P2} is single-stream and does not merge. *)

module Moments : sig
  (** Kahan-compensated count / mean / variance / min / max accumulator. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val merge_into : t -> t -> unit
  (** [merge_into t other] folds [other] into [t]; [other] is unchanged. *)

  val count : t -> int
  val mean : t -> float
  (** @raise Invalid_argument when empty. *)

  val stddev : t -> float
  (** Sample standard deviation (n-1), one-pass compensated; 0 below two
      observations. *)

  val summary : t -> Stats.summary
  (** @raise Invalid_argument when empty. *)
end

module Quantile : sig
  (** Mergeable relative-error quantile sketch (logarithmic buckets, the
      DDSketch scheme): any returned quantile is within relative error
      [alpha] of the matching exact order statistic
      [x_(round(p/100 * (n-1)))]. Memory is bounded by the data's dynamic
      range (≈ 290 buckets per decade at the default [alpha = 1%]), never
      by the stream length. Handles negative values and zero. *)

  type t

  val create : ?alpha:float -> unit -> t
  (** Default [alpha = 0.01] (1 % relative error).
      @raise Invalid_argument unless [alpha] is in (0, 1). *)

  val alpha : t -> float

  val add : t -> float -> unit
  (** @raise Invalid_argument on non-finite values. *)

  val merge_into : t -> t -> unit
  (** Exact integer-count merge — associative and commutative.
      @raise Invalid_argument when the two sketches' [alpha] differ. *)

  val count : t -> int

  val quantile : t -> float -> float
  (** [quantile t p] with [p] in [\[0, 100\]] — same convention as
      {!Stats.percentile}, rounded to the nearest order statistic.
      @raise Invalid_argument when empty or [p] out of range. *)
end

module Yield : sig
  (** Parametric-yield curve accumulator: fraction of observations at or
      below each spec of a fixed grid. One integer bin per grid interval,
      so merging is exact. *)

  type t

  val create : specs:float array -> t
  (** @raise Invalid_argument if [specs] is empty or not strictly
      increasing. The grid is copied. *)

  val add : t -> float -> unit
  val merge_into : t -> t -> unit
  (** @raise Invalid_argument when the spec grids differ. *)

  val count : t -> int

  val curve : t -> (float * float) array
  (** [(spec, fraction of observations <= spec)] per grid point.
      @raise Invalid_argument when empty. *)
end

module P2 : sig
  (** The classic P-squared single-quantile estimator (Jain & Chhabra
      1985): five markers, O(1) update, no merge — for sequential
      consumers that need one quantile of one stream. The engine itself
      aggregates with {!Quantile}, whose buckets merge exactly. *)

  type t

  val create : q:float -> t
  (** [q] strictly inside (0, 1), e.g. [0.95].
      @raise Invalid_argument otherwise. *)

  val add : t -> float -> unit
  val count : t -> int

  val estimate : t -> float
  (** Current estimate; exact below five observations.
      @raise Invalid_argument when empty. *)
end
