(** One-dimensional root finding.

    Used to invert the timing constraint (Eq. 5) — finding the threshold
    voltage that makes the critical path exactly meet the clock period — and
    inside parameter extraction. *)

exception No_bracket of string
(** Raised when the supplied interval does not bracket a sign change. *)

exception Diverged of { last : float; iterations : int; reason : string }
(** Raised by {!newton} when the iteration cannot continue — a zero
    derivative or a non-finite iterate. Carries the last good iterate and
    how many steps were taken, so callers (the model-validity rules of
    [Analysis]) can report {e where} the scheme died, not just that it
    did. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds [x] in [\[lo, hi\]] with [f x = 0] by bisection.
    [f lo] and [f hi] must have opposite signs.
    @param tol absolute tolerance on [x] (default [1e-12]).
    @raise No_bracket if the interval does not bracket a root. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [brent ~f lo hi] — Brent's method (inverse quadratic interpolation with
    bisection fallback). Same contract as {!bisect}, converges
    super-linearly on smooth functions. *)

val newton :
  ?tol:float -> ?max_iter:int ->
  f:(float -> float) -> df:(float -> float) -> float -> float
(** [newton ~f ~df x0] — Newton-Raphson from [x0]. A zero derivative or a
    non-finite step raises {!Diverged}. Prefer {!brent} when a bracket is
    available. *)

val expand_bracket :
  ?factor:float -> ?max_iter:int ->
  f:(float -> float) -> float -> float -> (float * float) option
(** [expand_bracket ~f lo hi] geometrically grows the interval outward until
    it brackets a sign change, or returns [None]. *)
