exception No_bracket of string
exception Diverged of { last : float; iterations : int; reason : string }

let same_sign a b = (a >= 0.0 && b >= 0.0) || (a <= 0.0 && b <= 0.0)

let check_bracket name flo fhi =
  if flo = 0.0 || fhi = 0.0 then ()
  else if same_sign flo fhi then
    raise
      (No_bracket
         (Printf.sprintf "%s: f has same sign at both ends (%g, %g)" name flo
            fhi))

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  let flo = f lo and fhi = f hi in
  check_bracket "Rootfind.bisect" flo fhi;
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else begin
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo < tol || iter >= max_iter then mid
      else begin
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if same_sign flo fmid then loop mid hi fmid (iter + 1)
        else loop lo mid flo (iter + 1)
      end
    in
    loop lo hi flo 0
  end

(* Brent's method, following the classical Brent (1973) formulation. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  let fa = f lo and fb = f hi in
  check_bracket "Rootfind.brent" fa fb;
  if fa = 0.0 then lo
  else if fb = 0.0 then hi
  else begin
    let a = ref lo and b = ref hi and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let iter = ref 0 in
    while Float.abs !fb > 0.0 && Float.abs (!b -. !a) > tol && !iter < max_iter
    do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_bound = (3.0 *. !a +. !b) /. 4.0 and hi_bound = !b in
      let out_of_range =
        if lo_bound < hi_bound then s < lo_bound || s > hi_bound
        else s < hi_bound || s > lo_bound
      in
      let s =
        if
          out_of_range
          || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0)
          || ((not !mflag) && Float.abs (s -. !b) >= Float.abs !d /. 2.0)
          || (!mflag && Float.abs (!b -. !c) < tol)
          || ((not !mflag) && Float.abs !d < tol)
        then begin
          mflag := true;
          0.5 *. (!a +. !b)
        end
        else begin
          mflag := false;
          s
        end
      in
      let fs = f s in
      d := !b -. !c;
      c := !b;
      fc := !fb;
      if same_sign !fa fs then begin
        a := s;
        fa := fs
      end
      else begin
        b := s;
        fb := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end
    done;
    !b
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec loop x iter =
    if iter >= max_iter then x
    else begin
      let fx = f x in
      if Float.abs fx = 0.0 then x
      else begin
        let dfx = df x in
        if dfx = 0.0 then
          raise
            (Diverged { last = x; iterations = iter; reason = "zero derivative" });
        let x' = x -. (fx /. dfx) in
        if not (Float.is_finite x') then
          raise
            (Diverged
               { last = x; iterations = iter; reason = "non-finite iterate" });
        if Float.abs (x' -. x) < tol then x' else loop x' (iter + 1)
      end
    end
  in
  loop x0 0

let expand_bracket ?(factor = 1.6) ?(max_iter = 50) ~f lo hi =
  let rec loop lo hi flo fhi iter =
    if not (same_sign flo fhi) then Some (lo, hi)
    else if iter >= max_iter then None
    else if Float.abs flo < Float.abs fhi then begin
      let lo' = lo -. (factor *. (hi -. lo)) in
      loop lo' hi (f lo') fhi (iter + 1)
    end
    else begin
      let hi' = hi +. (factor *. (hi -. lo)) in
      loop lo hi' flo (f hi') (iter + 1)
    end
  in
  loop lo hi (f lo) (f hi) 0
