(** One- and two-dimensional scalar minimisation.

    The numerical optimal-working-point search (Section 3 of the paper) is a
    one-dimensional minimisation of total power over Vdd, with Vth tied to Vdd
    by the timing constraint; Figure 1 needs the full two-dimensional map. *)

type result = {
  x : float;  (** Argmin. *)
  fx : float;  (** Minimum value. *)
  iterations : int;
}

val golden_section :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> result
(** [golden_section ~f lo hi] minimises a unimodal [f] on [\[lo, hi\]].
    @param tol absolute tolerance on [x] (default [1e-10]). *)

val grid_then_golden :
  ?samples:int -> ?tol:float -> f:(float -> float) -> float -> float -> result
(** [grid_then_golden ~f lo hi] scans [samples] equally spaced points
    (default 64) to localise the global minimum basin, then refines with
    golden section on the bracketing sub-interval. Robust to mild
    non-unimodality. *)

val seeded_bracket :
  ?tol:float ->
  ?max_iter:int ->
  ?grow:float ->
  f:(float -> float) ->
  x0:float ->
  scale:float ->
  float ->
  float ->
  result
(** [seeded_bracket ~f ~x0 ~scale lo hi] minimises [f] on [\[lo, hi\]]
    starting from an analytic seed: a bracket of half-width [scale] is
    centred on [x0] (clamped into the interval) and slid downhill with the
    step growing by [grow] (default 2.0) each move until the middle point
    is no worse than both ends — i.e. local unimodality is established —
    then refined with Brent's method (successive parabolic interpolation
    falling back to golden-section steps). A window driven into an
    interval end exits the expansion with the minimum pinned at that
    boundary. If no bracket can be established (strongly non-unimodal
    objective), falls back to {!golden_section} over the whole interval.

    [result.iterations] counts Brent refinement iterations (one [f]
    evaluation each, bracketing probes excluded). With a seed within a few
    percent of the true minimiser this needs an order of magnitude fewer
    evaluations than {!grid_then_golden}, which is kept as the differential
    oracle.
    @param tol absolute tolerance on [x] (default [1e-10]).
    @raise Invalid_argument if [lo >= hi], [scale] is not positive and
    finite, or [grow <= 1]. *)

type result2 = { x0 : float; x1 : float; fx2 : float }

val grid2 :
  f:(float -> float -> float) ->
  x0_range:float * float ->
  x1_range:float * float ->
  samples:int ->
  result2
(** Exhaustive 2-D grid minimisation; returns the best sample. Used for the
    brute-force (Vdd, Vth) reference optimum that validates the constrained
    1-D search. *)
