type summary = {
  count : int;
  mean : float;
  stddev : float;
  min_value : float;
  max_value : float;
}

(* Array-based implementations are the primitives; the historical float
   list API below is kept as thin wrappers for existing callers. The
   numeric results are identical: the Kahan accumulation visits elements
   in the same order either way, and selection returns the same order
   statistics a full sort would. *)

let mean_array xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Kahan.sum_array xs /. float_of_int (Array.length xs)

let stddev_array xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean_array xs in
    let acc = Kahan.create () in
    for i = 0 to n - 1 do
      Kahan.add acc ((xs.(i) -. m) ** 2.0)
    done;
    sqrt (Kahan.sum acc /. float_of_int (n - 1))
  end

let summarize_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let min_value = ref xs.(0) and max_value = ref xs.(0) in
  for i = 1 to n - 1 do
    if xs.(i) < !min_value then min_value := xs.(i);
    if xs.(i) > !max_value then max_value := xs.(i)
  done;
  {
    count = n;
    mean = mean_array xs;
    stddev = stddev_array xs;
    min_value = !min_value;
    max_value = !max_value;
  }

(* Hoare-partition quickselect with median-of-three pivots: places the k-th
   smallest element at index k, partitioning the array around it. Expected
   O(n) versus the O(n log n) full sort the percentile path used before —
   A/B'd by the [diag:percentile-*] benches. *)
let rec select xs lo hi k =
  if lo >= hi then xs.(k)
  else begin
    let mid = lo + ((hi - lo) / 2) in
    (* Median-of-three: order xs.(lo), xs.(mid), xs.(hi), pivot on the
       median moved to the middle. *)
    let swap i j =
      let tmp = xs.(i) in
      xs.(i) <- xs.(j);
      xs.(j) <- tmp
    in
    if xs.(mid) < xs.(lo) then swap mid lo;
    if xs.(hi) < xs.(lo) then swap hi lo;
    if xs.(hi) < xs.(mid) then swap hi mid;
    let pivot = xs.(mid) in
    let i = ref (lo - 1) and j = ref (hi + 1) in
    let continue = ref true in
    let split = ref lo in
    while !continue do
      incr i;
      while xs.(!i) < pivot do
        incr i
      done;
      decr j;
      while xs.(!j) > pivot do
        decr j
      done;
      if !i >= !j then begin
        split := !j;
        continue := false
      end
      else swap !i !j
    done;
    if k <= !split then select xs lo !split k else select xs (!split + 1) hi k
  end

let percentile_array xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let frac = rank -. float_of_int lo in
  let xlo = select xs 0 (n - 1) lo in
  if frac = 0.0 || lo >= n - 1 then xlo
  else begin
    (* After selection every element right of [lo] is >= xlo; the next
       order statistic is their minimum. *)
    let xhi = ref xs.(lo + 1) in
    for i = lo + 2 to n - 1 do
      if xs.(i) < !xhi then xhi := xs.(i)
    done;
    (xlo *. (1.0 -. frac)) +. (!xhi *. frac)
  end

(* List wrappers (historical API). *)

let mean xs =
  match xs with [] -> invalid_arg "Stats.mean: empty" | _ -> mean_array (Array.of_list xs)

let stddev xs =
  match xs with [] | [ _ ] -> 0.0 | _ -> stddev_array (Array.of_list xs)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ -> summarize_array (Array.of_list xs)

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ -> percentile_array (Array.of_list xs) p

let relative_error ~reference value =
  if reference = 0.0 then invalid_arg "Stats.relative_error: zero reference";
  (value -. reference) /. reference

let max_abs_relative_error pairs =
  List.fold_left
    (fun acc (reference, value) ->
      Float.max acc (Float.abs (relative_error ~reference value)))
    0.0 pairs

(* Acklam's rational approximation to the standard normal quantile
   (relative error < 1.2e-9 over (0,1)): the inverse-CDF transform that
   turns low-discrepancy uniforms into Gaussian draws — Box-Muller would
   destroy the Sobol sequence's equidistribution. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Stats.normal_quantile: p must be in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let tail q =
    let num =
      ((((((c.(0) *. q) +. c.(1)) *. q) +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
    in
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  in
  let p_low = 0.02425 in
  if p < p_low then tail (sqrt (-2.0 *. log p))
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
    in
    num
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
        *. r
       +. 1.0)
  end
  else -.tail (sqrt (-2.0 *. log (1.0 -. p)))
