let huge = 1e30

type violation =
  | Nan
  | Pos_inf
  | Neg_inf

let violation x =
  if Float.is_nan x then Some Nan
  else if x = Float.infinity then Some Pos_inf
  else if x = Float.neg_infinity then Some Neg_inf
  else None

let violation_to_string = function
  | Nan -> "NaN"
  | Pos_inf -> "+inf"
  | Neg_inf -> "-inf"

let clamp ?(nan = 0.0) x =
  match violation x with
  | None -> x
  | Some Nan -> nan
  | Some Pos_inf -> huge
  | Some Neg_inf -> -.huge

(* [-0.0 = 0.0] under (=) but [1.0 /. -0.0 = neg_infinity]: interval
   endpoint arithmetic that divides by an endpoint must never see the
   negative zero, or a denominator box [−0., b] flips the sign of its
   quotient's infinite end. *)
let canonical_zero x = if x = 0.0 then 0.0 else x

let is_signed_zero x = x = 0.0 && 1.0 /. x = Float.neg_infinity
