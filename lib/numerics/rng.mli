(** Deterministic pseudo-random number generation (SplitMix64).

    All stochastic parts of the library (stimulus generation, synthetic
    measurement noise) draw from this generator so that every experiment is
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 stream. *)

val bits : t -> int
(** [bits t] is a uniformly distributed non-negative [int] (62 bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed sample (Box-Muller). Each transform produces two
    independent normals; the second is cached and returned by the next call
    on the same generator, so a pair of calls costs one transform (two
    uniforms). The cache is part of the stream state: it is carried by
    {!copy} and discarded by {!split} / {!split_nth} for the child. *)

val split : t -> t
(** [split t] derives a statistically independent generator, advancing [t].
    Used to give each sub-experiment its own stream. The child starts with
    an empty Gaussian cache; [t]'s cache is untouched. *)

val split_nth : t -> int -> t
(** [split_nth t n] is the generator the [(n+1)]-th consecutive {!split}
    of [t] would return — computed in O(1) {e without} advancing [t].
    [split_nth t 0] equals [split (copy t)]. Gives die/sample [n] of a
    family its own pre-split stream without materialising the [n]
    predecessors, while staying bitwise-compatible with sequential
    splitting. @raise Invalid_argument if [n < 0]. *)
