(* Streaming statistics with O(1) memory per statistic and deterministic
   merges — the aggregation layer of the million-die Monte Carlo engine.

   Three mergeable accumulators (Moments, Quantile, Yield) plus the classic
   non-mergeable P-squared estimator. Quantile and Yield hold integer
   counts, so their merge is exactly associative and commutative; Moments
   merges compensated float sums, associative to rounding (the engine
   always merges in fixed chunk order, so its results are bitwise
   deterministic regardless). *)

module Moments = struct
  type t = {
    mutable count : int;
    sum : Kahan.t;
    sum_sq : Kahan.t;
    mutable min_value : float;
    mutable max_value : float;
  }

  let create () =
    {
      count = 0;
      sum = Kahan.create ();
      sum_sq = Kahan.create ();
      min_value = infinity;
      max_value = neg_infinity;
    }

  let add t x =
    t.count <- t.count + 1;
    Kahan.add t.sum x;
    Kahan.add t.sum_sq (x *. x);
    if x < t.min_value then t.min_value <- x;
    if x > t.max_value then t.max_value <- x

  let merge_into t other =
    t.count <- t.count + other.count;
    Kahan.add t.sum (Kahan.sum other.sum);
    Kahan.add t.sum_sq (Kahan.sum other.sum_sq);
    if other.min_value < t.min_value then t.min_value <- other.min_value;
    if other.max_value > t.max_value then t.max_value <- other.max_value

  let count t = t.count

  let mean t =
    if t.count = 0 then invalid_arg "Sketch.Moments.mean: empty";
    Kahan.sum t.sum /. float_of_int t.count

  let stddev t =
    if t.count < 2 then 0.0
    else begin
      let n = float_of_int t.count in
      let m = Kahan.sum t.sum /. n in
      (* One-pass variance: E[x^2] - mean^2, compensated sums. Clamped at
         zero against cancellation on near-constant streams. *)
      let var = (Kahan.sum t.sum_sq -. (n *. m *. m)) /. (n -. 1.0) in
      sqrt (Float.max 0.0 var)
    end

  let summary t : Stats.summary =
    if t.count = 0 then invalid_arg "Sketch.Moments.summary: empty";
    {
      count = t.count;
      mean = mean t;
      stddev = stddev t;
      min_value = t.min_value;
      max_value = t.max_value;
    }
end

module Quantile = struct
  (* Relative-error quantile sketch over logarithmic buckets (the DDSketch
     scheme): value x > 0 lands in bucket ceil(log_gamma x) with
     gamma = (1 + alpha) / (1 - alpha), and the bucket midpoint
     2 gamma^i / (gamma + 1) is within relative error alpha of every value
     the bucket covers. Negative values use a mirrored bucket table,
     magnitudes below [tiny] a dedicated zero bucket. Bucket counts are
     integers, so merging is exactly associative and commutative, and the
     number of buckets is bounded by the dynamic range of the data (about
     2900 per decade-spanning sign at alpha = 1%), never by the stream
     length — O(1) memory in the number of observations. *)
  type t = {
    alpha : float;
    gamma_log : float; (* log gamma *)
    gamma : float;
    tiny : float;
    pos : (int, int) Hashtbl.t;
    neg : (int, int) Hashtbl.t;
    mutable zero : int;
    mutable count : int;
  }

  let create ?(alpha = 0.01) () =
    if not (alpha > 0.0 && alpha < 1.0) then
      invalid_arg "Sketch.Quantile.create: alpha must be in (0, 1)";
    let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
    {
      alpha;
      gamma;
      gamma_log = log gamma;
      tiny = 1e-300;
      pos = Hashtbl.create 64;
      neg = Hashtbl.create 8;
      zero = 0;
      count = 0;
    }

  let alpha t = t.alpha

  let bump table key =
    match Hashtbl.find_opt table key with
    | Some n -> Hashtbl.replace table key (n + 1)
    | None -> Hashtbl.add table key 1

  let add t x =
    if not (Float.is_finite x) then
      invalid_arg "Sketch.Quantile.add: non-finite value";
    t.count <- t.count + 1;
    if x > t.tiny then bump t.pos (int_of_float (Float.ceil (log x /. t.gamma_log)))
    else if x < -.t.tiny then
      bump t.neg (int_of_float (Float.ceil (log (-.x) /. t.gamma_log)))
    else t.zero <- t.zero + 1

  let merge_into t other =
    if other.alpha <> t.alpha then
      invalid_arg "Sketch.Quantile.merge_into: alpha mismatch";
    let fold src dst =
      Hashtbl.iter
        (fun key n ->
          match Hashtbl.find_opt dst key with
          | Some m -> Hashtbl.replace dst key (m + n)
          | None -> Hashtbl.add dst key n)
        src
    in
    fold other.pos t.pos;
    fold other.neg t.neg;
    t.zero <- t.zero + other.zero;
    t.count <- t.count + other.count

  let count t = t.count

  (* Bucket midpoint: within relative error alpha of any covered value. *)
  let value_of t key = 2.0 *. (t.gamma ** float_of_int key) /. (t.gamma +. 1.0)

  let sorted_keys table =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) table [] in
    List.sort compare keys

  let quantile t p =
    if t.count = 0 then invalid_arg "Sketch.Quantile.quantile: empty";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Sketch.Quantile.quantile: p out of range";
    (* Same rank convention as Stats.percentile, rounded to the nearest
       order statistic: the result is within alpha of x_(round(rank)). *)
    let rank =
      int_of_float
        (Float.round (p /. 100.0 *. float_of_int (t.count - 1)))
    in
    let remaining = ref (rank + 1) in
    let result = ref nan in
    (* Ascending value order: negatives from large to small magnitude,
       then zero, then positives from small to large magnitude. *)
    List.iter
      (fun key ->
        if Float.is_nan !result then begin
          let n = Hashtbl.find t.neg key in
          if !remaining <= n then result := -.value_of t key
          else remaining := !remaining - n
        end)
      (List.rev (sorted_keys t.neg));
    if Float.is_nan !result && t.zero > 0 then begin
      if !remaining <= t.zero then result := 0.0
      else remaining := !remaining - t.zero
    end;
    if Float.is_nan !result then
      List.iter
        (fun key ->
          if Float.is_nan !result then begin
            let n = Hashtbl.find t.pos key in
            if !remaining <= n then result := value_of t key
            else remaining := !remaining - n
          end)
        (sorted_keys t.pos);
    if Float.is_nan !result then
      (* Rounding put the rank one past the last bucket; clamp to max. *)
      (match List.rev (sorted_keys t.pos) with
      | key :: _ -> result := value_of t key
      | [] -> (
        if t.zero > 0 then result := 0.0
        else
          match sorted_keys t.neg with
          | key :: _ -> result := -.value_of t key
          | [] -> assert false));
    !result
end

module Yield = struct
  (* Parametric-yield curve: for a fixed grid of power specs, the fraction
     of dies whose (re-optimised) total power meets each spec. One integer
     bin per grid interval — binary-search insert, cumulative sum on read —
     so merging is exact integer addition. *)
  type t = {
    specs : float array; (* strictly increasing *)
    bins : int array;    (* bins.(i): count with specs.(i-1) < x <= specs.(i);
                            bins.(len): count above the last spec *)
    mutable count : int;
  }

  let create ~specs =
    let n = Array.length specs in
    if n = 0 then invalid_arg "Sketch.Yield.create: no specs";
    for i = 1 to n - 1 do
      if specs.(i) <= specs.(i - 1) then
        invalid_arg "Sketch.Yield.create: specs must be strictly increasing"
    done;
    { specs = Array.copy specs; bins = Array.make (n + 1) 0; count = 0 }

  let add t x =
    (* First spec index with specs.(i) >= x, or len when x exceeds all. *)
    let lo = ref 0 and hi = ref (Array.length t.specs) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.specs.(mid) >= x then hi := mid else lo := mid + 1
    done;
    t.bins.(!lo) <- t.bins.(!lo) + 1;
    t.count <- t.count + 1

  let merge_into t other =
    if t.specs <> other.specs then
      invalid_arg "Sketch.Yield.merge_into: spec grids differ";
    Array.iteri (fun i n -> t.bins.(i) <- t.bins.(i) + n) other.bins;
    t.count <- t.count + other.count

  let count t = t.count

  let curve t =
    if t.count = 0 then invalid_arg "Sketch.Yield.curve: empty";
    let n = float_of_int t.count in
    let cumulative = ref 0 in
    Array.mapi
      (fun i spec ->
        cumulative := !cumulative + t.bins.(i);
        (spec, float_of_int !cumulative /. n))
      t.specs
end

module P2 = struct
  (* The P-squared algorithm (Jain & Chhabra 1985): five markers tracking
     min, q/2, q, (1+q)/2 and max quantile positions, adjusted per
     observation by parabolic (or linear) interpolation. O(1) memory and
     update cost, single-stream only — markers cannot merge, which is why
     the engine aggregates with [Quantile] and P2 is offered for
     sequential consumers. *)
  type t = {
    q : float;
    heights : float array; (* 5 *)
    positions : int array; (* 5, 1-based as in the paper *)
    desired : float array;
    increments : float array;
    mutable count : int;
    initial : float array; (* first five observations *)
  }

  let create ~q =
    if not (q > 0.0 && q < 1.0) then
      invalid_arg "Sketch.P2.create: q must be in (0, 1)";
    {
      q;
      heights = Array.make 5 0.0;
      positions = [| 1; 2; 3; 4; 5 |];
      desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
      increments = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
      count = 0;
      initial = Array.make 5 0.0;
    }

  let parabolic t i d =
    let h = t.heights and n = t.positions in
    let fi = float_of_int in
    h.(i)
    +. d
       /. fi (n.(i + 1) - n.(i - 1))
       *. (((fi (n.(i) - n.(i - 1)) +. d)
            *. (h.(i + 1) -. h.(i))
            /. fi (n.(i + 1) - n.(i)))
          +. ((fi (n.(i + 1) - n.(i)) -. d)
             *. (h.(i) -. h.(i - 1))
             /. fi (n.(i) - n.(i - 1))))

  let linear t i d =
    let h = t.heights and n = t.positions in
    let j = i + int_of_float d in
    h.(i) +. (d *. (h.(j) -. h.(i)) /. float_of_int (n.(j) - n.(i)))

  let add t x =
    if t.count < 5 then begin
      t.initial.(t.count) <- x;
      t.count <- t.count + 1;
      if t.count = 5 then begin
        Array.sort compare t.initial;
        Array.blit t.initial 0 t.heights 0 5
      end
    end
    else begin
      t.count <- t.count + 1;
      let h = t.heights and n = t.positions in
      (* Cell containing x; stretch the extreme markers when x escapes. *)
      let k =
        if x < h.(0) then begin
          h.(0) <- x;
          0
        end
        else if x >= h.(4) then begin
          h.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 1 to 3 do
            if x >= h.(i) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        n.(i) <- n.(i) + 1
      done;
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.increments.(i)
      done;
      for i = 1 to 3 do
        let d = t.desired.(i) -. float_of_int n.(i) in
        if
          (d >= 1.0 && n.(i + 1) - n.(i) > 1)
          || (d <= -1.0 && n.(i - 1) - n.(i) < -1)
        then begin
          let d = if d >= 0.0 then 1.0 else -1.0 in
          let candidate = parabolic t i d in
          let candidate =
            if h.(i - 1) < candidate && candidate < h.(i + 1) then candidate
            else linear t i d
          in
          h.(i) <- candidate;
          n.(i) <- n.(i) + int_of_float d
        end
      done
    end

  let count t = t.count

  let estimate t =
    if t.count = 0 then invalid_arg "Sketch.P2.estimate: empty";
    if t.count >= 5 then t.heights.(2)
    else begin
      (* Fewer than five observations: exact quantile of what we have. *)
      let xs = Array.sub t.initial 0 t.count in
      Array.sort compare xs;
      xs.(int_of_float
            (Float.round (t.q *. float_of_int (t.count - 1))))
    end
end
