type result = { x : float; fx : float; iterations : int }

let inv_phi = 0.5 *. (sqrt 5.0 -. 1.0)
let inv_phi2 = inv_phi *. inv_phi

(* Golden-section search with function-value reuse (two probes kept). *)
let golden_section ?(tol = 1e-10) ?(max_iter = 200) ~f lo hi =
  let a = ref lo and b = ref hi in
  let h = ref (hi -. lo) in
  let c = ref (lo +. (inv_phi2 *. !h)) in
  let d = ref (lo +. (inv_phi *. !h)) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !h > tol && !iter < max_iter do
    incr iter;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      h := !b -. !a;
      c := !a +. (inv_phi2 *. !h);
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      h := !b -. !a;
      d := !a +. (inv_phi *. !h);
      fd := f !d
    end
  done;
  let x, fx = if !fc < !fd then (!c, !fc) else (!d, !fd) in
  { x; fx; iterations = !iter }

let grid_then_golden ?(samples = 64) ?(tol = 1e-10) ~f lo hi =
  if samples < 3 then invalid_arg "Minimize.grid_then_golden: samples < 3";
  let step = (hi -. lo) /. float_of_int (samples - 1) in
  let best_i = ref 0 and best_f = ref infinity in
  for i = 0 to samples - 1 do
    let x = lo +. (float_of_int i *. step) in
    let fx = f x in
    if fx < !best_f then begin
      best_f := fx;
      best_i := i
    end
  done;
  let lo' = lo +. (float_of_int (max 0 (!best_i - 1)) *. step) in
  let hi' = lo +. (float_of_int (min (samples - 1) (!best_i + 1)) *. step) in
  let r = golden_section ~tol ~f lo' hi' in
  if r.fx <= !best_f then r
  else { x = lo +. (float_of_int !best_i *. step); fx = !best_f; iterations = r.iterations }

(* Brent's minimisation on a bracket [a, b] holding an interior-or-boundary
   point [x0] with f(x0) no worse than both ends: successive parabolic
   interpolation through the three lowest points seen so far, falling back
   to a golden-section step whenever the parabola is ill-conditioned, would
   step outside the bracket, or fails to halve the step of two iterations
   ago. Convergence is superlinear on the smooth power curves this repo
   minimises, so the bracket shrinks in a handful of evaluations where
   plain golden section needs ~36. *)
let cgold = 1.0 -. inv_phi

let brent_refine ~tol ~max_iter ~f lo hi x0 fx0 =
  let a = ref lo and b = ref hi in
  let x = ref x0 and w = ref x0 and v = ref x0 in
  let fx = ref fx0 and fw = ref fx0 and fv = ref fx0 in
  (* [d] is the current step, [e] the step before last. *)
  let d = ref 0.0 and e = ref 0.0 in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. (0.1 *. tol) in
    let tol2 = 2.0 *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then
      converged := true
    else begin
      let golden = ref true in
      if Float.abs !e > tol1 then begin
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2.0 *. (q -. r) in
        let p = if q > 0.0 then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := (if xm -. !x >= 0.0 then tol1 else -.tol1);
          golden := false
        end
      end;
      if !golden then begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0.0 then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        fv := !fw;
        w := !x;
        fw := !fx;
        x := u;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  { x = !x; fx = !fx; iterations = !iter }

let seeded_bracket ?(tol = 1e-10) ?(max_iter = 200) ?(grow = 2.0) ~f ~x0
    ~scale lo hi =
  if not (lo < hi) then invalid_arg "Minimize.seeded_bracket: lo >= hi";
  if not (Float.is_finite scale && scale > 0.0) then
    invalid_arg "Minimize.seeded_bracket: scale must be positive and finite";
  if grow <= 1.0 then invalid_arg "Minimize.seeded_bracket: grow <= 1";
  let clamp u = Float.min hi (Float.max lo u) in
  (* Triple (a, m, b) straddling the seed; the initial half-width is the
     caller's local scale (floored so a degenerate scale cannot stall the
     geometric growth). *)
  let m = ref (clamp x0) in
  let h = ref (Float.max scale ((hi -. lo) *. 1e-9)) in
  let a = ref (clamp (!m -. !h)) and b = ref (clamp (!m +. !h)) in
  let fa = ref (f !a) and fm = ref (f !m) and fb = ref (f !b) in
  (* Slide the triple downhill, growing the step geometrically, until the
     middle point is no worse than both ends (unimodality established) or
     the window has been driven into a wall of [lo, hi] — the clamp then
     pins the outer point onto the middle one, which satisfies the exit
     test with the minimum at the boundary. The budget is a safety net for
     adversarial (strongly non-unimodal) objectives: 64 geometric growths
     cover any representable interval. *)
  let budget = ref 64 in
  let bracketed = ref (!fm <= !fa && !fm <= !fb) in
  while (not !bracketed) && !budget > 0 do
    decr budget;
    h := !h *. grow;
    if !fa < !fb then begin
      b := !m;
      fb := !fm;
      m := !a;
      fm := !fa;
      a := clamp (!m -. !h);
      fa := (if !a = !m then !fm else f !a)
    end
    else begin
      a := !m;
      fa := !fm;
      m := !b;
      fm := !fb;
      b := clamp (!m +. !h);
      fb := (if !b = !m then !fm else f !b)
    end;
    bracketed := !fm <= !fa && !fm <= !fb
  done;
  if !bracketed then brent_refine ~tol ~max_iter ~f !a !b !m !fm
  else
    (* Could not establish unimodality around the seed — fall back to the
       robust whole-interval search. *)
    golden_section ~tol ~max_iter ~f lo hi

type result2 = { x0 : float; x1 : float; fx2 : float }

let grid2 ~f ~x0_range:(a0, b0) ~x1_range:(a1, b1) ~samples =
  if samples < 2 then invalid_arg "Minimize.grid2: samples < 2";
  let s0 = (b0 -. a0) /. float_of_int (samples - 1) in
  let s1 = (b1 -. a1) /. float_of_int (samples - 1) in
  let best = ref { x0 = a0; x1 = a1; fx2 = infinity } in
  for i = 0 to samples - 1 do
    let x0 = a0 +. (float_of_int i *. s0) in
    for j = 0 to samples - 1 do
      let x1 = a1 +. (float_of_int j *. s1) in
      let v = f x0 x1 in
      if v < !best.fx2 then best := { x0; x1; fx2 = v }
    done
  done;
  !best
