(** Sobol low-discrepancy sequences (quasi-Monte-Carlo draws).

    Gray-code construction over 32-bit Joe-Kuo direction numbers with an
    optional digital-shift scramble. Points are {e randomly accessible}:
    [point t n] is a pure function of [(t, n)], so deterministic chunked
    parallel generation needs no shared generator state — die [i] receives
    point [i] whatever pool chunk computes it.

    At matched sample count a (scrambled) Sobol sequence estimates smooth
    integrands and quantiles with an error decaying like [(log n)^d / n]
    versus Monte Carlo's [1 / sqrt n] — the variance-reduction lever behind
    the [`Sobol] variation sampler. Combine with {!Stats.normal_quantile}
    for Gaussian draws; Box-Muller would destroy the equidistribution. *)

type t

val max_dims : int
(** Dimensions with built-in direction numbers (currently 8). *)

val create : ?scramble:Rng.t -> dims:int -> unit -> t
(** [create ~dims ()] builds the sequence over [dims] dimensions. With
    [?scramble] a per-dimension 32-bit digital-shift word is drawn from the
    generator (in dimension order — the scramble is a pure function of the
    stream state), decorrelating replicas while preserving the
    low-discrepancy structure. Without it the sequence is the classic
    unshifted one. @raise Invalid_argument if [dims] is outside
    [\[1, max_dims\]]. *)

val dims : t -> int

val point_into : t -> int -> float array -> unit
(** [point_into t n out] writes point [n] (zero-based) into
    [out.(0 .. dims-1)], each coordinate strictly inside (0, 1) (midpoint
    convention, safe under inverse-CDF transforms). Allocation-free.
    @raise Invalid_argument if [n < 0] or [out] is too short. *)

val point : t -> int -> float array
(** Allocating convenience wrapper over {!point_into}. *)
