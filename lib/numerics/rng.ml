type t = {
  mutable state : int64;
  (* Box-Muller produces two independent normals per transform; the sine
     branch of the last transform is parked here and returned by the next
     [gaussian] call instead of burning a fresh pair of uniforms. *)
  mutable gauss_cache : float;
  mutable gauss_cached : bool;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; gauss_cache = 0.0; gauss_cached = false }

let copy t =
  { state = t.state; gauss_cache = t.gauss_cache; gauss_cached = t.gauss_cached }

(* SplitMix64 output function: xor-shift multiply avalanche of the
   incremented state (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. mantissa *. 0x1.0p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  if t.gauss_cached then begin
    t.gauss_cached <- false;
    mu +. (sigma *. t.gauss_cache)
  end
  else begin
    let rec nonzero () =
      let u = float t 1.0 in
      if u > 0.0 then u else nonzero ()
    in
    let u1 = nonzero () and u2 = float t 1.0 in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.gauss_cache <- r *. sin theta;
    t.gauss_cached <- true;
    mu +. (sigma *. r *. cos theta)
  end

let split t =
  { state = next_int64 t; gauss_cache = 0.0; gauss_cached = false }

let split_nth t n =
  if n < 0 then invalid_arg "Rng.split_nth: negative index";
  (* [split] advances the state by one gamma and mixes; n sequential splits
     therefore yield streams seeded at mix(state + (k+1) * gamma) for
     k = 0..n-1 — reproduced here arithmetically without touching [t]. *)
  let s = Int64.add t.state (Int64.mul (Int64.of_int (n + 1)) golden_gamma) in
  { state = mix s; gauss_cache = 0.0; gauss_cached = false }
