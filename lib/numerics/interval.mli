(** Outward-rounded interval arithmetic.

    Every operation returns an interval guaranteed to contain the exact
    real-number result for all points of its operands: round-to-nearest
    results are widened by one ulp per side (two for the libm
    transcendentals, which are not correctly rounded on every platform).
    This is the substrate of {!Absint.certify} — the certified Ptot
    enclosures are sound exactly because these primitives are.

    Endpoints are kept canonical: [-0.0] is rewritten to [+0.0] at
    construction (see {!Finite.canonical_zero}) so extended division by a
    zero-touching box keeps the right infinite end. Infinite endpoints are
    allowed (unbounded but sound); NaN endpoints are rejected. *)

type t = private { lo : float; hi : float }

exception Empty
(** Raised by {!meet_exn} on disjoint intervals. *)

val make : float -> float -> t
(** [make lo hi]. @raise Invalid_argument on NaN endpoints or [lo > hi]. *)

val of_float : float -> t
(** Degenerate (zero-width) interval. *)

val entire : t
(** [(-inf, +inf)] — the no-information enclosure. *)

val zero : t
val one : t

val width : t -> float
val mid : t -> float
val rad : t -> float
(** Outward-rounded half-width about {!mid}. *)

val mag : t -> float
(** [max |lo| |hi|]. *)

val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b] — is [a] contained in [b]? *)

val is_finite : t -> bool

val finite_violation : t -> (string * Finite.violation) option
(** First non-finite endpoint as [("lo"|"hi", violation)], for the
    NaN/Inf-free cert rule. *)

val hull : t -> t -> t
val intersect : t -> t -> t option
val meet_exn : t -> t -> t

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val add_scalar : t -> float -> t
val mul : t -> t -> t
val scale : float -> t -> t
val sqr : t -> t
(** Tighter than [mul t t]: knows both factors are the same variable. *)

val div : t -> t -> t
(** Extended interval division: a denominator box touching or containing
    zero yields half-lines or {!entire} rather than raising, except for
    the exact zero-width box [\[0, 0\]].
    @raise Invalid_argument on division by [\[0, 0\]]. *)

val inv : t -> t

val exp : t -> t
(** Lower endpoint clamped to [>= 0]: the outward step below a tiny
    positive result must not cross zero. *)

val log : t -> t
(** Intervals with [lo <= 0 < hi] get a [-inf] lower endpoint.
    @raise Invalid_argument when [hi <= 0]. *)

val pow_scalar : t -> float -> t
(** [pow_scalar x y] encloses [x ** y] for a non-negative base interval
    and scalar exponent (monotone in the base for either sign of [y]).
    @raise Invalid_argument on a negative base interval or NaN exponent. *)

val split : t -> (t * t) option
(** Bisect at {!mid}; [None] when the box is too thin to split (the
    midpoint is not strictly interior in floating point). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Affine forms: [mid + sum_i c_i eps_i + err], [eps_i] in [[-1, 1]].

    Shared noise symbols preserve linear correlation between quantities
    derived from the same variable, which defeats the dependency problem
    of plain intervals on expressions like [v - (chi' v)^(1/alpha)] where
    [v] occurs several times. All operations inflate [err] by an outward
    bound on their own rounding error, so {!Affine.to_interval} is always
    a sound enclosure. *)
module Affine : sig
  type interval := t

  type form = private {
    mid : float;
    coeffs : (int * float) list;
    err : float;
  }

  val const : float -> form
  val of_interval : id:int -> interval -> form
  (** Fresh noise symbol [id] spanning the interval. Symbols with equal
      ids are treated as the same variable — reuse an id only for forms
      derived from the same quantity. *)

  val to_interval : form -> interval
  val radius : form -> float

  val neg : form -> form
  val add : form -> form -> form
  val sub : form -> form -> form
  val add_const : float -> form -> form
  val scale : float -> form -> form
  val mul : form -> form -> form
  val sqr : form -> form

  val mul_interval : interval -> form -> form
  (** Product with an interval-valued coefficient: centred on the
      coefficient's midpoint, the half-width feeds the error term. *)

  val mean_value : x0:float -> fmid:interval -> slope:interval ->
    form -> form
  (** [mean_value ~x0 ~fmid ~slope x] encloses [g(x)] via the mean-value
      form [g(x0) + g'(xi)(x - x0)], given [fmid ⊇ g(x0)] and [slope ⊇
      g'] over the whole range of [x]. Keeps the linear correlation with
      [x] — the tool of choice for the monotone device-model curves. *)
end
