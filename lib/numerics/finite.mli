(** Finite-value guards.

    The optimisation and comparison code uses [infinity] as an "infeasible"
    sentinel inside minimisations, but anything handed to a root finder, a
    renderer or a report must be finite. This module centralises the clamp
    previously duplicated as magic [1e30] literals and gives the NaN/Inf
    audit rule of [Analysis] a single classification to reuse. *)

val huge : float
(** [1e30] — the finite stand-in for an infinite magnitude. Large enough to
    dominate any physical power or voltage in this repository, small enough
    that sums and differences of a few of them stay finite. *)

type violation =
  | Nan
  | Pos_inf
  | Neg_inf

val violation : float -> violation option
(** [None] for finite values. *)

val violation_to_string : violation -> string

val clamp : ?nan:float -> float -> float
(** Finite image of a float: [+inf] becomes {!huge}, [-inf] becomes
    [-.huge], NaN becomes [nan] (default [0.0]); finite values pass
    through unchanged. *)

val canonical_zero : float -> float
(** [+0.0] for both floating zeros, the identity elsewhere. Interval
    endpoints are canonicalised with this before any division: [-0.0]
    compares equal to [0.0] but divides with the opposite sign
    ([1.0 /. -0.0 = -inf]), which would flip the infinite end of a
    quotient whose denominator box touches zero from above. *)

val is_signed_zero : float -> bool
(** True exactly for [-0.0] — the endpoint {!canonical_zero} rewrites. *)
