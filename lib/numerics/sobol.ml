(* Sobol low-discrepancy sequence, Gray-code construction (Antonov-Saleev)
   over 32-bit direction numbers, with an optional per-dimension digital
   shift scramble.

   The point with index [n] is computed by random access — XOR of the
   direction numbers selected by the set bits of gray(n) — rather than by
   iterating a generator state. Random access is what makes deterministic
   chunked parallel generation trivial: die [i] always receives point [i],
   whatever pool chunk evaluates it. The per-point cost is O(popcount),
   about 16 XORs on average. *)

let bits = 32

(* Primitive polynomials and initial direction values for the first eight
   dimensions, from the Joe-Kuo "new-joe-kuo-6" table (dimension 1 is the
   van der Corput sequence in base 2 and needs no table entry). Each row is
   (s, a, m) with s the polynomial degree, a its encoded inner
   coefficients, and m the s initial odd direction values. *)
let joe_kuo =
  [|
    (1, 0, [| 1 |]);
    (2, 1, [| 1; 3 |]);
    (3, 1, [| 1; 3; 1 |]);
    (3, 2, [| 1; 1; 1 |]);
    (4, 1, [| 1; 1; 3; 3 |]);
    (4, 4, [| 1; 3; 5; 13 |]);
    (5, 2, [| 1; 1; 5; 5; 17 |]);
  |]

let max_dims = Array.length joe_kuo + 1

(* v.(d).(k) = direction number k of dimension d, as a 32-bit integer
   scaled so bit (bits - 1 - k) is the leading bit. *)
let direction_numbers dims =
  let v = Array.make_matrix dims bits 0 in
  (* Dimension 0: van der Corput, v_k = 2^(bits-1-k). *)
  for k = 0 to bits - 1 do
    v.(0).(k) <- 1 lsl (bits - 1 - k)
  done;
  for d = 1 to dims - 1 do
    let s, a, m = joe_kuo.(d - 1) in
    for k = 0 to s - 1 do
      v.(d).(k) <- m.(k) lsl (bits - 1 - k)
    done;
    for k = s to bits - 1 do
      (* Recurrence: v_k = v_{k-s} xor (v_{k-s} >> s) xor sum of tap terms. *)
      let value = ref (v.(d).(k - s) lxor (v.(d).(k - s) lsr s)) in
      for j = 1 to s - 1 do
        if (a lsr (s - 1 - j)) land 1 = 1 then
          value := !value lxor v.(d).(k - j)
      done;
      v.(d).(k) <- !value
    done
  done;
  v

type t = {
  dims : int;
  v : int array array;
  shift : int array;  (* digital-shift scramble word per dimension *)
}

let create ?scramble ~dims () =
  if dims < 1 || dims > max_dims then
    invalid_arg
      (Printf.sprintf "Sobol.create: dims must be in [1, %d]" max_dims);
  let shift =
    match scramble with
    | None -> Array.make dims 0
    | Some rng ->
      (* One 32-bit digital-shift word per dimension, drawn in dimension
         order so the scramble is a pure function of the stream state. *)
      Array.init dims (fun _ ->
          Int64.to_int
            (Int64.logand (Rng.next_int64 rng) 0xFFFFFFFFL))
  in
  { dims; v = direction_numbers dims; shift }

let dims t = t.dims

let point_into t n out =
  if n < 0 then invalid_arg "Sobol.point_into: negative index";
  if Array.length out < t.dims then
    invalid_arg "Sobol.point_into: output array too short";
  let gray = n lxor (n lsr 1) in
  for d = 0 to t.dims - 1 do
    let vd = t.v.(d) in
    let x = ref t.shift.(d) in
    let g = ref gray in
    let k = ref 0 in
    while !g <> 0 do
      if !g land 1 = 1 then x := !x lxor vd.(!k);
      g := !g lsr 1;
      incr k
    done;
    (* Midpoint convention (x + 1/2) / 2^32 keeps the value strictly
       inside (0, 1), so it survives an inverse-CDF transform. *)
    out.(d) <- float_of_int ((!x lsl 1) lor 1) *. 0x1p-33
  done

let point t n =
  let out = Array.make t.dims 0.0 in
  point_into t n out;
  out
