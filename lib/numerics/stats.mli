(** Descriptive statistics over float sequences.

    The primitives operate on [float array] without intermediate
    allocation; the historical [float list] API is kept as thin wrappers
    (identical numeric results — same accumulation order, same order
    statistics). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  min_value : float;
  max_value : float;
}

val summarize_array : float array -> summary
(** Single pass for min/max, compensated two-pass mean/stddev.
    @raise Invalid_argument on the empty array. *)

val mean_array : float array -> float
val stddev_array : float array -> float

val percentile_array : float array -> float -> float
(** [percentile_array xs p] with [p] in [\[0, 100\]]; linear interpolation
    between order statistics, located by in-place quickselect (expected
    O(n)) instead of a full sort. {b Reorders [xs]} — pass a scratch copy
    if the original order matters. *)

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float
val stddev : float list -> float

val percentile : float list -> float -> float
(** List wrapper over {!percentile_array} (copies, so the list is safe). *)

val relative_error : reference:float -> float -> float
(** [(value - reference) / reference]; signed, as in the paper's "Eq.13 Err"
    columns. @raise Invalid_argument when [reference = 0]. *)

val max_abs_relative_error : (float * float) list -> float
(** Largest |relative error| over (reference, value) pairs. *)

val normal_quantile : float -> float
(** Inverse of the standard normal CDF (Acklam's rational approximation,
    relative error < 1.2e-9). Turns low-discrepancy uniforms into Gaussian
    draws while preserving their equidistribution — the transform behind
    the [`Sobol] Monte-Carlo sampler. @raise Invalid_argument unless the
    argument lies strictly inside (0, 1). *)
