(* Outward-rounded interval arithmetic. OCaml gives no access to the FPU
   rounding mode, so every operation widens its round-to-nearest result by
   one ulp per side (two for the libm transcendentals, whose last-ulp
   correctness is not guaranteed): the returned interval always encloses
   the exact real result. Endpoints may be infinite (an unbounded
   enclosure carries no information but stays sound); NaN endpoints are
   rejected at construction. *)

type t = { lo : float; hi : float }

exception Empty

let down x = Float.pred x
let up x = Float.succ x

(* libm results are within 1 ulp of exact on every platform this repo
   targets; widening by two keeps the enclosure sound with margin. *)
let down2 x = Float.pred (Float.pred x)
let up2 x = Float.succ (Float.succ x)

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN endpoint";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo = Finite.canonical_zero lo; hi = Finite.canonical_zero hi }

let of_float x =
  if Float.is_nan x then invalid_arg "Interval.of_float: NaN";
  let x = Finite.canonical_zero x in
  { lo = x; hi = x }

let entire = { lo = Float.neg_infinity; hi = Float.infinity }
let zero = { lo = 0.0; hi = 0.0 }
let one = { lo = 1.0; hi = 1.0 }

let width t = up (t.hi -. t.lo)
let mid t = if t.lo = Float.neg_infinity && t.hi = Float.infinity then 0.0
            else 0.5 *. (t.lo +. t.hi)
let rad t = Float.max (up (mid t -. t.lo)) (up (t.hi -. mid t))
let mag t = Float.max (Float.abs t.lo) (Float.abs t.hi)
let contains t x = t.lo <= x && x <= t.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let is_finite t = Float.is_finite t.lo && Float.is_finite t.hi

let finite_violation t =
  match Finite.violation t.lo with
  | Some v -> Some ("lo", v)
  | None -> (
    match Finite.violation t.hi with
    | Some v -> Some ("hi", v)
    | None -> None)

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let meet_exn a b =
  match intersect a b with Some t -> t | None -> raise Empty

let neg t = { lo = -.t.hi; hi = -.t.lo }
let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let sub a b = add a (neg b)

let add_scalar t x = add t (of_float x)

(* Endpoint products: the IEEE convention 0 * inf = NaN is wrong for
   interval endpoints, where a zero endpoint annihilates. *)
let mul_ep a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let mul a b =
  let p1 = mul_ep a.lo b.lo and p2 = mul_ep a.lo b.hi in
  let p3 = mul_ep a.hi b.lo and p4 = mul_ep a.hi b.hi in
  {
    lo = down (Float.min (Float.min p1 p2) (Float.min p3 p4));
    hi = up (Float.max (Float.max p1 p2) (Float.max p3 p4));
  }

let scale k t =
  if Float.is_nan k then invalid_arg "Interval.scale: NaN";
  mul (of_float k) t

let sqr t =
  let a = Float.abs t.lo and b = Float.abs t.hi in
  let m = Float.max a b in
  let lo = if contains t 0.0 then 0.0 else Float.min a b in
  { lo = Float.max 0.0 (down (lo *. lo)); hi = up (m *. m) }

(* Division. Endpoints are canonical (+0.0 only, enforced by [make] /
   [of_float] and preserved by the arithmetic above through
   [Finite.canonical_zero] on construction), so a denominator touching
   zero does it with the positive zero and the quotient endpoints below
   keep their signs. Zero-width boxes divide like scalars; a denominator
   containing zero in its interior yields the whole line, one touching
   zero at an end yields a half-line (extended interval division). *)
let div_ep a b = if a = 0.0 && b <> 0.0 then 0.0 else a /. b

let div a b =
  if b.lo = 0.0 && b.hi = 0.0 then
    invalid_arg "Interval.div: division by the zero-width box [0, 0]"
  else if b.lo > 0.0 || b.hi < 0.0 then
    (* Sign-definite denominator: min/max over the four quotients. *)
    let q1 = div_ep a.lo b.lo and q2 = div_ep a.lo b.hi in
    let q3 = div_ep a.hi b.lo and q4 = div_ep a.hi b.hi in
    {
      lo = down (Float.min (Float.min q1 q2) (Float.min q3 q4));
      hi = up (Float.max (Float.max q1 q2) (Float.max q3 q4));
    }
  else if a.lo <= 0.0 && a.hi >= 0.0 then
    (* 0/0 is possible somewhere in the box: no information. *)
    entire
  else if b.lo = 0.0 then
    (* Denominator in [0, b.hi]: one-signed numerator escapes to +/-inf
       on the zero side. *)
    if a.lo > 0.0 then { lo = down (a.lo /. b.hi); hi = Float.infinity }
    else { lo = Float.neg_infinity; hi = up (a.hi /. b.hi) }
  else if b.hi = 0.0 then
    if a.lo > 0.0 then { lo = Float.neg_infinity; hi = up (a.lo /. b.lo) }
    else { lo = down (a.hi /. b.lo); hi = Float.infinity }
  else
    (* Zero interior to the denominator. *)
    entire

let inv t = div one t

let exp t =
  {
    (* e^x > 0 always: the one-ulp outward step below a tiny positive
       result may cross zero, clamp it back (0-width boxes at large
       negative x evaluate exp to exactly 0.0). *)
    lo = Float.max 0.0 (down2 (Float.exp t.lo));
    hi = up2 (Float.exp t.hi);
  }

let log t =
  if t.hi <= 0.0 then invalid_arg "Interval.log: non-positive interval";
  {
    lo = (if t.lo <= 0.0 then Float.neg_infinity else down2 (Float.log t.lo));
    hi = up2 (Float.log t.hi);
  }

(* x^y for x >= 0 and a scalar exponent — monotone in x for either sign
   of y. Covers the alpha-power uses: (chi' * v)^(1/alpha) with
   1/alpha in (0, 1], overdrive^alpha with alpha in [1, 2]. *)
let pow_scalar t y =
  if Float.is_nan y then invalid_arg "Interval.pow_scalar: NaN exponent";
  if t.lo < 0.0 then
    invalid_arg "Interval.pow_scalar: negative base interval";
  if y = 0.0 then one
  else if y > 0.0 then
    {
      lo = (if t.lo = 0.0 then 0.0 else Float.max 0.0 (down2 (t.lo ** y)));
      hi = up2 (t.hi ** y);
    }
  else if t.lo = 0.0 then
    { lo = Float.max 0.0 (down2 (t.hi ** y)); hi = Float.infinity }
  else { lo = Float.max 0.0 (down2 (t.hi ** y)); hi = up2 (t.lo ** y) }

let split t =
  let m = mid t in
  if not (t.lo < m && m < t.hi) then None
  else Some ({ lo = t.lo; hi = m }, { lo = m; hi = t.hi })

let to_string t = Printf.sprintf "[%.17g, %.17g]" t.lo t.hi
let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi

(* --- Affine forms ---------------------------------------------------- *)

(* x = mid + sum_i c_i * eps_i + delta, eps_i in [-1, 1], |delta| <= err.
   Shared noise symbols keep linear correlation between quantities derived
   from the same variable, which is what defeats the dependency blow-up of
   plain intervals on expressions like v - (chi' v)^(1/alpha) where v
   appears several times. Every operation inflates [err] by an outward
   bound on its own rounding, so [to_interval] is a sound enclosure. *)
module Affine = struct
  type interval = t

  type form = {
    mid : float;
    coeffs : (int * float) list; (* sorted by symbol id, no zeros *)
    err : float; (* >= 0 *)
  }

  (* One-ulp-grade rounding slop of a computed double: 1e-15 > 2^-52
     relative, the absolute floor covers subnormals. *)
  let slop v = (Float.abs v *. 1e-15) +. 1e-290

  let const x =
    if Float.is_nan x then invalid_arg "Affine.const: NaN";
    { mid = x; coeffs = []; err = 0.0 }

  let of_interval ~id (iv : interval) =
    if not (is_finite iv) then
      invalid_arg "Affine.of_interval: infinite interval";
    let mid = mid iv in
    let r = Float.max (up (mid -. iv.lo)) (up (iv.hi -. mid)) in
    { mid; coeffs = [ (id, r) ]; err = 0.0 }

  let radius t =
    List.fold_left
      (fun acc (_, c) -> up (acc +. Float.abs c))
      t.err t.coeffs

  let to_interval t =
    let r = radius t in
    { lo = down (t.mid -. r); hi = up (t.mid +. r) }

  let neg t =
    { mid = -.t.mid; coeffs = List.map (fun (i, c) -> (i, -.c)) t.coeffs;
      err = t.err }

  let merge_coeffs f a b =
    let rec go acc a b =
      match (a, b) with
      | [], [] -> List.rev acc
      | (i, c) :: ta, [] | [], (i, c) :: ta ->
        go ((i, f 0.0 c) :: acc) ta []
      | (ia, ca) :: ta, (ib, cb) :: tb ->
        if ia = ib then go ((ia, f ca cb) :: acc) ta tb
        else if ia < ib then go ((ia, f ca 0.0) :: acc) ta b
        else go ((ib, f 0.0 cb) :: acc) a tb
    in
    go [] a b

  let prune_and_slop coeffs err0 =
    List.fold_left
      (fun (cs, err) (i, c) ->
        if c = 0.0 then (cs, err) else ((i, c) :: cs, up (err +. slop c)))
      ([], err0) (List.rev coeffs)

  let add a b =
    let mid = a.mid +. b.mid in
    let coeffs = merge_coeffs ( +. ) a.coeffs b.coeffs in
    let coeffs, err =
      prune_and_slop coeffs (up (up (a.err +. b.err) +. slop mid))
    in
    { mid; coeffs; err }

  let sub a b = add a (neg b)
  let add_const x t = add (const x) t

  let scale k t =
    if Float.is_nan k then invalid_arg "Affine.scale: NaN";
    let mid = k *. t.mid in
    let coeffs = List.map (fun (i, c) -> (i, k *. c)) t.coeffs in
    let coeffs, err =
      prune_and_slop coeffs (up ((Float.abs k *. t.err) +. slop mid))
    in
    { mid; coeffs; err }

  (* General product: linear part exact in the noise symbols, the
     cross-noise term bounded by the product of the two radii. *)
  let mul a b =
    let ra = radius a and rb = radius b in
    let mid = a.mid *. b.mid in
    let coeffs =
      merge_coeffs ( +. )
        (List.map (fun (i, c) -> (i, b.mid *. c)) a.coeffs)
        (List.map (fun (i, c) -> (i, a.mid *. c)) b.coeffs)
    in
    let err0 =
      up
        (up ((Float.abs a.mid *. b.err) +. (Float.abs b.mid *. a.err))
        +. up ((ra *. rb) +. slop mid))
    in
    let coeffs, err = prune_and_slop coeffs err0 in
    { mid; coeffs; err }

  let sqr t = mul t t

  (* Multiplication by an interval coefficient: s * x with s = [s] known
     only as an enclosure. Centre on mid(s); the slope uncertainty
     rad(s) scales the full magnitude of x into the error term. *)
  let mul_interval (s : interval) t =
    if not (is_finite s) then
      invalid_arg "Affine.mul_interval: infinite coefficient";
    let sm = mid s and sr = rad s in
    let scaled = scale sm t in
    let xmag = mag (to_interval t) in
    { scaled with err = up (scaled.err +. up ((sr *. xmag) +. slop xmag)) }

  (* Mean-value form of a differentiable univariate g at [x]:
       g(x) = g(x0) + g'(xi) * (x - x0)   for some xi between x0 and x,
     so with [fmid] enclosing g(x0) and [slope] enclosing g' over the
     whole range of [x], [fmid + slope * (x - x0)] encloses g(x) while
     keeping the linear correlation with x. Tight whenever the derivative
     varies little over the box — exactly the regime where plain interval
     evaluation of v - g(v) blows up. *)
  let mean_value ~(x0 : float) ~(fmid : interval) ~(slope : interval) t =
    if Float.is_nan x0 then invalid_arg "Affine.mean_value: NaN x0";
    if not (is_finite fmid && is_finite slope) then
      invalid_arg "Affine.mean_value: infinite enclosure";
    let dx = add_const (-.x0) t in
    let lin = mul_interval slope dx in
    let centered = add_const (mid fmid) lin in
    { centered with err = up (centered.err +. rad fmid) }
end
