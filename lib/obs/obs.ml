(* Per-domain recording, merged at report time.

   Hot-path contract: while disabled, every public recording entry point
   returns after one Atomic.get and one conditional jump. Everything even
   slightly costly (DLS lookup, hashtable access, timestamping) happens
   behind that branch. *)

let on = Atomic.make false
let set_enabled v = Atomic.set on v
let enabled () = Atomic.get on
let now_ns () = Unix.gettimeofday () *. 1e9

(* Completed span: [path_rev] is leaf-first (the leaf is the span's own
   name); reversing it yields the root-first aggregation path. *)
type span = {
  path_rev : string list;
  s_cat : string;
  attrs : (string * string) list;
  domain : int;
  start_ns : float;
  dur_ns : float;
}

type hcell = {
  mutable h_n : int;
  mutable h_s : float;
  mutable h_mn : float;
  mutable h_mx : float;
}

type local = {
  dom : int;
  mutable spans : span list; (* most recent first *)
  lcounters : (string, int ref) Hashtbl.t;
  lhists : (string, hcell) Hashtbl.t;
  mutable stack_rev : string list;
}

(* Registry of every domain-local buffer ever created. Mutated only on the
   first recording in a new domain and by [reset]; recording itself is
   lock-free. *)
let registry_mutex = Mutex.create ()
let registry : local list ref = ref []
let epoch_ns = ref 0.0

(* Metric name -> category, so reports can filter without each local
   duplicating the metadata. Registered once per handle at module init. *)
let cats : (string, string) Hashtbl.t = Hashtbl.create 64

let register_cat name cat =
  Mutex.lock registry_mutex;
  if not (Hashtbl.mem cats name) then Hashtbl.add cats name cat;
  Mutex.unlock registry_mutex

let cat_of name = match Hashtbl.find_opt cats name with Some c -> c | None -> ""

let key : local Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let l =
        {
          dom = (Domain.self () :> int);
          spans = [];
          lcounters = Hashtbl.create 32;
          lhists = Hashtbl.create 8;
          stack_rev = [];
        }
      in
      Mutex.lock registry_mutex;
      registry := l :: !registry;
      Mutex.unlock registry_mutex;
      l)

let local () = Domain.DLS.get key

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun l ->
      l.spans <- [];
      Hashtbl.reset l.lcounters;
      Hashtbl.reset l.lhists)
    !registry;
  epoch_ns := now_ns ();
  Mutex.unlock registry_mutex

module Span = struct
  type ctx = string list (* leaf-first, like [stack_rev] *)

  let empty : ctx = []

  let record l ~path_rev ~cat ~attrs ~t0 =
    l.spans <-
      {
        path_rev;
        s_cat = cat;
        attrs;
        domain = l.dom;
        start_ns = t0;
        dur_ns = now_ns () -. t0;
      }
      :: l.spans

  let with_ ?(cat = "") ?(attrs = []) ~name f =
    if not (Atomic.get on) then f ()
    else begin
      let l = local () in
      let saved = l.stack_rev in
      let path_rev = name :: saved in
      l.stack_rev <- path_rev;
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          record l ~path_rev ~cat ~attrs ~t0;
          l.stack_rev <- saved)
        f
    end

  let with_detached ?(cat = "") ?(attrs = []) ~name f =
    if not (Atomic.get on) then f ()
    else begin
      let l = local () in
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () -> record l ~path_rev:[ name ] ~cat ~attrs ~t0)
        f
    end

  let current () = if not (Atomic.get on) then [] else (local ()).stack_rev

  let with_ctx ctx f =
    if not (Atomic.get on) then f ()
    else begin
      let l = local () in
      let saved = l.stack_rev in
      l.stack_rev <- ctx;
      Fun.protect ~finally:(fun () -> l.stack_rev <- saved) f
    end
end

module Counter = struct
  type t = string

  let make ?(cat = "") name =
    register_cat name cat;
    name

  let add name n =
    if Atomic.get on then begin
      let l = local () in
      match Hashtbl.find_opt l.lcounters name with
      | Some r -> r := !r + n
      | None -> Hashtbl.add l.lcounters name (ref n)
    end

  let incr name = add name 1
end

module Hist = struct
  type t = string

  let make ?(cat = "") name =
    register_cat name cat;
    name

  let observe name v =
    if Atomic.get on then begin
      let l = local () in
      match Hashtbl.find_opt l.lhists name with
      | Some h ->
        h.h_n <- h.h_n + 1;
        h.h_s <- h.h_s +. v;
        if v < h.h_mn then h.h_mn <- v;
        if v > h.h_mx then h.h_mx <- v
      | None -> Hashtbl.add l.lhists name { h_n = 1; h_s = v; h_mn = v; h_mx = v }
    end
end

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

let locals () =
  Mutex.lock registry_mutex;
  let ls = !registry in
  Mutex.unlock registry_mutex;
  ls

let hidden_when_normalized cat = cat = "sched" || cat = "cache"

let counters ?(normalize = false) () =
  let merged : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l ->
      Hashtbl.iter
        (fun name r ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt merged name) in
          Hashtbl.replace merged name (prev + !r))
        l.lcounters)
    (locals ());
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged []
  |> List.filter (fun (name, v) ->
         v <> 0 && not (normalize && hidden_when_normalized (cat_of name)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters_prefixed ?normalize prefix =
  List.filter
    (fun (name, _) -> String.starts_with ~prefix name)
    (counters ?normalize ())

let counter_value name =
  List.fold_left
    (fun acc l ->
      match Hashtbl.find_opt l.lcounters name with
      | Some r -> acc + !r
      | None -> acc)
    0 (locals ())

let histograms ?(normalize = false) () =
  let merged : (string, hist_summary) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.iter
        (fun name (h : hcell) ->
          let s =
            match Hashtbl.find_opt merged name with
            | None ->
              { h_count = h.h_n; h_sum = h.h_s; h_min = h.h_mn; h_max = h.h_mx }
            | Some s ->
              {
                h_count = s.h_count + h.h_n;
                h_sum = s.h_sum +. h.h_s;
                h_min = Float.min s.h_min h.h_mn;
                h_max = Float.max s.h_max h.h_mx;
              }
          in
          Hashtbl.replace merged name s)
        l.lhists)
    (locals ());
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged []
  |> List.filter (fun (name, s) ->
         s.h_count > 0 && not (normalize && hidden_when_normalized (cat_of name)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Report = struct
  let all_spans () = List.concat_map (fun l -> l.spans) (locals ())

  (* Aggregation node of the profile tree, keyed by root-first name path. *)
  type node = {
    name : string;
    mutable count : int;
    mutable total : float;
    children : (string, node) Hashtbl.t;
  }

  let new_node name = { name; count = 0; total = 0.0; children = Hashtbl.create 4 }

  let build_tree ~normalize spans =
    let root = new_node "" in
    List.iter
      (fun s ->
        if not (normalize && hidden_when_normalized s.s_cat) then begin
          let node =
            List.fold_left
              (fun n name ->
                match Hashtbl.find_opt n.children name with
                | Some c -> c
                | None ->
                  let c = new_node name in
                  Hashtbl.add n.children name c;
                  c)
              root
              (List.rev s.path_rev)
          in
          node.count <- node.count + 1;
          node.total <- node.total +. s.dur_ns
        end)
      spans;
    root

  let pretty_ns ns =
    if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
    else Printf.sprintf "%.0fns" ns

  let children_sorted ~normalize node =
    let cs = Hashtbl.fold (fun _ c acc -> c :: acc) node.children [] in
    if normalize then
      List.sort (fun a b -> String.compare a.name b.name) cs
    else
      List.sort
        (fun a b ->
          match Float.compare b.total a.total with
          | 0 -> String.compare a.name b.name
          | c -> c)
        cs

  let render_tree ~normalize buffer root =
    let rec walk depth node =
      let label = String.make (2 * depth) ' ' ^ node.name in
      let child_total =
        Hashtbl.fold (fun _ c acc -> acc +. c.total) node.children 0.0
      in
      if normalize then
        Buffer.add_string buffer
          (Printf.sprintf "%-52s %8d\n" label node.count)
      else begin
        let self = Float.max 0.0 (node.total -. child_total) in
        Buffer.add_string buffer
          (Printf.sprintf "%-52s %8d %11s %11s\n" label node.count
             (pretty_ns node.total) (pretty_ns self))
      end;
      List.iter (walk (depth + 1)) (children_sorted ~normalize node)
    in
    List.iter (walk 0) (children_sorted ~normalize root)

  let profile ?(normalize = false) () =
    let buffer = Buffer.create 1024 in
    let root = build_tree ~normalize (all_spans ()) in
    if normalize then
      Buffer.add_string buffer (Printf.sprintf "%-52s %8s\n" "span" "count")
    else
      Buffer.add_string buffer
        (Printf.sprintf "%-52s %8s %11s %11s\n" "span" "count" "total" "self");
    render_tree ~normalize buffer root;
    (match counters ~normalize () with
    | [] -> ()
    | cs ->
      Buffer.add_string buffer "\ncounters:\n";
      List.iter
        (fun (name, v) ->
          Buffer.add_string buffer (Printf.sprintf "  %-50s %12d\n" name v))
        cs);
    (match histograms ~normalize () with
    | [] -> ()
    | hs ->
      Buffer.add_string buffer "\nhistograms (count / mean / min / max):\n";
      List.iter
        (fun (name, s) ->
          Buffer.add_string buffer
            (Printf.sprintf "  %-38s %8d %11s %11s %11s\n" name s.h_count
               (pretty_ns (s.h_sum /. float_of_int s.h_count))
               (pretty_ns s.h_min) (pretty_ns s.h_max)))
        hs);
    Buffer.contents buffer

  let root_total_ns () =
    List.fold_left
      (fun acc s ->
        match s.path_rev with
        | [ _ ] when s.s_cat <> "sched" -> acc +. s.dur_ns
        | _ -> acc)
      0.0 (all_spans ())

  (* Chrome trace_event JSON. *)

  let json_escape s =
    let buffer = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buffer "\\\""
        | '\\' -> Buffer.add_string buffer "\\\\"
        | '\n' -> Buffer.add_string buffer "\\n"
        | '\t' -> Buffer.add_string buffer "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buffer c)
      s;
    Buffer.contents buffer

  let chrome_trace () =
    let spans =
      List.sort
        (fun a b ->
          match Float.compare a.start_ns b.start_ns with
          | 0 -> compare (a.domain, a.path_rev) (b.domain, b.path_rev)
          | c -> c)
        (all_spans ())
    in
    let epoch = !epoch_ns in
    let buffer = Buffer.create 4096 in
    Buffer.add_string buffer "{\"traceEvents\":[";
    let first = ref true in
    let emit s =
      if !first then first := false else Buffer.add_char buffer ',';
      Buffer.add_string buffer "\n";
      Buffer.add_string buffer s
    in
    List.iter
      (fun s ->
        let name = match s.path_rev with n :: _ -> n | [] -> "?" in
        let args =
          String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
               s.attrs)
        in
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
             (json_escape name)
             (json_escape (if s.s_cat = "" then "span" else s.s_cat))
             ((s.start_ns -. epoch) /. 1e3)
             (s.dur_ns /. 1e3) s.domain
             (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args)))
      spans;
    let end_ts = ref 0.0 in
    List.iter
      (fun s ->
        end_ts := Float.max !end_ts ((s.start_ns -. epoch +. s.dur_ns) /. 1e3))
      spans;
    List.iter
      (fun (name, v) ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%d}}"
             (json_escape name) !end_ts v))
      (counters ());
    Buffer.add_string buffer "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buffer

  let write_chrome_trace ~path () =
    let oc = open_out path in
    output_string oc (chrome_trace ());
    close_out oc
end
