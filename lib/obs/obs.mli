(** Zero-dependency observability: spans, counters, histograms.

    The subsystem is disabled by default and is designed so that every
    instrumentation point in a hot path costs exactly one predictable
    branch while disabled (a single [Atomic.get] plus a conditional jump;
    no allocation, no locking). When enabled, events are recorded into
    {e per-domain} buffers — recording never takes a lock, so instrumented
    code running on pool workers does not serialise. Buffers merge
    deterministically at report time.

    {b Determinism.} Counter merging sums integers across domains, which is
    order-independent; span trees aggregate by {e name path}, which is
    scheduling-independent as long as span contexts are propagated across
    domain boundaries (see {!Span.current} / {!Span.with_ctx} — the pool
    does this automatically). Every span and counter carries a category:
    events in categories ["sched"] (pool scheduling) and ["cache"] (memo
    hit/miss, which can depend on warm-up order) are excluded from
    {e normalized} reports, making the normalized profile byte-identical at
    any pool size. Durations are wall-clock and therefore only appear in
    non-normalized reports.

    Recording and reporting must not overlap: call {!reset} / the report
    functions only while no instrumented work is in flight. *)

val set_enabled : bool -> unit
(** Globally switch recording on or off. Off by default. *)

val enabled : unit -> bool
(** One atomic load; this is the branch every disabled hot path pays. *)

val now_ns : unit -> float
(** Wall-clock timestamp in nanoseconds (microsecond resolution). *)

val reset : unit -> unit
(** Drop every recorded span, counter and histogram value in every domain
    and restart the trace epoch. Registered metric names survive. *)

module Span : sig
  type ctx
  (** The current stack of open span names in one domain. Capture it with
      {!current} before handing work to another domain and install it there
      with {!with_ctx}: the receiving domain's spans then aggregate under
      the same path as if they had run on the caller. *)

  val with_ : ?cat:string -> ?attrs:(string * string) list -> name:string ->
    (unit -> 'a) -> 'a
  (** [with_ ~name f] runs [f], recording a span named [name] nested under
      the enclosing spans of the current domain. The span is recorded even
      if [f] raises. Disabled cost: one branch. *)

  val with_detached : ?cat:string -> ?attrs:(string * string) list ->
    name:string -> (unit -> 'a) -> 'a
  (** Like {!with_} but the span is recorded at the root and does {e not}
      appear in the context of spans opened inside [f] — used for
      scheduling artefacts (pool tasks) that must not perturb the logical
      tree. *)

  val current : unit -> ctx
  (** The calling domain's open-span context ([empty] while disabled). *)

  val empty : ctx

  val with_ctx : ctx -> (unit -> 'a) -> 'a
  (** Run a thunk under a context captured on another domain. *)
end

module Counter : sig
  type t

  val make : ?cat:string -> string -> t
  (** Declare a monotonic counter. Handles are cheap and are meant to be
      created once at module initialisation. Re-declaring a name returns a
      handle to the same counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
end

module Hist : sig
  type t

  val make : ?cat:string -> string -> t
  (** Declare a histogram (count / sum / min / max summary). *)

  val observe : t -> float -> unit
end

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

val counters : ?normalize:bool -> unit -> (string * int) list
(** Merged counter values, sorted by name; zero-valued counters are
    omitted. [normalize] (default false) drops the ["sched"] and ["cache"]
    categories. *)

val counters_prefixed :
  ?normalize:bool -> string -> (string * int) list
(** {!counters} restricted to names starting with the prefix — the
    explorer's [dse.]/[pareto.] counter fingerprint blocks. *)

val counter_value : string -> int
(** Merged value of one counter across every domain, 0 when the counter was
    never incremented (or does not exist). Same no-overlap caveat as
    {!counters}: read only while no instrumented work is in flight. *)

val histograms : ?normalize:bool -> unit -> (string * hist_summary) list

module Report : sig
  val profile : ?normalize:bool -> unit -> string
  (** Human-readable profile: the span tree (per-path call counts, total
      and self wall time) followed by the counter and histogram catalogs.
      With [~normalize:true] durations are masked, children sort by name,
      and scheduling/cache categories are dropped — the result is
      byte-identical for the same logical work at any pool size. Note that
      with parallel execution a node's children can overlap in wall time,
      so a parent's self time is clamped at zero. *)

  val chrome_trace : unit -> string
  (** The recorded spans as Chrome [trace_event] JSON (one complete
      ["X"-phase] event per span, [tid] = domain id, timestamps relative to
      the last {!reset}), followed by one ["C"-phase] event per counter.
      Load in [chrome://tracing] or Perfetto. *)

  val write_chrome_trace : path:string -> unit -> unit

  val root_total_ns : unit -> float
  (** Sum of root-span wall time (scheduling spans excluded) — the number
      to reconcile against an externally measured wall clock. *)
end
