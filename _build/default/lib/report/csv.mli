(** Minimal CSV writer (RFC-4180 quoting) for exporting experiment data. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val line : string list -> string

val render : header:string list -> rows:string list list -> string

val write_file : path:string -> header:string list -> rows:string list list -> unit
