lib/report/experiments.ml: Array Ascii_plot Buffer Device List Multipliers Power_core Printf Spice Table
