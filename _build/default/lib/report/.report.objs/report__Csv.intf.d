lib/report/csv.mli:
