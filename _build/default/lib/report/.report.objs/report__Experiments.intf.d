lib/report/experiments.mli: Device Multipliers Power_core
