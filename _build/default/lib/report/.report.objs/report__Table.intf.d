lib/report/table.mli:
