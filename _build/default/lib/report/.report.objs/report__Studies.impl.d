lib/report/studies.ml: Ascii_plot Device Float List Multipliers Power_core Printf Table
