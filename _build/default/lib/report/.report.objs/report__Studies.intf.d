lib/report/studies.mli: Device Power_core
