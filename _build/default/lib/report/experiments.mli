(** One driver per paper artifact (see DESIGN.md §4): each function computes
    the data, each [render_*] produces the human-readable reproduction. *)

(** {1 Table 1 — thirteen multipliers, LL technology} *)

type table1_row = {
  label : string;
  vdd : float;
  vth : float;
  pdyn : float;
  pstat : float;
  ptot : float;  (** Numerical optimum, W. *)
  eq13 : float;  (** Closed form, W. *)
  err_pct : float;  (** (eq13 − ptot)/ptot, %. *)
  paper : Power_core.Paper_data.table1_row;
}

val table1 : unit -> table1_row list
(** Calibrated mode: parameters inverted from the published rows, then the
    numerical optimiser and Eq. 13 re-run independently. *)

val render_table1 : table1_row list -> string

(** {1 Tables 3 and 4 — Wallace family on ULL / HS} *)

type wallace_row = {
  w_label : string;
  w_vdd : float;
  w_vth : float;
  w_ptot : float;
  w_eq13 : float;
  w_err_pct : float;
  w_paper : Power_core.Paper_data.wallace_row;
}

type wallace_table = {
  tech : Device.Technology.t;
  cap_scale : float;  (** Fitted per-technology capacitance multiplier. *)
  rows : wallace_row list;
}

val table_wallace : [ `Ull | `Hs ] -> wallace_table
val render_wallace : wallace_table -> string

(** {1 Figure 1 — Ptot(Vdd) for several activities} *)

type figure1_curve = {
  activity : float;
  points : Power_core.Numerical_opt.point list;
  optimum : Power_core.Numerical_opt.point;
  dyn_static_ratio : float;
}

val figure1 : ?activities:float list -> unit -> figure1_curve list
(** RCA parameters (calibrated), LL technology; default activities
    1.0, 0.5056 (the RCA's own), 0.1, 0.01. *)

val render_figure1 : figure1_curve list -> string

(** {1 Figure 2 — Vdd^(1/α) linearisation} *)

val figure2 : ?alpha:float -> unit -> Device.Linearization.t
(** Default α = 1.5, as in the published figure. *)

val render_figure2 : Device.Linearization.t -> string

(** {1 Table 2 — technology re-characterisation} *)

type table2_row = {
  flavor : string;
  published_alpha : float;
  fitted_alpha : float;
  fitted_zeta : float;
  fit_rms : float;
}

val table2 : unit -> table2_row list
(** Re-derive α by ring-oscillator simulation + fitting per flavor — the
    paper's ELDO flow on our synthetic device. *)

val render_table2 : table2_row list -> string

(** {1 Figures 3 and 4 — pipeline cut sketches} *)

val pipeline_sketch : bits:int -> stages:int -> cut:Multipliers.Rca.cut -> string
(** Stage digit per array cell — the register-bank placement picture. *)

(** {1 From-scratch reproduction} *)

val scratch :
  ?tech:Device.Technology.t -> ?cycles:int -> unit ->
  Power_core.Scratch_pipeline.row list

val render_scratch : Power_core.Scratch_pipeline.row list -> string
