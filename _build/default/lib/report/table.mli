(** Plain-text table rendering for experiment output. *)

type align = Left | Right

type column = {
  header : string;
  align : align;
}

val column : ?align:align -> string -> column
(** Right-aligned by default (most cells are numbers). *)

val render : columns:column list -> rows:string list list -> string
(** Box-drawing-free ASCII table with a header rule. Rows shorter than the
    column list are padded with empty cells. *)

val fmt_f : ?decimals:int -> float -> string
(** Fixed-point float formatting (default 3 decimals). *)

val fmt_uw : float -> string
(** Watts rendered as µW with 2 decimals — the paper's power unit. *)

val fmt_pct : float -> string
(** Percentage with 2 decimals and sign. *)
