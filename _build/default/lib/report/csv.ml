let needs_quotes s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quotes s then begin
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\""
        else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else s

let line fields = String.concat "," (List.map escape fields)

let render ~header ~rows =
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let write_file ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header ~rows))
