type align = Left | Right

type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else begin
    let fill = String.make (width - len) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ~columns ~rows =
  let ncols = List.length columns in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col.header)
          rows)
      columns
  in
  let line cells =
    String.concat "  "
      (List.map2
         (fun (col, width) cell -> pad col.align width cell)
         (List.combine columns widths)
         cells)
  in
  let header = line (List.map (fun c -> c.header) columns) in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map line rows) ^ "\n"

let fmt_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let fmt_uw watts = Printf.sprintf "%.2f" (watts *. 1e6)
let fmt_pct x = Printf.sprintf "%+.2f" x
