(** Ablations and extensions of the paper's analysis — each probes one
    modelling choice DESIGN.md calls out.

    - DIBL: the paper notes Eq. 13 no longer contains η; {!dibl_sweep}
      demonstrates it constructively — the optimum (in effective-threshold
      space) is invariant, only the zero-bias Vth0 the device must provide
      shifts with η.
    - Glitch accounting: {!glitch_ablation} recomputes the optimum with
      glitch transitions removed from the activity, quantifying how much of
      each architecture's optimal power is glitch power (the effect that
      decides horizontal vs diagonal pipelining).
    - Linearisation range: {!linearization_range_sweep} scores the Eq. 13
      error as a function of the Eq. 7 fitting range, justifying the
      paper's 0.3–1.0 V choice.
    - Frequency: {!frequency_sweep} extends Section 5 along the throughput
      axis, exposing the technology crossovers. *)

type dibl_row = {
  eta : float;
  vth_effective : float;  (** Optimal effective threshold, V. *)
  vth0_required : float;  (** Zero-bias threshold the device must offer. *)
  ptot : float;  (** Optimal total power, W. *)
}

val dibl_sweep :
  ?etas:float list -> Power_law.problem -> dibl_row list
(** Default η ∈ {0, 0.04, 0.08, 0.12, 0.16}. [ptot] and [vth_effective]
    are η-invariant by construction; the table shows it. *)

type glitch_row = {
  label : string;
  activity_full : float;
  activity_no_glitch : float;
  ptot_full : float;
  ptot_no_glitch : float;
  glitch_power_pct : float;  (** Share of the optimum caused by glitches. *)
}

val glitch_ablation :
  ?cycles:int -> Device.Technology.t -> f:float -> labels:string list ->
  glitch_row list
(** From-scratch measurement per catalog label, with and without glitch
    transitions in the activity. *)

type lin_range_row = {
  hi : float;  (** Upper end of the fitting range (lower end fixed 0.3 V). *)
  max_abs_err_pct : float;  (** Worst |Eq13 − numerical| over Table 1. *)
}

val linearization_range_sweep : ?his:float list -> unit -> lin_range_row list

type freq_point = {
  f : float;
  per_tech : (string * float option) list;
      (** Technology name → optimal Ptot (W), [None] if infeasible. *)
}

val frequency_sweep :
  ?f_lo:float -> ?f_hi:float -> ?points:int -> Arch_params.t -> freq_point list
(** Log-spaced sweep (default 1–500 MHz, 13 points) over the three STM
    flavors, parameters adapted per flavor as in {!Tech_compare}. *)

type width_row = {
  bits : int;
  rca_ptot : float;
  wallace_ptot : float;
}

val width_scaling :
  ?widths:int list -> ?cycles:int -> Device.Technology.t -> f:float ->
  width_row list
(** From-scratch optimal power vs operand width for the two flat cores. *)
