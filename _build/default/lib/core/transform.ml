type t = {
  name : string;
  apply : Arch_params.t -> Arch_params.t;
  description : string;
}

let parallelize ?(overhead_cells = 0.06) ?(activity_overhead = 0.08) ~copies
    () =
  if copies < 2 then invalid_arg "Transform.parallelize: copies < 2";
  let k = float_of_int copies in
  {
    name = Printf.sprintf "parallelize x%d" copies;
    description =
      "replicate the datapath and multiplex operands/results across copies; \
       each copy gets k data periods (relaxed timing) at the cost of k x \
       cells plus muxing overhead";
    apply =
      (fun p ->
        Arch_params.scale
          ~n_cells:(k *. (1.0 +. overhead_cells))
          ~activity:((1.0 +. activity_overhead) /. k)
          ~ld_eff:(1.0 /. k) p);
  }

let pipeline_horizontal ?(register_fraction = 0.10) ~stages () =
  if stages < 2 then invalid_arg "Transform.pipeline_horizontal: stages < 2";
  let s = float_of_int stages in
  (* The merge row cannot be split by straight row cuts: LD shrinks with a
     fixed-cost floor (empirically ~55% at 2 stages, ~45% at 4 for the RCA
     family — Table 1: 61 -> 40 -> 28). *)
  let ld_scale = (1.0 /. s) +. (0.4 *. (1.0 -. (1.0 /. s))) in
  {
    name = Printf.sprintf "pipeline horizontal x%d" stages;
    description =
      "register banks straight across the array rows (Figure 3); glitch \
       barriers also reduce activity";
    apply =
      (fun p ->
        Arch_params.scale
          ~n_cells:(1.0 +. (register_fraction *. (s -. 1.0)))
          ~activity:(0.88 ** (s -. 1.0))
          ~ld_eff:ld_scale p);
  }

let pipeline_diagonal ?(glitch_penalty = 0.04) ~stages () =
  if stages < 2 then invalid_arg "Transform.pipeline_diagonal: stages < 2";
  let s = float_of_int stages in
  (* Diagonal cuts slice the merge ripple too: nearly ideal 1/s. *)
  let ld_scale = (1.0 /. s) +. (0.12 *. (1.0 -. (1.0 /. s))) in
  {
    name = Printf.sprintf "pipeline diagonal x%d" stages;
    description =
      "register banks along diagonals (Figure 4): shortest stages, but the \
       wider path-delay spread adds glitching";
    apply =
      (fun p ->
        Arch_params.scale
          ~n_cells:(1.0 +. (0.10 *. (s -. 1.0)))
          ~activity:((0.88 ** (s -. 1.0)) *. (1.0 +. glitch_penalty))
          ~ld_eff:ld_scale p);
  }

let sequentialize ~cycles =
  if cycles < 2 then invalid_arg "Transform.sequentialize: cycles < 2";
  let m = float_of_int cycles in
  {
    name = Printf.sprintf "sequentialize /%d" cycles;
    description =
      "fold the datapath into an add-shift loop: few cells, but activity \
       and effective logical depth measured against the data clock are \
       multiplied by the cycle count";
    apply =
      (fun p ->
        Arch_params.scale
          ~n_cells:(2.2 /. m)  (* registers/control keep a floor *)
          ~activity:(0.36 *. m)
          ~ld_eff:(0.23 *. m) p);
  }

let apply_and_evaluate tech ~f params t =
  let transformed = t.apply params in
  let problem = Power_law.make tech transformed ~f in
  (transformed, Closed_form.evaluate problem)

let predicted_ratio tech ~f params t =
  let _, transformed = apply_and_evaluate tech ~f params t in
  let base = Closed_form.evaluate (Power_law.make tech params ~f) in
  transformed.ptot /. base.ptot
