let energy_per_op (problem : Power_law.problem) =
  (Numerical_opt.optimum problem).Power_law.total /. problem.f

type sweep_point = {
  f : float;
  energy : float;
  ptot : float;
  vdd : float;
  vth : float;
}

let sweep ?(f_lo = 0.1e6) ?(f_hi = 500e6) ?(points = 25) problem =
  if points < 2 then invalid_arg "Energy.sweep: points < 2";
  let step = (Float.log f_hi -. Float.log f_lo) /. float_of_int (points - 1) in
  List.init points (fun i ->
      let f = Float.exp (Float.log f_lo +. (float_of_int i *. step)) in
      let p = Power_law.at_frequency problem ~f in
      let opt = Numerical_opt.optimum p in
      {
        f;
        energy = opt.Power_law.total /. f;
        ptot = opt.Power_law.total;
        vdd = opt.Power_law.vdd;
        vth = opt.Power_law.vth;
      })

type mep = {
  f_mep : float;
  energy_mep : float;
  vdd_mep : float;
  overhead_at : float -> float;
}

let minimum_energy_point ?(f_lo = 0.1e6) ?(f_hi = 500e6) problem =
  let energy_at_log lf =
    let f = Float.exp lf in
    energy_per_op (Power_law.at_frequency problem ~f)
  in
  let r =
    Numerics.Minimize.grid_then_golden ~samples:48 ~tol:1e-6 ~f:energy_at_log
      (Float.log f_lo) (Float.log f_hi)
  in
  let f_mep = Float.exp r.x in
  let at_mep = Numerical_opt.optimum (Power_law.at_frequency problem ~f:f_mep) in
  let energy_mep = at_mep.Power_law.total /. f_mep in
  {
    f_mep;
    energy_mep;
    vdd_mep = at_mep.Power_law.vdd;
    overhead_at =
      (fun f -> energy_per_op (Power_law.at_frequency problem ~f) /. energy_mep);
  }
