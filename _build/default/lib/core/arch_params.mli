(** Architectural parameters of a circuit as the power model sees it —
    the per-row quantities of Table 1. *)

type t = {
  label : string;
  n_cells : float;  (** N — number of cells. *)
  activity : float;  (** a — switching cells per data cycle / N (glitches
      included; > 1 possible for sequential designs). *)
  avg_cap : float;  (** C — average switched capacitance per cell, F. *)
  io_cell : float;  (** Average off-current per cell at Vgs = Vth, A
      (the leakage "Io" of Eqs. 1 and 13). *)
  ld_eff : float;  (** LDeff — effective logical depth in inverter-delay
      units, measured against the data clock. *)
  area : float;  (** µm², informational. *)
}

val of_spec :
  ?seed:int ->
  ?cycles:int ->
  ?wire_caps:bool ->
  Device.Technology.t ->
  Multipliers.Spec.t ->
  t
(** Extract parameters from a generated multiplier: N / area / average
    capacitance and leakage from the netlist statistics, activity from an
    event-driven simulation with random stimulus, LDeff from static timing
    analysis. [wire_caps] (default true) folds placement-estimated wiring
    into C ({!Netlist.Placement}). This is the paper's "synthesis +
    annotated simulation" flow, rebuilt. *)

val scale :
  ?n_cells:float -> ?activity:float -> ?avg_cap:float -> ?io_cell:float ->
  ?ld_eff:float -> t -> t
(** Multiply selected fields — the vocabulary used by
    {!Transform} to express architecture transformations. *)

val pp : Format.formatter -> t -> unit
