(** Full numerical optimisation of the working point — the reference against
    which the closed form's < 3 % error claim is checked (Section 3), and
    the machinery behind Figure 1. *)

type point = Power_law.breakdown

val ptot_on_constraint : Power_law.problem -> float -> float
(** Total power at a supply, threshold set by the timing constraint.
    Returns [infinity] for supplies whose implied threshold is absurd
    (vdd ≤ 0). *)

val optimum :
  ?vdd_lo:float -> ?vdd_hi:float -> ?samples:int ->
  Power_law.problem -> point
(** One-dimensional search over Vdd on the constraint locus (grid scan to
    localise, golden section to refine). Default search range
    0.05–3.0 V. *)

val optimum_grid2 :
  ?vdd_range:float * float ->
  ?vth_range:float * float ->
  ?samples:int ->
  Power_law.problem -> point
(** Brute-force reference: minimise over all feasible (Vdd, Vth) couples on
    a dense grid (Vth free, feasibility = meets timing). Validates that the
    constrained 1-D search loses nothing — a positive slack never helps
    (the argument below Eq. 5). *)

val sweep_vdd :
  ?samples:int -> vdd_lo:float -> vdd_hi:float ->
  Power_law.problem -> point list
(** Ptot(Vdd) along the constraint locus — one Figure 1 curve. Points whose
    implied threshold is negative are included (the paper's curves extend
    there); callers may filter. *)

val dyn_static_ratio : point -> float
(** Pdyn/Pstat — the ratio annotated at each optimum in Figure 1. *)
