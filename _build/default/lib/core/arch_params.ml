type t = {
  label : string;
  n_cells : float;
  activity : float;
  avg_cap : float;
  io_cell : float;
  ld_eff : float;
  area : float;
}

let of_spec ?(seed = 7) ?(cycles = 160) ?(wire_caps = true)
    (tech : Device.Technology.t) (spec : Multipliers.Spec.t) =
  let stats = Multipliers.Spec.stats spec in
  let avg_cap =
    if wire_caps then begin
      let placement = Netlist.Placement.place spec.circuit in
      (Netlist.Placement.refine_stats spec.circuit placement)
        .avg_cap_with_wires
    end
    else stats.avg_switched_cap
  in
  let measured = Multipliers.Harness.measure_activity ~seed ~cycles spec in
  {
    label = spec.name;
    n_cells = float_of_int stats.cell_total;
    activity = measured.activity;
    avg_cap;
    io_cell = stats.avg_leak_factor *. tech.io;
    ld_eff = Multipliers.Spec.logical_depth_effective spec;
    area = stats.area;
  }

let scale ?(n_cells = 1.0) ?(activity = 1.0) ?(avg_cap = 1.0) ?(io_cell = 1.0)
    ?(ld_eff = 1.0) t =
  {
    t with
    n_cells = t.n_cells *. n_cells;
    activity = t.activity *. activity;
    avg_cap = t.avg_cap *. avg_cap;
    io_cell = t.io_cell *. io_cell;
    ld_eff = t.ld_eff *. ld_eff;
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: N=%.0f, a=%.4f, C=%.1f fF, Io_cell=%.3g A, LDeff=%.2f, area=%.0f"
    t.label t.n_cells t.activity (t.avg_cap *. 1e15) t.io_cell t.ld_eff t.area
