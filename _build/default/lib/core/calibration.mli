(** Calibration against the published rows.

    The paper derives its per-architecture inputs from a proprietary
    synthesis/simulation flow; this module inverts the published optimal
    working points back into the model's parameters so the numerical
    optimisation and the closed form can be re-run {e independently} and
    compared. The Eq.13-vs-numerical agreement (< 3 %) is a genuine property
    of the model, not an artefact of calibration: the calibration fixes the
    inputs, the two solvers still disagree or agree on their own merits. *)

val params_of_row :
  Device.Technology.t -> f:float -> Paper_data.table1_row -> Arch_params.t
(** Invert a Table 1 row: C from Pdyn = a·N·C·f·Vdd², Io_cell from
    Pstat = N·Vdd·Io·exp(−Vth/(n·Ut)); a, N, LDeff, area copied. *)

val problem_of_row :
  Device.Technology.t -> f:float -> Paper_data.table1_row -> Power_law.problem
(** Calibrated problem: χ′ from the published (Vdd, Vth) (the row's timing
    constraint), parameters from {!params_of_row}. *)

val implied_gate_zeta :
  Device.Technology.t -> f:float -> Paper_data.table1_row -> float
(** The per-gate ζ consistent with the row's χ′ and LDeff — i.e.
    χ′ · Io / (f · LDeff · (e·n·Ut/α)^α). *)

val fit_ring_divisor :
  Device.Technology.t -> f:float -> Paper_data.table1_row list -> float
(** Median of ζ_published / ζ_implied over the rows — the divisor that maps
    the published ring-oscillator ζ to a per-gate ζ (documented in
    DESIGN.md §2). *)

(** Moving an architecture across technologies (Tables 3 and 4): N, a and
    LDeff stay (same netlist), C and the leakage ratio Io_cell/Io carry
    over from the LL calibration, χ′ is re-derived from the target
    technology's published optimum for that row. *)
val problem_of_wallace_row :
  Device.Technology.t ->
  f:float ->
  ll_row:Paper_data.table1_row ->
  target:Paper_data.wallace_row ->
  cap_scale:float ->
  Power_law.problem

val fit_cap_scale :
  Device.Technology.t ->
  f:float ->
  rows:(Paper_data.table1_row * Paper_data.wallace_row) list ->
  float
(** Least-squares single scalar multiplying C so the numerical optima match
    the target technology's published totals (the paper notes HS has
    "increased capacitance C"). Fit over the three Wallace rows; the
    residual spread is reported in EXPERIMENTS.md. *)
