(** Architecture-transformation algebra — the Section 4 reasoning as code.

    Each transformation maps an {!Arch_params.t} to the parameters the
    transformed architecture would present, using first-order scaling rules
    (the paper's own language: parallelisation multiplies N by a bit more
    than k and divides LDeff by roughly k, pipelining shortens LDeff but
    adds registers, diagonal pipelining additionally raises activity through
    glitching...). Feeding the result to {!Closed_form} predicts whether a
    transformation pays off {e before} building the netlist — the intended
    use of Eq. 13. *)

type t = {
  name : string;
  apply : Arch_params.t -> Arch_params.t;
  description : string;
}

val parallelize :
  ?overhead_cells:float -> ?activity_overhead:float -> copies:int -> unit -> t
(** Replication + multiplexing: N ×(k + overhead), LDeff ÷k, activity ÷k
    ×(1 + activity_overhead). Defaults: 6 % cell overhead, 8 % activity
    overhead — matching the Table 1 ratios. *)

val pipeline_horizontal : ?register_fraction:float -> stages:int -> unit -> t
(** LDeff shortened (not fully ÷stages — the merge row resists), activity
    reduced (glitch barriers), N grows by the register banks. *)

val pipeline_diagonal : ?glitch_penalty:float -> stages:int -> unit -> t
(** Shorter LDeff than horizontal but activity {e increased} by the glitch
    penalty (default 4 %) relative to the horizontal version. *)

val sequentialize : cycles:int -> t
(** Fold into a cycles-long add-shift loop: N collapses, LDeff and activity
    (per data cycle) explode — the transformation the paper warns about. *)

val apply_and_evaluate :
  Device.Technology.t -> f:float -> Arch_params.t -> t ->
  Arch_params.t * Closed_form.result
(** Transformed parameters and their closed-form optimum.
    @raise Closed_form.Infeasible when the result cannot meet timing. *)

val predicted_ratio :
  Device.Technology.t -> f:float -> Arch_params.t -> t -> float
(** Ptot(transformed) / Ptot(original), both via Eq. 13 — < 1 means the
    transformation helps at the optimal working point. *)
