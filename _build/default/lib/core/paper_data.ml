type table1_row = {
  label : string;
  n_cells : int;
  area : float;
  activity : float;
  ld_eff : float;
  vdd : float;
  vth : float;
  pdyn : float;
  pstat : float;
  ptot : float;
  ptot_eq13 : float;
  err_pct : float;
}

type wallace_row = {
  w_label : string;
  w_vdd : float;
  w_vth : float;
  w_ptot : float;
  w_ptot_eq13 : float;
  w_err_pct : float;
}

let frequency = 31.25e6
let lin_a = 0.671
let lin_b = 0.347

let uw x = x *. 1e-6

let row label n_cells area activity ld_eff vdd vth pdyn pstat ptot ptot_eq13
    err_pct =
  {
    label;
    n_cells;
    area;
    activity;
    ld_eff;
    vdd;
    vth;
    pdyn = uw pdyn;
    pstat = uw pstat;
    ptot = uw ptot;
    ptot_eq13 = uw ptot_eq13;
    err_pct;
  }

(* Table 1 verbatim (f = 31.25 MHz, STM CMOS09 LL). *)
let table1 =
  [
    row "RCA" 608 11038. 0.5056 61. 0.478 0.213 154.86 36.57 191.44 191.09
      0.182;
    row "RCA parallel" 1256 22223. 0.2624 30.5 0.395 0.233 117.20 30.37
      147.57 150.29 (-1.844);
    row "RCA parallel 4" 2455 43735. 0.1344 15.75 0.359 0.256 100.51 26.39
      126.90 129.93 (-2.384);
    row "RCA hor.pipe2" 672 12458. 0.3904 40. 0.423 0.225 100.51 25.27 125.78
      127.25 (-1.166);
    row "RCA hor.pipe4" 800 15298. 0.2944 28. 0.394 0.238 81.54 20.94 102.48
      104.34 (-1.819);
    row "RCA diagpipe2" 670 12684. 0.4064 26. 0.407 0.224 98.65 25.50 124.15
      126.11 (-1.581);
    row "RCA diagpipe4" 812 15762. 0.3456 14. 0.366 0.233 82.83 22.52 105.35
      108.04 (-2.559);
    row "Wallace" 729 11928. 0.2976 17. 0.372 0.236 56.69 15.17 71.86 73.56
      (-2.376);
    row "Wallace parallel" 1465 23993. 0.1568 8. 0.341 0.256 55.64 15.06
      70.69 72.58 (-2.676);
    row "Wallace par4" 2939 47271. 0.0832 4.75 0.333 0.277 58.04 15.26 73.30
      75.01 (-2.335);
    row "Sequential" 290 4954. 2.9152 224. 0.824 0.173 1134.00 184.48 1318.48
      1318.94 (-0.035);
    row "Seq4_16" 351 6132. 0.2464 120. 0.711 0.228 184.69 31.59 216.29
      212.62 1.696;
    row "Seq parallel" 322 7276. 1.3280 168. 0.817 0.192 888.19 142.07
      1030.26 1028.97 0.124;
  ]

let wrow w_label w_vdd w_vth ptot eq13 w_err_pct =
  {
    w_label;
    w_vdd;
    w_vth;
    w_ptot = uw ptot;
    w_ptot_eq13 = uw eq13;
    w_err_pct;
  }

(* Table 3: Wallace family, ULL technology. *)
let table3_ull =
  [
    wrow "Wallace" 0.409 0.231 84.79 86.03 (-1.47);
    wrow "Wallace parallel" 0.363 0.253 76.24 78.02 (-2.33);
    wrow "Wallace par4" 0.360 0.281 80.61 82.21 (-1.98);
  ]

(* Table 4: Wallace family, HS technology. *)
let table4_hs =
  [
    wrow "Wallace" 0.398 0.328 99.56 100.33 (-0.78);
    wrow "Wallace parallel" 0.383 0.349 110.27 111.39 (-1.01);
    wrow "Wallace par4" 0.390 0.376 118.89 119.99 (-0.93);
  ]

let table1_find label =
  match List.find_opt (fun r -> r.label = label) table1 with
  | Some r -> r
  | None -> raise Not_found

let wallace_ll =
  List.filter_map
    (fun r ->
      if String.starts_with ~prefix:"Wallace" r.label then
        Some
          {
            w_label = r.label;
            w_vdd = r.vdd;
            w_vth = r.vth;
            w_ptot = r.ptot;
            w_ptot_eq13 = r.ptot_eq13;
            w_err_pct = r.err_pct;
          }
      else None)
    table1
