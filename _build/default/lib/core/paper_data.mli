(** Published reference values — Tables 1, 3 and 4 of the paper, kept
    verbatim for calibration and for paper-vs-measured reporting.
    (Table 2, the technology parameters, lives in {!Device.Technology}.) *)

type table1_row = {
  label : string;
  n_cells : int;
  area : float;  (** µm² *)
  activity : float;
  ld_eff : float;
  vdd : float;  (** Optimal supply, V. *)
  vth : float;  (** Optimal threshold, V. *)
  pdyn : float;  (** W (the paper prints µW). *)
  pstat : float;  (** W *)
  ptot : float;  (** Numerical optimum, W. *)
  ptot_eq13 : float;  (** Closed-form value, W. *)
  err_pct : float;  (** Published Eq. 13 error, %. *)
}

type wallace_row = {
  w_label : string;
  w_vdd : float;
  w_vth : float;
  w_ptot : float;  (** W *)
  w_ptot_eq13 : float;  (** W *)
  w_err_pct : float;
}

val frequency : float
(** 31.25 MHz — the throughput clock of every experiment. *)

val lin_a : float
(** A = 0.671 — the paper's published Eq. 7 slope for α = 1.86. *)

val lin_b : float
(** B = 0.347 — the published intercept. *)

val table1 : table1_row list
(** Thirteen rows, LL technology, Table 1 order. *)

val table3_ull : wallace_row list
(** Wallace family on ULL (Table 3). *)

val table4_hs : wallace_row list
(** Wallace family on HS (Table 4). *)

val table1_find : string -> table1_row
(** @raise Not_found *)

val wallace_ll : wallace_row list
(** The three Wallace rows of Table 1 reshaped as {!wallace_row}, so the
    three technologies can be iterated uniformly. *)
