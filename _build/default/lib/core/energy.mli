(** Energy-per-operation analysis — the other side of the optimal-power
    coin.

    The paper fixes the throughput and minimises power. Dividing the
    optimal power by the throughput gives the energy of one multiplication;
    as f falls, dynamic energy falls (lower Vdd suffices) but each
    operation leaks for longer — the classic U-shape whose bottom is the
    Minimum Energy Point (MEP). This module sweeps the throughput axis
    under the same freely-adjustable Vdd/Vth premise. *)

val energy_per_op : Power_law.problem -> float
(** [Ptot_opt / f], joules. *)

type sweep_point = {
  f : float;
  energy : float;  (** J per operation. *)
  ptot : float;  (** W. *)
  vdd : float;
  vth : float;
}

val sweep :
  ?f_lo:float -> ?f_hi:float -> ?points:int ->
  Power_law.problem -> sweep_point list
(** Log-spaced throughput sweep (default 0.1–500 MHz, 25 points),
    re-optimising (Vdd, Vth) at every point. *)

type mep = {
  f_mep : float;  (** Throughput of the minimum-energy point, Hz. *)
  energy_mep : float;  (** J per operation at the MEP. *)
  vdd_mep : float;
  overhead_at : float -> float;
      (** [overhead_at f]: energy at throughput [f] relative to the MEP
          (≥ 1). *)
}

val minimum_energy_point :
  ?f_lo:float -> ?f_hi:float -> Power_law.problem -> mep
(** Golden-section search on log-frequency. *)
