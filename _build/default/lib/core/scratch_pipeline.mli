(** The from-scratch reproduction pipeline (DESIGN.md experiment SCRATCH):
    generate the netlists, simulate activity, run STA, extract parameters
    and optimise — no published numbers involved anywhere. Absolute values
    differ from the paper (our cell library is generic), but the shape —
    which architecture wins, where parallelisation stops paying — is the
    reproduction target. *)

type row = {
  params : Arch_params.t;
  glitch_ratio : float;
  numerical : Numerical_opt.point;
  eq13 : Closed_form.result option;  (** [None] if Eq. 13 is infeasible. *)
}

val run_spec :
  ?seed:int -> ?cycles:int -> ?wire_caps:bool ->
  Device.Technology.t -> f:float -> Multipliers.Spec.t -> row
(** [wire_caps] (default true) folds placement-estimated wiring
    capacitance ({!Netlist.Placement}) into the per-cell average C. *)

val run_label :
  ?seed:int -> ?cycles:int -> ?wire_caps:bool ->
  Device.Technology.t -> f:float -> string -> row
(** Build the catalog entry with that Table 1 label and run it.
    @raise Not_found for an unknown label. *)

val run_all :
  ?seed:int -> ?cycles:int -> ?wire_caps:bool ->
  Device.Technology.t -> f:float -> unit -> row list
(** All thirteen architectures, Table 1 order. *)

val eq13_error_pct : row -> float option
(** Signed (Eq. 13 − numerical) / numerical in %, when feasible. *)
