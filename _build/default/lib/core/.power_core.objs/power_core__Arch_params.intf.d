lib/core/arch_params.mli: Device Format Multipliers
