lib/core/power_law.mli: Arch_params Device
