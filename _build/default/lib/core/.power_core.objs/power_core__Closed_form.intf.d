lib/core/closed_form.mli: Device Power_law
