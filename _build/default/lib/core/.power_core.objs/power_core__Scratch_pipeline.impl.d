lib/core/scratch_pipeline.ml: Arch_params Closed_form Device List Multipliers Netlist Numerical_opt Option Power_law
