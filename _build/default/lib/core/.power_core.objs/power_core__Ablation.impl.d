lib/core/ablation.ml: Arch_params Calibration Closed_form Device Float List Multipliers Numerical_opt Paper_data Power_law Scratch_pipeline Tech_compare
