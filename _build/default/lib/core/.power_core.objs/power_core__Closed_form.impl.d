lib/core/closed_form.ml: Arch_params Device Float Power_law Printf
