lib/core/calibration.mli: Arch_params Device Paper_data Power_law
