lib/core/scratch_pipeline.mli: Arch_params Closed_form Device Multipliers Numerical_opt
