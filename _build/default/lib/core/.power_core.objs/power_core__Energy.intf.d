lib/core/energy.mli: Power_law
