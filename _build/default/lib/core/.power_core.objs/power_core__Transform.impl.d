lib/core/transform.ml: Arch_params Closed_form Power_law Printf
