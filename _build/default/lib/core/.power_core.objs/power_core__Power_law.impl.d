lib/core/power_law.ml: Arch_params Device Float Numerics
