lib/core/variation.mli: Numerical_opt Numerics Power_law
