lib/core/arch_params.ml: Device Format Multipliers Netlist
