lib/core/variation.ml: Arch_params Float List Numerical_opt Numerics Power_law
