lib/core/tech_compare.ml: Arch_params Closed_form Device Float List Numerical_opt Numerics Power_law
