lib/core/ablation.mli: Arch_params Device Power_law
