lib/core/numerical_opt.ml: Float List Numerics Power_law
