lib/core/calibration.ml: Arch_params Device Float List Numerical_opt Numerics Paper_data Power_law
