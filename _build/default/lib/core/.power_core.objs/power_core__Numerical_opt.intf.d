lib/core/numerical_opt.mli: Power_law
