lib/core/tech_compare.mli: Arch_params Closed_form Device Numerical_opt
