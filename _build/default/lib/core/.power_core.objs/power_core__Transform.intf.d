lib/core/transform.mli: Arch_params Closed_form Device
