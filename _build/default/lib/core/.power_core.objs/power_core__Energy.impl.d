lib/core/energy.ml: Float List Numerical_opt Numerics Power_law
