(** Netlist clean-up passes: constant folding, wire aliasing, adder
    downgrading and dead-cell elimination.

    The structural generators occasionally feed gates from constant nets
    (e.g. the zero-padded columns of a reduction tree). A synthesis tool
    would sweep those away; this pass does the same so extracted N, C and
    leakage reflect the logic that would actually be placed:

    - gates with fully known inputs fold to constants;
    - identities collapse to wires (AND(x,1) = x, XOR(x,x) = 0,
      MUX with a constant select, BUF, ...);
    - a full adder with a known-zero input downgrades to a half adder;
    - cells whose outputs reach no primary output or flip-flop are removed.

    The result is a fresh circuit plus a net map; functional behaviour is
    preserved cycle-for-cycle (property-tested against the reference
    evaluator). *)

type stats = {
  cells_before : int;
  cells_after : int;
  folded_constants : int;  (** Cell outputs resolved to 0/1. *)
  aliased : int;  (** Cell outputs collapsed to existing nets. *)
  downgraded : int;  (** Full adders turned into half adders. *)
  removed_dead : int;  (** Live-but-unobservable cells swept. *)
}

type result = {
  circuit : Circuit.t;
  map : Circuit.net -> Circuit.net;
      (** Old net → equivalent new net (constants map to the new tie
          nets). *)
  stats : stats;
}

val run : Circuit.t -> result
(** @raise Failure on a combinational cycle. (The spec-level wrapper that
    remaps a multiplier's port buses lives in [Multipliers.Spec_optimize].) *)
