type node = int
(* 0 = false, 1 = true, >= 2 internal. *)

exception Node_limit_exceeded

type manager = {
  mutable vars : int array;  (* per node *)
  mutable lows : int array;
  mutable highs : int array;
  mutable len : int;
  max_nodes : int;
  unique : (int * int * int, int) Hashtbl.t;  (* (var, low, high) -> id *)
  cache : (int * int * int, int) Hashtbl.t;  (* (op, a, b) -> id *)
}

let terminal_var = max_int

let create ?(max_nodes = 4_000_000) () =
  let m =
    {
      vars = Array.make 1024 terminal_var;
      lows = Array.make 1024 0;
      highs = Array.make 1024 0;
      len = 2;
      max_nodes;
      unique = Hashtbl.create 4096;
      cache = Hashtbl.create 4096;
    }
  in
  (* Node 0 = false, node 1 = true (terminals). *)
  m.lows.(0) <- 0;
  m.highs.(0) <- 0;
  m.lows.(1) <- 1;
  m.highs.(1) <- 1;
  m

let bdd_false _ = 0
let bdd_true _ = 1

let grow m =
  let capacity = Array.length m.vars in
  if m.len = capacity then begin
    let extend a fill =
      let b = Array.make (2 * capacity) fill in
      Array.blit a 0 b 0 m.len;
      b
    in
    m.vars <- extend m.vars terminal_var;
    m.lows <- extend m.lows 0;
    m.highs <- extend m.highs 0
  end

(* Hash-consed node creation with the two ROBDD reductions. *)
let mk m v low high =
  if low = high then low
  else begin
    match Hashtbl.find_opt m.unique (v, low, high) with
    | Some id -> id
    | None ->
      if m.len >= m.max_nodes then raise Node_limit_exceeded;
      grow m;
      let id = m.len in
      m.len <- m.len + 1;
      m.vars.(id) <- v;
      m.lows.(id) <- low;
      m.highs.(id) <- high;
      Hashtbl.add m.unique (v, low, high) id;
      id
  end

let var m i =
  if i < 0 || i >= terminal_var then invalid_arg "Bdd.var: bad index";
  mk m i 0 1

(* Binary apply with memoisation; op codes 0 = and, 1 = or, 2 = xor. *)
let rec apply m op a b =
  let terminal =
    match op with
    | 0 ->
      if a = 0 || b = 0 then Some 0
      else if a = 1 then Some b
      else if b = 1 then Some a
      else if a = b then Some a
      else None
    | 1 ->
      if a = 1 || b = 1 then Some 1
      else if a = 0 then Some b
      else if b = 0 then Some a
      else if a = b then Some a
      else None
    | _ ->
      if a = b then Some 0
      else if a = 0 then Some b
      else if b = 0 then Some a
      else None
  in
  match terminal with
  | Some r -> r
  | None ->
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = (op, a, b) in
    (match Hashtbl.find_opt m.cache key with
    | Some r -> r
    | None ->
      let va = m.vars.(a) and vb = m.vars.(b) in
      let v = min va vb in
      let a_low = if va = v then m.lows.(a) else a in
      let a_high = if va = v then m.highs.(a) else a in
      let b_low = if vb = v then m.lows.(b) else b in
      let b_high = if vb = v then m.highs.(b) else b in
      let low = apply m op a_low b_low in
      let high = apply m op a_high b_high in
      let r = mk m v low high in
      Hashtbl.add m.cache key r;
      r)

let bdd_and m a b = apply m 0 a b
let bdd_or m a b = apply m 1 a b
let bdd_xor m a b = apply m 2 a b
let bdd_not m a = bdd_xor m a 1

let ite m sel then_ else_ =
  bdd_or m (bdd_and m sel then_) (bdd_and m (bdd_not m sel) else_)

let equal (a : node) (b : node) = a = b
let node_count m = m.len

let size m root =
  let seen = Hashtbl.create 64 in
  let rec walk id =
    if id > 1 && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      walk m.lows.(id);
      walk m.highs.(id)
    end
  in
  walk root;
  Hashtbl.length seen + if root <= 1 then 1 else 2

let eval m root assignment =
  let rec go id =
    if id = 0 then false
    else if id = 1 then true
    else if assignment m.vars.(id) then go m.highs.(id)
    else go m.lows.(id)
  in
  go root

let outputs_of_circuit m ~var_of_input circuit =
  let nets = Array.make (Circuit.net_count circuit) 0 in
  List.iter
    (fun n -> nets.(n) <- var m (var_of_input n))
    (Circuit.primary_inputs circuit);
  Circuit.iter_cells
    (fun cell ->
      match cell.kind with
      | Cell.Tie0 -> nets.(cell.outputs.(0)) <- 0
      | Cell.Tie1 -> nets.(cell.outputs.(0)) <- 1
      | Cell.Dff -> failwith "Bdd.outputs_of_circuit: sequential circuit"
      | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
      | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder
      | Cell.Full_adder ->
        ())
    circuit;
  List.iter
    (fun id ->
      let cell = Circuit.get_cell circuit id in
      let input i = nets.(cell.inputs.(i)) in
      let set o v = nets.(cell.outputs.(o)) <- v in
      match cell.kind with
      | Cell.Tie0 | Cell.Tie1 | Cell.Dff -> ()
      | Cell.Inv -> set 0 (bdd_not m (input 0))
      | Cell.Buf -> set 0 (input 0)
      | Cell.And2 -> set 0 (bdd_and m (input 0) (input 1))
      | Cell.Nand2 -> set 0 (bdd_not m (bdd_and m (input 0) (input 1)))
      | Cell.Or2 -> set 0 (bdd_or m (input 0) (input 1))
      | Cell.Nor2 -> set 0 (bdd_not m (bdd_or m (input 0) (input 1)))
      | Cell.Xor2 -> set 0 (bdd_xor m (input 0) (input 1))
      | Cell.Xnor2 -> set 0 (bdd_not m (bdd_xor m (input 0) (input 1)))
      | Cell.Mux2 -> set 0 (ite m (input 2) (input 1) (input 0))
      | Cell.Half_adder ->
        set 0 (bdd_xor m (input 0) (input 1));
        set 1 (bdd_and m (input 0) (input 1))
      | Cell.Full_adder ->
        let x = bdd_xor m (input 0) (input 1) in
        set 0 (bdd_xor m x (input 2));
        set 1
          (bdd_or m
             (bdd_and m (input 0) (input 1))
             (bdd_and m x (input 2))))
    (Topo.combinational circuit);
  List.map
    (fun (n, name) -> (name, nets.(n)))
    (Circuit.primary_outputs circuit)

type verdict =
  | Equivalent
  | Inequivalent of string
  | Aborted

(* Interleaved variable order: inputs sorted by (bit index, bus name), so
   a[0], b[0], a[1], b[1], ... — the effective order for datapaths. *)
let interleaved_order circuit =
  let parse name =
    match String.index_opt name '[' with
    | Some i when String.length name > i + 1 && name.[String.length name - 1] = ']'
      ->
      let bus = String.sub name 0 i in
      let index =
        int_of_string_opt
          (String.sub name (i + 1) (String.length name - i - 2))
      in
      (bus, Option.value ~default:0 index)
    | Some _ | None -> (name, 0)
  in
  let named =
    List.map
      (fun n ->
        let bus, index = parse (Circuit.net_name circuit n) in
        (index, bus, n))
      (Circuit.primary_inputs circuit)
  in
  List.sort compare named |> List.map (fun (_, _, n) -> n)

let check_equivalence ?(max_nodes = 4_000_000) left right =
  let names circuit =
    List.sort compare
      (List.map (fun n -> Circuit.net_name circuit n)
         (Circuit.primary_inputs circuit))
  in
  if names left <> names right then
    invalid_arg "Bdd.check_equivalence: input interfaces differ";
  let out_names circuit =
    List.sort compare (List.map snd (Circuit.primary_outputs circuit))
  in
  if out_names left <> out_names right then
    invalid_arg "Bdd.check_equivalence: output interfaces differ";
  (* One shared variable index per input NAME. *)
  let order = interleaved_order left in
  let index_of_name = Hashtbl.create 64 in
  List.iteri
    (fun i n -> Hashtbl.add index_of_name (Circuit.net_name left n) i)
    order;
  let var_of circuit n =
    match Hashtbl.find_opt index_of_name (Circuit.net_name circuit n) with
    | Some i -> i
    | None -> invalid_arg "Bdd.check_equivalence: unmatched input"
  in
  let m = create ~max_nodes () in
  match
    ( outputs_of_circuit m ~var_of_input:(var_of left) left,
      outputs_of_circuit m ~var_of_input:(var_of right) right )
  with
  | exception Node_limit_exceeded -> Aborted
  | left_outputs, right_outputs ->
    let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
    let rec compare_all l r =
      match (l, r) with
      | [], [] -> Equivalent
      | (name, a) :: l_rest, (_, b) :: r_rest ->
        if equal a b then compare_all l_rest r_rest else Inequivalent name
      | _, _ -> assert false
    in
    compare_all (sorted left_outputs) (sorted right_outputs)
