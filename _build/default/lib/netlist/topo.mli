(** Topological ordering of the combinational cell graph.

    Sources (flip-flops, ties and other zero-arity cells) are excluded from
    the order — their outputs carry externally determined values. Shared by
    static timing, functional evaluation and the optimisation passes. *)

val is_source : Circuit.cell -> bool

val combinational : Circuit.t -> Circuit.cell_id list
(** Combinational cells in dependency order.
    @raise Failure on a combinational cycle. *)
