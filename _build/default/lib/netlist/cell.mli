(** The standard-cell library.

    A small set of cell kinds, enough to synthesise the paper's thirteen
    multipliers structurally. Physical attributes (area, switched
    capacitance, leakage, normalised delay) are representative 0.13 µm
    values; the power model consumes only their {e averages} over a netlist,
    so relative ordering across kinds is what matters. *)

type kind =
  | Tie0  (** Constant 0 driver. *)
  | Tie1  (** Constant 1 driver. *)
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2  (** Inputs [d0; d1; sel]. *)
  | Half_adder  (** Inputs [a; b], outputs [sum; carry]. *)
  | Full_adder  (** Inputs [a; b; cin], outputs [sum; carry]. *)
  | Dff  (** Input [d], output [q]; clocked by the global clock. *)

val all : kind list

val name : kind -> string
val arity : kind -> int
val output_count : kind -> int
val is_sequential : kind -> bool

val area : kind -> float
(** Cell area, µm². *)

val switched_cap : kind -> float
(** Average switched capacitance per output transition, F (includes average
    local wiring and the lumped short-circuit contribution, as in Eq. 1). *)

val leak_factor : kind -> float
(** Average off-current of the cell in units of the technology's per-inverter
    [Io] (stack effect and transistor count folded in). *)

val delay : kind -> output:int -> float
(** Propagation delay to the given output, in normalised inverter delays —
    the unit in which logical depth (LD) is expressed. @raise
    Invalid_argument for an out-of-range output index. *)

val clk_to_q : float
(** Normalised clock-to-output delay of a flip-flop. *)

val eval : kind -> Logic.value array -> Logic.value array
(** Combinational function of the cell ({!Dff} evaluates as a buffer — the
    simulator intercepts sequential behaviour). @raise Invalid_argument on
    an input array of the wrong length. *)
