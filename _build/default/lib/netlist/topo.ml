let is_source (cell : Circuit.cell) =
  Cell.is_sequential cell.kind || Cell.arity cell.kind = 0

let combinational circuit =
  let count = Circuit.cell_count circuit in
  let indegree = Array.make count 0 in
  let fanout = Circuit.fanout circuit in
  Circuit.iter_cells
    (fun cell ->
      if not (is_source cell) then
        Array.iter
          (fun n ->
            match Circuit.driver circuit n with
            | Some (d, _) when not (is_source (Circuit.get_cell circuit d)) ->
              indegree.(cell.id) <- indegree.(cell.id) + 1
            | Some _ | None -> ())
          cell.inputs)
    circuit;
  let queue = Queue.create () in
  Circuit.iter_cells
    (fun cell ->
      if (not (is_source cell)) && indegree.(cell.id) = 0 then
        Queue.add cell.id queue)
    circuit;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr visited;
    order := id :: !order;
    let cell = Circuit.get_cell circuit id in
    Array.iter
      (fun n ->
        List.iter
          (fun (reader, _) ->
            if not (is_source (Circuit.get_cell circuit reader)) then begin
              indegree.(reader) <- indegree.(reader) - 1;
              if indegree.(reader) = 0 then Queue.add reader queue
            end)
          fanout.(n))
      cell.outputs
  done;
  let combinational_count =
    Circuit.fold_cells
      (fun acc cell -> if is_source cell then acc else acc + 1)
      0 circuit
  in
  if !visited < combinational_count then
    failwith "Topo.combinational: combinational cycle detected";
  List.rev !order
