type t = {
  cell_total : int;
  area : float;
  avg_switched_cap : float;
  avg_leak_factor : float;
  dff_count : int;
  by_kind : (Cell.kind * int) list;
}

let is_tie = function
  | Cell.Tie0 | Cell.Tie1 -> true
  | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
  | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder | Cell.Full_adder
  | Cell.Dff ->
    false

let compute circuit =
  let counts = Hashtbl.create 16 in
  let bump kind =
    Hashtbl.replace counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
  in
  let area = Numerics.Kahan.create () in
  let cap = Numerics.Kahan.create () in
  let leak = Numerics.Kahan.create () in
  let total = ref 0 and dffs = ref 0 in
  Circuit.iter_cells
    (fun cell ->
      bump cell.kind;
      if not (is_tie cell.kind) then begin
        incr total;
        Numerics.Kahan.add area (Cell.area cell.kind);
        Numerics.Kahan.add cap (Cell.switched_cap cell.kind);
        Numerics.Kahan.add leak (Cell.leak_factor cell.kind);
        if Cell.is_sequential cell.kind then incr dffs
      end)
    circuit;
  let n = float_of_int (max 1 !total) in
  {
    cell_total = !total;
    area = Numerics.Kahan.sum area;
    avg_switched_cap = Numerics.Kahan.sum cap /. n;
    avg_leak_factor = Numerics.Kahan.sum leak /. n;
    dff_count = !dffs;
    by_kind =
      List.filter_map
        (fun kind ->
          match Hashtbl.find_opt counts kind with
          | Some c -> Some (kind, c)
          | None -> None)
        Cell.all;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>N=%d cells, area=%.0f um^2, C_avg=%.1f fF, \
                      leak_avg=%.2f Io, DFFs=%d@ kinds: %a@]"
    t.cell_total t.area
    (t.avg_switched_cap *. 1e15)
    t.avg_leak_factor t.dff_count
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (kind, c) -> Format.fprintf ppf "%s:%d" (Cell.name kind) c))
    t.by_kind
