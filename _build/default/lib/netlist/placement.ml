type t = {
  circuit : Circuit.t;
  xs : float array;  (* per cell, um *)
  ys : float array;
}

let wire_cap_per_um = 0.2e-15

(* Signal-flow order: BFS from the cells driven by primary inputs, so
   connected logic lands in nearby rows — a crude but honest seed for a
   row-major standard-cell placement. *)
let flow_order circuit =
  let count = Circuit.cell_count circuit in
  let fanout = Circuit.fanout circuit in
  let seen = Array.make count false in
  let order = ref [] in
  let queue = Queue.create () in
  let enqueue id =
    if not seen.(id) then begin
      seen.(id) <- true;
      Queue.add id queue
    end
  in
  List.iter
    (fun n -> List.iter (fun (id, _) -> enqueue id) fanout.(n))
    (Circuit.primary_inputs circuit);
  (* Sources with no primary-input fanin (ties, some registers). *)
  Circuit.iter_cells
    (fun cell -> if Array.length cell.inputs = 0 then enqueue cell.id)
    circuit;
  let drain () =
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      order := id :: !order;
      let cell = Circuit.get_cell circuit id in
      Array.iter
        (fun n -> List.iter (fun (reader, _) -> enqueue reader) fanout.(n))
        cell.outputs
    done
  in
  drain ();
  (* Anything unreachable (isolated subgraphs) goes last, in id order. *)
  Circuit.iter_cells (fun cell -> enqueue cell.id) circuit;
  drain ();
  List.rev !order

let grid_geometry circuit =
  let total_area =
    Circuit.fold_cells
      (fun acc (cell : Circuit.cell) -> acc +. Cell.area cell.kind)
      0.0 circuit
  in
  (* Rows of equal height; a site is an average-cell-width slot. *)
  let side = Float.max 1.0 (sqrt total_area) in
  let count = max 1 (Circuit.cell_count circuit) in
  let avg_width = total_area /. float_of_int count /. 3.0 in
  let sites_per_row = max 1 (int_of_float (side /. Float.max 0.1 avg_width)) in
  (sites_per_row, Float.max 0.1 avg_width, 3.0)

let positions_of_order circuit order =
  let count = Circuit.cell_count circuit in
  let xs = Array.make count 0.0 and ys = Array.make count 0.0 in
  let sites_per_row, site_width, row_height = grid_geometry circuit in
  List.iteri
    (fun slot id ->
      let row = slot / sites_per_row and col = slot mod sites_per_row in
      xs.(id) <- (float_of_int col +. 0.5) *. site_width;
      ys.(id) <- (float_of_int row +. 0.5) *. row_height)
    order;
  (xs, ys)

let hpwl circuit xs ys fanout net =
  let points = ref [] in
  (match Circuit.driver circuit net with
  | Some (id, _) -> points := (xs.(id), ys.(id)) :: !points
  | None -> ());
  List.iter (fun (id, _) -> points := (xs.(id), ys.(id)) :: !points) fanout;
  match !points with
  | [] | [ _ ] -> 0.0
  | (x0, y0) :: rest ->
    let fold f init sel = List.fold_left (fun a p -> f a (sel p)) init rest in
    let x_min = fold Float.min x0 fst and x_max = fold Float.max x0 fst in
    let y_min = fold Float.min y0 snd and y_max = fold Float.max y0 snd in
    x_max -. x_min +. (y_max -. y_min)

(* Sum of HPWL over the nets touching a cell — the quantity a swap of two
   cells can change. *)
let cell_cost circuit xs ys fanout nets_of_cell id =
  Numerics.Kahan.sum_by (fun n -> hpwl circuit xs ys fanout.(n) n)
    nets_of_cell.(id)

let place ?(seed = 1) ?(improvement_passes = 2) circuit =
  let order = flow_order circuit in
  let xs, ys = positions_of_order circuit order in
  let fanout = Circuit.fanout circuit in
  let count = Circuit.cell_count circuit in
  (* Nets touching each cell (driver or sink), deduplicated. *)
  let nets_of_cell = Array.make count [] in
  Circuit.iter_cells
    (fun cell ->
      let add n =
        if not (List.mem n nets_of_cell.(cell.id)) then
          nets_of_cell.(cell.id) <- n :: nets_of_cell.(cell.id)
      in
      Array.iter add cell.inputs;
      Array.iter add cell.outputs)
    circuit;
  let rng = Numerics.Rng.create seed in
  let swap a b =
    let x = xs.(a) and y = ys.(a) in
    xs.(a) <- xs.(b);
    ys.(a) <- ys.(b);
    xs.(b) <- x;
    ys.(b) <- y
  in
  if count > 1 then
    for _ = 1 to improvement_passes do
      for _ = 1 to count do
        let a = Numerics.Rng.int rng count in
        let b = Numerics.Rng.int rng count in
        if a <> b then begin
          let before =
            cell_cost circuit xs ys fanout nets_of_cell a
            +. cell_cost circuit xs ys fanout nets_of_cell b
          in
          swap a b;
          let after =
            cell_cost circuit xs ys fanout nets_of_cell a
            +. cell_cost circuit xs ys fanout nets_of_cell b
          in
          if after > before then swap a b
        end
      done
    done;
  { circuit; xs; ys }

let position t id = (t.xs.(id), t.ys.(id))

let net_length t net =
  let fanout = Circuit.fanout t.circuit in
  hpwl t.circuit t.xs t.ys fanout.(net) net

let total_wirelength t =
  let fanout = Circuit.fanout t.circuit in
  let acc = Numerics.Kahan.create () in
  for net = 0 to Circuit.net_count t.circuit - 1 do
    Numerics.Kahan.add acc (hpwl t.circuit t.xs t.ys fanout.(net) net)
  done;
  Numerics.Kahan.sum acc

let wire_cap ?(cap_per_um = wire_cap_per_um) t net =
  cap_per_um *. net_length t net

type refined_stats = {
  base : Stats.t;
  total_wire_cap : float;
  avg_cap_with_wires : float;
  wire_cap_share : float;
  avg_net_length : float;
}

let refine_stats ?(cap_per_um = wire_cap_per_um) circuit t =
  let base = Stats.compute circuit in
  let fanout = Circuit.fanout circuit in
  let wire = Numerics.Kahan.create () in
  let length = Numerics.Kahan.create () in
  let nets = Circuit.net_count circuit in
  for net = 0 to nets - 1 do
    let l = hpwl circuit t.xs t.ys fanout.(net) net in
    Numerics.Kahan.add length l;
    Numerics.Kahan.add wire (cap_per_um *. l)
  done;
  let total_wire_cap = Numerics.Kahan.sum wire in
  let n = float_of_int (max 1 base.cell_total) in
  let cell_cap_total = base.avg_switched_cap *. n in
  {
    base;
    total_wire_cap;
    avg_cap_with_wires = (cell_cap_total +. total_wire_cap) /. n;
    wire_cap_share = total_wire_cap /. (cell_cap_total +. total_wire_cap);
    avg_net_length = Numerics.Kahan.sum length /. float_of_int (max 1 nets);
  }
