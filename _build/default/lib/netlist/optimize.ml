type stats = {
  cells_before : int;
  cells_after : int;
  folded_constants : int;
  aliased : int;
  downgraded : int;
  removed_dead : int;
}

type result = {
  circuit : Circuit.t;
  map : Circuit.net -> Circuit.net;
  stats : stats;
}

(* What analysis concluded about each original net. *)
type binding = Opaque | Known of Logic.value | Alias of Circuit.net

(* What to do with each original cell at rebuild time. *)
type action =
  | Emit  (** Re-instantiate as-is (with resolved inputs). *)
  | Emit_ha of Circuit.net * Circuit.net
      (** Full adder downgraded: the two live addends. *)
  | Fold  (** All outputs bound; no cell needed. *)

let run source =
  let nets = Circuit.net_count source in
  let bindings = Array.make nets Opaque in
  (* Resolve through alias chains and pick up constants. *)
  let rec resolve net =
    match bindings.(net) with
    | Opaque -> `Net net
    | Known v -> `Const v
    | Alias target -> resolve target
  in
  let value_of net =
    match resolve net with `Const v -> Some v | `Net _ -> None
  in
  let canonical net =
    match resolve net with `Net n -> n | `Const _ -> net
  in
  let folded = ref 0 and aliased = ref 0 and downgraded = ref 0 in
  let bind_known net v =
    incr folded;
    bindings.(net) <- Known v
  in
  let bind_alias net target =
    incr aliased;
    bindings.(net) <- Alias target
  in
  let actions = Array.make (Circuit.cell_count source) Emit in
  (* Ties are constants by definition. *)
  Circuit.iter_cells
    (fun cell ->
      match cell.kind with
      | Cell.Tie0 ->
        bindings.(cell.outputs.(0)) <- Known Logic.Zero;
        actions.(cell.id) <- Fold
      | Cell.Tie1 ->
        bindings.(cell.outputs.(0)) <- Known Logic.One;
        actions.(cell.id) <- Fold
      | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
      | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder
      | Cell.Full_adder | Cell.Dff ->
        ())
    source;
  let analyze (cell : Circuit.cell) =
    let input i = cell.inputs.(i) in
    let const i = value_of (input i) in
    let same i j = canonical (input i) = canonical (input j) && const i = None in
    let out o = cell.outputs.(o) in
    (* Full constant evaluation first. *)
    let all_known =
      Array.for_all (fun n -> value_of n <> None) cell.inputs
      && Array.length cell.inputs > 0
    in
    if all_known then begin
      let values =
        Array.map
          (fun n ->
            match value_of n with Some v -> v | None -> assert false)
          cell.inputs
      in
      let outputs = Cell.eval cell.kind values in
      Array.iteri (fun o _ -> bind_known (out o) outputs.(o)) cell.outputs;
      actions.(cell.id) <- Fold
    end
    else begin
      match (cell.kind, const 0) with
      | Cell.Buf, _ ->
        bind_alias (out 0) (input 0);
        actions.(cell.id) <- Fold
      | Cell.And2, _ when const 0 = Some Logic.Zero || const 1 = Some Logic.Zero
        ->
        bind_known (out 0) Logic.Zero;
        actions.(cell.id) <- Fold
      | Cell.And2, _ when const 0 = Some Logic.One ->
        bind_alias (out 0) (input 1);
        actions.(cell.id) <- Fold
      | Cell.And2, _ when const 1 = Some Logic.One || same 0 1 ->
        bind_alias (out 0) (input 0);
        actions.(cell.id) <- Fold
      | Cell.Or2, _ when const 0 = Some Logic.One || const 1 = Some Logic.One
        ->
        bind_known (out 0) Logic.One;
        actions.(cell.id) <- Fold
      | Cell.Or2, _ when const 0 = Some Logic.Zero ->
        bind_alias (out 0) (input 1);
        actions.(cell.id) <- Fold
      | Cell.Or2, _ when const 1 = Some Logic.Zero || same 0 1 ->
        bind_alias (out 0) (input 0);
        actions.(cell.id) <- Fold
      | Cell.Xor2, _ when same 0 1 ->
        bind_known (out 0) Logic.Zero;
        actions.(cell.id) <- Fold
      | Cell.Xor2, _ when const 0 = Some Logic.Zero ->
        bind_alias (out 0) (input 1);
        actions.(cell.id) <- Fold
      | Cell.Xor2, _ when const 1 = Some Logic.Zero ->
        bind_alias (out 0) (input 0);
        actions.(cell.id) <- Fold
      | Cell.Xnor2, _ when same 0 1 ->
        bind_known (out 0) Logic.One;
        actions.(cell.id) <- Fold
      | Cell.Xnor2, _ when const 0 = Some Logic.One ->
        bind_alias (out 0) (input 1);
        actions.(cell.id) <- Fold
      | Cell.Xnor2, _ when const 1 = Some Logic.One ->
        bind_alias (out 0) (input 0);
        actions.(cell.id) <- Fold
      | Cell.Nand2, _
        when const 0 = Some Logic.Zero || const 1 = Some Logic.Zero ->
        bind_known (out 0) Logic.One;
        actions.(cell.id) <- Fold
      | Cell.Nor2, _ when const 0 = Some Logic.One || const 1 = Some Logic.One
        ->
        bind_known (out 0) Logic.Zero;
        actions.(cell.id) <- Fold
      | Cell.Mux2, _ -> begin
        match value_of (input 2) with
        | Some Logic.Zero ->
          bind_alias (out 0) (input 0);
          actions.(cell.id) <- Fold
        | Some Logic.One ->
          bind_alias (out 0) (input 1);
          actions.(cell.id) <- Fold
        | Some Logic.X | None ->
          if same 0 1 then begin
            bind_alias (out 0) (input 0);
            actions.(cell.id) <- Fold
          end
      end
      | Cell.Half_adder, _ -> begin
        match (const 0, const 1) with
        | Some Logic.Zero, _ ->
          bind_alias (out 0) (input 1);
          bind_known (out 1) Logic.Zero;
          actions.(cell.id) <- Fold
        | _, Some Logic.Zero ->
          bind_alias (out 0) (input 0);
          bind_known (out 1) Logic.Zero;
          actions.(cell.id) <- Fold
        | (Some (Logic.One | Logic.X) | None), _ -> ()
      end
      | Cell.Full_adder, _ -> begin
        let zeros =
          List.filter (fun i -> const i = Some Logic.Zero) [ 0; 1; 2 ]
        in
        let live =
          List.filter (fun i -> const i <> Some Logic.Zero) [ 0; 1; 2 ]
        in
        match (zeros, live) with
        | [ _; _ ], [ k ] ->
          bind_alias (out 0) (input k);
          bind_known (out 1) Logic.Zero;
          actions.(cell.id) <- Fold
        | [ _ ], [ i; j ] -> begin
          incr downgraded;
          actions.(cell.id) <- Emit_ha (input i, input j)
        end
        | _, _ -> ()
      end
      | (Cell.Inv | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
        | Cell.Xor2 | Cell.Xnor2 | Cell.Dff | Cell.Tie0 | Cell.Tie1), _ ->
        ()
    end
  in
  List.iter
    (fun id -> analyze (Circuit.get_cell source id))
    (Topo.combinational source);
  (* Liveness: a cell is live if any output (transitively, through kept
     cells) reaches a primary output or a flip-flop D input. Walk backwards
     from the observable roots over canonical nets. *)
  let cell_count = Circuit.cell_count source in
  let live = Array.make cell_count false in
  let rec mark_net net =
    match resolve net with
    | `Const _ -> ()
    | `Net n -> begin
      match Circuit.driver source n with
      | None -> ()
      | Some (id, _) -> mark_cell id
    end
  and mark_cell id =
    if not live.(id) then begin
      live.(id) <- true;
      let cell = Circuit.get_cell source id in
      match actions.(id) with
      | Fold -> ()
      | Emit_ha (a, b) ->
        mark_net a;
        mark_net b
      | Emit -> Array.iter mark_net cell.inputs
    end
  in
  List.iter (fun (n, _) -> mark_net n) (Circuit.primary_outputs source);
  (* Registers: marking a live flip-flop recursively marks its D cone (the
     Emit branch walks the inputs), so state cones follow observability
     automatically; registers feeding nothing observable stay dead. *)
  (* Rebuild. *)
  let target = Circuit.create (Circuit.name source) in
  let net_map = Array.make nets (-1) in
  let map_new old_net new_net = net_map.(old_net) <- new_net in
  List.iter
    (fun n -> map_new n (Circuit.add_input target (Circuit.net_name source n)))
    (Circuit.primary_inputs source);
  let mapped net =
    match resolve net with
    | `Const Logic.Zero -> Circuit.tie0 target
    | `Const Logic.One -> Circuit.tie1 target
    | `Const Logic.X ->
      (* Known-X cannot arise from 0/1 seeds; keep a safe fallback. *)
      Circuit.tie0 target
    | `Net n ->
      if net_map.(n) >= 0 then net_map.(n)
      else failwith "Optimize: unmapped net during rebuild"
  in
  (* Flip-flops first (Q feeds combinational logic; D patched last). *)
  let dff_patches = ref [] in
  Circuit.iter_cells
    (fun cell ->
      if cell.kind = Cell.Dff && live.(cell.id) then begin
        let q = Circuit.add_dff ~init:(Circuit.dff_init source cell.id) target
            (Circuit.tie0 target)
        in
        map_new cell.outputs.(0) q;
        dff_patches := (q, cell.inputs.(0)) :: !dff_patches
      end)
    source;
  (* Combinational cells in dependency order. *)
  List.iter
    (fun id ->
      let cell = Circuit.get_cell source id in
      if live.(id) then begin
        match actions.(id) with
        | Fold -> ()
        | Emit_ha (a, b) ->
          (match
             Circuit.add_cell target Cell.Half_adder
               [| mapped a; mapped b |]
           with
          | [| sum; carry |] ->
            map_new cell.outputs.(0) sum;
            map_new cell.outputs.(1) carry
          | _ -> assert false)
        | Emit ->
          let new_outputs =
            Circuit.add_cell target cell.kind (Array.map mapped cell.inputs)
          in
          Array.iteri (fun o _ -> map_new cell.outputs.(o) new_outputs.(o))
            cell.outputs
      end)
    (Topo.combinational source);
  (* Patch flip-flop D inputs. *)
  List.iter
    (fun (q, old_d) ->
      match Circuit.driver target q with
      | Some (id, _) -> Circuit.rewire_input target id 0 (mapped old_d)
      | None -> assert false)
    !dff_patches;
  (* Primary outputs. *)
  List.iter
    (fun (n, name) -> Circuit.mark_output target (mapped n) name)
    (Circuit.primary_outputs source);
  let removed_dead =
    Circuit.fold_cells
      (fun acc (cell : Circuit.cell) ->
        if (not live.(cell.id)) && actions.(cell.id) <> Fold then acc + 1
        else acc)
      0 source
  in
  {
    circuit = target;
    map =
      (fun net ->
        if net < 0 || net >= nets then
          invalid_arg "Optimize.map: dangling net handle";
        mapped net);
    stats =
      {
        cells_before = Circuit.cell_count source;
        cells_after = Circuit.cell_count target;
        folded_constants = !folded;
        aliased = !aliased;
        downgraded = !downgraded;
        removed_dead;
      };
  }
