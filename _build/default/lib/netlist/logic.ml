type value = Zero | One | X

let of_bool b = if b then One else Zero

let to_bool = function
  | Zero -> Some false
  | One -> Some true
  | X -> None

let is_known = function Zero | One -> true | X -> false

let equal a b =
  match (a, b) with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let to_char = function Zero -> '0' | One -> '1' | X -> 'x'
let pp ppf v = Format.pp_print_char ppf (to_char v)

let lnot = function Zero -> One | One -> Zero | X -> X

let land_ a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), _ -> X

let lor_ a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), _ -> X

let lxor_ a b =
  match (a, b) with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | (Zero | One), _ -> One

let mux ~sel d0 d1 =
  match sel with
  | Zero -> d0
  | One -> d1
  | X -> if equal d0 d1 && is_known d0 then d0 else X

let full_add a b cin =
  let sum = lxor_ (lxor_ a b) cin in
  (* Majority: known as soon as two inputs agree. *)
  let carry =
    match (a, b, cin) with
    | Zero, Zero, _ | Zero, _, Zero | _, Zero, Zero -> Zero
    | One, One, _ | One, _, One | _, One, One -> One
    | (Zero | One | X), (Zero | One | X), (Zero | One | X) -> X
  in
  (sum, carry)

let half_add a b = (lxor_ a b, land_ a b)
