type kind =
  | Tie0
  | Tie1
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2
  | Half_adder
  | Full_adder
  | Dff

let all =
  [
    Tie0; Tie1; Inv; Buf; Nand2; Nor2; And2; Or2; Xor2; Xnor2; Mux2;
    Half_adder; Full_adder; Dff;
  ]

let name = function
  | Tie0 -> "TIE0"
  | Tie1 -> "TIE1"
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Mux2 -> "MUX2"
  | Half_adder -> "HA"
  | Full_adder -> "FA"
  | Dff -> "DFF"

let arity = function
  | Tie0 | Tie1 -> 0
  | Inv | Buf | Dff -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Half_adder -> 2
  | Mux2 | Full_adder -> 3

let output_count = function
  | Half_adder | Full_adder -> 2
  | Tie0 | Tie1 | Inv | Buf | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Mux2
  | Dff ->
    1

let is_sequential = function
  | Dff -> true
  | Tie0 | Tie1 | Inv | Buf | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Mux2
  | Half_adder | Full_adder ->
    false

(* Representative 0.13 um values. Area in um^2, capacitance in F. *)
let area = function
  | Tie0 | Tie1 -> 2.0
  | Inv -> 5.1
  | Buf -> 6.4
  | Nand2 | Nor2 -> 6.4
  | And2 | Or2 -> 7.7
  | Xor2 | Xnor2 -> 12.8
  | Mux2 -> 12.8
  | Half_adder -> 20.5
  | Full_adder -> 35.8
  | Dff -> 28.2

let switched_cap = function
  | Tie0 | Tie1 -> 1e-15
  | Inv -> 18e-15
  | Buf -> 24e-15
  | Nand2 | Nor2 -> 26e-15
  | And2 | Or2 -> 30e-15
  | Xor2 | Xnor2 -> 48e-15
  | Mux2 -> 44e-15
  | Half_adder -> 62e-15
  | Full_adder -> 96e-15
  | Dff -> 80e-15

let leak_factor = function
  | Tie0 | Tie1 -> 0.3
  | Inv -> 1.0
  | Buf -> 1.6
  | Nand2 | Nor2 -> 1.4
  | And2 | Or2 -> 2.0
  | Xor2 | Xnor2 -> 3.4
  | Mux2 -> 3.2
  | Half_adder -> 4.8
  | Full_adder -> 8.6
  | Dff -> 7.2

let clk_to_q = 1.6

let delay kind ~output =
  let check limit =
    if output < 0 || output >= limit then
      invalid_arg "Cell.delay: output index out of range"
  in
  match kind with
  | Tie0 | Tie1 ->
    check 1;
    0.0
  | Inv ->
    check 1;
    1.0
  | Buf ->
    check 1;
    1.3
  | Nand2 | Nor2 ->
    check 1;
    1.2
  | And2 | Or2 ->
    check 1;
    1.5
  | Xor2 | Xnor2 ->
    check 1;
    1.9
  | Mux2 ->
    check 1;
    1.7
  | Half_adder ->
    check 2;
    if output = 0 then 1.9 else 1.4
  | Full_adder ->
    check 2;
    (* Sum is slower than the carry: the carry chain is what ripples. *)
    if output = 0 then 2.4 else 1.9
  | Dff ->
    check 1;
    clk_to_q

let eval kind inputs =
  if Array.length inputs <> arity kind then
    invalid_arg
      (Printf.sprintf "Cell.eval: %s expects %d inputs, got %d" (name kind)
         (arity kind) (Array.length inputs));
  match kind with
  | Tie0 -> [| Logic.Zero |]
  | Tie1 -> [| Logic.One |]
  | Inv -> [| Logic.lnot inputs.(0) |]
  | Buf | Dff -> [| inputs.(0) |]
  | Nand2 -> [| Logic.lnot (Logic.land_ inputs.(0) inputs.(1)) |]
  | Nor2 -> [| Logic.lnot (Logic.lor_ inputs.(0) inputs.(1)) |]
  | And2 -> [| Logic.land_ inputs.(0) inputs.(1) |]
  | Or2 -> [| Logic.lor_ inputs.(0) inputs.(1) |]
  | Xor2 -> [| Logic.lxor_ inputs.(0) inputs.(1) |]
  | Xnor2 -> [| Logic.lnot (Logic.lxor_ inputs.(0) inputs.(1)) |]
  | Mux2 -> [| Logic.mux ~sel:inputs.(2) inputs.(0) inputs.(1) |]
  | Half_adder ->
    let sum, carry = Logic.half_add inputs.(0) inputs.(1) in
    [| sum; carry |]
  | Full_adder ->
    let sum, carry = Logic.full_add inputs.(0) inputs.(1) inputs.(2) in
    [| sum; carry |]
