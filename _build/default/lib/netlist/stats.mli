(** Aggregate physical statistics of a netlist — the architectural
    parameters N, area, average per-cell capacitance and leakage that feed
    the power model. *)

type t = {
  cell_total : int;  (** N — number of cells (ties excluded). *)
  area : float;  (** Total area, µm². *)
  avg_switched_cap : float;  (** Average switched capacitance per cell, F. *)
  avg_leak_factor : float;
      (** Average per-cell off-current in units of the technology Io. *)
  dff_count : int;
  by_kind : (Cell.kind * int) list;  (** Instance count per kind, in
      {!Cell.all} order, zero-count kinds omitted. *)
}

val compute : Circuit.t -> t
val pp : Format.formatter -> t -> unit
