(** Structural Verilog export.

    Writes a circuit as a synthesisable gate-level Verilog module plus a
    self-contained primitive library (`optpower_cells.v` semantics inlined
    as module definitions), so generated multipliers can be inspected,
    simulated or re-synthesised with standard tools. *)

val module_name : Circuit.t -> string
(** The circuit name mangled to a legal Verilog identifier. *)

val to_string : Circuit.t -> string
(** Complete Verilog source: primitive definitions (only the kinds actually
    used) followed by the top module with the circuit's primary inputs, a
    [clk] port when flip-flops are present, and its primary outputs. *)

val write_file : path:string -> Circuit.t -> unit
