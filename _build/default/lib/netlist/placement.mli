(** Cell placement and wire-capacitance estimation.

    The paper lumps wiring into the average per-cell capacitance C. This
    module makes that step explicit: cells are placed on a grid (signal-flow
    seeded, improved by greedy swaps on half-perimeter wirelength), each
    net's length is estimated by its bounding half-perimeter (HPWL), and a
    per-micron wire capacitance turns lengths into a refined per-cell
    switched capacitance — so C stops being a hand-picked constant. *)

type t
(** A placement of one circuit. *)

val wire_cap_per_um : float
(** Default 0.2 fF/µm — a typical 0.13 µm mid-layer figure. *)

val place : ?seed:int -> ?improvement_passes:int -> Circuit.t -> t
(** Row-major placement in signal-flow order on a near-square grid sized
    from the total cell area, then [improvement_passes] (default 2) sweeps
    of greedy pairwise swaps that only ever reduce total HPWL. Deterministic
    for a given seed. *)

val position : t -> Circuit.cell_id -> float * float
(** Cell centre, µm. *)

val net_length : t -> Circuit.net -> float
(** Half-perimeter bounding box of the net's driver and sinks, µm
    (0 for single-pin or undriven nets). *)

val total_wirelength : t -> float
(** Sum of {!net_length} over all nets, µm. *)

val wire_cap : ?cap_per_um:float -> t -> Circuit.net -> float
(** Estimated wiring capacitance of one net, F. *)

type refined_stats = {
  base : Stats.t;
  total_wire_cap : float;  (** F. *)
  avg_cap_with_wires : float;
      (** Average switched capacitance per cell including the wiring each
          cell output drives, F. *)
  wire_cap_share : float;  (** Wiring share of total switched cap, 0–1. *)
  avg_net_length : float;  (** µm. *)
}

val refine_stats : ?cap_per_um:float -> Circuit.t -> t -> refined_stats
