(** Structural validation of a circuit. *)

type problem =
  | Undriven_net of Circuit.net * string
      (** A net read by some cell but neither driven nor a primary input. *)
  | Combinational_cycle of Circuit.cell_id list
      (** Cells forming a cycle that contains no flip-flop. *)
  | Dangling_output of Circuit.net * string
      (** A cell output with no reader that is not a primary output. *)

val problem_to_string : problem -> string

val run : Circuit.t -> problem list
(** All problems found. Dangling outputs are reported but benign (e.g. an
    unused carry); undriven nets and cycles make simulation meaningless. *)

val errors : Circuit.t -> problem list
(** Only the fatal subset (undriven nets, combinational cycles). *)

val assert_well_formed : Circuit.t -> unit
(** @raise Failure describing the first fatal problem, if any. *)
