lib/netlist/optimize.mli: Circuit
