lib/netlist/circuit.mli: Cell Logic
