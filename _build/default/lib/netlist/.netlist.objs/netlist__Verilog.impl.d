lib/netlist/verilog.ml: Array Buffer Cell Circuit Fun List Printf String
