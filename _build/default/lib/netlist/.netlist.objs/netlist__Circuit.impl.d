lib/netlist/circuit.ml: Array Cell Hashtbl List Logic Printf String Vec
