lib/netlist/placement.mli: Circuit Stats
