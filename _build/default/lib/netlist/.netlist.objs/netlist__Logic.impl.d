lib/netlist/logic.ml: Format
