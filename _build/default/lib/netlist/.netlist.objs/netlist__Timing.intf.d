lib/netlist/timing.mli: Circuit
