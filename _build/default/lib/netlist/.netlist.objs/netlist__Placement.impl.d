lib/netlist/placement.ml: Array Cell Circuit Float List Numerics Queue Stats
