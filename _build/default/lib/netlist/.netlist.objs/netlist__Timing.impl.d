lib/netlist/timing.ml: Array Cell Circuit Float List Numerics Queue
