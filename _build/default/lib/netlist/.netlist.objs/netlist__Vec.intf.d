lib/netlist/vec.mli:
