lib/netlist/stats.ml: Cell Circuit Format Hashtbl List Numerics Option
