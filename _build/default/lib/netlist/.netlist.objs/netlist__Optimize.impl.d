lib/netlist/optimize.ml: Array Cell Circuit List Logic Topo
