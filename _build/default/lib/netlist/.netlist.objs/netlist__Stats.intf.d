lib/netlist/stats.mli: Cell Circuit Format
