lib/netlist/cell.ml: Array Logic Printf
