lib/netlist/check.mli: Circuit
