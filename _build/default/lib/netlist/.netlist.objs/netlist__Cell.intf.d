lib/netlist/cell.mli: Logic
