lib/netlist/bdd.ml: Array Cell Circuit Hashtbl List Option String Topo
