lib/netlist/topo.ml: Array Cell Circuit List Queue
