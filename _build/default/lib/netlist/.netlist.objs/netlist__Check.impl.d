lib/netlist/check.ml: Array Cell Circuit Hashtbl List Printf String
