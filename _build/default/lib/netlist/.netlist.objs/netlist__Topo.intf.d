lib/netlist/topo.mli: Circuit
