(** Reduced ordered binary decision diagrams and combinational equivalence
    checking.

    Random and corner vectors sample a multiplier's behaviour; a BDD proves
    it. Building both circuits' output functions in one hash-consed manager
    makes functional equivalence a physical-equality check — the classic
    formal way to show the RCA, Wallace, Dadda and Booth cores all compute
    the same product. (Multiplier BDDs grow exponentially with width — the
    textbook worst case — so proofs are run at 8 bits and sampling covers
    16; a node budget aborts gracefully.) *)

type manager
type node

exception Node_limit_exceeded

val create : ?max_nodes:int -> unit -> manager
(** [max_nodes] (default 4_000_000) bounds the unique table;
    @raise Node_limit_exceeded past it. *)

val bdd_true : manager -> node
val bdd_false : manager -> node

val var : manager -> int -> node
(** Variable by index; smaller indices test first (the variable order). *)

val bdd_not : manager -> node -> node
val bdd_and : manager -> node -> node -> node
val bdd_or : manager -> node -> node -> node
val bdd_xor : manager -> node -> node -> node
val ite : manager -> node -> node -> node -> node
(** [ite m sel then_ else_]. *)

val equal : node -> node -> bool
(** Functional equivalence — physical equality under hash-consing. *)

val node_count : manager -> int
(** Live unique-table size (diagnostic). *)

val size : manager -> node -> int
(** Nodes reachable from one root. *)

val eval : manager -> node -> (int -> bool) -> bool
(** Evaluate under an assignment of variable indices. *)

(** {1 Circuits} *)

val outputs_of_circuit :
  manager -> var_of_input:(Circuit.net -> int) -> Circuit.t ->
  (string * node) list
(** Symbolically evaluate a combinational circuit: one BDD per primary
    output (by name). @raise Failure on sequential circuits. *)

type verdict =
  | Equivalent
  | Inequivalent of string  (** Name of a differing output. *)
  | Aborted  (** Node budget exhausted. *)

val check_equivalence :
  ?max_nodes:int -> Circuit.t -> Circuit.t -> verdict
(** Match primary inputs and outputs by name (e.g. [a\[3\]], [p\[7\]]);
    inputs are ordered by interleaving bit indices across buses — the
    standard good order for datapath circuits.
    @raise Invalid_argument if the interfaces do not match. *)
