(** Three-valued logic: 0, 1 and unknown (X).

    Unknowns model uninitialised state; gate evaluation is "optimistic":
    an output is X only when the known inputs do not already determine it. *)

type value = Zero | One | X

val of_bool : bool -> value
val to_bool : value -> bool option
val is_known : value -> bool
val equal : value -> value -> bool
val to_char : value -> char
val pp : Format.formatter -> value -> unit

val lnot : value -> value
val land_ : value -> value -> value
val lor_ : value -> value -> value
val lxor_ : value -> value -> value

val mux : sel:value -> value -> value -> value
(** [mux ~sel d0 d1] selects [d0] when [sel] is 0, [d1] when 1. When the
    select is X the result is known only if both data inputs agree. *)

val full_add : value -> value -> value -> value * value
(** [(sum, carry)] of three inputs; each output is X only when genuinely
    undetermined (e.g. carry is known when two inputs already agree). *)

val half_add : value -> value -> value * value
