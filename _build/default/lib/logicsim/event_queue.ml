type 'a entry = { time : float; order : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable counter : int;
}

let create () = { heap = [||]; len = 0; counter = 0 }
let length t = t.len
let is_empty t = t.len = 0

let earlier a b = a.time < b.time || (a.time = b.time && a.order < b.order)

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && earlier t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.len && earlier t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  let entry = { time; order = t.counter; payload } in
  t.counter <- t.counter + 1;
  let capacity = Array.length t.heap in
  if t.len = capacity then begin
    let heap = Array.make (max 16 (2 * capacity)) entry in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
