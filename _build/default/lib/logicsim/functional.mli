(** Zero-delay reference evaluator.

    Evaluates a circuit cycle-accurately in topological order, ignoring all
    gate delays. Glitches never exist here, so it cannot measure activity —
    its job is to provide an independent oracle: after the event-driven
    {!Simulator} settles, every net must agree with this evaluator
    (differential testing), and multi-cycle behaviour must match tick for
    tick. *)

type state
(** Immutable snapshot: one value per net. *)

val initial : Netlist.Circuit.t -> state
(** Ties driven, flip-flops at their power-up values, primary inputs X,
    everything else propagated. @raise Failure on a combinational cycle. *)

val value : state -> Netlist.Circuit.net -> Netlist.Logic.value

val set_inputs :
  Netlist.Circuit.t ->
  state ->
  (Netlist.Circuit.net * Netlist.Logic.value) list ->
  state
(** Apply primary-input values and re-propagate combinationally.
    @raise Invalid_argument if a net is not a primary input. *)

val clock : Netlist.Circuit.t -> state -> state
(** One synchronous clock edge: every flip-flop captures its D
    simultaneously, then the combinational fabric re-propagates. *)

val values : state -> Netlist.Logic.value array
(** Copy of the full net-value vector. *)
