lib/logicsim/activity.ml: Array Bus Float List Netlist Numerics Simulator
