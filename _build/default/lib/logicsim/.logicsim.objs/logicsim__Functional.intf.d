lib/logicsim/functional.mli: Netlist
