lib/logicsim/event_queue.mli:
