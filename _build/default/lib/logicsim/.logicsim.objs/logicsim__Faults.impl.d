lib/logicsim/faults.ml: Array List Netlist Numerics
