lib/logicsim/faults.mli: Netlist Numerics
