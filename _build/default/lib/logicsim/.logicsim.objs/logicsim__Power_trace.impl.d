lib/logicsim/power_trace.ml: Array Float List Netlist Numerics Printf Simulator String
