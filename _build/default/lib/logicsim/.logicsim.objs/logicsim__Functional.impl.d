lib/logicsim/functional.ml: Array List Netlist Queue
