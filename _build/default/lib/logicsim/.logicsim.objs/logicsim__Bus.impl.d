lib/logicsim/bus.ml: Array Netlist Simulator
