lib/logicsim/event_queue.ml: Array
