lib/logicsim/vcd.mli: Netlist Simulator
