lib/logicsim/vcd.ml: Buffer Char Fun List Netlist Printf Simulator String
