lib/logicsim/activity.mli: Netlist Numerics Simulator
