lib/logicsim/bus.mli: Netlist Simulator
