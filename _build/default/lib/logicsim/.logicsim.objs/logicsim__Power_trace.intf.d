lib/logicsim/power_trace.mli: Activity Simulator
