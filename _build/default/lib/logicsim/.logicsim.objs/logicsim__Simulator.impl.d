lib/logicsim/simulator.ml: Array Event_queue Float List Netlist
