lib/logicsim/simulator.mli: Netlist
