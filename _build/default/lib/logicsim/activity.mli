(** Switching-activity extraction — the "a" parameter of Eq. 1.

    The paper defines activity as the number of switching cells per clock
    cycle divided by the total cell count, with every output transition
    (including glitches) counted, and — crucially for the sequential
    multipliers — cycles counted at the {e data} (throughput) clock, not the
    faster internal clock. Activity can therefore exceed 1. *)

type result = {
  activity : float;  (** a — average transitions per cell per data cycle. *)
  toggles_per_cycle : float;
  glitch_ratio : float;
      (** Fraction of transitions in excess of the final-value changes —
          pure glitch power. *)
  cycles : int;  (** Data cycles measured (after warm-up). *)
  per_cell : float array;  (** Average transitions per data cycle, per cell. *)
}

type drive = Simulator.t -> cycle:int -> unit
(** Applies stimulus for one data cycle: set primary inputs (the harness
    settles and clocks). *)

val measure :
  ?warmup:int ->
  ?ticks_per_cycle:int ->
  cycles:int ->
  drive:drive ->
  Simulator.t ->
  result
(** Run [warmup] (default 4) unmeasured data cycles, then [cycles] measured
    ones. Each data cycle applies the stimulus, then performs
    [ticks_per_cycle] clock ticks (default 1 — more for architectures whose
    internal clock is a multiple of the data clock), settling after each. *)

val random_drive :
  rng:Numerics.Rng.t -> buses:Netlist.Circuit.net array list -> drive
(** Uniform random value on each listed input bus every data cycle. *)

type converged = {
  result : result;  (** Aggregate over every measured cycle. *)
  relative_stderr : float;
      (** Standard error of the per-batch activity over its mean. *)
  batches : int;
}

val measure_until :
  ?warmup:int ->
  ?ticks_per_cycle:int ->
  ?batch:int ->
  ?rel_tol:float ->
  ?max_cycles:int ->
  drive:drive ->
  Simulator.t ->
  converged
(** Measure in batches (default 40 cycles) until the activity estimate's
    relative standard error drops below [rel_tol] (default 2 %) or
    [max_cycles] (default 2000) is reached — a principled stopping rule for
    the "a" extraction instead of a fixed cycle count. *)
