module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic

type state = { nets : Logic.value array }

let value state net = state.nets.(net)
let values state = Array.copy state.nets

let is_source (cell : C.cell) =
  Cell.is_sequential cell.kind || Cell.arity cell.kind = 0

(* Combinational cells in dependency order (Kahn); sources excluded. *)
let topo_order circuit =
  let count = C.cell_count circuit in
  let indegree = Array.make count 0 in
  let fanout = C.fanout circuit in
  C.iter_cells
    (fun cell ->
      if not (is_source cell) then
        Array.iter
          (fun n ->
            match C.driver circuit n with
            | Some (d, _) when not (is_source (C.get_cell circuit d)) ->
              indegree.(cell.id) <- indegree.(cell.id) + 1
            | Some _ | None -> ())
          cell.inputs)
    circuit;
  let queue = Queue.create () in
  C.iter_cells
    (fun cell ->
      if (not (is_source cell)) && indegree.(cell.id) = 0 then
        Queue.add cell.id queue)
    circuit;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr visited;
    order := id :: !order;
    let cell = C.get_cell circuit id in
    Array.iter
      (fun n ->
        List.iter
          (fun (reader, _) ->
            if not (is_source (C.get_cell circuit reader)) then begin
              indegree.(reader) <- indegree.(reader) - 1;
              if indegree.(reader) = 0 then Queue.add reader queue
            end)
          fanout.(n))
      cell.outputs
  done;
  let combinational =
    C.fold_cells (fun acc c -> if is_source c then acc else acc + 1) 0 circuit
  in
  if !visited < combinational then
    failwith "Functional: combinational cycle detected";
  List.rev !order

let propagate circuit nets =
  List.iter
    (fun id ->
      let cell = C.get_cell circuit id in
      let inputs = Array.map (fun n -> nets.(n)) cell.inputs in
      let outputs = Cell.eval cell.kind inputs in
      Array.iteri (fun o n -> nets.(n) <- outputs.(o)) cell.outputs)
    (topo_order circuit);
  nets

let initial circuit =
  let nets = Array.make (C.net_count circuit) Logic.X in
  C.iter_cells
    (fun cell ->
      match cell.kind with
      | Cell.Tie0 -> nets.(cell.outputs.(0)) <- Logic.Zero
      | Cell.Tie1 -> nets.(cell.outputs.(0)) <- Logic.One
      | Cell.Dff -> nets.(cell.outputs.(0)) <- C.dff_init circuit cell.id
      | Cell.Inv | Cell.Buf | Cell.Nand2 | Cell.Nor2 | Cell.And2 | Cell.Or2
      | Cell.Xor2 | Cell.Xnor2 | Cell.Mux2 | Cell.Half_adder
      | Cell.Full_adder ->
        ())
    circuit;
  { nets = propagate circuit nets }

let set_inputs circuit state bindings =
  List.iter
    (fun (net, _) ->
      if not (C.is_primary_input circuit net) then
        invalid_arg "Functional.set_inputs: not a primary input")
    bindings;
  let nets = Array.copy state.nets in
  List.iter (fun (net, v) -> nets.(net) <- v) bindings;
  { nets = propagate circuit nets }

let clock circuit state =
  let nets = Array.copy state.nets in
  (* Sample all D inputs against the pre-edge values, then update Qs. *)
  let captures = ref [] in
  C.iter_cells
    (fun cell ->
      if Cell.is_sequential cell.kind then
        captures := (cell.outputs.(0), state.nets.(cell.inputs.(0))) :: !captures)
    circuit;
  List.iter (fun (q, v) -> nets.(q) <- v) !captures;
  { nets = propagate circuit nets }
