(** Driving and reading integer values on net buses (LSB-first). *)

val to_values : width:int -> int -> Netlist.Logic.value array
(** Little-endian binary expansion. @raise Invalid_argument if the value
    does not fit in [width] bits or is negative. *)

val of_values : Netlist.Logic.value array -> int option
(** [None] if any bit is X. *)

val drive : Simulator.t -> Netlist.Circuit.net array -> int -> unit
(** Apply an integer to a primary-input bus (no settle). *)

val read : Simulator.t -> Netlist.Circuit.net array -> int option
(** Read an integer off any net bus. *)

val read_exn : Simulator.t -> Netlist.Circuit.net array -> int
(** @raise Failure when a bit is X. *)
