(** Priority queue of scheduled net transitions (binary min-heap).

    Ties in time are broken by insertion order, making simulation
    deterministic. Cancellation (inertial-delay behaviour) is handled by the
    simulator via serial numbers; the queue itself only orders events. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Earliest event, [None] when empty. *)

val peek_time : 'a t -> float option
