(** Value Change Dump (IEEE 1364 §18) writer.

    Records selected nets of a running {!Simulator} and emits a standard
    VCD file viewable in GTKWave & co. Sampling is explicit: call
    {!sample} whenever the simulation reaches a point of interest
    (typically after each settle); only changed values are dumped. *)

type t

val create :
  ?timescale:string ->
  Simulator.t ->
  nets:(Netlist.Circuit.net * string) list ->
  t
(** Start a recording of the given nets (with display names).
    [timescale] defaults to ["1ns"]. Duplicate names are disambiguated. *)

val sample : t -> time:float -> unit
(** Record the current simulator values at [time] (in timescale units;
    must not decrease between calls). *)

val contents : t -> string
(** The complete VCD document (header + change records so far). *)

val write_file : path:string -> t -> unit
