(** Event-driven gate-level simulator with inertial delays.

    Replaces the timing-annotated ModelSIM runs the paper used to extract
    switching activity. Gate delays come from {!Netlist.Cell.delay}
    (normalised inverter units), so unequal path depths produce the same
    glitching behaviour that penalises the diagonally pipelined multipliers
    in the paper.

    Toggle accounting: a committed 0↔1 transition on a cell's output
    increments that cell's counter (X resolutions are not counted). The
    inertial model cancels a pending transition when a newer evaluation
    reverts it before it commits — pulses shorter than the gate delay are
    swallowed, longer ones propagate as glitches. *)

type t

val create : Netlist.Circuit.t -> t
(** Builds simulation state, initialises ties and flip-flop power-up values
    and settles. @raise Failure on a malformed circuit
    (see {!Netlist.Check}). *)

val circuit : t -> Netlist.Circuit.t
val now : t -> float

val value : t -> Netlist.Circuit.net -> Netlist.Logic.value

val set_input : t -> Netlist.Circuit.net -> Netlist.Logic.value -> unit
(** Schedule a primary-input change at the current time.
    @raise Invalid_argument if the net is not a primary input. *)

val settle : ?event_limit:int -> t -> unit
(** Run the event loop until quiescent; advances [now] past the last event.
    @raise Failure if [event_limit] (default 10 million) is exceeded —
    indicates oscillation. *)

val clock_tick : t -> unit
(** Synchronous clock edge: samples every flip-flop's D simultaneously and
    schedules Q updates after the clk→q delay. Call {!settle} afterwards. *)

val cell_toggles : t -> int array
(** Per-cell committed toggle counts since the last reset. *)

val total_toggles : t -> int
val reset_toggles : t -> unit

val snapshot_values : t -> Netlist.Logic.value array
(** Copy of all net values (for per-cycle glitch accounting). *)

val events_processed : t -> int
(** Committed events since creation (monotonic; not reset by
    {!reset_toggles}). *)
