(** Per-cycle switching-energy traces.

    Activity condenses a whole run into one number; the trace keeps the
    per-data-cycle switched capacitance, exposing peak-to-average ratios
    and data-dependent power — useful for power-grid sizing and for seeing
    a sequential multiplier's burst pattern. *)

type cycle_record = {
  index : int;
  toggles : int;  (** Committed 0↔1 transitions in this data cycle. *)
  switched_cap : float;  (** Capacitance-weighted transitions, F. *)
  energy : float;  (** [switched_cap × Vdd²], J (at the given supply). *)
}

type t = {
  cycles : cycle_record list;  (** Chronological. *)
  vdd : float;
  average_energy : float;  (** J per data cycle. *)
  peak_energy : float;
  peak_to_average : float;
}

val record :
  ?warmup:int ->
  ?ticks_per_cycle:int ->
  vdd:float ->
  cycles:int ->
  drive:Activity.drive ->
  Simulator.t ->
  t
(** Run like {!Activity.measure} but keep the per-cycle breakdown. The
    capacitance weight of a toggle is its driving cell's
    {!Netlist.Cell.switched_cap}. *)

val to_csv : t -> string
(** "cycle,toggles,switched_cap_f,energy_j" rows. *)
