module Logic = Netlist.Logic

type probe = {
  net : Netlist.Circuit.net;
  code : string;
  mutable last : Logic.value option;
}

type t = {
  sim : Simulator.t;
  timescale : string;
  probes : probe list;
  names : (string * string) list;  (* code, display name *)
  changes : Buffer.t;
  mutable last_time : float;
  mutable started : bool;
}

(* VCD identifier codes: printable ASCII 33..126, shortest first. *)
let code_of_index index =
  let base = 94 in
  let rec build i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else build ((i / base) - 1) acc
  in
  build index ""

let create ?(timescale = "1ns") sim ~nets =
  let probes =
    List.mapi
      (fun i (net, _) -> { net; code = code_of_index i; last = None })
      nets
  in
  let names =
    List.map2 (fun probe (_, name) -> (probe.code, name)) probes nets
  in
  {
    sim;
    timescale;
    probes;
    names;
    changes = Buffer.create 1024;
    last_time = neg_infinity;
    started = false;
  }

let char_of_value = function
  | Logic.Zero -> '0'
  | Logic.One -> '1'
  | Logic.X -> 'x'

let sample t ~time =
  if t.started && time < t.last_time then
    invalid_arg "Vcd.sample: time went backwards";
  let pending = Buffer.create 64 in
  List.iter
    (fun probe ->
      let now = Simulator.value t.sim probe.net in
      let changed =
        match probe.last with
        | None -> true
        | Some previous -> not (Logic.equal previous now)
      in
      if changed then begin
        probe.last <- Some now;
        Buffer.add_char pending (char_of_value now);
        Buffer.add_string pending probe.code;
        Buffer.add_char pending '\n'
      end)
    t.probes;
  if Buffer.length pending > 0 || not t.started then begin
    Buffer.add_string t.changes (Printf.sprintf "#%d\n" (int_of_float time));
    Buffer.add_buffer t.changes pending
  end;
  t.started <- true;
  t.last_time <- time

let header t =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer "$date optpower $end\n";
  Buffer.add_string buffer "$version optpower logicsim $end\n";
  Buffer.add_string buffer (Printf.sprintf "$timescale %s $end\n" t.timescale);
  Buffer.add_string buffer "$scope module top $end\n";
  List.iter
    (fun (code, name) ->
      Buffer.add_string buffer
        (Printf.sprintf "$var wire 1 %s %s $end\n" code name))
    t.names;
  Buffer.add_string buffer "$upscope $end\n$enddefinitions $end\n";
  Buffer.contents buffer

let contents t = header t ^ Buffer.contents t.changes

let write_file ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
