(** Single-stuck-at fault simulation.

    The classic manufacturing-test model: a net permanently stuck at 0 or 1.
    Simulating every fault against a vector set measures the set's fault
    coverage — and doubles as a quality check on the random vectors the
    activity extraction relies on (vectors that exercise the logic poorly
    would also measure activity poorly). Combinational circuits only. *)

type polarity = Stuck_at_0 | Stuck_at_1

type fault = {
  net : Netlist.Circuit.net;
  polarity : polarity;
}

val enumerate : Netlist.Circuit.t -> fault list
(** Both polarities on every primary input and cell-output net (tie outputs
    excluded — a tie stuck at its own value is not a fault). *)

val evaluate_with_fault :
  Netlist.Circuit.t ->
  fault:fault option ->
  inputs:(Netlist.Circuit.net * Netlist.Logic.value) list ->
  Netlist.Logic.value array
(** Zero-delay evaluation with the fault (if any) forced throughout
    propagation. @raise Failure on sequential circuits or combinational
    cycles. *)

type coverage = {
  total : int;
  detected : int;
  coverage_pct : float;
  undetected : fault list;
}

val coverage :
  ?faults:fault list ->
  Netlist.Circuit.t ->
  vectors:(Netlist.Circuit.net * Netlist.Logic.value) list list ->
  outputs:Netlist.Circuit.net list ->
  coverage
(** A fault is detected when at least one vector makes some listed output
    differ from the fault-free value. [faults] defaults to
    {!enumerate}'s full list. *)

val random_vectors :
  rng:Numerics.Rng.t ->
  circuit:Netlist.Circuit.t ->
  count:int ->
  (Netlist.Circuit.net * Netlist.Logic.value) list list
(** Uniform random assignments over all primary inputs. *)
