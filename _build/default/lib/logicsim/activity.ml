module C = Netlist.Circuit

type result = {
  activity : float;
  toggles_per_cycle : float;
  glitch_ratio : float;
  cycles : int;
  per_cell : float array;
}

type drive = Simulator.t -> cycle:int -> unit

let run_cycle ~ticks_per_cycle ~drive sim ~cycle =
  drive sim ~cycle;
  Simulator.settle sim;
  for _ = 1 to ticks_per_cycle do
    Simulator.clock_tick sim;
    Simulator.settle sim
  done

(* Count transitions a cycle strictly needed: one per cell output whose
   settled value changed across the cycle. Anything beyond is glitch. *)
let necessary_transitions circuit ~before ~after =
  let count = ref 0 in
  C.iter_cells
    (fun cell ->
      Array.iter
        (fun net ->
          match (before.(net), after.(net)) with
          | Netlist.Logic.Zero, Netlist.Logic.One
          | Netlist.Logic.One, Netlist.Logic.Zero ->
            incr count
          | (Netlist.Logic.Zero | Netlist.Logic.One | Netlist.Logic.X), _ ->
            ())
        cell.outputs)
    circuit;
  !count

let measure ?(warmup = 4) ?(ticks_per_cycle = 1) ~cycles ~drive sim =
  if cycles < 1 then invalid_arg "Activity.measure: cycles < 1";
  if ticks_per_cycle < 1 then
    invalid_arg "Activity.measure: ticks_per_cycle < 1";
  for cycle = 0 to warmup - 1 do
    run_cycle ~ticks_per_cycle ~drive sim ~cycle
  done;
  Simulator.reset_toggles sim;
  let circuit = Simulator.circuit sim in
  let cell_count = C.cell_count circuit in
  let necessary_total = ref 0 in
  let before = ref (Simulator.snapshot_values sim) in
  for cycle = 0 to cycles - 1 do
    run_cycle ~ticks_per_cycle ~drive sim ~cycle:(warmup + cycle);
    let after = Simulator.snapshot_values sim in
    necessary_total :=
      !necessary_total
      + necessary_transitions circuit ~before:!before ~after;
    before := after
  done;
  let toggles = Simulator.cell_toggles sim in
  let total = Simulator.total_toggles sim in
  let n =
    C.fold_cells
      (fun acc cell ->
        match cell.kind with
        | Netlist.Cell.Tie0 | Netlist.Cell.Tie1 -> acc
        | Netlist.Cell.Inv | Netlist.Cell.Buf | Netlist.Cell.Nand2
        | Netlist.Cell.Nor2 | Netlist.Cell.And2 | Netlist.Cell.Or2
        | Netlist.Cell.Xor2 | Netlist.Cell.Xnor2 | Netlist.Cell.Mux2
        | Netlist.Cell.Half_adder | Netlist.Cell.Full_adder
        | Netlist.Cell.Dff ->
          acc + 1)
      0 circuit
  in
  let fcycles = float_of_int cycles in
  let per_cell =
    Array.init cell_count (fun i -> float_of_int toggles.(i) /. fcycles)
  in
  let toggles_per_cycle = float_of_int total /. fcycles in
  let glitch_ratio =
    if total = 0 then 0.0
    else
      float_of_int (total - !necessary_total) /. float_of_int total
  in
  {
    activity = toggles_per_cycle /. float_of_int (max 1 n);
    toggles_per_cycle;
    glitch_ratio = Float.max 0.0 glitch_ratio;
    cycles;
    per_cell;
  }

type converged = {
  result : result;
  relative_stderr : float;
  batches : int;
}

let measure_until ?(warmup = 4) ?(ticks_per_cycle = 1) ?(batch = 40)
    ?(rel_tol = 0.02) ?(max_cycles = 2000) ~drive sim =
  if batch < 2 then invalid_arg "Activity.measure_until: batch < 2";
  if rel_tol <= 0.0 then invalid_arg "Activity.measure_until: rel_tol <= 0";
  for cycle = 0 to warmup - 1 do
    run_cycle ~ticks_per_cycle ~drive sim ~cycle
  done;
  Simulator.reset_toggles sim;
  let circuit = Simulator.circuit sim in
  let n =
    max 1
      (C.fold_cells
         (fun acc cell ->
           match cell.kind with
           | Netlist.Cell.Tie0 | Netlist.Cell.Tie1 -> acc
           | _ -> acc + 1)
         0 circuit)
  in
  let batch_activities = ref [] in
  let necessary_total = ref 0 in
  let before = ref (Simulator.snapshot_values sim) in
  let total_cycles = ref 0 in
  let batches = ref 0 in
  let stderr_ok () =
    match !batch_activities with
    | _ :: _ :: _ as xs ->
      let mean = Numerics.Stats.mean xs in
      if mean <= 0.0 then true
      else begin
        let stderr =
          Numerics.Stats.stddev xs
          /. sqrt (float_of_int (List.length xs))
        in
        stderr /. mean < rel_tol
      end
    | [ _ ] | [] -> false
  in
  let run_batch () =
    let start_toggles = Simulator.total_toggles sim in
    for i = 0 to batch - 1 do
      run_cycle ~ticks_per_cycle ~drive sim
        ~cycle:(warmup + !total_cycles + i);
      let after = Simulator.snapshot_values sim in
      necessary_total :=
        !necessary_total + necessary_transitions circuit ~before:!before ~after;
      before := after
    done;
    total_cycles := !total_cycles + batch;
    incr batches;
    let batch_toggles = Simulator.total_toggles sim - start_toggles in
    batch_activities :=
      float_of_int batch_toggles /. float_of_int (batch * n)
      :: !batch_activities
  in
  run_batch ();
  while (not (stderr_ok ())) && !total_cycles + batch <= max_cycles do
    run_batch ()
  done;
  let cycles = !total_cycles in
  let total = Simulator.total_toggles sim in
  let toggles = Simulator.cell_toggles sim in
  let fcycles = float_of_int cycles in
  let relative_stderr =
    match !batch_activities with
    | _ :: _ :: _ as xs ->
      let mean = Numerics.Stats.mean xs in
      if mean <= 0.0 then 0.0
      else
        Numerics.Stats.stddev xs /. sqrt (float_of_int (List.length xs)) /. mean
    | [ _ ] | [] -> infinity
  in
  {
    result =
      {
        activity = float_of_int total /. (fcycles *. float_of_int n);
        toggles_per_cycle = float_of_int total /. fcycles;
        glitch_ratio =
          (if total = 0 then 0.0
           else
             Float.max 0.0
               (float_of_int (total - !necessary_total) /. float_of_int total));
        cycles;
        per_cell =
          Array.init (C.cell_count circuit) (fun i ->
              float_of_int toggles.(i) /. fcycles);
      };
    relative_stderr;
    batches = !batches;
  }

let random_drive ~rng ~buses =
  let drive sim ~cycle =
    ignore cycle;
    List.iter
      (fun bus ->
        let width = Array.length bus in
        let bound = if width >= 62 then max_int else 1 lsl width in
        Bus.drive sim bus (Numerics.Rng.int rng bound))
      buses
  in
  drive
