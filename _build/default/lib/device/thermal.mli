(** Temperature dependence and a self-heating fixpoint.

    Sub-threshold leakage grows steeply with temperature (the thermal
    voltage in the exponent plus carrier-density effects), so a circuit's
    optimal working point shifts with die temperature, and the die
    temperature depends on the dissipated power. [self_heating] closes the
    loop: T = T_ambient + R_th · Ptot(T), iterated to a fixpoint. *)

val at_temperature : Technology.t -> temperature:float -> Technology.t
(** The technology re-evaluated at a die temperature: Ut scales linearly
    with T; the off-current magnitude follows
    [Io(T) = Io(T0) · exp((T − T0)/T_leak)] with T_leak ≈ 25 K (roughly a
    decade per 57 K, a typical 0.13 µm sub-threshold figure); the threshold
    falls by ≈ 1 mV/K. *)

val leakage_doubling_interval : float
(** Temperature increase that roughly doubles the off-current, K. *)

type equilibrium = {
  temperature : float;  (** Converged die temperature, K. *)
  ptot : float;  (** Total power at the converged optimum, W. *)
  iterations : int;
}

val self_heating :
  ?ambient:float ->
  ?r_th:float ->
  ?tol:float ->
  ?max_iter:int ->
  optimum_at:(Technology.t -> float) ->
  Technology.t ->
  equilibrium
(** [self_heating ~optimum_at tech] iterates
    T ← T_amb + R_th · optimum_at(tech@T) until the temperature moves less
    than [tol] (default 0.01 K). [r_th] defaults to 40 K/W (a small QFN
    package), [ambient] to 300 K. @raise Failure if not converged within
    [max_iter] (default 100) iterations. *)
