(** Physical constants and thermal voltage. *)

val boltzmann : float
(** Boltzmann constant, J/K. *)

val electron_charge : float
(** Elementary charge, C. *)

val room_temperature : float
(** 300 K — the temperature assumed throughout the paper. *)

val thermal_voltage : temperature:float -> float
(** [Ut = k*T/q] in volts (≈ 25.85 mV at 300 K). *)
