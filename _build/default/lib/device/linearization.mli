(** Linearisation of Vdd^(1/α) — Eq. 7 and Figure 2 of the paper.

    Over a practical supply range, [Vdd^(1/alpha)] is close to a straight
    line [A * Vdd + B]. The constants A and B feed the closed-form optimum
    (Eqs. 8–13). The paper fits over Vdd in \[0.3, 1.0\] V and reports
    A = 0.671, B = 0.347 for α = 1.86. *)

type t = {
  alpha : float;
  a : float;  (** Slope A of Eq. 7. *)
  b : float;  (** Intercept B of Eq. 7. *)
  lo : float;  (** Lower end of the fitting range, V. *)
  hi : float;  (** Upper end of the fitting range, V. *)
  max_error : float;  (** Largest |Vdd^(1/α) − (A·Vdd + B)| on the range. *)
}

val default_lo : float
(** 0.3 V — the paper's fitting range lower bound. *)

val default_hi : float
(** 1.0 V — the paper's fitting range upper bound. *)

val fit : ?lo:float -> ?hi:float -> ?samples:int -> alpha:float -> unit -> t
(** Least-squares fit of [Vdd^(1/alpha)] on [\[lo, hi\]]
    (defaults: the paper's 0.3–1.0 V, 201 samples). *)

val for_technology : Technology.t -> t
(** Fit using the technology's α over the default range. *)

val eval_exact : t -> float -> float
(** [vdd ** (1 / alpha)]. *)

val eval_linear : t -> float -> float
(** [A * vdd + B]. *)

val figure2_series : t -> samples:int -> (float * float * float) list
(** [(vdd, exact, linear)] triples over the fitting range — the two curves of
    Figure 2. *)
