let leakage_doubling_interval = 25.0 *. Float.log 2.0

let at_temperature (tech : Technology.t) ~temperature =
  let t0 = tech.temperature in
  let dt = temperature -. t0 in
  {
    tech with
    temperature;
    io = tech.io *. Float.exp (dt /. 25.0);
    vth0_nom = tech.vth0_nom -. (1e-3 *. dt);
  }

type equilibrium = { temperature : float; ptot : float; iterations : int }

let self_heating ?(ambient = 300.0) ?(r_th = 40.0) ?(tol = 0.01)
    ?(max_iter = 100) ~optimum_at (tech : Technology.t) =
  let rec iterate temperature iterations =
    if iterations > max_iter then
      failwith "Thermal.self_heating: no convergence";
    let ptot = optimum_at (at_temperature tech ~temperature) in
    let next = ambient +. (r_th *. ptot) in
    (* Damped update for stability at large R_th. *)
    let blended = (0.5 *. temperature) +. (0.5 *. next) in
    if Float.abs (blended -. temperature) < tol then
      { temperature = blended; ptot; iterations }
    else iterate blended (iterations + 1)
  in
  iterate ambient 0
