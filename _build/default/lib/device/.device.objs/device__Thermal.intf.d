lib/device/thermal.mli: Technology
