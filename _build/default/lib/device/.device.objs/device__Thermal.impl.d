lib/device/thermal.ml: Float Technology
