lib/device/technology.ml: Constants Format
