lib/device/constants.ml:
