lib/device/technology.mli: Format
