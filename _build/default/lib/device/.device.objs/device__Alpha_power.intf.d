lib/device/alpha_power.mli: Technology
