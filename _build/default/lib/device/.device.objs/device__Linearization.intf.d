lib/device/linearization.mli: Technology
