lib/device/linearization.ml: List Numerics Technology
