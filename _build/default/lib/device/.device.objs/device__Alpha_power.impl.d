lib/device/alpha_power.ml: Float Technology
