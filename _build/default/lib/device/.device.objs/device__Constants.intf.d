lib/device/constants.mli:
