(** Sampled analog waveforms produced by the transient solver. *)

type t
(** A waveform: strictly increasing times with one voltage per time. *)

val create : unit -> t
val append : t -> time:float -> value:float -> unit
val length : t -> int
val times : t -> float array
val values : t -> float array

val value_at : t -> float -> float
(** Linear interpolation; clamps outside the recorded span. *)

val crossings : t -> level:float -> rising:bool -> float list
(** Interpolated times at which the waveform crosses [level] in the given
    direction, in chronological order. *)

val period : t -> level:float -> float option
(** Average spacing of the last few rising crossings of [level] — the
    oscillation period once the waveform has settled. [None] when fewer than
    three rising crossings exist. *)
