(** Technology-parameter extraction from simulated measurements.

    Mirrors the paper's characterisation flow: (α, ζ) come from fitting the
    delay model t = ζ·Vdd/Ion to ring-oscillator stage delays measured over a
    supply sweep; (Io, n) come from the sub-threshold leakage slope,
    ln I_off = ln Io − Vth/(n·Ut). *)

type delay_fit = {
  alpha : float;
  zeta : float;  (** Per-gate delay coefficient, F. *)
  rms_error : float;  (** Relative RMS of the fit over the measurements. *)
}

type leakage_fit = {
  io : float;  (** Off-current at Vgs = Vth, A. *)
  n : float;  (** Weak-inversion slope factor. *)
}

val fit_delay :
  Device.Technology.t -> Ring_oscillator.measurement list -> delay_fit
(** Least-squares fit of (α, ζ) to measured stage delays; Io and n are taken
    from the technology record (as the paper fixes them from I-V data).
    @raise Invalid_argument on fewer than three measurements. *)

val leakage_samples :
  Device.Technology.t ->
  rng:Numerics.Rng.t ->
  noise:float ->
  vths:float list ->
  (float * float) list
(** Synthetic leakage "measurements": (Vth, I_off) with multiplicative
    log-normal noise of relative magnitude [noise]. *)

val fit_leakage : ut:float -> (float * float) list -> leakage_fit
(** Fit (Io, n) from (Vth, I_off) pairs via the log-linear sub-threshold
    slope. @raise Invalid_argument on fewer than two points. *)

val iv_samples :
  Device.Technology.t ->
  rng:Numerics.Rng.t ->
  noise:float ->
  vth:float ->
  vdds:float list ->
  (float * float) list
(** Synthetic on-current I-V "measurements": (Vdd, Ion) at a fixed
    effective threshold, with multiplicative log-normal noise. *)

type iv_fit = {
  alpha_iv : float;
  io_drive : float;  (** The current prefactor Io·(α/(e·n·Ut))^α, A/V^α. *)
  r_squared : float;
}

val fit_alpha_iv : vth:float -> (float * float) list -> iv_fit
(** Recover α from I-V data by the log-log slope:
    ln Ion = ln(prefactor) + α·ln(Vdd − Vth) is a line in ln overdrive.
    @raise Invalid_argument on fewer than two valid points or points with
    Vdd ≤ Vth. *)

val characterize :
  ?stages:int ->
  ?load_cap:float ->
  ?vdds:float list ->
  Device.Technology.t ->
  delay_fit
(** End-to-end re-characterisation: simulate rings over a default supply
    sweep and fit. Recovers the golden technology's α within a few percent —
    asserted by the test suite. *)
