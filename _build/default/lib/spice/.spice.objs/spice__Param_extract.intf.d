lib/spice/param_extract.mli: Device Numerics Ring_oscillator
