lib/spice/waveform.mli:
