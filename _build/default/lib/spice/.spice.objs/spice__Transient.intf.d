lib/spice/transient.mli: Device Waveform
