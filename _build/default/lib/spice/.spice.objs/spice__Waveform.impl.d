lib/spice/waveform.ml: Array List
