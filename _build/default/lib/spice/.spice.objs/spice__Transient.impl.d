lib/spice/transient.ml: Array Device Float Waveform
