lib/spice/param_extract.ml: Array Device Float List Numerics Ring_oscillator
