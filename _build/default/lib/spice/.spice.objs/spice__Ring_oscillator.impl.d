lib/spice/ring_oscillator.ml: Array Device Float List Transient Waveform
