lib/spice/ring_oscillator.mli: Device Transient
