type measurement = {
  vdd : float;
  vth : float;
  period : float;
  stage_delay : float;
}

let stage_delay_fast (config : Transient.config) =
  let ion =
    Device.Alpha_power.on_current config.tech ~vdd:config.vdd ~vth:config.vth
  in
  config.load_cap *. config.vdd /. ion

let simulate (config : Transient.config) ~stages =
  if stages < 3 || stages mod 2 = 0 then
    invalid_arg "Ring_oscillator.simulate: stages must be odd and >= 3";
  let estimate = stage_delay_fast config in
  let stop_time = 12.0 *. estimate *. float_of_int stages in
  let time_step = Float.min config.time_step (estimate /. 40.0) in
  (* Ring state: node k driven by inverter whose input is node (k-1) mod n.
     Start near a travelling transition to kick off oscillation. *)
  let node =
    Array.init stages (fun k -> if k mod 2 = 0 then config.vdd else 0.0)
  in
  let wave = Waveform.create () in
  let steps = int_of_float (Float.ceil (stop_time /. time_step)) in
  let record_every = max 1 (steps / 20000) in
  Waveform.append wave ~time:0.0 ~value:node.(0);
  for step = 1 to steps do
    let time = float_of_int step *. time_step in
    let previous = Array.copy node in
    for k = 0 to stages - 1 do
      let input = previous.((k + stages - 1) mod stages) in
      let out = previous.(k) in
      let dv =
        if input > config.vdd /. 2.0 then
          -.Transient.device_current config ~vds:out *. time_step
          /. config.load_cap
        else
          Transient.device_current config ~vds:(config.vdd -. out)
          *. time_step /. config.load_cap
      in
      node.(k) <- Float.min config.vdd (Float.max 0.0 (out +. dv))
    done;
    if step mod record_every = 0 then
      Waveform.append wave ~time ~value:node.(0)
  done;
  match Waveform.period wave ~level:(config.vdd /. 2.0) with
  | None -> failwith "Ring_oscillator.simulate: ring did not oscillate"
  | Some period ->
    {
      vdd = config.vdd;
      vth = config.vth;
      period;
      stage_delay = period /. (2.0 *. float_of_int stages);
    }

let sweep_vdd (tech : Device.Technology.t) ~load_cap ~stages ~vdds =
  let measure vdd =
    let vth = Device.Alpha_power.vth_effective tech ~vth0:tech.vth0_nom ~vdd in
    let config =
      { (Transient.default_config tech) with vdd; vth; load_cap }
    in
    simulate config ~stages
  in
  List.map measure vdds
