type config = {
  tech : Device.Technology.t;
  vdd : float;
  vth : float;
  load_cap : float;
  time_step : float;
}

let default_config (tech : Device.Technology.t) =
  {
    tech;
    vdd = tech.vdd_nom;
    vth = Device.Technology.vth_nom_effective tech;
    load_cap = 30e-15;
    time_step = 1e-12;
  }

let device_current config ~vds =
  if vds <= 0.0 then 0.0
  else begin
    let ion =
      Device.Alpha_power.on_current config.tech ~vdd:config.vdd ~vth:config.vth
    in
    (* Smooth saturation/linear transition: full drive in saturation,
       tanh roll-off below Vdsat. *)
    let vdsat = Float.max 0.05 (0.5 *. (config.vdd -. config.vth)) in
    ion *. Float.tanh (2.0 *. vds /. vdsat)
  end

let inverter_chain config ~stages ~stop_time =
  if stages < 1 then invalid_arg "Transient.inverter_chain: stages < 1";
  if config.vdd <= config.vth then
    invalid_arg "Transient.inverter_chain: vdd <= vth";
  (* Stage outputs alternate between Vdd and 0 at rest: input starts low, so
     stage 0 output starts high, stage 1 low, ... *)
  let node = Array.init stages (fun k -> if k mod 2 = 0 then config.vdd else 0.0) in
  let waves = Array.init stages (fun _ -> Waveform.create ()) in
  let record time =
    Array.iteri (fun k w -> Waveform.append w ~time ~value:node.(k)) waves
  in
  let steps = int_of_float (Float.ceil (stop_time /. config.time_step)) in
  let record_every = max 1 (steps / 4000) in
  record 0.0;
  for step = 1 to steps do
    let time = float_of_int step *. config.time_step in
    (* Evaluate all stages against the previous state (Jacobi update). *)
    let previous = Array.copy node in
    for k = 0 to stages - 1 do
      let input = if k = 0 then config.vdd else previous.(k - 1) in
      let out = previous.(k) in
      let dv =
        if input > config.vdd /. 2.0 then
          (* NMOS on: discharge the output toward 0. *)
          -.device_current config ~vds:out *. config.time_step /. config.load_cap
        else
          (* PMOS on: charge the output toward Vdd. *)
          device_current config ~vds:(config.vdd -. out)
          *. config.time_step /. config.load_cap
      in
      node.(k) <- Float.min config.vdd (Float.max 0.0 (out +. dv))
    done;
    if step mod record_every = 0 then record time
  done;
  waves

let chain_delay config ~stages =
  (* Rough upper bound on total settle time from the slew estimate. *)
  let ion =
    Device.Alpha_power.on_current config.tech ~vdd:config.vdd ~vth:config.vth
  in
  let slew = config.load_cap *. config.vdd /. ion in
  let stop_time = 8.0 *. slew *. float_of_int (stages + 2) in
  let waves = inverter_chain config ~stages ~stop_time in
  let level = config.vdd /. 2.0 in
  (* Stage 0 output falls (input rose); alternating after that. *)
  let crossing k =
    let rising = k mod 2 = 1 in
    match Waveform.crossings waves.(k) ~level ~rising with
    | t :: _ -> t
    | [] -> failwith "Transient.chain_delay: stage did not switch"
  in
  let first = crossing 0 and last = crossing (stages - 1) in
  if stages = 1 then first
  else (last -. first) /. float_of_int (stages - 1)
