(** Fixed-step transient solver for CMOS inverter chains.

    This is the repository's stand-in for the ELDO simulations the paper used
    to characterise the technology. Each inverter drives a lumped load
    capacitance; the pull-up / pull-down device is the alpha-power-law
    current source of {!Device.Alpha_power} with a smooth linear-region
    roll-off near the rail. Solved with forward Euler at a step small
    against the stage delay. *)

type config = {
  tech : Device.Technology.t;
  vdd : float;  (** Supply, V. *)
  vth : float;  (** Effective threshold (DIBL applied by the caller), V. *)
  load_cap : float;  (** Per-stage load capacitance, F. *)
  time_step : float;  (** Integration step, s. *)
}

val default_config : Device.Technology.t -> config
(** Nominal supply, effective nominal threshold, 30 fF load, 1 ps step. *)

val device_current : config -> vds:float -> float
(** Magnitude of the switching device current for a drain-source drop [vds]
    (saturation value with smooth roll-off as [vds -> 0]). *)

val inverter_chain :
  config -> stages:int -> stop_time:float -> Waveform.t array
(** Simulate [stages] cascaded inverters driven by a step at t = 0 (input
    rises from 0 to Vdd). Stage k's output starts at its static level.
    Returns one waveform per stage output. *)

val chain_delay : config -> stages:int -> float
(** Average per-stage propagation delay (50 % crossing to 50 % crossing)
    through a [stages]-long chain. *)
