type delay_fit = { alpha : float; zeta : float; rms_error : float }
type leakage_fit = { io : float; n : float }

let model_delay (tech : Device.Technology.t) ~alpha ~zeta ~vdd ~vth =
  let scaled = { tech with alpha } in
  zeta *. vdd /. Device.Alpha_power.on_current scaled ~vdd ~vth

let fit_delay (tech : Device.Technology.t)
    (measurements : Ring_oscillator.measurement list) =
  if List.length measurements < 3 then
    invalid_arg "Param_extract.fit_delay: need >= 3 measurements";
  let cost params =
    let alpha = params.(0) and log_zeta = params.(1) in
    if alpha < 0.8 || alpha > 3.0 then 1e12
    else begin
      let zeta = Float.exp log_zeta in
      let term (m : Ring_oscillator.measurement) =
        if m.vdd <= m.vth then 1e12
        else begin
          let predicted = model_delay tech ~alpha ~zeta ~vdd:m.vdd ~vth:m.vth in
          let rel = (predicted -. m.stage_delay) /. m.stage_delay in
          rel *. rel
        end
      in
      Numerics.Kahan.sum_by term measurements
    end
  in
  let start = [| tech.alpha; Float.log (Device.Technology.gate_zeta tech) |] in
  let best, residual = Numerics.Fit.nelder_mead ~max_iter:4000 ~f:cost start in
  let count = float_of_int (List.length measurements) in
  {
    alpha = best.(0);
    zeta = Float.exp best.(1);
    rms_error = sqrt (residual /. count);
  }

let leakage_samples (tech : Device.Technology.t) ~rng ~noise ~vths =
  let sample vth =
    let ideal = Device.Alpha_power.off_current tech ~vth in
    let jitter = Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:noise in
    (vth, ideal *. Float.exp jitter)
  in
  List.map sample vths

let fit_leakage ~ut pairs =
  if List.length pairs < 2 then
    invalid_arg "Param_extract.fit_leakage: need >= 2 points";
  (* ln I = ln Io - vth / (n * Ut): a line in (vth, ln I). *)
  let line =
    Numerics.Fit.linear (List.map (fun (vth, i) -> (vth, Float.log i)) pairs)
  in
  if line.slope >= 0.0 then
    invalid_arg "Param_extract.fit_leakage: non-decreasing leakage";
  { io = Float.exp line.intercept; n = -1.0 /. (line.slope *. ut) }

let iv_samples (tech : Device.Technology.t) ~rng ~noise ~vth ~vdds =
  List.map
    (fun vdd ->
      let ideal = Device.Alpha_power.on_current tech ~vdd ~vth in
      let jitter = Numerics.Rng.gaussian rng ~mu:0.0 ~sigma:noise in
      (vdd, ideal *. Float.exp jitter))
    vdds

type iv_fit = { alpha_iv : float; io_drive : float; r_squared : float }

let fit_alpha_iv ~vth pairs =
  let log_points =
    List.filter_map
      (fun (vdd, ion) ->
        if vdd > vth && ion > 0.0 then
          Some (Float.log (vdd -. vth), Float.log ion)
        else None)
      pairs
  in
  if List.length log_points < 2 then
    invalid_arg "Param_extract.fit_alpha_iv: need >= 2 points above Vth";
  let line = Numerics.Fit.linear log_points in
  {
    alpha_iv = line.slope;
    io_drive = Float.exp line.intercept;
    r_squared = line.r_squared;
  }

let characterize ?(stages = 7) ?(load_cap = 30e-15)
    ?(vdds = [ 0.7; 0.8; 0.9; 1.0; 1.1; 1.2 ]) tech =
  let measurements = Ring_oscillator.sweep_vdd tech ~load_cap ~stages ~vdds in
  fit_delay tech measurements
