type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = Array.make 1024 0.0; values = Array.make 1024 0.0; len = 0 }

let grow t =
  let capacity = Array.length t.times in
  if t.len = capacity then begin
    let times = Array.make (2 * capacity) 0.0 in
    let values = Array.make (2 * capacity) 0.0 in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.times <- times;
    t.values <- values
  end

let append t ~time ~value =
  if t.len > 0 && time <= t.times.(t.len - 1) then
    invalid_arg "Waveform.append: times must be strictly increasing";
  grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len
let times t = Array.sub t.times 0 t.len
let values t = Array.sub t.values 0 t.len

let value_at t time =
  if t.len = 0 then invalid_arg "Waveform.value_at: empty waveform";
  if time <= t.times.(0) then t.values.(0)
  else if time >= t.times.(t.len - 1) then t.values.(t.len - 1)
  else begin
    let rec find lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if t.times.(mid) <= time then find mid hi else find lo mid
      end
    in
    let i = find 0 (t.len - 1) in
    let t0 = t.times.(i) and t1 = t.times.(i + 1) in
    let v0 = t.values.(i) and v1 = t.values.(i + 1) in
    v0 +. ((v1 -. v0) *. (time -. t0) /. (t1 -. t0))
  end

let crossings t ~level ~rising =
  let acc = ref [] in
  for i = 0 to t.len - 2 do
    let v0 = t.values.(i) and v1 = t.values.(i + 1) in
    let crosses =
      if rising then v0 < level && v1 >= level else v0 > level && v1 <= level
    in
    if crosses then begin
      let frac = (level -. v0) /. (v1 -. v0) in
      let time = t.times.(i) +. (frac *. (t.times.(i + 1) -. t.times.(i))) in
      acc := time :: !acc
    end
  done;
  List.rev !acc

let period t ~level =
  let rising = crossings t ~level ~rising:true in
  (* Use the last half of the crossings so start-up transients are ignored. *)
  let n = List.length rising in
  if n < 3 then None
  else begin
    let tail = List.filteri (fun i _ -> i >= n / 2) rising in
    match tail with
    | first :: (_ :: _ as rest) ->
      let last = List.nth rest (List.length rest - 1) in
      Some ((last -. first) /. float_of_int (List.length rest))
    | _ -> None
  end
