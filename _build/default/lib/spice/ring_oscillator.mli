(** Ring-oscillator "measurement" — how the paper characterised delay.

    An odd-length chain of inverters closed into a loop oscillates with
    period [2 * stages * t_stage]. Simulating the ring at several supply
    voltages yields the delay-vs-voltage curve from which
    {!Param_extract} recovers ζ and α, exactly mirroring the paper's
    "fitting delays on inverter chains ring oscillators". *)

type measurement = {
  vdd : float;
  vth : float;  (** Effective threshold at this supply. *)
  period : float;  (** Oscillation period, s. *)
  stage_delay : float;  (** period / (2 * stages), s. *)
}

val simulate :
  Transient.config -> stages:int -> measurement
(** Simulate the ring at the config's operating point. [stages] must be odd
    and >= 3. Uses the transient solver until the period stabilises. *)

val stage_delay_fast :
  Transient.config -> float
(** Closed-form slew-based stage delay estimate
    [C * Vdd / Ion] — used to size simulation windows and as a cheap
    cross-check of {!simulate}. *)

val sweep_vdd :
  Device.Technology.t ->
  load_cap:float ->
  stages:int ->
  vdds:float list ->
  measurement list
(** One ring simulation per supply point, thresholds tracking DIBL. *)
