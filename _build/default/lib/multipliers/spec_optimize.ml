let run (spec : Spec.t) =
  let r = Netlist.Optimize.run spec.circuit in
  {
    spec with
    Spec.circuit = r.circuit;
    a_bus = Array.map r.map spec.a_bus;
    b_bus = Array.map r.map spec.b_bus;
    p_bus = Array.map r.map spec.p_bus;
  }

let stats (spec : Spec.t) = (Netlist.Optimize.run spec.circuit).stats
