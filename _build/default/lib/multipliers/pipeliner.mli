(** Generic pipeline-register insertion (retiming by stage assignment).

    Given a combinational region whose cells carry stage numbers that never
    decrease along signal flow, inserts [stage(consumer) − stage(producer)]
    flip-flops on every crossing edge and brings every listed output to the
    final stage. Functional behaviour is preserved cycle-for-cycle apart
    from the added latency — a property the test suite checks by streaming
    random operands through pipelined and flat multipliers. *)

module C := Netlist.Circuit

val insert :
  C.t ->
  stage_of_cell:(C.cell_id -> int option) ->
  max_stage:int ->
  outputs:C.net array ->
  C.net array
(** [insert circuit ~stage_of_cell ~max_stage ~outputs] rewires in place and
    returns the delayed outputs (each now at [max_stage]). Cells for which
    [stage_of_cell] is [None] (input registers, pre-existing logic) count as
    stage-0 producers and are never rewired.
    @raise Invalid_argument if a consumer's stage is lower than its
    producer's, or a stage exceeds [max_stage]. *)

val register_count : C.t -> before:int -> int
(** Convenience: number of cells added since [before] (a prior
    {!C.cell_count}). *)

val by_depth :
  C.t -> stages:int -> outputs:C.net array -> C.net array
(** Stage assignment from static timing: cell stage =
    ⌊arrival / (critical_depth / stages)⌋. Arrival times are monotone along
    every edge, so the assignment is always valid — any combinational
    region can be pipelined this way without structural knowledge (the
    generalisation of the RCA-specific cuts). Returns the delayed outputs
    at the final stage. *)
