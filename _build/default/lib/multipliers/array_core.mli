(** Combinational Ripple-Carry-Array (RCA) multiplier core.

    The classic carry-save array: one AND per partial-product bit, one
    adder cell per (row, column), and a final carry-ripple merge row. The
    carry chain through rows plus the merge ripple is the long critical path
    that makes this the paper's slow-but-compact baseline.

    Every created cell is tagged with a (row, column) grid coordinate so
    that {!Pipeliner} can cut the array horizontally (Figure 3) or
    diagonally (Figure 4). The merge row has row index [width]. *)

module C := Netlist.Circuit

type t = {
  product : C.net array;  (** 2×width product bits, LSB first. *)
  coords : (C.cell_id, int * int) Hashtbl.t;  (** cell → (row, col). *)
}

val build : C.t -> a:C.net array -> b:C.net array -> t
(** Build the array from already-driven operand nets (normally register
    outputs). @raise Invalid_argument on width mismatch or width < 2. *)
