(** Shared frame for flat (combinational-core) multipliers: operand
    registers in, product register out. *)

val build :
  name:string ->
  label:string ->
  bits:int ->
  core:
    (Netlist.Circuit.t ->
    a:Netlist.Circuit.net array ->
    b:Netlist.Circuit.net array ->
    Netlist.Circuit.net array) ->
  Spec.t
(** [name] is the circuit name (identifier-ish), [label] the display name. *)

val register_bus :
  Netlist.Circuit.t -> Netlist.Circuit.net array -> Netlist.Circuit.net array
(** One flip-flop per bit. *)
