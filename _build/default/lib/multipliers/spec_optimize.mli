(** Spec-level wrapper over {!Netlist.Optimize}: optimise the circuit and
    remap the port buses, preserving the protocol metadata. *)

val run : Spec.t -> Spec.t
(** Constant-fold, alias, downgrade and sweep the spec's netlist. The
    returned spec behaves identically (same latency, same protocol) —
    property-tested in the suite. *)

val stats : Spec.t -> Netlist.Optimize.stats
(** What the pass would do, without committing to it. *)
