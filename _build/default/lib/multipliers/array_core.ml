module C = Netlist.Circuit
module Cell = Netlist.Cell

type t = {
  product : C.net array;
  coords : (C.cell_id, int * int) Hashtbl.t;
}

let build circuit ~a ~b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Array_core.build: operand width mismatch";
  if width < 2 then invalid_arg "Array_core.build: width < 2";
  let coords = Hashtbl.create (width * width * 2) in
  let tag row col net_opt =
    match net_opt with
    | None -> ()
    | Some net -> begin
      match C.driver circuit net with
      | Some (id, _) -> Hashtbl.replace coords id (row, col)
      | None -> ()
    end
  in
  let partial row col =
    let net = C.add_gate circuit Cell.And2 [| a.(col); b.(row) |] in
    tag row col (Some net);
    net
  in
  let product = Array.make (2 * width) None in
  (* Row 0 is just the first partial-product row. *)
  let prev_sum = ref (Array.init width (fun j -> Some (partial 0 j))) in
  let prev_carry = ref (Array.make width None) in
  product.(0) <- !prev_sum.(0);
  for row = 1 to width - 1 do
    let sums = Array.make width None and carries = Array.make width None in
    for col = 0 to width - 1 do
      let pp = Some (partial row col) in
      let diagonal = if col + 1 < width then !prev_sum.(col + 1) else None in
      let above = !prev_carry.(col) in
      let sum, carry = Adders.add3 circuit pp diagonal above in
      tag row col sum;
      sums.(col) <- sum;
      carries.(col) <- carry
    done;
    product.(row) <- sums.(0);
    prev_sum := sums;
    prev_carry := carries
  done;
  (* Merge row: ripple-add the leftover sums and carries (positions
     width .. 2*width-1). *)
  let ripple = ref None in
  for col = 0 to width - 1 do
    let diagonal = if col + 1 < width then !prev_sum.(col + 1) else None in
    let above = !prev_carry.(col) in
    let sum, carry = Adders.add3 circuit diagonal above !ripple in
    tag width col sum;
    product.(width + col) <- sum;
    ripple := carry
  done;
  let solid = function
    | Some net -> net
    | None -> C.tie0 circuit
  in
  { product = Array.map solid product; coords }
