(** Two's-complement multiplication on top of any unsigned core.

    Uses the modular identity
    [a_s · b_s ≡ ua·ub − 2^w·(sa·ub + sb·ua) (mod 2^(2w))]:
    the unsigned product plus two conditionally negated upper-half rows,
    merged in carry-save — so every unsigned architecture in the catalog
    gains a signed variant for ~2w extra gates. *)

val core :
  unsigned:(Netlist.Circuit.t ->
           a:Netlist.Circuit.net array ->
           b:Netlist.Circuit.net array ->
           Netlist.Circuit.net array) ->
  Netlist.Circuit.t ->
  a:Netlist.Circuit.net array ->
  b:Netlist.Circuit.net array ->
  Netlist.Circuit.net array
(** Product bus is the 2w-bit two's-complement product. *)

val basic :
  name:string ->
  bits:int ->
  unsigned:(Netlist.Circuit.t ->
           a:Netlist.Circuit.net array ->
           b:Netlist.Circuit.net array ->
           Netlist.Circuit.net array) ->
  Spec.t
(** Registered signed multiplier around the given unsigned core. *)

val to_signed : bits:int -> int -> int
(** Reinterpret a [bits]-wide unsigned value as two's complement. *)

val of_signed : bits:int -> int -> int
(** Encode a signed value into [bits] (two's complement).
    @raise Invalid_argument when out of range. *)
