(** Sequential (add-and-shift) multipliers.

    The basic version uses one w-bit adder and w internal clock cycles per
    multiplication — very compact but, measured against the data clock, very
    slow (LDeff multiplied by w) and very active (a can exceed 1), which is
    why the paper finds it hopeless for low power at this throughput.

    The "4_16" variant adds four partial products per cycle through a 4×16
    carry-save tree, cutting the cycle count to four. The parallel variant
    interleaves two basic cores. *)

val basic : bits:int -> Spec.t
(** Internal clock = bits × data clock; ring-counter control. *)

val wallace_4_16 : bits:int -> Spec.t
(** Four multiplier bits retired per internal cycle (bits/4 cycles).
    @raise Invalid_argument unless [bits] is a multiple of 4. *)

val parallel : bits:int -> Spec.t
(** Two interleaved basic cores; internal clock = bits/2 × data clock. *)

(** The add-shift datapath, exposed for reuse and white-box testing. *)
module Core : sig
  type t = {
    out : Netlist.Circuit.net array;  (** Registered product, 2×bits. *)
    p_hi : Netlist.Circuit.net array;  (** Accumulator high half (Q nets). *)
    p_lo : Netlist.Circuit.net array;  (** Shift register low half (Q nets). *)
  }

  val add_shift :
    Netlist.Circuit.t ->
    a_in:Netlist.Circuit.net array ->
    b_in:Netlist.Circuit.net array ->
    load:Netlist.Circuit.net ->
    t
  (** One radix-2 add-shift step per clock; the load cycle performs step 1
      on the fresh operands and snapshots the previous product into [out]. *)

  val add_shift4 :
    Netlist.Circuit.t ->
    a_in:Netlist.Circuit.net array ->
    b_in:Netlist.Circuit.net array ->
    load:Netlist.Circuit.net ->
    t
  (** Radix-16 step: four multiplier bits per clock via carry-save rows. *)
end
