lib/multipliers/wallace.ml: Adders Array List Netlist Pipeliner Printf Registered Spec
