lib/multipliers/harness.ml: List Logicsim Numerics Spec
