lib/multipliers/parallelize.ml: Array List Netlist Spec
