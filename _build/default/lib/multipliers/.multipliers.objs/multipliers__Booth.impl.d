lib/multipliers/booth.ml: Adders Array Netlist Registered
