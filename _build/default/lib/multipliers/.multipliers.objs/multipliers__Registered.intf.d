lib/multipliers/registered.mli: Netlist Spec
