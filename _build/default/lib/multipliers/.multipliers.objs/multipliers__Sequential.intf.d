lib/multipliers/sequential.mli: Netlist Spec
