lib/multipliers/signed_mult.mli: Netlist Spec
