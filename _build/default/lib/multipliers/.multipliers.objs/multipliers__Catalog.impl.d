lib/multipliers/catalog.ml: Booth Dadda List Parallelize Rca Sequential Spec Spec_optimize Wallace
