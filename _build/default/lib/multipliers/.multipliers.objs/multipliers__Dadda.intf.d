lib/multipliers/dadda.mli: Netlist Spec
