lib/multipliers/signed_mult.ml: Adders Array Netlist Registered
