lib/multipliers/booth.mli: Netlist Spec
