lib/multipliers/spec.ml: Array Format Netlist Printf
