lib/multipliers/rca.ml: Array Array_core Hashtbl List Netlist Option Pipeliner Printf Registered Spec
