lib/multipliers/spec_optimize.ml: Array Netlist Spec
