lib/multipliers/pipeliner.mli: Netlist
