lib/multipliers/dadda.ml: Adders Array Float Fun List Netlist Registered
