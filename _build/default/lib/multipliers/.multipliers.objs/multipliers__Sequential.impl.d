lib/multipliers/sequential.ml: Adders Array List Netlist Parallelize Spec Wallace
