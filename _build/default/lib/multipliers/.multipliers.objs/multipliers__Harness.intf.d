lib/multipliers/harness.mli: Logicsim Spec
