lib/multipliers/wallace.mli: Netlist Spec
