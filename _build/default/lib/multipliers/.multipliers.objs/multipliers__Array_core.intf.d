lib/multipliers/array_core.mli: Hashtbl Netlist
