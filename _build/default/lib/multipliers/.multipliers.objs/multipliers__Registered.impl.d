lib/multipliers/registered.ml: Array Netlist Spec
