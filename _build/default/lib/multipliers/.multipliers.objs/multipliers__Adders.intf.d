lib/multipliers/adders.mli: Netlist
