lib/multipliers/rca.mli: Netlist Spec
