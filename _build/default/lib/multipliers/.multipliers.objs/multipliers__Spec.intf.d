lib/multipliers/spec.mli: Format Netlist
