lib/multipliers/adders.ml: Array Fun List Netlist Option
