lib/multipliers/spec_optimize.mli: Netlist Spec
