lib/multipliers/array_core.ml: Adders Array Hashtbl Netlist
