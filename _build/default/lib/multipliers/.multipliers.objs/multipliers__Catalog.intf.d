lib/multipliers/catalog.mli: Spec
