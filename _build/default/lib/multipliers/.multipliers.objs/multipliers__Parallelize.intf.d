lib/multipliers/parallelize.mli: Netlist Spec
