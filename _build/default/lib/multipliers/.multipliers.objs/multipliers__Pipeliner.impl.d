lib/multipliers/pipeliner.ml: Array Float Hashtbl List Netlist Option Printf
