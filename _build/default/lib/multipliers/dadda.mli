(** Dadda multiplier — an extension beyond the paper's set.

    Same partial products as the Wallace tree, but reduced as lazily as
    possible: each stage only compresses columns down to the next number in
    Dadda's height sequence (2, 3, 4, 6, 9, 13, 19, ...), deferring work to
    the final fast adder. Fewer adder cells than Wallace at the same stage
    count — a lower-N, same-LD point for Eq. 13 to score. *)

val basic : bits:int -> Spec.t

val core : Netlist.Circuit.t ->
  a:Netlist.Circuit.net array ->
  b:Netlist.Circuit.net array ->
  Netlist.Circuit.net array

val heights : int -> int list
(** The Dadda height sequence up to (and excluding) the first value ≥ the
    argument, descending — e.g. [heights 16 = [13; 9; 6; 4; 3; 2]]. *)
