(** Radix-4 (modified) Booth multiplier — an extension beyond the paper's
    set.

    Booth recoding halves the number of partial-product rows (w/2 + 1
    signed digits in {−2, −1, 0, 1, 2} for an unsigned w-bit multiplier),
    trading AND-array rows for recoding logic and two's-complement
    correction bits. The resulting tree is shallower than the plain Wallace
    tree, which is exactly the kind of architectural knob Eq. 13 is meant
    to evaluate — fewer rows (lower N in the tree, shorter LD) against the
    recoder overhead. *)

val basic : bits:int -> Spec.t
(** Registered unsigned multiplier. @raise Invalid_argument unless [bits]
    is even and ≥ 4. *)

val core : Netlist.Circuit.t ->
  a:Netlist.Circuit.net array ->
  b:Netlist.Circuit.net array ->
  Netlist.Circuit.net array
(** Bare combinational Booth tree (usable with {!Parallelize.wrap}). *)

type digit = {
  one : Netlist.Circuit.net;  (** |d| = 1. *)
  two : Netlist.Circuit.net;  (** |d| = 2. *)
  neg : Netlist.Circuit.net;  (** d < 0 (also set on the −0 encoding, which
      the wrap-around correction cancels exactly). *)
}

val recode :
  Netlist.Circuit.t -> b:Netlist.Circuit.net array -> digit array
(** The w/2 + 1 radix-4 Booth digits of an (even-width) operand, exposed
    for white-box testing. *)
