(** The Ripple-Carry-Array multiplier family: basic, horizontally pipelined
    (Figure 3) and diagonally pipelined (Figure 4) flavors. *)

type cut =
  | Horizontal
      (** Register banks inserted across full rows — fewer glitches, the
          paper's preferred low-power pipelining. *)
  | Diagonal
      (** Register banks along diagonals — shorter logical depth, but a
          wider spread of path delays and therefore more glitching. *)

val basic : bits:int -> Spec.t
(** Flat array with registered operands and product. *)

val pipelined : bits:int -> stages:int -> cut:cut -> Spec.t
(** [stages] ≥ 2 pipeline stages through the array.
    @raise Invalid_argument if [stages < 2] or [stages > bits]. *)

val core : Netlist.Circuit.t ->
  a:Netlist.Circuit.net array ->
  b:Netlist.Circuit.net array ->
  Netlist.Circuit.net array
(** Bare combinational array (for the parallelised versions). *)

val cut_preview : bits:int -> stages:int -> cut:cut -> int array array
(** Stage number of each grid cell — [.(row).(col)] with the merge row at
    index [bits] — under the optimised cut. Renders Figures 3 and 4. *)
