(** Adder building blocks shared by the multiplier generators. *)

module C := Netlist.Circuit

type bit = C.net option
(** A bit that may be constant 0 ([None]) — lets the generators fold away
    half-adders and wires instead of instantiating tie cells. *)

val add3 : C.t -> bit -> bit -> bit -> bit * bit
(** [(sum, carry)] of up to three bits. Instantiates a full adder when all
    three are present, a half adder for two, a plain wire for one, and
    returns [(None, None)] for zero. *)

val ripple_carry : C.t -> ?cin:C.net -> C.net array -> C.net array ->
  C.net array * C.net
(** [ripple_carry c a b] — classic ripple-carry adder over two equal-width
    buses; returns (sum, carry-out). @raise Invalid_argument on width
    mismatch. *)

val ripple_carry_bits : C.t -> ?cin:bit -> bit array -> bit array ->
  bit array * bit
(** Constant-folding variant over optional bits. *)

val sklansky : C.t -> C.net array -> C.net array -> C.net array
(** Fast parallel-prefix (Sklansky) adder, no carry-in; returns the
    width-long sum (carry-out dropped — callers size the bus to fit). Depth
    is logarithmic, which is what gives the Wallace multipliers their short
    logical depth. *)

val reduce_columns : ?drop_overflow:bool -> C.t -> bit list array -> bit list array
(** One carry-save (3:2 / 2:2) reduction step over dot-diagram columns:
    column [p]'s bits are compressed with full/half adders, carries moving
    to column [p+1]. A carry out of the top column raises
    [Invalid_argument] unless [drop_overflow] is set, in which case the
    arithmetic is modulo 2^width — what Booth-recoded trees rely on for
    their two's-complement wrap-around. *)

val reduce_to_two : ?drop_overflow:bool -> C.t -> bit list array -> bit list array
(** Iterate {!reduce_columns} until every column holds at most two bits. *)
