module C = Netlist.Circuit

let register_bus circuit bus = Array.map (fun n -> C.add_dff circuit n) bus

let build ~name ~label ~bits ~core =
  let circuit = C.create name in
  let a_bus = C.add_input_bus circuit "a" bits in
  let b_bus = C.add_input_bus circuit "b" bits in
  let a = register_bus circuit a_bus in
  let b = register_bus circuit b_bus in
  let product = core circuit ~a ~b in
  let p_bus = register_bus circuit product in
  C.mark_output_bus circuit p_bus "p";
  {
    Spec.name = label;
    style = Spec.Combinational;
    circuit;
    bits;
    a_bus;
    b_bus;
    p_bus;
    latency_ticks = 3;
    ticks_per_cycle = 1;
    timing_periods = 1.0;
  }
