module C = Netlist.Circuit
module Cell = Netlist.Cell

type bit = C.net option

let add3 circuit x y z =
  match List.filter_map Fun.id [ x; y; z ] with
  | [] -> (None, None)
  | [ a ] -> (Some a, None)
  | [ a; b ] -> begin
    match C.add_cell circuit Cell.Half_adder [| a; b |] with
    | [| sum; carry |] -> (Some sum, Some carry)
    | _ -> assert false
  end
  | [ a; b; c ] -> begin
    match C.add_cell circuit Cell.Full_adder [| a; b; c |] with
    | [| sum; carry |] -> (Some sum, Some carry)
    | _ -> assert false
  end
  | _ :: _ :: _ :: _ :: _ -> assert false

let ripple_carry_bits circuit ?(cin = None) a b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Adders.ripple_carry_bits: width mismatch";
  let sums = Array.make width None in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let sum, c = add3 circuit a.(i) b.(i) !carry in
    sums.(i) <- sum;
    carry := c
  done;
  (sums, !carry)

let solidify circuit bit =
  match bit with Some n -> n | None -> C.tie0 circuit

let ripple_carry circuit ?cin a b =
  let cin = Option.map (fun n -> Some n) cin |> Option.value ~default:None in
  let sums, cout =
    ripple_carry_bits circuit ~cin
      (Array.map (fun n -> Some n) a)
      (Array.map (fun n -> Some n) b)
  in
  (Array.map (solidify circuit) sums, solidify circuit cout)

(* Sklansky parallel-prefix adder: generate/propagate pairs combined in a
   divide-and-conquer tree of depth ceil(log2 width). *)
let sklansky circuit a b =
  let width = Array.length a in
  if Array.length b <> width then
    invalid_arg "Adders.sklansky: width mismatch";
  if width = 0 then [||]
  else begin
    let gate kind x y = C.add_gate circuit kind [| x; y |] in
    let p = Array.init width (fun i -> gate Cell.Xor2 a.(i) b.(i)) in
    let g = Array.init width (fun i -> gate Cell.And2 a.(i) b.(i)) in
    (* prefix.(i) = (G, P) over bits [0..i]. *)
    let prefix_g = Array.copy g and prefix_p = Array.copy p in
    let span = ref 1 in
    while !span < width do
      (* Combine block [i - span .. ] into [i] for i in odd blocks. *)
      let updates = ref [] in
      for i = 0 to width - 1 do
        if i land !span <> 0 then begin
          let j = (i lor (!span - 1)) - !span in
          (* (G,P)_i <- (G_i or (P_i and G_j), P_i and P_j) *)
          let and_g = gate Cell.And2 prefix_p.(i) prefix_g.(j) in
          let new_g = gate Cell.Or2 prefix_g.(i) and_g in
          let new_p = gate Cell.And2 prefix_p.(i) prefix_p.(j) in
          updates := (i, new_g, new_p) :: !updates
        end
      done;
      List.iter
        (fun (i, new_g, new_p) ->
          prefix_g.(i) <- new_g;
          prefix_p.(i) <- new_p)
        !updates;
      span := !span * 2
    done;
    Array.init width (fun i ->
        if i = 0 then p.(0) else gate Cell.Xor2 p.(i) prefix_g.(i - 1))
  end

let reduce_columns ?(drop_overflow = false) circuit columns =
  let width = Array.length columns in
  let next = Array.make (width + 1) [] in
  for p = 0 to width - 1 do
    let bits = List.filter_map Fun.id columns.(p) in
    let populated = List.length bits in
    let rec compress bits =
      match bits with
      | a :: b :: c :: rest ->
        let sum, carry = add3 circuit (Some a) (Some b) (Some c) in
        Option.iter (fun s -> next.(p) <- Some s :: next.(p)) sum;
        Option.iter (fun c -> next.(p + 1) <- Some c :: next.(p + 1)) carry;
        compress rest
      | [ a; b ] when populated > 2 ->
        (* The column held >2 bits: compress the remainder pair too so the
           height strictly decreases. *)
        let sum, carry = add3 circuit (Some a) (Some b) None in
        Option.iter (fun s -> next.(p) <- Some s :: next.(p)) sum;
        Option.iter (fun c -> next.(p + 1) <- Some c :: next.(p + 1)) carry
      | rest -> List.iter (fun a -> next.(p) <- Some a :: next.(p)) rest
    in
    compress bits
  done;
  if next.(width) <> [] && not drop_overflow then
    invalid_arg "Adders.reduce_columns: carry out of the top column";
  Array.sub next 0 width

let reduce_to_two ?drop_overflow circuit columns =
  let needs_work cols = Array.exists (fun c -> List.length c > 2) cols in
  let rec loop cols =
    if needs_work cols then loop (reduce_columns ?drop_overflow circuit cols)
    else cols
  in
  loop columns
