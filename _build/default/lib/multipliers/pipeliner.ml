module C = Netlist.Circuit

let insert circuit ~stage_of_cell ~max_stage ~outputs =
  let stage_of_net net =
    match C.driver circuit net with
    | None -> 0
    | Some (id, _) -> Option.value ~default:0 (stage_of_cell id)
  in
  (* delayed (net, k): net delayed by k flip-flops; chains are shared. *)
  let cache : (C.net * int, C.net) Hashtbl.t = Hashtbl.create 64 in
  let rec delayed net k =
    if k = 0 then net
    else begin
      match Hashtbl.find_opt cache (net, k) with
      | Some d -> d
      | None ->
        let d = C.add_dff circuit (delayed net (k - 1)) in
        Hashtbl.add cache (net, k) d;
        d
    end
  in
  let snapshot = C.cells circuit in
  List.iter
    (fun (cell : C.cell) ->
      match stage_of_cell cell.id with
      | None -> ()
      | Some sv ->
        if sv < 0 || sv > max_stage then
          invalid_arg "Pipeliner.insert: cell stage out of range";
        Array.iteri
          (fun slot net ->
            let su = stage_of_net net in
            if su > sv then
              invalid_arg
                (Printf.sprintf
                   "Pipeliner.insert: stage decreases along %s -> %s"
                   (C.net_name circuit net)
                   (Netlist.Cell.name cell.kind));
            if sv > su then
              C.rewire_input circuit cell.id slot (delayed net (sv - su)))
          cell.inputs)
    snapshot;
  Array.map (fun net -> delayed net (max_stage - stage_of_net net)) outputs

let register_count circuit ~before = C.cell_count circuit - before

let by_depth circuit ~stages ~outputs =
  if stages < 2 then invalid_arg "Pipeliner.by_depth: stages < 2";
  let report = Netlist.Timing.analyze circuit in
  (* The region may not be hooked to endpoints yet (outputs still
     unregistered), so take the depth over every net rather than the
     endpoint-based logical_depth. *)
  let depth = Array.fold_left Float.max 0.0 report.arrivals in
  if depth <= 0.0 then outputs
  else begin
    let bucket = depth /. float_of_int stages in
    (* A cell's stage comes from its slowest output's arrival. Sources
       (flip-flops, ties) stay outside the assignment. *)
    let stage_of_cell id =
      let cell = C.get_cell circuit id in
      if Netlist.Topo.is_source cell then None
      else begin
        let arrival =
          Array.fold_left
            (fun acc n -> Float.max acc report.arrivals.(n))
            0.0 cell.outputs
        in
        Some (min (stages - 1) (int_of_float (arrival /. bucket)))
      end
    in
    insert circuit ~stage_of_cell ~max_stage:(stages - 1) ~outputs
  end
