module C = Netlist.Circuit
module Cell = Netlist.Cell

module Core = struct
  type t = {
    out : C.net array;
    p_hi : C.net array;
    p_lo : C.net array;
  }

  let mux circuit ~sel d0 d1 = C.add_gate circuit Cell.Mux2 [| d0; d1; sel |]

  (* Registers whose Q feeds back elsewhere need the net before the DFF
     exists; build Q from a placeholder D and patch afterwards. *)
  let late_dff circuit =
    let placeholder = C.tie0 circuit in
    let q = C.add_dff circuit placeholder in
    let patch d =
      match C.driver circuit q with
      | Some (id, _) -> C.rewire_input circuit id 0 d
      | None -> assert false
    in
    (q, patch)

  let snapshot_register circuit ~load ~value =
    (* out <- value when load, else hold. *)
    let q, patch = late_dff circuit in
    patch (mux circuit ~sel:load q value);
    q

  let add_shift circuit ~a_in ~b_in ~load =
    let w = Array.length a_in in
    if Array.length b_in <> w then
      invalid_arg "Sequential.Core.add_shift: width mismatch";
    if w < 2 then invalid_arg "Sequential.Core.add_shift: width < 2";
    let not_load = C.add_gate circuit Cell.Inv [| load |] in
    (* Operand register A with its combinational next value (used by the
       addend row during the load cycle, before A captures). *)
    let p_lo_q = Array.init w (fun _ -> late_dff circuit) in
    let p_lo = Array.map fst p_lo_q in
    let a_next =
      Array.init w (fun j ->
          let q, patch = late_dff circuit in
          let next = mux circuit ~sel:load q a_in.(j) in
          patch next;
          next)
    in
    (* Multiplier bit 0 for this step: fresh b at load, shifted P_lo after. *)
    let bit0 = mux circuit ~sel:load p_lo.(0) b_in.(0) in
    let addend =
      Array.map (fun aj -> C.add_gate circuit Cell.And2 [| aj; bit0 |]) a_next
    in
    (* Accumulator, zeroed on load so the load cycle performs step 1. *)
    let p_hi_q = Array.init w (fun _ -> late_dff circuit) in
    let p_hi = Array.map fst p_hi_q in
    let acc =
      Array.map (fun h -> C.add_gate circuit Cell.And2 [| h; not_load |]) p_hi
    in
    let sum, cout = Adders.ripple_carry circuit acc addend in
    (* Shift right: P_hi <- {cout, sum[w-1:1]}, P_lo <- {sum[0], tail}. *)
    Array.iteri
      (fun j (_, patch) -> patch (if j = w - 1 then cout else sum.(j + 1)))
      p_hi_q;
    Array.iteri
      (fun j (_, patch) ->
        if j = w - 1 then patch sum.(0)
        else patch (mux circuit ~sel:load p_lo.(j + 1) b_in.(j + 1)))
      p_lo_q;
    let value = Array.append p_lo p_hi in
    let out =
      Array.map (fun v -> snapshot_register circuit ~load ~value:v) value
    in
    { out; p_hi; p_lo }

  let add_shift4 circuit ~a_in ~b_in ~load =
    let w = Array.length a_in in
    if Array.length b_in <> w then
      invalid_arg "Sequential.Core.add_shift4: width mismatch";
    if w mod 4 <> 0 || w < 8 then
      invalid_arg "Sequential.Core.add_shift4: width must be a multiple of 4";
    let radix = 4 in
    let not_load = C.add_gate circuit Cell.Inv [| load |] in
    let p_lo_q = Array.init w (fun _ -> late_dff circuit) in
    let p_lo = Array.map fst p_lo_q in
    let a_next =
      Array.init w (fun j ->
          let q, patch = late_dff circuit in
          let next = mux circuit ~sel:load q a_in.(j) in
          patch next;
          next)
    in
    let bsel =
      Array.init radix (fun k -> mux circuit ~sel:load p_lo.(k) b_in.(k))
    in
    let row k =
      ( Array.map
          (fun aj -> Some (C.add_gate circuit Cell.And2 [| aj; bsel.(k) |]))
          a_next,
        k )
    in
    let p_hi_q = Array.init w (fun _ -> late_dff circuit) in
    let p_hi = Array.map fst p_hi_q in
    let acc =
      ( Array.map
          (fun h -> Some (C.add_gate circuit Cell.And2 [| h; not_load |]))
          p_hi,
        0 )
    in
    let sum =
      Wallace.reduce_rows circuit
        ~rows:(acc :: List.init radix row)
        ~width:(w + radix)
    in
    (* Shift right by the radix. *)
    Array.iteri (fun j (_, patch) -> patch sum.(j + radix)) p_hi_q;
    Array.iteri
      (fun j (_, patch) ->
        if j >= w - radix then patch sum.(j - (w - radix))
        else patch (mux circuit ~sel:load p_lo.(j + radix) b_in.(j + radix)))
      p_lo_q;
    let value = Array.append p_lo p_hi in
    let out =
      Array.map (fun v -> snapshot_register circuit ~load ~value:v) value
    in
    { out; p_hi; p_lo }
end

let make ~name ~style ~bits ~ticks_per_cycle ~latency_data_cycles ~build =
  let circuit = C.create name in
  let a_bus = C.add_input_bus circuit "a" bits in
  let b_bus = C.add_input_bus circuit "b" bits in
  let p_bus = build circuit ~a_bus ~b_bus in
  C.mark_output_bus circuit p_bus "p";
  {
    Spec.name;
    style;
    circuit;
    bits;
    a_bus;
    b_bus;
    p_bus;
    latency_ticks = latency_data_cycles * ticks_per_cycle;
    ticks_per_cycle;
    timing_periods = 1.0 /. float_of_int ticks_per_cycle;
  }

let basic ~bits =
  make ~name:"Sequential" ~style:(Spec.Sequential bits) ~bits
    ~ticks_per_cycle:bits ~latency_data_cycles:3
    ~build:(fun circuit ~a_bus ~b_bus ->
      let phases = Parallelize.ring_counter circuit ~length:bits ~hot:0 in
      let core =
        Core.add_shift circuit ~a_in:a_bus ~b_in:b_bus ~load:phases.(0)
      in
      core.out)

let wallace_4_16 ~bits =
  let cycles = bits / 4 in
  make ~name:"Seq4_16" ~style:(Spec.Sequential cycles) ~bits
    ~ticks_per_cycle:cycles ~latency_data_cycles:3
    ~build:(fun circuit ~a_bus ~b_bus ->
      let phases = Parallelize.ring_counter circuit ~length:cycles ~hot:0 in
      let core =
        Core.add_shift4 circuit ~a_in:a_bus ~b_in:b_bus ~load:phases.(0)
      in
      core.out)

let parallel ~bits =
  let half = bits / 2 in
  make ~name:"Seq parallel" ~style:(Spec.Sequential half) ~bits
    ~ticks_per_cycle:half ~latency_data_cycles:5
    ~build:(fun circuit ~a_bus ~b_bus ->
      (* Two interleaved add-shift cores sharing one ring; core 0 loads at
         phase 0, core 1 half a multiplication later. Each data period is
         [bits/2] internal ticks, so each core completes every two data
         periods — together, one product per period. *)
      let phases = Parallelize.ring_counter circuit ~length:bits ~hot:0 in
      let load0 = phases.(0) and load1 = phases.(half) in
      let core0 = Core.add_shift circuit ~a_in:a_bus ~b_in:b_bus ~load:load0 in
      let core1 = Core.add_shift circuit ~a_in:a_bus ~b_in:b_bus ~load:load1 in
      (* Select whichever core most recently completed (SR behaviour). *)
      let sel_q, patch = Core.late_dff circuit in
      let hold = Core.mux circuit ~sel:load0 sel_q (C.tie1 circuit) in
      patch (Core.mux circuit ~sel:load1 hold (C.tie0 circuit));
      let sel1 = C.add_gate circuit Cell.Inv [| sel_q |] in
      Array.init (2 * bits) (fun i ->
          Core.mux circuit ~sel:sel1 core0.out.(i) core1.out.(i)))
