(** Common description of a generated multiplier — the thirteen architectures
    all present this interface to the harness and to the power model. *)

module C := Netlist.Circuit

type style =
  | Combinational  (** Registered inputs/outputs, one flat array in between. *)
  | Pipelined of int  (** Number of pipeline stages in the datapath. *)
  | Replicated of int  (** Parallelisation degree (copies + muxing). *)
  | Sequential of int  (** Internal clock cycles per multiplication. *)

type t = {
  name : string;  (** Paper row label, e.g. "RCA hor.pipe2". *)
  style : style;
  circuit : C.t;
  bits : int;  (** Operand width. *)
  a_bus : C.net array;  (** Multiplicand input, LSB first. *)
  b_bus : C.net array;  (** Multiplier input, LSB first. *)
  p_bus : C.net array;  (** Product output (2×bits wide), LSB first. *)
  latency_ticks : int;
      (** Internal clock ticks after which a steadily applied operand pair is
          guaranteed visible on [p_bus]. *)
  ticks_per_cycle : int;
      (** Internal clock ticks per data (throughput) period. *)
  timing_periods : float;
      (** Data periods available to the worst combinational stage: 1 for flat
          and pipelined designs, k for k-fold replication, 1/m for a
          sequential design whose internal clock runs m× faster. *)
}

val logical_depth_effective : t -> float
(** LDeff — the STA logical depth divided by {!field-timing_periods}; the
    quantity the paper reports per architecture and that enters χ (Eq. 6). *)

val stats : t -> Netlist.Stats.t
(** Physical statistics of the netlist (N, area, average caps...). *)

val pp : Format.formatter -> t -> unit
