(** Wallace-tree multiplier: carry-save reduction of the partial products
    followed by a fast parallel-prefix final adder. Well-balanced paths and
    logarithmic depth — the fastest family in the paper's set. *)

val basic : bits:int -> Spec.t

val pipelined : bits:int -> stages:int -> Spec.t
(** Tree multiplier cut into [stages] by the generic depth-based pipeliner
    ({!Pipeliner.by_depth}) — no structural knowledge needed, unlike the
    RCA's grid cuts. @raise Invalid_argument if [stages < 2]. *)

val core : Netlist.Circuit.t ->
  a:Netlist.Circuit.net array ->
  b:Netlist.Circuit.net array ->
  Netlist.Circuit.net array
(** Bare combinational tree (for the parallelised versions and the 4×16
    sequential variant). *)

val reduce_rows :
  Netlist.Circuit.t ->
  rows:(Netlist.Circuit.net option array * int) list ->
  width:int ->
  Netlist.Circuit.net array
(** General carry-save summation of shifted addend rows: each row is (bits,
    left-shift); reduced to two rows and merged with the prefix adder into a
    [width]-bit sum. Building block for the 4×16 sequential Wallace. *)
