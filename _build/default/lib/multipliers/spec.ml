module C = Netlist.Circuit

type style =
  | Combinational
  | Pipelined of int
  | Replicated of int
  | Sequential of int

type t = {
  name : string;
  style : style;
  circuit : C.t;
  bits : int;
  a_bus : C.net array;
  b_bus : C.net array;
  p_bus : C.net array;
  latency_ticks : int;
  ticks_per_cycle : int;
  timing_periods : float;
}

let logical_depth_effective t =
  Netlist.Timing.logical_depth t.circuit /. t.timing_periods

let stats t = Netlist.Stats.compute t.circuit

let style_to_string = function
  | Combinational -> "combinational"
  | Pipelined s -> Printf.sprintf "pipelined(%d)" s
  | Replicated k -> Printf.sprintf "replicated(%d)" k
  | Sequential m -> Printf.sprintf "sequential(%d)" m

let pp ppf t =
  let stats = stats t in
  Format.fprintf ppf "%s [%s]: %dx%d -> %d bits, N=%d, LDeff=%.1f" t.name
    (style_to_string t.style) t.bits t.bits (Array.length t.p_bus)
    stats.cell_total (logical_depth_effective t)
