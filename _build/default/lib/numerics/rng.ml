type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: xor-shift multiply avalanche of the
   incremented state (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. mantissa *. 0x1.0p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let split t = { state = next_int64 t }
