(** One- and two-dimensional scalar minimisation.

    The numerical optimal-working-point search (Section 3 of the paper) is a
    one-dimensional minimisation of total power over Vdd, with Vth tied to Vdd
    by the timing constraint; Figure 1 needs the full two-dimensional map. *)

type result = {
  x : float;  (** Argmin. *)
  fx : float;  (** Minimum value. *)
  iterations : int;
}

val golden_section :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> result
(** [golden_section ~f lo hi] minimises a unimodal [f] on [\[lo, hi\]].
    @param tol absolute tolerance on [x] (default [1e-10]). *)

val grid_then_golden :
  ?samples:int -> ?tol:float -> f:(float -> float) -> float -> float -> result
(** [grid_then_golden ~f lo hi] scans [samples] equally spaced points
    (default 64) to localise the global minimum basin, then refines with
    golden section on the bracketing sub-interval. Robust to mild
    non-unimodality. *)

type result2 = { x0 : float; x1 : float; fx2 : float }

val grid2 :
  f:(float -> float -> float) ->
  x0_range:float * float ->
  x1_range:float * float ->
  samples:int ->
  result2
(** Exhaustive 2-D grid minimisation; returns the best sample. Used for the
    brute-force (Vdd, Vth) reference optimum that validates the constrained
    1-D search. *)
