lib/numerics/stats.ml: Array Float Kahan List
