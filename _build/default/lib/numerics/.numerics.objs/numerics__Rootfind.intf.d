lib/numerics/rootfind.mli:
