lib/numerics/minimize.mli:
