lib/numerics/rng.mli:
