lib/numerics/stats.mli:
