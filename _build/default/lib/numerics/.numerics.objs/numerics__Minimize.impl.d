lib/numerics/minimize.ml:
