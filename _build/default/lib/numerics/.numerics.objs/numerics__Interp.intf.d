lib/numerics/interp.mli:
