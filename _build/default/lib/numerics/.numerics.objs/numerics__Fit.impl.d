lib/numerics/fit.ml: Array Float Fun Kahan List
