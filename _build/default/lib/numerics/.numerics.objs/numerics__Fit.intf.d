lib/numerics/fit.mli:
