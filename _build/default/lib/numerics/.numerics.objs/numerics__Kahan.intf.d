lib/numerics/kahan.mli:
