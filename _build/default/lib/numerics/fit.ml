type line = {
  slope : float;
  intercept : float;
  r_squared : float;
  max_residual : float;
}

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Fit.linear: need at least two points";
  let fn = float_of_int n in
  let sx = Kahan.sum_by fst points in
  let sy = Kahan.sum_by snd points in
  let mean_x = sx /. fn and mean_y = sy /. fn in
  let sxx = Kahan.sum_by (fun (x, _) -> (x -. mean_x) ** 2.0) points in
  let sxy =
    Kahan.sum_by (fun (x, y) -> (x -. mean_x) *. (y -. mean_y)) points
  in
  if sxx = 0.0 then invalid_arg "Fit.linear: degenerate abscissa";
  let slope = sxy /. sxx in
  let intercept = mean_y -. (slope *. mean_x) in
  let ss_tot = Kahan.sum_by (fun (_, y) -> (y -. mean_y) ** 2.0) points in
  let residual (x, y) = y -. ((slope *. x) +. intercept) in
  let ss_res = Kahan.sum_by (fun p -> residual p ** 2.0) points in
  let r_squared = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  let max_residual =
    List.fold_left (fun m p -> Float.max m (Float.abs (residual p))) 0.0 points
  in
  { slope; intercept; r_squared; max_residual }

let linear_on ~f ~lo ~hi ~samples =
  if samples < 2 then invalid_arg "Fit.linear_on: samples < 2";
  let step = (hi -. lo) /. float_of_int (samples - 1) in
  let points =
    List.init samples (fun i ->
        let x = lo +. (float_of_int i *. step) in
        (x, f x))
  in
  linear points

(* Nelder-Mead downhill simplex with standard reflection/expansion/
   contraction/shrink coefficients (1, 2, 0.5, 0.5). *)
let nelder_mead ?(tol = 1e-12) ?(max_iter = 2000) ?scale ~f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Fit.nelder_mead: empty start point";
  let scale =
    match scale with
    | Some s when Array.length s = n -> s
    | Some _ -> invalid_arg "Fit.nelder_mead: scale length mismatch"
    | None ->
      Array.map (fun x -> if x = 0.0 then 0.1 else 0.1 *. Float.abs x) x0
  in
  let simplex =
    Array.init (n + 1) (fun i ->
        let p = Array.copy x0 in
        if i > 0 then p.(i - 1) <- p.(i - 1) +. scale.(i - 1);
        p)
  in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun i j -> Float.compare values.(i) values.(j)) idx;
    idx
  in
  let centroid excluding =
    let c = Array.make n 0.0 in
    Array.iteri
      (fun i p ->
        if i <> excluding then
          Array.iteri (fun k v -> c.(k) <- c.(k) +. v) p)
      simplex;
    Array.map (fun v -> v /. float_of_int n) c
  in
  let combine a alpha b beta =
    Array.init n (fun k -> (alpha *. a.(k)) +. (beta *. b.(k)))
  in
  let iter = ref 0 in
  let spread idx =
    Float.abs (values.(idx.(n)) -. values.(idx.(0)))
  in
  let idx = ref (order ()) in
  while !iter < max_iter && spread !idx > tol do
    incr iter;
    let best = !idx.(0) and worst = !idx.(n) and second = !idx.(n - 1) in
    let c = centroid worst in
    let reflected = combine c 2.0 simplex.(worst) (-1.0) in
    let fr = f reflected in
    if fr < values.(best) then begin
      let expanded = combine c 3.0 simplex.(worst) (-2.0) in
      let fe = f expanded in
      if fe < fr then begin
        simplex.(worst) <- expanded;
        values.(worst) <- fe
      end
      else begin
        simplex.(worst) <- reflected;
        values.(worst) <- fr
      end
    end
    else if fr < values.(second) then begin
      simplex.(worst) <- reflected;
      values.(worst) <- fr
    end
    else begin
      let contracted = combine c 0.5 simplex.(worst) 0.5 in
      let fc = f contracted in
      if fc < values.(worst) then begin
        simplex.(worst) <- contracted;
        values.(worst) <- fc
      end
      else begin
        (* Shrink toward the best vertex. *)
        let b = simplex.(best) in
        Array.iteri
          (fun i p ->
            if i <> best then begin
              simplex.(i) <- combine b 0.5 p 0.5;
              values.(i) <- f simplex.(i)
            end)
          simplex
      end
    end;
    idx := order ()
  done;
  let best = !idx.(0) in
  (Array.copy simplex.(best), values.(best))
