type t = { mutable total : float; mutable compensation : float }

let create () = { total = 0.0; compensation = 0.0 }

(* Neumaier's variant: also compensates when the running total is smaller
   than the incoming term. *)
let add t x =
  let sum = t.total +. x in
  let correction =
    if Float.abs t.total >= Float.abs x
    then t.total -. sum +. x
    else x -. sum +. t.total
  in
  t.compensation <- t.compensation +. correction;
  t.total <- sum

let sum t = t.total +. t.compensation

let sum_array xs =
  let acc = create () in
  Array.iter (add acc) xs;
  sum acc

let sum_list xs =
  let acc = create () in
  List.iter (add acc) xs;
  sum acc

let sum_by f xs =
  let acc = create () in
  List.iter (fun x -> add acc (f x)) xs;
  sum acc
