type result = { x : float; fx : float; iterations : int }

let inv_phi = 0.5 *. (sqrt 5.0 -. 1.0)
let inv_phi2 = inv_phi *. inv_phi

(* Golden-section search with function-value reuse (two probes kept). *)
let golden_section ?(tol = 1e-10) ?(max_iter = 200) ~f lo hi =
  let a = ref lo and b = ref hi in
  let h = ref (hi -. lo) in
  let c = ref (lo +. (inv_phi2 *. !h)) in
  let d = ref (lo +. (inv_phi *. !h)) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !h > tol && !iter < max_iter do
    incr iter;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      h := !b -. !a;
      c := !a +. (inv_phi2 *. !h);
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      h := !b -. !a;
      d := !a +. (inv_phi *. !h);
      fd := f !d
    end
  done;
  let x, fx = if !fc < !fd then (!c, !fc) else (!d, !fd) in
  { x; fx; iterations = !iter }

let grid_then_golden ?(samples = 64) ?(tol = 1e-10) ~f lo hi =
  if samples < 3 then invalid_arg "Minimize.grid_then_golden: samples < 3";
  let step = (hi -. lo) /. float_of_int (samples - 1) in
  let best_i = ref 0 and best_f = ref infinity in
  for i = 0 to samples - 1 do
    let x = lo +. (float_of_int i *. step) in
    let fx = f x in
    if fx < !best_f then begin
      best_f := fx;
      best_i := i
    end
  done;
  let lo' = lo +. (float_of_int (max 0 (!best_i - 1)) *. step) in
  let hi' = lo +. (float_of_int (min (samples - 1) (!best_i + 1)) *. step) in
  let r = golden_section ~tol ~f lo' hi' in
  if r.fx <= !best_f then r
  else { x = lo +. (float_of_int !best_i *. step); fx = !best_f; iterations = r.iterations }

type result2 = { x0 : float; x1 : float; fx2 : float }

let grid2 ~f ~x0_range:(a0, b0) ~x1_range:(a1, b1) ~samples =
  if samples < 2 then invalid_arg "Minimize.grid2: samples < 2";
  let s0 = (b0 -. a0) /. float_of_int (samples - 1) in
  let s1 = (b1 -. a1) /. float_of_int (samples - 1) in
  let best = ref { x0 = a0; x1 = a1; fx2 = infinity } in
  for i = 0 to samples - 1 do
    let x0 = a0 +. (float_of_int i *. s0) in
    for j = 0 to samples - 1 do
      let x1 = a1 +. (float_of_int j *. s1) in
      let v = f x0 x1 in
      if v < !best.fx2 then best := { x0; x1; fx2 = v }
    done
  done;
  !best
