type summary = {
  count : int;
  mean : float;
  stddev : float;
  min_value : float;
  max_value : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> Kahan.sum_list xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let ss = Kahan.sum_by (fun x -> (x -. m) ** 2.0) xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | first :: _ ->
    let count = List.length xs in
    let min_value = List.fold_left Float.min first xs in
    let max_value = List.fold_left Float.max first xs in
    { count; mean = mean xs; stddev = stddev xs; min_value; max_value }

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let sorted = List.sort Float.compare xs in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)

let relative_error ~reference value =
  if reference = 0.0 then invalid_arg "Stats.relative_error: zero reference";
  (value -. reference) /. reference

let max_abs_relative_error pairs =
  List.fold_left
    (fun acc (reference, value) ->
      Float.max acc (Float.abs (relative_error ~reference value)))
    0.0 pairs
