(** Compensated (Kahan-Babuska) floating-point summation.

    Power totals aggregate many small per-cell contributions spanning several
    orders of magnitude; compensated summation keeps the result independent of
    accumulation order. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Accumulate one term. *)

val sum : t -> float
(** Current compensated sum. *)

val sum_array : float array -> float
(** One-shot compensated sum of an array. *)

val sum_list : float list -> float

val sum_by : ('a -> float) -> 'a list -> float
(** [sum_by f xs] is the compensated sum of [f x] over [xs]. *)
