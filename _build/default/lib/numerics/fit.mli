(** Curve fitting: linear least squares and a derivative-free non-linear
    minimiser.

    Two fits matter in the paper: the linearisation of Vdd^(1/α) (Eq. 7,
    producing the A and B constants) is an ordinary least-squares line; the
    extraction of technology parameters (α, ζ, Io, n) from simulated
    ring-oscillator and I-V data is a small non-linear fit. *)

type line = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination. *)
  max_residual : float;  (** Largest absolute residual over the data. *)
}

val linear : (float * float) list -> line
(** Ordinary least-squares line through [(x, y)] samples.
    @raise Invalid_argument on fewer than two points or degenerate x. *)

val linear_on :
  f:(float -> float) -> lo:float -> hi:float -> samples:int -> line
(** [linear_on ~f ~lo ~hi ~samples] fits a line to [f] sampled uniformly on
    [\[lo, hi\]] — exactly how the paper obtains A and B for a given fitting
    range. *)

val nelder_mead :
  ?tol:float ->
  ?max_iter:int ->
  ?scale:float array ->
  f:(float array -> float) ->
  float array ->
  float array * float
(** [nelder_mead ~f x0] minimises [f] starting from [x0] with a downhill
    simplex; returns (argmin, min). [scale] sets the initial simplex extent
    per coordinate (default: 10 % of each coordinate, or 0.1). *)
