(** Piecewise-linear interpolation over tabulated samples. *)

type t
(** An interpolant over strictly increasing abscissae. *)

val of_points : (float * float) list -> t
(** @raise Invalid_argument on fewer than two points or non-increasing x. *)

val of_function : f:(float -> float) -> lo:float -> hi:float -> samples:int -> t

val eval : t -> float -> float
(** Linear interpolation inside the domain, linear extrapolation outside. *)

val domain : t -> float * float

val argmin : t -> float * float
(** Sample point with the smallest ordinate (x, y). *)

val points : t -> (float * float) list

val map_y : (float -> float) -> t -> t
(** Transform every ordinate. *)
