(** Descriptive statistics over float sequences. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  min_value : float;
  max_value : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float
val stddev : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]]; linear interpolation between
    order statistics. *)

val relative_error : reference:float -> float -> float
(** [(value - reference) / reference]; signed, as in the paper's "Eq.13 Err"
    columns. @raise Invalid_argument when [reference = 0]. *)

val max_abs_relative_error : (float * float) list -> float
(** Largest |relative error| over (reference, value) pairs. *)
