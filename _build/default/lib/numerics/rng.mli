(** Deterministic pseudo-random number generation (SplitMix64).

    All stochastic parts of the library (stimulus generation, synthetic
    measurement noise) draw from this generator so that every experiment is
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 stream. *)

val bits : t -> int
(** [bits t] is a uniformly distributed non-negative [int] (62 bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed sample (Box-Muller). *)

val split : t -> t
(** [split t] derives a statistically independent generator, advancing [t].
    Used to give each sub-experiment its own stream. *)
