type t = { xs : float array; ys : float array }

let of_points pts =
  if List.length pts < 2 then invalid_arg "Interp.of_points: need >= 2 points";
  let xs = Array.of_list (List.map fst pts) in
  let ys = Array.of_list (List.map snd pts) in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Interp.of_points: abscissae must be strictly increasing"
  done;
  { xs; ys }

let of_function ~f ~lo ~hi ~samples =
  if samples < 2 then invalid_arg "Interp.of_function: samples < 2";
  let step = (hi -. lo) /. float_of_int (samples - 1) in
  of_points
    (List.init samples (fun i ->
         let x = lo +. (float_of_int i *. step) in
         (x, f x)))

let eval t x =
  let n = Array.length t.xs in
  (* Binary search for the segment containing x. *)
  let rec find lo hi =
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.xs.(mid) <= x then find mid hi else find lo mid
    end
  in
  let i =
    if x <= t.xs.(0) then 0
    else if x >= t.xs.(n - 1) then n - 2
    else find 0 (n - 1)
  in
  let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
  let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
  y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let argmin t =
  let best = ref 0 in
  Array.iteri (fun i y -> if y < t.ys.(!best) then best := i) t.ys;
  (t.xs.(!best), t.ys.(!best))

let points t = Array.to_list (Array.map2 (fun x y -> (x, y)) t.xs t.ys)

let map_y f t = { xs = Array.copy t.xs; ys = Array.map f t.ys }
