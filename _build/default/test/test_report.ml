(* Rendering layer: tables, CSV, ASCII plots, and the experiment drivers'
   output format. *)

let test_table_render () =
  let out =
    Report.Table.render
      ~columns:
        [
          Report.Table.column ~align:Report.Table.Left "name";
          Report.Table.column "value";
        ]
      ~rows:[ [ "alpha"; "1.86" ]; [ "b"; "2" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "header has both columns" true
      (String.length header > 0
      && String.length rule = String.length header);
    Alcotest.(check bool) "rule is dashes" true
      (String.for_all (fun c -> c = '-') rule)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check bool)
    "right alignment pads numbers" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec search i = i + m <= n && (String.sub s i m = sub || search (i + 1)) in
       search 0
     in
     contains out "    2")

let test_table_pads_short_rows () =
  let out =
    Report.Table.render
      ~columns:[ Report.Table.column "a"; Report.Table.column "b" ]
      ~rows:[ [ "1" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_formats () =
  Alcotest.(check string) "fmt_f" "3.142" (Report.Table.fmt_f 3.14159);
  Alcotest.(check string) "fmt_uw" "191.44" (Report.Table.fmt_uw 191.44e-6);
  Alcotest.(check string) "fmt_pct plus" "+1.50" (Report.Table.fmt_pct 1.5);
  Alcotest.(check string) "fmt_pct minus" "-2.38" (Report.Table.fmt_pct (-2.38))

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape "a\"b");
  Alcotest.(check string)
    "line" "x,\"y,z\"" (Report.Csv.line [ "x"; "y,z" ])

let test_csv_render_and_file () =
  let path = Filename.temp_file "optpower" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.Csv.write_file ~path ~header:[ "a"; "b" ]
        ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file contents" "a,b\n1,2\n3,4\n" content)

let test_ascii_plot_markers () =
  let out =
    Report.Ascii_plot.render
      [
        Report.Ascii_plot.series ~label:"s1" [ (0.0, 0.0); (1.0, 1.0) ];
        Report.Ascii_plot.series ~label:"s2" [ (0.0, 1.0); (1.0, 0.0) ];
      ]
  in
  (* Legend lines are "   <marker> = <label>". *)
  Alcotest.(check bool) "legend lists both" true
    (String.split_on_char '\n' out
    |> List.filter (fun l ->
           String.length l > 5 && l.[4] = ' ' && l.[5] = '=')
    |> List.length = 2)

let test_ascii_plot_log_drops_nonpositive () =
  let out =
    Report.Ascii_plot.render ~log_y:true
      [ Report.Ascii_plot.series ~label:"s" [ (0.0, -1.0); (1.0, 0.0) ] ]
  in
  Alcotest.(check string) "all dropped" "(empty plot)\n" out

let test_ascii_plot_empty () =
  Alcotest.(check string)
    "empty" "(empty plot)\n"
    (Report.Ascii_plot.render [])

(* Experiment drivers: format-level checks (numerical assertions live in
   test_integration). *)

let test_render_table1_shape () =
  let rows = Report.Experiments.table1 () in
  Alcotest.(check int) "13 rows" 13 (List.length rows);
  let out = Report.Experiments.render_table1 rows in
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      let contains =
        let n = String.length out and m = String.length r.label in
        let rec search i =
          i + m <= n && (String.sub out i m = r.label || search (i + 1))
        in
        search 0
      in
      Alcotest.(check bool) (r.label ^ " present") true contains)
    rows

let test_render_figure2_mentions_fit () =
  let out = Report.Experiments.render_figure2 (Report.Experiments.figure2 ()) in
  Alcotest.(check bool) "mentions A =" true
    (let n = String.length out in
     let rec search i = i + 4 <= n && (String.sub out i 4 = "A = " || search (i + 1)) in
     search 0)

let test_pipeline_sketch_dimensions () =
  let out =
    Report.Experiments.pipeline_sketch ~bits:8 ~stages:2
      ~cut:Multipliers.Rca.Horizontal
  in
  let data_lines =
    String.split_on_char '\n' out
    |> List.filter (fun l ->
           String.length l > 2 && (l.[2] = 'r' || l.[2] = 'm'))
  in
  (* 8 array rows + row 0 + merge = 9 grid lines. *)
  Alcotest.(check int) "9 grid lines" 9 (List.length data_lines)

(* Studies renderers: format-level checks on cheap synthetic data. *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec search i = i + m <= n && (String.sub haystack i m = needle || search (i + 1)) in
  search 0

let test_render_dibl () =
  let rows =
    [
      { Power_core.Ablation.eta = 0.0; vth_effective = 0.2;
        vth0_required = 0.2; ptot = 1e-4 };
      { Power_core.Ablation.eta = 0.08; vth_effective = 0.2;
        vth0_required = 0.23; ptot = 1e-4 };
    ]
  in
  let out = Report.Studies.render_dibl rows in
  Alcotest.(check bool) "mentions eta" true (contains out "eta");
  Alcotest.(check bool) "has both rows" true
    (contains out "0.00" && contains out "0.08")

let test_render_lin_range () =
  let rows =
    [
      { Power_core.Ablation.hi = 0.8; max_abs_err_pct = 5.5 };
      { Power_core.Ablation.hi = 1.0; max_abs_err_pct = 2.4 };
    ]
  in
  let out = Report.Studies.render_lin_range rows in
  Alcotest.(check bool) "ranges shown" true
    (contains out "0.30 - 0.80" && contains out "0.30 - 1.00")

let test_render_frequency_handles_infeasible () =
  let points =
    [
      { Power_core.Ablation.f = 1e6;
        per_tech = [ ("LL", Some 1e-5); ("HS", None) ] };
    ]
  in
  let out = Report.Studies.render_frequency points in
  Alcotest.(check bool) "infeasible rendered" true (contains out "infeasible");
  Alcotest.(check bool) "feasible rendered" true (contains out "10.00")

let test_render_thermal () =
  let out =
    Report.Studies.render_thermal
      [ (40.0, { Device.Thermal.temperature = 306.2; ptot = 1.5e-4; iterations = 10 }) ]
  in
  Alcotest.(check bool) "temperature shown" true (contains out "306.20");
  Alcotest.(check bool) "iterations shown" true (contains out "10")

let test_render_energy () =
  let points =
    [
      { Power_core.Energy.f = 1e6; energy = 3e-12; ptot = 3e-6; vdd = 0.4;
        vth = 0.35 };
      { Power_core.Energy.f = 1e8; energy = 5e-12; ptot = 5e-4; vdd = 0.5;
        vth = 0.2 };
    ]
  in
  let mep =
    { Power_core.Energy.f_mep = 8e6; energy_mep = 2e-12; vdd_mep = 0.35;
      overhead_at = (fun _ -> 1.0) }
  in
  let out = Report.Studies.render_energy points mep in
  Alcotest.(check bool) "MEP line present" true
    (contains out "Minimum energy point: 2.00 pJ/op at 8.00 MHz")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "render and file" `Quick test_csv_render_and_file;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "markers" `Quick test_ascii_plot_markers;
          Alcotest.test_case "log drops nonpositive" `Quick
            test_ascii_plot_log_drops_nonpositive;
          Alcotest.test_case "empty" `Quick test_ascii_plot_empty;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 shape" `Quick test_render_table1_shape;
          Alcotest.test_case "figure2 format" `Quick test_render_figure2_mentions_fit;
          Alcotest.test_case "sketch dimensions" `Quick test_pipeline_sketch_dimensions;
        ] );
      ( "studies",
        [
          Alcotest.test_case "dibl" `Quick test_render_dibl;
          Alcotest.test_case "lin range" `Quick test_render_lin_range;
          Alcotest.test_case "frequency infeasible" `Quick
            test_render_frequency_handles_infeasible;
          Alcotest.test_case "thermal" `Quick test_render_thermal;
          Alcotest.test_case "energy" `Quick test_render_energy;
        ] );
    ]
