(* Extensions beyond the paper: Booth/Dadda multipliers, Verilog and VCD
   export, the zero-delay reference evaluator (differential testing of the
   event-driven simulator), and the ablation studies. *)

module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic
module Sim = Logicsim.Simulator

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec search i = i + m <= n && (String.sub haystack i m = needle || search (i + 1)) in
  search 0

(* Booth *)

let test_booth_exhaustive_4bit () =
  let spec = Multipliers.Booth.basic ~bits:4 in
  let sim = Multipliers.Harness.fresh_simulator spec in
  for x = 0 to 15 do
    for y = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y)
        (Multipliers.Harness.compute spec sim x y)
    done
  done

let test_booth_corners_16bit () =
  let spec = Multipliers.Booth.basic ~bits:16 in
  Alcotest.(check int) "corners" 0
    (List.length (Multipliers.Harness.check_corners spec))

let test_booth_rejects_odd_width () =
  Alcotest.(check bool)
    "odd width rejected" true
    (match Multipliers.Booth.basic ~bits:5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_booth_recode_digit_count () =
  let c = C.create "recode" in
  let b = C.add_input_bus c "b" 8 in
  let digits = Multipliers.Booth.recode c ~b in
  Alcotest.(check int) "w/2 + 1 digits" 5 (Array.length digits)

let test_booth_recode_values () =
  (* Drive an operand and read back the decoded digit lines; reconstruct
     the digit values and check they re-encode the operand in radix 4. *)
  let c = C.create "recode" in
  let b = C.add_input_bus c "b" 8 in
  let digits = Multipliers.Booth.recode c ~b in
  Array.iteri
    (fun k (d : Multipliers.Booth.digit) ->
      C.mark_output c d.one (Printf.sprintf "one%d" k);
      C.mark_output c d.two (Printf.sprintf "two%d" k);
      C.mark_output c d.neg (Printf.sprintf "neg%d" k))
    digits;
  let sim = Sim.create c in
  let digit_value (d : Multipliers.Booth.digit) =
    let bit n = if Logic.equal (Sim.value sim n) Logic.One then 1 else 0 in
    let magnitude = bit d.one + (2 * bit d.two) in
    if bit d.neg = 1 then -magnitude else magnitude
  in
  let rng = Numerics.Rng.create 77 in
  for _ = 1 to 50 do
    let value = Numerics.Rng.int rng 256 in
    Logicsim.Bus.drive sim b value;
    Sim.settle sim;
    let reconstructed =
      Array.to_list digits
      |> List.mapi (fun k d -> digit_value d * (1 lsl (2 * k)))
      |> List.fold_left ( + ) 0
    in
    Alcotest.(check int)
      (Printf.sprintf "radix-4 recode of %d" value)
      value reconstructed
  done

let prop_booth16_multiplies =
  QCheck.Test.make ~name:"16-bit Booth multiplies" ~count:25
    QCheck.(pair (int_range 0 65535) (int_range 0 65535))
    (let spec = Multipliers.Booth.basic ~bits:16 in
     let sim = Multipliers.Harness.fresh_simulator spec in
     fun (x, y) -> Multipliers.Harness.compute spec sim x y = x * y)

(* Dadda *)

let test_dadda_heights () =
  Alcotest.(check (list int)) "sequence to 16" [ 13; 9; 6; 4; 3; 2 ]
    (Multipliers.Dadda.heights 16);
  Alcotest.(check (list int)) "sequence to 3" [ 2 ] (Multipliers.Dadda.heights 3)

let test_dadda_exhaustive_4bit () =
  let spec = Multipliers.Dadda.basic ~bits:4 in
  let sim = Multipliers.Harness.fresh_simulator spec in
  for x = 0 to 15 do
    for y = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y)
        (Multipliers.Harness.compute spec sim x y)
    done
  done

let test_dadda_fewer_cells_than_wallace () =
  let dadda = Multipliers.Spec.stats (Multipliers.Dadda.basic ~bits:16) in
  let wallace = Multipliers.Spec.stats (Multipliers.Wallace.basic ~bits:16) in
  Alcotest.(check bool)
    (Printf.sprintf "%d <= %d" dadda.cell_total wallace.cell_total)
    true
    (dadda.cell_total <= wallace.cell_total)

let prop_dadda16_multiplies =
  QCheck.Test.make ~name:"16-bit Dadda multiplies" ~count:25
    QCheck.(pair (int_range 0 65535) (int_range 0 65535))
    (let spec = Multipliers.Dadda.basic ~bits:16 in
     let sim = Multipliers.Harness.fresh_simulator spec in
     fun (x, y) -> Multipliers.Harness.compute spec sim x y = x * y)

let test_extension_catalog () =
  Alcotest.(check int) "four extension entries" 4
    (List.length Multipliers.Catalog.extensions);
  List.iter
    (fun (e : Multipliers.Catalog.entry) ->
      let spec = e.build () in
      Alcotest.(check int)
        (e.label ^ " random check")
        0
        (List.length (Multipliers.Harness.check_random ~seed:5 spec ~samples:4)))
    Multipliers.Catalog.extensions

(* Functional reference evaluator: differential testing. *)

let random_combinational_circuit rng ~inputs ~cells =
  let c = C.create "random" in
  let pool = ref (Array.to_list (C.add_input_bus c "in" inputs)) in
  let pick () = List.nth !pool (Numerics.Rng.int rng (List.length !pool)) in
  let kinds =
    [| Cell.Inv; Cell.Buf; Cell.Nand2; Cell.Nor2; Cell.And2; Cell.Or2;
       Cell.Xor2; Cell.Xnor2; Cell.Mux2; Cell.Half_adder; Cell.Full_adder |]
  in
  for _ = 1 to cells do
    let kind = kinds.(Numerics.Rng.int rng (Array.length kinds)) in
    let ins = Array.init (Cell.arity kind) (fun _ -> pick ()) in
    let outs = C.add_cell c kind ins in
    Array.iter (fun n -> pool := n :: !pool) outs
  done;
  (* A few outputs so Check stays quiet about the frontier. *)
  List.iteri
    (fun i n -> if i < 8 then C.mark_output c n (Printf.sprintf "o%d" i))
    !pool;
  c

let prop_event_sim_matches_functional =
  QCheck.Test.make
    ~name:"event-driven settle == zero-delay functional evaluation"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Numerics.Rng.create (seed + 1000) in
      let c = random_combinational_circuit rng ~inputs:6 ~cells:40 in
      let sim = Sim.create c in
      let state = ref (Logicsim.Functional.initial c) in
      let ok = ref true in
      for _ = 1 to 5 do
        let bindings =
          List.map
            (fun n -> (n, Logic.of_bool (Numerics.Rng.bool rng)))
            (C.primary_inputs c)
        in
        List.iter (fun (n, v) -> Sim.set_input sim n v) bindings;
        Sim.settle sim;
        state := Logicsim.Functional.set_inputs c !state bindings;
        for net = 0 to C.net_count c - 1 do
          if not (Logic.equal (Sim.value sim net) (Logicsim.Functional.value !state net))
          then ok := false
        done
      done;
      !ok)

let test_functional_clock_matches_simulator () =
  (* Multi-cycle differential test on a real sequential design. *)
  let spec = Multipliers.Sequential.basic ~bits:8 in
  let c = spec.circuit in
  let sim = Sim.create c in
  let state = ref (Logicsim.Functional.initial c) in
  let rng = Numerics.Rng.create 13 in
  for cycle = 1 to 40 do
    let bindings =
      List.map
        (fun n -> (n, Logic.of_bool (Numerics.Rng.bool rng)))
        (C.primary_inputs c)
    in
    List.iter (fun (n, v) -> Sim.set_input sim n v) bindings;
    Sim.settle sim;
    state := Logicsim.Functional.set_inputs c !state bindings;
    Sim.clock_tick sim;
    Sim.settle sim;
    state := Logicsim.Functional.clock c !state;
    Array.iter
      (fun n ->
        Alcotest.(check bool)
          (Printf.sprintf "cycle %d net %d" cycle n)
          true
          (Logic.equal (Sim.value sim n) (Logicsim.Functional.value !state n)))
      spec.p_bus
  done

let test_functional_validation () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  C.mark_output c y "y";
  let state = Logicsim.Functional.initial c in
  Alcotest.(check bool)
    "non-input rejected" true
    (match Logicsim.Functional.set_inputs c state [ (y, Logic.One) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Verilog export *)

let test_verilog_structure () =
  let spec = Multipliers.Rca.basic ~bits:4 in
  let src = Netlist.Verilog.to_string spec.circuit in
  Alcotest.(check bool) "module present" true (contains src "module rca_basic(");
  Alcotest.(check bool) "clk port (has DFFs)" true (contains src "input clk;");
  Alcotest.(check bool) "FA primitive defined" true (contains src "module OP_FA(");
  Alcotest.(check bool) "DFF primitive defined" true
    (contains src "always @(posedge clk)");
  (* One instantiation line per cell. *)
  let instances =
    String.split_on_char '\n' src
    |> List.filter (fun l -> contains l "  OP_" && contains l " u")
    |> List.length
  in
  Alcotest.(check int) "instances = cells" (C.cell_count spec.circuit) instances

let test_verilog_pure_combinational_has_no_clk () =
  let c = C.create "comb" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  C.mark_output c y "y";
  let src = Netlist.Verilog.to_string c in
  Alcotest.(check bool) "no clk" false (contains src "input clk;")

let test_verilog_file_roundtrip () =
  let path = Filename.temp_file "optpower" ".v" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let spec = Multipliers.Wallace.basic ~bits:4 in
      Netlist.Verilog.write_file ~path spec.circuit;
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "endmodule present" true (contains content "endmodule"))

(* VCD *)

let test_vcd_format () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  C.mark_output c y "y";
  let sim = Sim.create c in
  let vcd = Logicsim.Vcd.create sim ~nets:[ (a, "a"); (y, "y") ] in
  Sim.set_input sim a Logic.Zero;
  Sim.settle sim;
  Logicsim.Vcd.sample vcd ~time:0.0;
  Sim.set_input sim a Logic.One;
  Sim.settle sim;
  Logicsim.Vcd.sample vcd ~time:10.0;
  Logicsim.Vcd.sample vcd ~time:20.0;
  let out = Logicsim.Vcd.contents vcd in
  Alcotest.(check bool) "header" true (contains out "$enddefinitions $end");
  Alcotest.(check bool) "var a" true (contains out "$var wire 1 ! a $end");
  Alcotest.(check bool) "t0 record" true (contains out "#0\n");
  Alcotest.(check bool) "t10 record" true (contains out "#10\n");
  (* No change at t=20: no record emitted. *)
  Alcotest.(check bool) "t20 suppressed" false (contains out "#20\n")

let test_vcd_time_monotonic () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  C.mark_output c a "a";
  let sim = Sim.create c in
  let vcd = Logicsim.Vcd.create sim ~nets:[ (a, "a") ] in
  Logicsim.Vcd.sample vcd ~time:5.0;
  Alcotest.(check bool)
    "backwards time rejected" true
    (match Logicsim.Vcd.sample vcd ~time:1.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Signed multiplication *)

let test_signed_exhaustive_4bit () =
  let spec =
    Multipliers.Signed_mult.basic ~name:"signed_wallace" ~bits:4
      ~unsigned:Multipliers.Wallace.core
  in
  let sim = Multipliers.Harness.fresh_simulator spec in
  for x = -8 to 7 do
    for y = -8 to 7 do
      let got =
        Multipliers.Harness.compute spec sim
          (Multipliers.Signed_mult.of_signed ~bits:4 x)
          (Multipliers.Signed_mult.of_signed ~bits:4 y)
      in
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y)
        (Multipliers.Signed_mult.to_signed ~bits:8 got)
    done
  done

let test_signed_encoding () =
  Alcotest.(check int) "-1 encodes" 15 (Multipliers.Signed_mult.of_signed ~bits:4 (-1));
  Alcotest.(check int) "roundtrip" (-3)
    (Multipliers.Signed_mult.to_signed ~bits:4
       (Multipliers.Signed_mult.of_signed ~bits:4 (-3)));
  Alcotest.(check bool)
    "out of range rejected" true
    (match Multipliers.Signed_mult.of_signed ~bits:4 8 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_signed_booth16 =
  QCheck.Test.make ~name:"16-bit signed Booth-based multiplier" ~count:20
    QCheck.(pair (int_range (-32768) 32767) (int_range (-32768) 32767))
    (let spec =
       Multipliers.Signed_mult.basic ~name:"sb" ~bits:16
         ~unsigned:Multipliers.Booth.core
     in
     let sim = Multipliers.Harness.fresh_simulator spec in
     fun (x, y) ->
       Multipliers.Signed_mult.to_signed ~bits:32
         (Multipliers.Harness.compute spec sim
            (Multipliers.Signed_mult.of_signed ~bits:16 x)
            (Multipliers.Signed_mult.of_signed ~bits:16 y))
       = x * y)

(* Power trace *)

let test_power_trace_consistency () =
  let spec = Multipliers.Wallace.basic ~bits:8 in
  let sim = Multipliers.Harness.fresh_simulator spec in
  let rng = Numerics.Rng.create 19 in
  let drive =
    Logicsim.Activity.random_drive ~rng ~buses:[ spec.a_bus; spec.b_bus ]
  in
  let trace = Logicsim.Power_trace.record ~vdd:1.2 ~cycles:30 ~drive sim in
  Alcotest.(check int) "thirty cycles" 30 (List.length trace.cycles);
  Alcotest.(check bool)
    "peak >= average" true
    (trace.peak_energy >= trace.average_energy);
  Alcotest.(check bool)
    "peak-to-average >= 1" true (trace.peak_to_average >= 1.0);
  List.iter
    (fun (r : Logicsim.Power_trace.cycle_record) ->
      Alcotest.(check (float 1e-21))
        "energy = cap * vdd^2"
        (r.switched_cap *. 1.2 *. 1.2)
        r.energy)
    trace.cycles;
  let csv = Logicsim.Power_trace.to_csv trace in
  Alcotest.(check int)
    "csv rows" 31
    (List.length
       (List.filter
          (fun l -> String.length l > 0)
          (String.split_on_char '\n' csv)))

let test_power_trace_quiet_input () =
  let spec = Multipliers.Wallace.basic ~bits:8 in
  let sim = Multipliers.Harness.fresh_simulator spec in
  let drive sim ~cycle:_ =
    Logicsim.Bus.drive sim spec.a_bus 5;
    Logicsim.Bus.drive sim spec.b_bus 9
  in
  let trace = Logicsim.Power_trace.record ~vdd:1.0 ~cycles:10 ~drive sim in
  Alcotest.(check (float 1e-18)) "no switching energy" 0.0 trace.average_energy

(* Activity convergence *)

let test_measure_until_converges () =
  let spec = Multipliers.Wallace.basic ~bits:8 in
  let sim = Multipliers.Harness.fresh_simulator spec in
  let rng = Numerics.Rng.create 29 in
  let drive =
    Logicsim.Activity.random_drive ~rng ~buses:[ spec.a_bus; spec.b_bus ]
  in
  let c =
    Logicsim.Activity.measure_until ~batch:30 ~rel_tol:0.05 ~max_cycles:1200
      ~drive sim
  in
  Alcotest.(check bool) "stopped below tolerance" true
    (c.relative_stderr < 0.05);
  Alcotest.(check bool) "ran at least two batches" true (c.batches >= 2);
  Alcotest.(check bool)
    "activity sane" true
    (c.result.activity > 0.1 && c.result.activity < 2.0);
  (* Agrees with a long fixed-cycle measurement. *)
  let reference = Multipliers.Harness.measure_activity ~cycles:200 spec in
  Alcotest.(check bool)
    (Printf.sprintf "within 10%% of long run (%.4f vs %.4f)"
       c.result.activity reference.activity)
    true
    (Float.abs ((c.result.activity -. reference.activity) /. reference.activity)
    < 0.10)

(* Export edge cases *)

let test_verilog_name_mangling () =
  let c = C.create "RCA hor.pipe2" in
  let a = C.add_input c "a" in
  C.mark_output c a "p[0]";
  Alcotest.(check string)
    "spaces and dots mangled" "RCA_hor_pipe2" (Netlist.Verilog.module_name c);
  let src = Netlist.Verilog.to_string c in
  Alcotest.(check bool)
    "output name mangled" true
    (let n = String.length src in
     let rec search i =
       i + 8 <= n && (String.sub src i 8 = "p_0_ = n" || search (i + 1))
     in
     search 0)

let test_vcd_many_probes_unique_codes () =
  let c = C.create "wide" in
  let bus = C.add_input_bus c "x" 120 in
  Array.iteri (fun i n -> C.mark_output c n (Printf.sprintf "o%d" i)) bus;
  let sim = Sim.create c in
  let nets =
    Array.to_list (Array.mapi (fun i n -> (n, Printf.sprintf "x%d" i)) bus)
  in
  let vcd = Logicsim.Vcd.create sim ~nets in
  Logicsim.Vcd.sample vcd ~time:0.0;
  let out = Logicsim.Vcd.contents vcd in
  (* 120 probes need two-character codes past index 93; all $var lines must
     be distinct. *)
  let vars =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 4 && String.sub l 0 4 = "$var")
  in
  Alcotest.(check int) "120 declarations" 120 (List.length vars);
  Alcotest.(check int) "codes unique" 120
    (List.length (List.sort_uniq compare vars))

let test_energy_sweep_validation () =
  let problem =
    Power_core.Calibration.problem_of_row Device.Technology.ll
      ~f:Power_core.Paper_data.frequency
      (Power_core.Paper_data.table1_find "RCA")
  in
  Alcotest.(check bool)
    "points < 2 rejected" true
    (match Power_core.Energy.sweep ~points:1 problem with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_spec_and_technology_printers () =
  let spec = Multipliers.Wallace.basic ~bits:8 in
  let spec_text = Format.asprintf "%a" Multipliers.Spec.pp spec in
  Alcotest.(check bool)
    "spec pp mentions name and N" true
    (let has needle =
       let n = String.length spec_text and m = String.length needle in
       let rec go i = i + m <= n && (String.sub spec_text i m = needle || go (i + 1)) in
       go 0
     in
     has "Wallace" && has "N=");
  let tech_text = Format.asprintf "%a" Device.Technology.pp Device.Technology.ll in
  Alcotest.(check bool)
    "technology pp mentions flavor" true
    (String.length tech_text > 10 && String.sub tech_text 0 2 = "LL")

(* Ablations *)

let calibrated_rca () =
  Power_core.Calibration.problem_of_row Device.Technology.ll
    ~f:Power_core.Paper_data.frequency
    (Power_core.Paper_data.table1_find "RCA")

let test_dibl_invariance () =
  let rows = Power_core.Ablation.dibl_sweep (calibrated_rca ()) in
  match rows with
  | first :: rest ->
    List.iter
      (fun (r : Power_core.Ablation.dibl_row) ->
        Alcotest.(check (float 1e-12)) "ptot invariant" first.ptot r.ptot;
        Alcotest.(check (float 1e-12))
          "effective vth invariant" first.vth_effective r.vth_effective;
        Alcotest.(check (float 1e-9))
          "vth0 shifts by eta*vdd"
          (r.vth_effective +. (r.eta *. (calibrated_rca () |> Power_core.Numerical_opt.optimum).vdd))
          r.vth0_required)
      rest
  | [] -> Alcotest.fail "no rows"

let test_linearization_range_minimum_at_paper_choice () =
  let rows = Power_core.Ablation.linearization_range_sweep () in
  let err hi =
    (List.find (fun (r : Power_core.Ablation.lin_range_row) -> r.hi = hi) rows)
      .max_abs_err_pct
  in
  Alcotest.(check bool) "1.0 beats 0.6" true (err 1.0 < err 0.6);
  Alcotest.(check bool) "1.0 beats 1.6" true (err 1.0 < err 1.6);
  Alcotest.(check bool) "paper range < 3%" true (err 1.0 < 3.0)

let test_glitch_ablation_rca () =
  let rows =
    Power_core.Ablation.glitch_ablation ~cycles:60 Device.Technology.ll
      ~f:Power_core.Paper_data.frequency ~labels:[ "RCA"; "RCA hor.pipe4" ]
  in
  List.iter
    (fun (r : Power_core.Ablation.glitch_row) ->
      Alcotest.(check bool)
        (r.label ^ " glitch power positive")
        true
        (r.glitch_power_pct > 0.0 && r.glitch_power_pct < 100.0);
      Alcotest.(check bool)
        (r.label ^ " quiet activity smaller")
        true
        (r.activity_no_glitch < r.activity_full))
    rows;
  (* Pipelining reduces the glitch share. *)
  match rows with
  | [ flat; piped ] ->
    Alcotest.(check bool)
      "pipe4 glitch share below flat" true
      (piped.glitch_power_pct < flat.glitch_power_pct)
  | _ -> Alcotest.fail "expected two rows"

let test_frequency_sweep_shape () =
  let params =
    Power_core.Calibration.params_of_row Device.Technology.ll
      ~f:Power_core.Paper_data.frequency
      (Power_core.Paper_data.table1_find "Wallace")
  in
  let points = Power_core.Ablation.frequency_sweep ~points:7 params in
  Alcotest.(check int) "seven points" 7 (List.length points);
  (* Power grows with frequency for every feasible flavor. *)
  let totals name =
    List.filter_map
      (fun (p : Power_core.Ablation.freq_point) -> List.assoc name p.per_tech)
      points
  in
  List.iter
    (fun name ->
      let series = totals name in
      let sorted = List.sort Float.compare series in
      Alcotest.(check bool) (name ^ " monotone in f") true (series = sorted))
    [ "ULL"; "LL"; "HS" ]

let test_width_scaling_monotone () =
  let rows =
    Power_core.Ablation.width_scaling ~widths:[ 8; 12; 16 ] ~cycles:40
      Device.Technology.ll ~f:Power_core.Paper_data.frequency
  in
  let rec pairwise = function
    | (a : Power_core.Ablation.width_row) :: b :: rest ->
      Alcotest.(check bool) "rca grows" true (b.rca_ptot > a.rca_ptot);
      Alcotest.(check bool) "wallace grows" true (b.wallace_ptot > a.wallace_ptot);
      Alcotest.(check bool) "wallace cheaper" true (a.wallace_ptot < a.rca_ptot);
      pairwise (b :: rest)
    | [ last ] ->
      Alcotest.(check bool) "wallace cheaper" true (last.wallace_ptot < last.rca_ptot)
    | [] -> ()
  in
  pairwise rows

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "extensions"
    [
      ( "booth",
        [
          Alcotest.test_case "exhaustive 4-bit" `Quick test_booth_exhaustive_4bit;
          Alcotest.test_case "corners 16-bit" `Slow test_booth_corners_16bit;
          Alcotest.test_case "rejects odd width" `Quick test_booth_rejects_odd_width;
          Alcotest.test_case "digit count" `Quick test_booth_recode_digit_count;
          Alcotest.test_case "recode values" `Quick test_booth_recode_values;
        ]
        @ qsuite [ prop_booth16_multiplies ] );
      ( "dadda",
        [
          Alcotest.test_case "height sequence" `Quick test_dadda_heights;
          Alcotest.test_case "exhaustive 4-bit" `Quick test_dadda_exhaustive_4bit;
          Alcotest.test_case "fewer cells than wallace" `Quick
            test_dadda_fewer_cells_than_wallace;
        ]
        @ qsuite [ prop_dadda16_multiplies ] );
      ( "catalog-extensions",
        [ Alcotest.test_case "all correct" `Slow test_extension_catalog ] );
      ( "functional",
        [
          Alcotest.test_case "sequential differential" `Slow
            test_functional_clock_matches_simulator;
          Alcotest.test_case "validation" `Quick test_functional_validation;
        ]
        @ qsuite [ prop_event_sim_matches_functional ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "combinational has no clk" `Quick
            test_verilog_pure_combinational_has_no_clk;
          Alcotest.test_case "file roundtrip" `Quick test_verilog_file_roundtrip;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "format" `Quick test_vcd_format;
          Alcotest.test_case "time monotonic" `Quick test_vcd_time_monotonic;
          Alcotest.test_case "many probes" `Quick test_vcd_many_probes_unique_codes;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "verilog mangling" `Quick test_verilog_name_mangling;
          Alcotest.test_case "energy sweep validation" `Quick
            test_energy_sweep_validation;
          Alcotest.test_case "printers" `Quick test_spec_and_technology_printers;
        ] );
      ( "signed",
        [
          Alcotest.test_case "exhaustive 4-bit" `Quick test_signed_exhaustive_4bit;
          Alcotest.test_case "encoding" `Quick test_signed_encoding;
        ]
        @ qsuite [ prop_signed_booth16 ] );
      ( "power_trace",
        [
          Alcotest.test_case "consistency" `Quick test_power_trace_consistency;
          Alcotest.test_case "quiet input" `Quick test_power_trace_quiet_input;
        ] );
      ( "activity_convergence",
        [ Alcotest.test_case "converges" `Slow test_measure_until_converges ] );
      ( "ablations",
        [
          Alcotest.test_case "dibl invariance" `Quick test_dibl_invariance;
          Alcotest.test_case "linearization range" `Slow
            test_linearization_range_minimum_at_paper_choice;
          Alcotest.test_case "glitch power" `Slow test_glitch_ablation_rca;
          Alcotest.test_case "frequency sweep" `Slow test_frequency_sweep_shape;
          Alcotest.test_case "width scaling" `Slow test_width_scaling_monotone;
        ] );
    ]
