(* Variation Monte Carlo and thermal self-heating extensions. *)

module P = Power_core.Paper_data

let base_problem () =
  Power_core.Calibration.problem_of_row Device.Technology.ll ~f:P.frequency
    (P.table1_find "Wallace")

(* Variation *)

let test_variation_deterministic () =
  let run () =
    let rng = Numerics.Rng.create 99 in
    Power_core.Variation.monte_carlo ~samples:50 ~rng (base_problem ())
  in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12))
    "same mean" a.ptot_stats.mean b.ptot_stats.mean;
  Alcotest.(check (float 1e-12)) "same p95" a.ptot_p95 b.ptot_p95

let test_variation_tight_spread_recovers_nominal () =
  let rng = Numerics.Rng.create 7 in
  let spread =
    {
      Power_core.Variation.sigma_leak = 1e-6;
      sigma_cap = 1e-6;
      sigma_speed = 1e-6;
      sigma_alpha = 1e-6;
    }
  in
  let r =
    Power_core.Variation.monte_carlo ~spread ~samples:20 ~rng (base_problem ())
  in
  Alcotest.(check bool)
    "mean ~ nominal" true
    (Float.abs ((r.ptot_stats.mean -. r.nominal.total) /. r.nominal.total)
    < 1e-3)

let test_variation_spread_grows () =
  let wide =
    { Power_core.Variation.default_spread with sigma_leak = 0.6 }
  in
  let narrow =
    { Power_core.Variation.default_spread with sigma_leak = 0.05 }
  in
  let run spread seed =
    let rng = Numerics.Rng.create seed in
    (Power_core.Variation.monte_carlo ~spread ~samples:120 ~rng
       (base_problem ()))
      .ptot_stats
      .stddev
  in
  Alcotest.(check bool)
    "wider leakage spread -> wider Ptot spread" true
    (run wide 3 > run narrow 3)

let test_variation_p95_above_mean () =
  let rng = Numerics.Rng.create 21 in
  let r = Power_core.Variation.monte_carlo ~samples:150 ~rng (base_problem ()) in
  Alcotest.(check bool) "p95 > mean" true (r.ptot_p95 > r.ptot_stats.mean);
  Alcotest.(check bool)
    "all samples feasible" true
    (List.for_all
       (fun (s : Power_core.Variation.sample) ->
         Float.is_finite s.optimum.total && s.optimum.total > 0.0)
       r.samples)

let test_vth_absorption () =
  let problem = base_problem () in
  let nominal = (Power_core.Numerical_opt.optimum problem).total in
  List.iter
    (fun dvth0 ->
      Alcotest.(check (float 1e-15))
        (Printf.sprintf "dVth0 = %+.2f V absorbed" dvth0)
        nominal
        (Power_core.Variation.vth_absorption problem ~dvth0))
    [ -0.05; 0.05; 0.1 ]

(* Thermal *)

let test_thermal_temperature_scaling () =
  let tech = Device.Technology.ll in
  let hot = Device.Thermal.at_temperature tech ~temperature:360.0 in
  Alcotest.(check bool) "leakage grows" true (hot.io > tech.io);
  Alcotest.(check bool) "threshold drops" true (hot.vth0_nom < tech.vth0_nom);
  Alcotest.(check (float 1e-9)) "temperature set" 360.0 hot.temperature;
  (* ~11x leakage over +60K with a 25 K e-folding. *)
  Alcotest.(check bool)
    "doubling interval honoured" true
    (Float.abs ((hot.io /. tech.io) -. Float.exp (60.0 /. 25.0)) < 1e-6)

let test_thermal_cold_package_is_inert () =
  let e =
    Device.Thermal.self_heating ~r_th:0.0
      ~optimum_at:(fun _ -> 1.0)
      Device.Technology.ll
  in
  Alcotest.(check (float 1e-6)) "ambient temperature" 300.0 e.temperature

let test_thermal_fixpoint_monotone_in_rth () =
  let optimum_at (tech : Device.Technology.t) =
    (* A leakage-dominated toy load: power proportional to Io(T). Kept
       below the runaway threshold (r_th * dP/dT < 1). *)
    0.01 *. tech.io /. Device.Technology.ll.io
  in
  let temp r_th =
    (Device.Thermal.self_heating ~r_th ~optimum_at Device.Technology.ll)
      .temperature
  in
  let t0 = temp 0.0 and t1 = temp 100.0 and t2 = temp 200.0 in
  Alcotest.(check bool) "monotone" true (t0 < t1 && t1 < t2);
  Alcotest.(check bool) "bounded" true (t2 < 330.0)

let test_thermal_divergence_detected () =
  (* A pathological load that doubles per iteration cannot converge. *)
  let power = ref 1.0 in
  let optimum_at _ =
    power := !power *. 2.0;
    !power
  in
  Alcotest.(check bool)
    "failure raised" true
    (match
       Device.Thermal.self_heating ~r_th:50.0 ~max_iter:20 ~optimum_at
         Device.Technology.ll
     with
    | _ -> false
    | exception Failure _ -> true)

let () =
  Alcotest.run "robustness"
    [
      ( "variation",
        [
          Alcotest.test_case "deterministic" `Quick test_variation_deterministic;
          Alcotest.test_case "tight spread = nominal" `Quick
            test_variation_tight_spread_recovers_nominal;
          Alcotest.test_case "spread grows" `Slow test_variation_spread_grows;
          Alcotest.test_case "p95 above mean" `Quick test_variation_p95_above_mean;
          Alcotest.test_case "vth absorption" `Quick test_vth_absorption;
        ] );
      ( "thermal",
        [
          Alcotest.test_case "temperature scaling" `Quick
            test_thermal_temperature_scaling;
          Alcotest.test_case "cold package inert" `Quick
            test_thermal_cold_package_is_inert;
          Alcotest.test_case "fixpoint monotone" `Quick
            test_thermal_fixpoint_monotone_in_rth;
          Alcotest.test_case "divergence detected" `Quick
            test_thermal_divergence_detected;
        ] );
    ]
