(* The analog substrate: waveforms, transient solver, ring oscillators and
   parameter extraction. *)

let check_close eps = Alcotest.(check (float eps))

(* Waveform *)

let sine_wave () =
  let w = Spice.Waveform.create () in
  for i = 0 to 950 do
    let t = float_of_int i *. 1e-3 in
    Spice.Waveform.append w ~time:t ~value:(sin (2.0 *. Float.pi *. 5.0 *. t))
  done;
  w

let test_waveform_crossings () =
  let w = sine_wave () in
  (* 5 Hz over 0.95 s: rising zero crossings at 0.2, 0.4, 0.6, 0.8 (the
     t = 0 start sits exactly on the level and is not a crossing). *)
  let rising = Spice.Waveform.crossings w ~level:0.0 ~rising:true in
  Alcotest.(check int) "rising crossings" 4 (List.length rising)

let test_waveform_period () =
  let w = sine_wave () in
  match Spice.Waveform.period w ~level:0.0 with
  | Some p -> check_close 1e-3 "period 0.2s" 0.2 p
  | None -> Alcotest.fail "expected a period"

let test_waveform_value_at () =
  let w = Spice.Waveform.create () in
  Spice.Waveform.append w ~time:0.0 ~value:0.0;
  Spice.Waveform.append w ~time:1.0 ~value:10.0;
  check_close 1e-9 "interpolated" 2.5 (Spice.Waveform.value_at w 0.25);
  check_close 1e-9 "clamped low" 0.0 (Spice.Waveform.value_at w (-1.0));
  check_close 1e-9 "clamped high" 10.0 (Spice.Waveform.value_at w 2.0)

let test_waveform_monotonic_times () =
  let w = Spice.Waveform.create () in
  Spice.Waveform.append w ~time:1.0 ~value:0.0;
  Alcotest.(check bool)
    "non-increasing time rejected" true
    (match Spice.Waveform.append w ~time:1.0 ~value:1.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Transient *)

let test_chain_delay_positive_and_scaling () =
  let tech = Device.Technology.ll in
  let config = Spice.Transient.default_config tech in
  let nominal = Spice.Transient.chain_delay config ~stages:5 in
  Alcotest.(check bool) "positive" true (nominal > 0.0);
  let low_vdd =
    Spice.Transient.chain_delay { config with vdd = 0.8 } ~stages:5
  in
  Alcotest.(check bool) "slower at low vdd" true (low_vdd > nominal)

let test_chain_delay_matches_slew_estimate () =
  let tech = Device.Technology.ll in
  let config = Spice.Transient.default_config tech in
  let simulated = Spice.Transient.chain_delay config ~stages:5 in
  let estimated = Spice.Ring_oscillator.stage_delay_fast config in
  let ratio = simulated /. estimated in
  Alcotest.(check bool)
    (Printf.sprintf "within 3x of slew estimate (ratio %.2f)" ratio)
    true
    (ratio > 0.3 && ratio < 3.0)

let test_device_current_clamps () =
  let config = Spice.Transient.default_config Device.Technology.ll in
  check_close 1e-15 "zero at vds=0" 0.0
    (Spice.Transient.device_current config ~vds:0.0);
  Alcotest.(check bool)
    "saturates" true
    (Spice.Transient.device_current config ~vds:1.0
     <= Device.Alpha_power.on_current config.tech ~vdd:config.vdd
          ~vth:config.vth)

(* Ring oscillator *)

let test_ring_oscillates () =
  let config = Spice.Transient.default_config Device.Technology.ll in
  let m = Spice.Ring_oscillator.simulate config ~stages:5 in
  Alcotest.(check bool) "period positive" true (m.period > 0.0);
  let expected = Spice.Ring_oscillator.stage_delay_fast config in
  let ratio = m.stage_delay /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "stage delay near slew estimate (ratio %.2f)" ratio)
    true
    (ratio > 0.3 && ratio < 3.0)

let test_ring_rejects_even_stages () =
  let config = Spice.Transient.default_config Device.Technology.ll in
  Alcotest.(check bool)
    "even stage count rejected" true
    (match Spice.Ring_oscillator.simulate config ~stages:4 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_ring_sweep_monotone () =
  let measurements =
    Spice.Ring_oscillator.sweep_vdd Device.Technology.ll ~load_cap:30e-15
      ~stages:5 ~vdds:[ 0.8; 1.0; 1.2 ]
  in
  let delays = List.map (fun (m : Spice.Ring_oscillator.measurement) -> m.stage_delay) measurements in
  match delays with
  | [ d08; d10; d12 ] ->
    Alcotest.(check bool) "faster with vdd" true (d08 > d10 && d10 > d12)
  | _ -> Alcotest.fail "expected three measurements"

(* Param_extract *)

let test_fit_leakage_clean () =
  let tech = Device.Technology.ll in
  let vths = [ 0.15; 0.2; 0.25; 0.3; 0.35; 0.4 ] in
  let samples =
    List.map (fun vth -> (vth, Device.Alpha_power.off_current tech ~vth)) vths
  in
  let fit = Spice.Param_extract.fit_leakage ~ut:(Device.Technology.ut tech) samples in
  check_close 1e-8 "Io" tech.io fit.io;
  check_close 1e-6 "n" tech.n fit.n

let test_fit_leakage_noisy () =
  let tech = Device.Technology.ll in
  let rng = Numerics.Rng.create 99 in
  let vths = List.init 20 (fun i -> 0.1 +. (0.02 *. float_of_int i)) in
  let samples = Spice.Param_extract.leakage_samples tech ~rng ~noise:0.05 ~vths in
  let fit = Spice.Param_extract.fit_leakage ~ut:(Device.Technology.ut tech) samples in
  Alcotest.(check bool)
    "Io within 10%" true
    (Float.abs ((fit.io -. tech.io) /. tech.io) < 0.1);
  Alcotest.(check bool)
    "n within 5%" true
    (Float.abs ((fit.n -. tech.n) /. tech.n) < 0.05)

let test_fit_leakage_validation () =
  Alcotest.(check bool)
    "too few points" true
    (match Spice.Param_extract.fit_leakage ~ut:0.026 [ (0.1, 1e-9) ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "increasing leakage rejected" true
    (match
       Spice.Param_extract.fit_leakage ~ut:0.026 [ (0.1, 1e-9); (0.2, 1e-8) ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_characterize_recovers_alpha () =
  (* The end-to-end ELDO-substitute loop: simulate rings, fit the delay
     model, recover alpha near the golden device's value. *)
  let tech = Device.Technology.ll in
  let fit =
    Spice.Param_extract.characterize ~stages:5 ~vdds:[ 0.8; 1.0; 1.2 ] tech
  in
  Alcotest.(check bool)
    (Printf.sprintf "alpha %.2f within 0.45 of %.2f" fit.alpha tech.alpha)
    true
    (Float.abs (fit.alpha -. tech.alpha) < 0.45);
  Alcotest.(check bool)
    (Printf.sprintf "fit rms %.3f < 0.1" fit.rms_error)
    true (fit.rms_error < 0.1)

let test_fit_alpha_iv_clean () =
  let tech = Device.Technology.ll in
  let vth = 0.3 in
  let vdds = [ 0.5; 0.7; 0.9; 1.1; 1.2 ] in
  let pairs =
    List.map
      (fun vdd -> (vdd, Device.Alpha_power.on_current tech ~vdd ~vth))
      vdds
  in
  let fit = Spice.Param_extract.fit_alpha_iv ~vth pairs in
  Alcotest.(check (float 1e-9)) "alpha exact" tech.alpha fit.alpha_iv;
  Alcotest.(check (float 1e-6)) "r2 = 1" 1.0 fit.r_squared

let test_fit_alpha_iv_noisy () =
  let tech = Device.Technology.hs in
  let rng = Numerics.Rng.create 55 in
  let vdds = List.init 25 (fun i -> 0.5 +. (0.03 *. float_of_int i)) in
  let pairs =
    Spice.Param_extract.iv_samples tech ~rng ~noise:0.03 ~vth:0.25 ~vdds
  in
  let fit = Spice.Param_extract.fit_alpha_iv ~vth:0.25 pairs in
  Alcotest.(check bool)
    (Printf.sprintf "alpha %.3f within 5%% of %.2f" fit.alpha_iv tech.alpha)
    true
    (Float.abs ((fit.alpha_iv -. tech.alpha) /. tech.alpha) < 0.05)

let test_fit_alpha_iv_validation () =
  Alcotest.(check bool)
    "subthreshold points rejected" true
    (match Spice.Param_extract.fit_alpha_iv ~vth:0.5 [ (0.4, 1e-6) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_fit_delay_validation () =
  Alcotest.(check bool)
    "needs 3 measurements" true
    (match Spice.Param_extract.fit_delay Device.Technology.ll [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "spice"
    [
      ( "waveform",
        [
          Alcotest.test_case "crossings" `Quick test_waveform_crossings;
          Alcotest.test_case "period" `Quick test_waveform_period;
          Alcotest.test_case "value_at" `Quick test_waveform_value_at;
          Alcotest.test_case "monotonic times" `Quick test_waveform_monotonic_times;
        ] );
      ( "transient",
        [
          Alcotest.test_case "chain delay scaling" `Quick
            test_chain_delay_positive_and_scaling;
          Alcotest.test_case "matches slew estimate" `Quick
            test_chain_delay_matches_slew_estimate;
          Alcotest.test_case "device current clamps" `Quick
            test_device_current_clamps;
        ] );
      ( "ring_oscillator",
        [
          Alcotest.test_case "oscillates" `Quick test_ring_oscillates;
          Alcotest.test_case "rejects even stages" `Quick
            test_ring_rejects_even_stages;
          Alcotest.test_case "sweep monotone" `Quick test_ring_sweep_monotone;
        ] );
      ( "param_extract",
        [
          Alcotest.test_case "leakage clean" `Quick test_fit_leakage_clean;
          Alcotest.test_case "leakage noisy" `Quick test_fit_leakage_noisy;
          Alcotest.test_case "leakage validation" `Quick test_fit_leakage_validation;
          Alcotest.test_case "characterize alpha" `Slow test_characterize_recovers_alpha;
          Alcotest.test_case "alpha from I-V, clean" `Quick test_fit_alpha_iv_clean;
          Alcotest.test_case "alpha from I-V, noisy" `Quick test_fit_alpha_iv_noisy;
          Alcotest.test_case "I-V validation" `Quick test_fit_alpha_iv_validation;
          Alcotest.test_case "delay fit validation" `Quick test_fit_delay_validation;
        ] );
    ]
