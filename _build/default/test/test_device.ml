(* Device models: constants, Table 2 technologies, alpha-power law,
   linearisation (Eq. 7). *)

let check_close eps = Alcotest.(check (float eps))

let test_thermal_voltage () =
  check_close 1e-4 "Ut at 300K" 0.02585
    (Device.Constants.thermal_voltage ~temperature:300.0)

let test_table2_values () =
  let check name (t : Device.Technology.t) vth0 io zeta alpha =
    check_close 1e-9 (name ^ " vth0") vth0 t.vth0_nom;
    check_close 1e-12 (name ^ " io") io t.io;
    check_close 1e-15 (name ^ " zeta_ro") zeta t.zeta_ro;
    check_close 1e-9 (name ^ " alpha") alpha t.alpha;
    check_close 1e-9 (name ^ " vdd_nom") 1.2 t.vdd_nom;
    check_close 1e-9 (name ^ " n") 1.33 t.n
  in
  check "ULL" Device.Technology.ull 0.466 2.11e-6 7.5e-12 1.95;
  check "LL" Device.Technology.ll 0.354 3.34e-6 5.5e-12 1.86;
  check "HS" Device.Technology.hs 0.328 7.08e-6 6.1e-12 1.58

let test_technology_names () =
  Alcotest.(check (list string))
    "names" [ "ULL"; "LL"; "HS" ]
    (List.map Device.Technology.name Device.Technology.all)

let test_gate_zeta () =
  let t = Device.Technology.ll in
  check_close 1e-18 "gate zeta = zeta_ro / divisor"
    (t.zeta_ro /. t.ring_divisor)
    (Device.Technology.gate_zeta t);
  let t2 = Device.Technology.with_ring_divisor 10.0 t in
  check_close 1e-18 "with_ring_divisor" (t.zeta_ro /. 10.0)
    (Device.Technology.gate_zeta t2)

let test_vth_nom_effective () =
  let t = Device.Technology.ll in
  check_close 1e-9 "DIBL at nominal"
    (t.vth0_nom -. (t.eta *. t.vdd_nom))
    (Device.Technology.vth_nom_effective t)

let test_on_current_continuity () =
  (* At overdrive e*n*Ut/alpha the alpha-power current equals Io: the
     model's continuity point with sub-threshold conduction. *)
  let t = Device.Technology.ll in
  let overdrive = Float.exp 1.0 *. Device.Technology.n_ut t /. t.alpha in
  let vth = 0.3 in
  check_close 1e-12 "Ion(Vth + e n Ut / alpha) = Io" t.io
    (Device.Alpha_power.on_current t ~vdd:(vth +. overdrive) ~vth)

let test_on_current_rejects_subthreshold () =
  Alcotest.(check bool)
    "vdd <= vth rejected" true
    (match Device.Alpha_power.on_current Device.Technology.ll ~vdd:0.3 ~vth:0.3 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_on_current_monotone =
  QCheck.Test.make ~name:"Ion increases with Vdd" ~count:200
    QCheck.(pair (float_range 0.4 1.2) (float_range 0.01 0.3))
    (fun (vdd, step) ->
      let t = Device.Technology.ll in
      let vth = 0.3 in
      Device.Alpha_power.on_current t ~vdd:(vdd +. step) ~vth
      > Device.Alpha_power.on_current t ~vdd ~vth)

let prop_off_current_decreasing =
  QCheck.Test.make ~name:"Ioff decreases with Vth" ~count:200
    QCheck.(pair (float_range 0.0 0.5) (float_range 0.01 0.2))
    (fun (vth, step) ->
      let t = Device.Technology.ll in
      Device.Alpha_power.off_current t ~vth:(vth +. step)
      < Device.Alpha_power.off_current t ~vth)

let test_off_current_slope () =
  (* One decade of leakage per n*Ut*ln(10) of threshold. *)
  let t = Device.Technology.ll in
  let decade = Device.Technology.n_ut t *. Float.log 10.0 in
  let ratio =
    Device.Alpha_power.off_current t ~vth:0.2
    /. Device.Alpha_power.off_current t ~vth:(0.2 +. decade)
  in
  check_close 1e-6 "decade per 79mV" 10.0 ratio

let test_delay_scaling_nominal () =
  let t = Device.Technology.ll in
  check_close 1e-12 "unity at nominal" 1.0
    (Device.Alpha_power.delay_scaling t ~vdd:t.vdd_nom
       ~vth:(Device.Technology.vth_nom_effective t))

let test_delay_grows_at_low_vdd () =
  let t = Device.Technology.ll in
  let vth = Device.Technology.vth_nom_effective t in
  Alcotest.(check bool)
    "slower at 0.6 V" true
    (Device.Alpha_power.delay_scaling t ~vdd:0.6 ~vth > 1.0)

let test_gate_delay_positive () =
  let t = Device.Technology.ll in
  Alcotest.(check bool)
    "positive" true
    (Device.Alpha_power.gate_delay t ~zeta:80e-15 ~vdd:1.0 ~vth:0.3 > 0.0)

(* Linearisation (Eq. 7, Figure 2). *)

let test_linearization_matches_paper () =
  let lin = Device.Linearization.fit ~alpha:1.86 () in
  check_close 5e-3 "A = 0.671" 0.671 lin.a;
  check_close 5e-3 "B = 0.347" 0.347 lin.b

let test_linearization_error_small () =
  (* Figure 2 shows the fit hugging the curve; the worst deviation over the
     0.3-1.0 V range stays below ~0.03 in Vdd^(1/alpha) units. *)
  let lin = Device.Linearization.fit ~alpha:1.86 () in
  Alcotest.(check bool) "max error < 0.03" true (lin.max_error < 0.03)

let test_linearization_figure2_series () =
  let lin = Device.Linearization.fit ~alpha:1.5 () in
  let series = Device.Linearization.figure2_series lin ~samples:11 in
  Alcotest.(check int) "sample count" 11 (List.length series);
  List.iter
    (fun (vdd, exact, linear) ->
      check_close 1e-9 "exact is vdd^(1/alpha)" (vdd ** (1.0 /. 1.5)) exact;
      Alcotest.(check bool)
        "fit within max error" true
        (Float.abs (exact -. linear) <= lin.max_error +. 1e-9))
    series

let test_linearization_validation () =
  let bad f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "alpha <= 0" true
    (bad (fun () -> Device.Linearization.fit ~alpha:0.0 ()));
  Alcotest.(check bool) "lo >= hi" true
    (bad (fun () -> Device.Linearization.fit ~alpha:1.5 ~lo:1.0 ~hi:0.5 ()))

let prop_linearization_bound =
  QCheck.Test.make ~name:"linear fit within max_error on the range"
    ~count:200
    QCheck.(pair (float_range 1.2 2.2) (float_range 0.3 1.0))
    (fun (alpha, vdd) ->
      let lin = Device.Linearization.fit ~alpha () in
      Float.abs
        (Device.Linearization.eval_exact lin vdd
        -. Device.Linearization.eval_linear lin vdd)
      <= lin.max_error +. 1e-9)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "device"
    [
      ( "constants",
        [ Alcotest.test_case "thermal voltage" `Quick test_thermal_voltage ] );
      ( "technology",
        [
          Alcotest.test_case "table 2 values" `Quick test_table2_values;
          Alcotest.test_case "names" `Quick test_technology_names;
          Alcotest.test_case "gate zeta" `Quick test_gate_zeta;
          Alcotest.test_case "effective vth" `Quick test_vth_nom_effective;
        ] );
      ( "alpha_power",
        [
          Alcotest.test_case "continuity with Io" `Quick test_on_current_continuity;
          Alcotest.test_case "rejects vdd<=vth" `Quick test_on_current_rejects_subthreshold;
          Alcotest.test_case "subthreshold slope" `Quick test_off_current_slope;
          Alcotest.test_case "delay nominal" `Quick test_delay_scaling_nominal;
          Alcotest.test_case "delay at low vdd" `Quick test_delay_grows_at_low_vdd;
          Alcotest.test_case "gate delay positive" `Quick test_gate_delay_positive;
        ]
        @ qsuite [ prop_on_current_monotone; prop_off_current_decreasing ] );
      ( "linearization",
        [
          Alcotest.test_case "matches paper A/B" `Quick test_linearization_matches_paper;
          Alcotest.test_case "error small" `Quick test_linearization_error_small;
          Alcotest.test_case "figure2 series" `Quick test_linearization_figure2_series;
          Alcotest.test_case "validation" `Quick test_linearization_validation;
        ]
        @ qsuite [ prop_linearization_bound ] );
    ]
