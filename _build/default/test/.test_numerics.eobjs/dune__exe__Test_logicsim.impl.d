test/test_logicsim.ml: Alcotest Array Gen List Logicsim Multipliers Netlist Numerics QCheck QCheck_alcotest
