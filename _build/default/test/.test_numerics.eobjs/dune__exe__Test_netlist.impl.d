test/test_netlist.ml: Alcotest Array Hashtbl List Logicsim Multipliers Netlist Numerics Printf QCheck QCheck_alcotest
