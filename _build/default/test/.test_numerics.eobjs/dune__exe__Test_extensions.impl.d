test/test_extensions.ml: Alcotest Array Device Filename Float Format Fun List Logicsim Multipliers Netlist Numerics Power_core Printf QCheck QCheck_alcotest String Sys
