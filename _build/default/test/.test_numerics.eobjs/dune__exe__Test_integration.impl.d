test/test_integration.ml: Alcotest Device Float Lazy List Power_core Printf Report
