test/test_power.ml: Alcotest Device Float List Option Power_core Printf QCheck QCheck_alcotest
