test/test_multipliers.ml: Alcotest Array List Logicsim Multipliers Netlist Numerics Power_core Printf QCheck QCheck_alcotest String
