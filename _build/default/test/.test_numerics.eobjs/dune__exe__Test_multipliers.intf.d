test/test_multipliers.mli:
