test/test_spice.ml: Alcotest Device Float List Numerics Printf Spice
