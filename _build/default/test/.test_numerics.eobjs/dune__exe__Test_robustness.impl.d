test/test_robustness.ml: Alcotest Device Float List Numerics Power_core Printf
