test/test_numerics.ml: Alcotest Array Float Fun List Numerics QCheck QCheck_alcotest
