test/test_report.ml: Alcotest Device Filename Fun List Multipliers Power_core Report String Sys
