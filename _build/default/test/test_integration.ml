(* Paper-level integration tests: every table and figure reproduced within
   tolerance, and the from-scratch pipeline preserving the paper's
   qualitative findings. *)

module P = Power_core.Paper_data

let find_row label rows =
  List.find
    (fun (r : Report.Experiments.table1_row) -> r.label = label)
    rows

(* TAB1 *)

let table1_rows = lazy (Report.Experiments.table1 ())

let test_table1_ptot_matches_paper () =
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      let err = Float.abs ((r.ptot -. r.paper.ptot) /. r.paper.ptot) in
      Alcotest.(check bool)
        (Printf.sprintf "%s numerical Ptot within 1%% (%.3f%%)" r.label
           (100.0 *. err))
        true (err < 0.01))
    (Lazy.force table1_rows)

let test_table1_vdd_vth_match_paper () =
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s Vdd* within 5 mV" r.label)
        true
        (Float.abs (r.vdd -. r.paper.vdd) < 0.005);
      Alcotest.(check bool)
        (Printf.sprintf "%s Vth* within 5 mV" r.label)
        true
        (Float.abs (r.vth -. r.paper.vth) < 0.005))
    (Lazy.force table1_rows)

let test_table1_eq13_error_band () =
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s |Eq13 err| = %.2f%% < 3%%" r.label r.err_pct)
        true
        (Float.abs r.err_pct < 3.0))
    (Lazy.force table1_rows)

let test_table1_architecture_ordering () =
  let rows = Lazy.force table1_rows in
  let ptot label = (find_row label rows).ptot in
  Alcotest.(check bool) "Wallace < RCA" true (ptot "Wallace" < ptot "RCA");
  Alcotest.(check bool)
    "pipelining helps RCA" true
    (ptot "RCA hor.pipe2" < ptot "RCA" && ptot "RCA hor.pipe4" < ptot "RCA hor.pipe2");
  Alcotest.(check bool)
    "parallelisation helps RCA" true
    (ptot "RCA parallel" < ptot "RCA" && ptot "RCA parallel 4" < ptot "RCA parallel");
  Alcotest.(check bool)
    "Wallace par4 overhead cancels the gain" true
    (ptot "Wallace par4" > ptot "Wallace parallel");
  Alcotest.(check bool)
    "sequential is hopeless" true
    (ptot "Sequential" > 5.0 *. ptot "RCA");
  Alcotest.(check bool)
    "4x16 rescues the sequential" true
    (ptot "Seq4_16" < 0.25 *. ptot "Sequential")

(* TAB3 / TAB4 *)

let test_wallace_tables () =
  let check which expected_better_than_basic =
    let t = Report.Experiments.table_wallace which in
    Alcotest.(check int) "three rows" 3 (List.length t.rows);
    List.iter
      (fun (r : Report.Experiments.wallace_row) ->
        let err = Float.abs ((r.w_ptot -. r.w_paper.w_ptot) /. r.w_paper.w_ptot) in
        Alcotest.(check bool)
          (Printf.sprintf "%s %s Ptot within 5%% (%.2f%%)"
             (Device.Technology.name t.tech)
             r.w_label (100.0 *. err))
          true (err < 0.05))
      t.rows;
    let ptot label =
      (List.find (fun (r : Report.Experiments.wallace_row) -> r.w_label = label) t.rows).w_ptot
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: parallel %s basic"
         (Device.Technology.name t.tech)
         (if expected_better_than_basic then "beats" else "loses to"))
      expected_better_than_basic
      (ptot "Wallace parallel" < ptot "Wallace")
  in
  (* The paper's reversal: parallelisation pays on ULL, not on HS. *)
  check `Ull true;
  check `Hs false

let test_ll_beats_both_extremes () =
  (* Compare Wallace basic across the three flavors (Tables 1, 3, 4). *)
  let ll = (find_row "Wallace" (Lazy.force table1_rows)).ptot in
  let ull_t = Report.Experiments.table_wallace `Ull in
  let hs_t = Report.Experiments.table_wallace `Hs in
  let first (t : Report.Experiments.wallace_table) =
    (List.find (fun (r : Report.Experiments.wallace_row) -> r.w_label = "Wallace") t.rows).w_ptot
  in
  Alcotest.(check bool) "LL < ULL" true (ll < first ull_t);
  Alcotest.(check bool) "LL < HS" true (ll < first hs_t)

(* FIG1 *)

let test_figure1_trends () =
  let curves = Report.Experiments.figure1 () in
  Alcotest.(check int) "four curves" 4 (List.length curves);
  let sorted =
    List.sort
      (fun (a : Report.Experiments.figure1_curve) b ->
        Float.compare b.activity a.activity)
      curves
  in
  let rec pairwise = function
    | (a : Report.Experiments.figure1_curve)
      :: (b : Report.Experiments.figure1_curve) :: rest ->
      (* Lower activity: lower optimal power, higher optimal Vdd and Vth —
         exactly the migration Figure 1 annotates. *)
      Alcotest.(check bool)
        (Printf.sprintf "Ptot(a=%.3g) > Ptot(a=%.3g)" a.activity b.activity)
        true
        (a.optimum.total > b.optimum.total);
      Alcotest.(check bool) "optimal Vdd rises" true (a.optimum.vdd < b.optimum.vdd);
      Alcotest.(check bool) "optimal Vth rises" true (a.optimum.vth < b.optimum.vth);
      pairwise (b :: rest)
    | [ _ ] | [] -> ()
  in
  pairwise sorted;
  List.iter
    (fun (c : Report.Experiments.figure1_curve) ->
      Alcotest.(check bool)
        "dyn/stat ratio in the paper's 2-8 band" true
        (c.dyn_static_ratio > 2.0 && c.dyn_static_ratio < 8.0);
      (* The marked optimum lies on (or below) its own curve. *)
      List.iter
        (fun (p : Power_core.Numerical_opt.point) ->
          Alcotest.(check bool) "optimum minimal" true
            (c.optimum.total <= p.total +. 1e-12))
        c.points)
    curves

(* FIG2 *)

let test_figure2_paper_constants () =
  let lin = Report.Experiments.figure2 ~alpha:1.86 () in
  Alcotest.(check (float 5e-3)) "A" 0.671 lin.a;
  Alcotest.(check (float 5e-3)) "B" 0.347 lin.b

(* TAB2 *)

let test_table2_recharacterisation () =
  let rows = Report.Experiments.table2 () in
  Alcotest.(check int) "three flavors" 3 (List.length rows);
  List.iter
    (fun (r : Report.Experiments.table2_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s refit alpha %.2f near published %.2f" r.flavor
           r.fitted_alpha r.published_alpha)
        true
        (Float.abs (r.fitted_alpha -. r.published_alpha) < 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "%s rms %.3f small" r.flavor r.fit_rms)
        true (r.fit_rms < 0.1))
    rows

(* SCRATCH — the from-scratch shape reproduction. *)

let scratch_rows =
  lazy
    (Power_core.Scratch_pipeline.run_all ~cycles:100 Device.Technology.ll
       ~f:P.frequency ())

let scratch label =
  List.find
    (fun (r : Power_core.Scratch_pipeline.row) -> r.params.label = label)
    (Lazy.force scratch_rows)

let test_scratch_shape_orderings () =
  let ptot label = (scratch label).numerical.total in
  Alcotest.(check bool) "Wallace < RCA" true (ptot "Wallace" < ptot "RCA");
  Alcotest.(check bool)
    "pipelining helps" true
    (ptot "RCA hor.pipe2" < ptot "RCA");
  Alcotest.(check bool)
    "parallelisation helps RCA" true
    (ptot "RCA parallel" < ptot "RCA");
  Alcotest.(check bool)
    "sequential worst of all" true
    (List.for_all
       (fun (r : Power_core.Scratch_pipeline.row) ->
         r.params.label = "Sequential"
         || r.numerical.total <= ptot "Sequential")
       (Lazy.force scratch_rows))

let test_scratch_glitch_story () =
  (* Diagonal pipelines: shorter LD, more glitching — both measured from
     our own netlists. *)
  let hor2 = scratch "RCA hor.pipe2" and diag2 = scratch "RCA diagpipe2" in
  let hor4 = scratch "RCA hor.pipe4" and diag4 = scratch "RCA diagpipe4" in
  Alcotest.(check bool)
    "diag4 LD < hor4 LD" true
    (diag4.params.ld_eff < hor4.params.ld_eff);
  Alcotest.(check bool)
    "diag2 activity > hor2" true
    (diag2.params.activity > hor2.params.activity);
  Alcotest.(check bool)
    "diag4 activity > hor4" true
    (diag4.params.activity > hor4.params.activity)

let test_scratch_activity_scale () =
  (* Sequential activity >> 1 when measured against the data clock;
     parallelisation roughly halves activity. *)
  Alcotest.(check bool)
    "sequential a > 1" true
    ((scratch "Sequential").params.activity > 1.0);
  let basic = (scratch "RCA").params.activity in
  let par = (scratch "RCA parallel").params.activity in
  Alcotest.(check bool)
    (Printf.sprintf "parallel halves activity (%.3f vs %.3f)" par basic)
    true
    (par < 0.65 *. basic && par > 0.35 *. basic)

let test_scratch_eq13_consistency () =
  (* On our own parameters the closed form still tracks the numerical
     optimum (the model property, independent of calibration). *)
  List.iter
    (fun (r : Power_core.Scratch_pipeline.row) ->
      match Power_core.Scratch_pipeline.eq13_error_pct r with
      | Some err ->
        Alcotest.(check bool)
          (Printf.sprintf "%s |err| = %.1f%% < 12%%" r.params.label
             (Float.abs err))
          true
          (Float.abs err < 12.0)
      | None -> Alcotest.fail (r.params.label ^ ": Eq.13 infeasible"))
    (Lazy.force scratch_rows)

let test_scratch_n_cells_scale () =
  (* Cell counts land in the same range as the paper's synthesis. *)
  let pairs =
    [ ("RCA", 608); ("Wallace", 729); ("Sequential", 290); ("RCA parallel", 1256) ]
  in
  List.iter
    (fun (label, paper_n) ->
      let n = (scratch label).params.n_cells in
      let ratio = n /. float_of_int paper_n in
      Alcotest.(check bool)
        (Printf.sprintf "%s N=%.0f within 2x of paper's %d" label n paper_n)
        true
        (ratio > 0.5 && ratio < 2.0))
    pairs

let () =
  Alcotest.run "integration"
    [
      ( "table1",
        [
          Alcotest.test_case "Ptot matches paper" `Quick test_table1_ptot_matches_paper;
          Alcotest.test_case "Vdd/Vth match paper" `Quick test_table1_vdd_vth_match_paper;
          Alcotest.test_case "Eq13 < 3%" `Quick test_table1_eq13_error_band;
          Alcotest.test_case "architecture ordering" `Quick
            test_table1_architecture_ordering;
        ] );
      ( "tables3-4",
        [
          Alcotest.test_case "ULL/HS reproduction + reversal" `Slow test_wallace_tables;
          Alcotest.test_case "LL beats both extremes" `Slow test_ll_beats_both_extremes;
        ] );
      ( "figure1",
        [ Alcotest.test_case "optimum migration" `Quick test_figure1_trends ] );
      ( "figure2",
        [ Alcotest.test_case "paper constants" `Quick test_figure2_paper_constants ] );
      ( "table2",
        [ Alcotest.test_case "re-characterisation" `Slow test_table2_recharacterisation ] );
      ( "scratch",
        [
          Alcotest.test_case "orderings" `Slow test_scratch_shape_orderings;
          Alcotest.test_case "glitch story" `Slow test_scratch_glitch_story;
          Alcotest.test_case "activity scale" `Slow test_scratch_activity_scale;
          Alcotest.test_case "eq13 consistency" `Slow test_scratch_eq13_consistency;
          Alcotest.test_case "cell counts" `Slow test_scratch_n_cells_scale;
        ] );
    ]
