(* The paper's core model: Eqs. 1-6 (Power_law), the closed form (Eqs. 7-13),
   the numerical optimiser, calibration and the Section 4/5 utilities. *)

module P = Power_core.Paper_data

let tech = Device.Technology.ll
let f = P.frequency
let check_close eps = Alcotest.(check (float eps))

let rca_problem () =
  Power_core.Calibration.problem_of_row tech ~f (P.table1_find "RCA")

(* Power_law *)

let test_chi_roundtrip () =
  let problem = rca_problem () in
  let vdd = 0.5 in
  let vth = Power_core.Power_law.vth_of_vdd problem vdd in
  check_close 1e-9 "chi' recovered" problem.chi_prime
    (Power_core.Power_law.chi_prime_of_point tech ~vdd ~vth)

let test_vdd_of_vth_inverse () =
  let problem = rca_problem () in
  let vdd = 0.7 in
  let vth = Power_core.Power_law.vth_of_vdd problem vdd in
  check_close 1e-8 "inverse" vdd (Power_core.Power_law.vdd_of_vth problem vth)

let test_pdyn_quadratic () =
  let problem = rca_problem () in
  let p1 = Power_core.Power_law.pdyn problem ~vdd:0.5 in
  let p2 = Power_core.Power_law.pdyn problem ~vdd:1.0 in
  check_close 1e-9 "4x at double vdd" 4.0 (p2 /. p1)

let test_pstat_exponential () =
  let problem = rca_problem () in
  let n_ut = Device.Technology.n_ut tech in
  let p1 = Power_core.Power_law.pstat problem ~vdd:1.0 ~vth:0.2 in
  let p2 = Power_core.Power_law.pstat problem ~vdd:1.0 ~vth:(0.2 +. n_ut) in
  check_close 1e-9 "e-fold per nUt" (Float.exp 1.0) (p1 /. p2)

let test_breakdown_consistency () =
  let problem = rca_problem () in
  let b = Power_core.Power_law.at problem ~vdd:0.6 in
  check_close 1e-15 "total = dyn + stat" b.total (b.dynamic +. b.static);
  let b2 = Power_core.Power_law.at_free problem ~vdd:0.6 ~vth:b.vth in
  check_close 1e-15 "at = at_free on locus" b.total b2.total

let test_meets_timing_boundary () =
  let problem = rca_problem () in
  let vdd = 0.6 in
  let vth = Power_core.Power_law.vth_of_vdd problem vdd in
  Alcotest.(check bool)
    "on the locus" true
    (Power_core.Power_law.meets_timing problem ~vdd ~vth:(vth -. 1e-6));
  Alcotest.(check bool)
    "above the locus fails" false
    (Power_core.Power_law.meets_timing problem ~vdd ~vth:(vth +. 0.05))

let test_published_point_on_locus () =
  (* The calibrated chi' puts the paper's published optimal couple exactly
     on the constraint. *)
  let row = P.table1_find "Wallace" in
  let problem = Power_core.Calibration.problem_of_row tech ~f row in
  check_close 1e-9 "vth at the published vdd" row.vth
    (Power_core.Power_law.vth_of_vdd problem row.vdd)

let test_chi_linear_def () =
  let problem = rca_problem () in
  check_close 1e-12 "chi = chi'^(1/alpha)"
    (problem.chi_prime ** (1.0 /. tech.alpha))
    (Power_core.Power_law.chi_linear problem)

(* Closed_form *)

let test_eq13_all_rows_within_3pct () =
  (* The headline claim of the paper, re-established on our solvers. *)
  List.iter
    (fun (row : P.table1_row) ->
      let problem = Power_core.Calibration.problem_of_row tech ~f row in
      let opt = Power_core.Numerical_opt.optimum problem in
      let cf = Power_core.Closed_form.evaluate problem in
      let err = Float.abs ((cf.ptot -. opt.total) /. opt.total) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: |err| = %.2f%% < 3%%" row.label (100.0 *. err))
        true (err < 0.03))
    P.table1

let test_eq13_matches_paper_column () =
  (* Our Eq. 13 value should land near the paper's own Eq. 13 column. *)
  List.iter
    (fun (row : P.table1_row) ->
      let problem = Power_core.Calibration.problem_of_row tech ~f row in
      let cf = Power_core.Closed_form.evaluate problem in
      let err = Float.abs ((cf.ptot -. row.ptot_eq13) /. row.ptot_eq13) in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 5%% of published Eq.13 (%.2f%%)" row.label
           (100.0 *. err))
        true (err < 0.05))
    P.table1

let test_eq13_vs_eq11 () =
  let problem = rca_problem () in
  let cf = Power_core.Closed_form.evaluate problem in
  check_close 0.05 "Eq.13 ~ Eq.11 (relative)" 1.0 (cf.ptot /. cf.ptot_eq11)

let test_closed_form_optimum_location () =
  let problem = rca_problem () in
  let cf = Power_core.Closed_form.evaluate problem in
  let opt = Power_core.Numerical_opt.optimum problem in
  Alcotest.(check bool)
    "vdd within 5%" true
    (Float.abs ((cf.vdd_opt -. opt.vdd) /. opt.vdd) < 0.05);
  Alcotest.(check bool)
    "vth within 10%" true
    (Float.abs ((cf.vth_opt -. opt.vth) /. opt.vth) < 0.10)

let test_infeasible_raised () =
  let params =
    Power_core.Calibration.params_of_row tech ~f (P.table1_find "RCA")
  in
  (* Absurd logical depth: cannot meet 31.25 MHz. *)
  let slow = Power_core.Arch_params.scale ~ld_eff:1000.0 params in
  let problem = Power_core.Power_law.make tech slow ~f in
  Alcotest.(check bool)
    "Infeasible" true
    (match Power_core.Closed_form.evaluate problem with
    | _ -> false
    | exception Power_core.Closed_form.Infeasible _ -> true)

(* Numerical_opt *)

let test_optimum_not_above_sweep () =
  let problem = rca_problem () in
  let opt = Power_core.Numerical_opt.optimum problem in
  let sweep =
    Power_core.Numerical_opt.sweep_vdd ~samples:150 ~vdd_lo:0.1 ~vdd_hi:1.5
      problem
  in
  List.iter
    (fun (p : Power_core.Numerical_opt.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "optimum <= sweep at %.2f V" p.vdd)
        true
        (opt.total <= p.total +. 1e-12))
    sweep

let test_grid2_agrees_with_constrained () =
  (* Positive slack never helps: the free 2-D optimum sits on the timing
     constraint and matches the 1-D search. *)
  let problem = rca_problem () in
  let opt1 = Power_core.Numerical_opt.optimum problem in
  let opt2 =
    Power_core.Numerical_opt.optimum_grid2 ~vdd_range:(0.2, 1.0)
      ~vth_range:(0.05, 0.5) ~samples:220 problem
  in
  Alcotest.(check bool)
    (Printf.sprintf "within 2%% (%.2f vs %.2f uW)" (opt1.total *. 1e6)
       (opt2.total *. 1e6))
    true
    (Float.abs ((opt2.total -. opt1.total) /. opt1.total) < 0.02)

let test_dyn_static_ratio () =
  let p : Power_core.Numerical_opt.point =
    { vdd = 1.0; vth = 0.3; dynamic = 6.0; static = 2.0; total = 8.0 }
  in
  check_close 1e-12 "ratio" 3.0 (Power_core.Numerical_opt.dyn_static_ratio p)

(* Calibration *)

let test_calibration_roundtrip () =
  (* The inverted parameters reproduce the published Pdyn/Pstat at the
     published operating point. *)
  List.iter
    (fun (row : P.table1_row) ->
      let problem = Power_core.Calibration.problem_of_row tech ~f row in
      let b =
        Power_core.Power_law.at_free problem ~vdd:row.vdd ~vth:row.vth
      in
      check_close (row.pdyn *. 1e-9) (row.label ^ " pdyn") row.pdyn b.dynamic;
      check_close (row.pstat *. 1e-9) (row.label ^ " pstat") row.pstat b.static)
    P.table1

let test_implied_zeta_scale () =
  List.iter
    (fun (row : P.table1_row) ->
      let zeta = Power_core.Calibration.implied_gate_zeta tech ~f row in
      Alcotest.(check bool)
        (Printf.sprintf "%s zeta %.1f fF in [20, 300]" row.label (zeta *. 1e15))
        true
        (zeta > 20e-15 && zeta < 300e-15))
    P.table1

let test_ring_divisor_fit () =
  let divisor = Power_core.Calibration.fit_ring_divisor tech ~f P.table1 in
  Alcotest.(check bool)
    (Printf.sprintf "divisor %.1f in [40, 100]" divisor)
    true
    (divisor > 40.0 && divisor < 100.0)

let test_cap_scale_ordering () =
  let pairs which targets =
    ignore which;
    List.map (fun (t : P.wallace_row) -> (P.table1_find t.w_label, t)) targets
  in
  let ull =
    Power_core.Calibration.fit_cap_scale Device.Technology.ull ~f
      ~rows:(pairs `Ull P.table3_ull)
  in
  let hs =
    Power_core.Calibration.fit_cap_scale Device.Technology.hs ~f
      ~rows:(pairs `Hs P.table4_hs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "ULL scale %.2f near 1" ull)
    true
    (ull > 0.8 && ull < 1.4);
  Alcotest.(check bool)
    (Printf.sprintf "HS scale %.2f well above ULL's" hs)
    true (hs > ull +. 0.3)

(* Paper_data *)

let test_paper_data_shape () =
  Alcotest.(check int) "13 rows" 13 (List.length P.table1);
  Alcotest.(check int) "3 ULL rows" 3 (List.length P.table3_ull);
  Alcotest.(check int) "3 HS rows" 3 (List.length P.table4_hs);
  Alcotest.(check int) "3 LL wallace rows" 3 (List.length P.wallace_ll);
  check_close 1.0 "frequency" 31.25e6 P.frequency;
  Alcotest.(check bool)
    "unknown label raises" true
    (match P.table1_find "nope" with
    | _ -> false
    | exception Not_found -> true)

let test_paper_data_consistency () =
  (* Published Ptot = Pdyn + Pstat (rounding tolerance), err column matches
     the Eq13/numerical pair. *)
  List.iter
    (fun (row : P.table1_row) ->
      check_close (row.ptot *. 2e-4) (row.label ^ " ptot sum")
        row.ptot (row.pdyn +. row.pstat);
      let err = 100.0 *. (row.ptot_eq13 -. row.ptot) /. row.ptot in
      (* The paper's sign convention is numerical-vs-eq13. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s err column consistent (%.2f vs %.2f)" row.label err
           row.err_pct)
        true
        (Float.abs (Float.abs err -. Float.abs row.err_pct) < 0.15))
    P.table1

(* Transform *)

let rca_params () =
  Power_core.Calibration.params_of_row tech ~f (P.table1_find "RCA")

let test_transform_parallelize_helps_rca () =
  let ratio =
    Power_core.Transform.predicted_ratio tech ~f (rca_params ())
      (Power_core.Transform.parallelize ~copies:2 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f < 1" ratio)
    true (ratio < 1.0);
  (* And close to the published 147.57/191.44 = 0.77. *)
  Alcotest.(check bool) "near the paper's ratio" true
    (Float.abs (ratio -. 0.77) < 0.15)

let test_transform_sequentialize_hurts () =
  let ratio =
    Power_core.Transform.predicted_ratio tech ~f (rca_params ())
      (Power_core.Transform.sequentialize ~cycles:16)
  in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f > 1.5" ratio) true (ratio > 1.5)

let test_transform_diagonal_tradeoff () =
  let params = rca_params () in
  let hor = (Power_core.Transform.pipeline_horizontal ~stages:4 ()).apply params in
  let diag = (Power_core.Transform.pipeline_diagonal ~stages:4 ()).apply params in
  Alcotest.(check bool) "diag LD shorter" true (diag.ld_eff < hor.ld_eff);
  Alcotest.(check bool) "diag activity higher" true (diag.activity > hor.activity)

let test_transform_validation () =
  Alcotest.(check bool)
    "copies < 2" true
    (match Power_core.Transform.parallelize ~copies:1 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "cycles < 2" true
    (match Power_core.Transform.sequentialize ~cycles:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Tech_compare *)

let wallace_params () =
  Power_core.Calibration.params_of_row tech ~f (P.table1_find "Wallace")

let test_rank_ll_wins_at_paper_frequency () =
  let entries = Power_core.Tech_compare.rank ~f (wallace_params ()) in
  match entries with
  | first :: _ ->
    Alcotest.(check string)
      "LL first" "LL"
      (Device.Technology.name first.tech)
  | [] -> Alcotest.fail "no entries"

let test_rank_order_complete () =
  let entries = Power_core.Tech_compare.rank ~f (wallace_params ()) in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  let totals =
    List.filter_map
      (fun (e : Power_core.Tech_compare.entry) ->
        Option.map (fun (p : Power_core.Numerical_opt.point) -> p.total) e.numerical)
      entries
  in
  Alcotest.(check bool)
    "sorted ascending" true
    (List.sort Float.compare totals = totals)

let test_adapt_params () =
  let params = wallace_params () in
  let adapted =
    Power_core.Tech_compare.adapt_params ~reference:tech Device.Technology.hs
      params
  in
  Alcotest.(check bool)
    "HS leaks more" true (adapted.io_cell > params.io_cell);
  Alcotest.(check bool)
    "HS caps bigger" true (adapted.avg_cap > params.avg_cap);
  Alcotest.(check (float 1e-9)) "N unchanged" params.n_cells adapted.n_cells

let test_crossover_hs_ll_exists () =
  match
    Power_core.Tech_compare.crossover_frequency Device.Technology.hs
      Device.Technology.ll (wallace_params ())
  with
  | Some fx ->
    Alcotest.(check bool)
      (Printf.sprintf "crossover at %.0f MHz above the paper's 31.25"
         (fx /. 1e6))
      true
      (fx > P.frequency && fx < 1e9)
  | None -> Alcotest.fail "expected an HS/LL crossover"

(* Arch_params *)

let test_arch_params_scale () =
  let params = rca_params () in
  let scaled = Power_core.Arch_params.scale ~n_cells:2.0 ~ld_eff:0.5 params in
  check_close 1e-9 "n doubled" (2.0 *. params.n_cells) scaled.n_cells;
  check_close 1e-9 "ld halved" (0.5 *. params.ld_eff) scaled.ld_eff;
  check_close 1e-9 "activity kept" params.activity scaled.activity

let prop_optimum_interior =
  QCheck.Test.make ~name:"optimum is interior over activity scalings"
    ~count:40
    QCheck.(float_range 0.05 3.0)
    (fun activity_scale ->
      let params =
        Power_core.Arch_params.scale ~activity:activity_scale (rca_params ())
      in
      let row = P.table1_find "RCA" in
      let problem =
        Power_core.Power_law.make_calibrated tech params ~f ~vdd_ref:row.vdd
          ~vth_ref:row.vth
      in
      let opt = Power_core.Numerical_opt.optimum problem in
      opt.vdd > 0.06 && opt.vdd < 2.9 && Float.is_finite opt.total)

(* Energy *)

let test_at_frequency_scales_chi () =
  let problem = rca_problem () in
  let doubled = Power_core.Power_law.at_frequency problem ~f:(2.0 *. f) in
  check_close 1e-15 "chi' doubles" (2.0 *. problem.chi_prime)
    doubled.chi_prime;
  Alcotest.(check bool)
    "f <= 0 rejected" true
    (match Power_core.Power_law.at_frequency problem ~f:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_energy_u_shape () =
  let problem =
    Power_core.Calibration.problem_of_row tech ~f (P.table1_find "Wallace")
  in
  let mep = Power_core.Energy.minimum_energy_point problem in
  Alcotest.(check bool)
    "MEP inside the range" true
    (mep.f_mep > 0.2e6 && mep.f_mep < 400e6);
  Alcotest.(check bool) "MEP no worse than 1 MHz" true (mep.overhead_at 1e6 >= 1.0);
  Alcotest.(check bool)
    "MEP no worse than 300 MHz" true
    (mep.overhead_at 300e6 >= 1.0);
  check_close 1e-6 "overhead at MEP is 1" 1.0 (mep.overhead_at mep.f_mep)

let test_energy_sweep_vth_tracks_f () =
  (* Tighter timing forces lower thresholds. *)
  let problem =
    Power_core.Calibration.problem_of_row tech ~f (P.table1_find "Wallace")
  in
  let points = Power_core.Energy.sweep ~points:8 problem in
  let vths = List.map (fun (p : Power_core.Energy.sweep_point) -> p.vth) points in
  let sorted_desc = List.sort (fun a b -> Float.compare b a) vths in
  Alcotest.(check bool) "vth monotone decreasing with f" true (vths = sorted_desc)

let test_energy_consistent_with_power () =
  let problem = rca_problem () in
  let direct = (Power_core.Numerical_opt.optimum problem).total /. f in
  check_close (direct *. 1e-9) "definition" direct
    (Power_core.Energy.energy_per_op problem)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "power_core"
    [
      ( "power_law",
        [
          Alcotest.test_case "chi roundtrip" `Quick test_chi_roundtrip;
          Alcotest.test_case "vdd_of_vth inverse" `Quick test_vdd_of_vth_inverse;
          Alcotest.test_case "pdyn quadratic" `Quick test_pdyn_quadratic;
          Alcotest.test_case "pstat exponential" `Quick test_pstat_exponential;
          Alcotest.test_case "breakdown consistency" `Quick test_breakdown_consistency;
          Alcotest.test_case "timing boundary" `Quick test_meets_timing_boundary;
          Alcotest.test_case "published point on locus" `Quick
            test_published_point_on_locus;
          Alcotest.test_case "chi linear" `Quick test_chi_linear_def;
        ] );
      ( "closed_form",
        [
          Alcotest.test_case "all rows < 3%" `Quick test_eq13_all_rows_within_3pct;
          Alcotest.test_case "matches published Eq13" `Quick
            test_eq13_matches_paper_column;
          Alcotest.test_case "eq13 vs eq11" `Quick test_eq13_vs_eq11;
          Alcotest.test_case "optimum location" `Quick test_closed_form_optimum_location;
          Alcotest.test_case "infeasible" `Quick test_infeasible_raised;
        ] );
      ( "numerical_opt",
        [
          Alcotest.test_case "not above sweep" `Quick test_optimum_not_above_sweep;
          Alcotest.test_case "grid2 agreement" `Slow test_grid2_agrees_with_constrained;
          Alcotest.test_case "dyn/static ratio" `Quick test_dyn_static_ratio;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "roundtrip" `Quick test_calibration_roundtrip;
          Alcotest.test_case "implied zeta scale" `Quick test_implied_zeta_scale;
          Alcotest.test_case "ring divisor" `Quick test_ring_divisor_fit;
          Alcotest.test_case "cap scale ordering" `Slow test_cap_scale_ordering;
        ] );
      ( "paper_data",
        [
          Alcotest.test_case "shape" `Quick test_paper_data_shape;
          Alcotest.test_case "consistency" `Quick test_paper_data_consistency;
        ] );
      ( "transform",
        [
          Alcotest.test_case "parallelize helps RCA" `Quick
            test_transform_parallelize_helps_rca;
          Alcotest.test_case "sequentialize hurts" `Quick test_transform_sequentialize_hurts;
          Alcotest.test_case "diagonal tradeoff" `Quick test_transform_diagonal_tradeoff;
          Alcotest.test_case "validation" `Quick test_transform_validation;
        ] );
      ( "tech_compare",
        [
          Alcotest.test_case "LL wins at 31.25 MHz" `Quick
            test_rank_ll_wins_at_paper_frequency;
          Alcotest.test_case "rank order" `Quick test_rank_order_complete;
          Alcotest.test_case "adapt params" `Quick test_adapt_params;
          Alcotest.test_case "HS/LL crossover" `Slow test_crossover_hs_ll_exists;
        ] );
      ( "energy",
        [
          Alcotest.test_case "at_frequency scales chi" `Quick
            test_at_frequency_scales_chi;
          Alcotest.test_case "U shape" `Slow test_energy_u_shape;
          Alcotest.test_case "vth tracks f" `Slow test_energy_sweep_vth_tracks_f;
          Alcotest.test_case "definition" `Quick test_energy_consistent_with_power;
        ] );
      ( "arch_params",
        [ Alcotest.test_case "scale" `Quick test_arch_params_scale ]
        @ qsuite [ prop_optimum_interior ] );
    ]
