(* Benchmark harness: regenerates every table and figure of the paper
   (printed below), and times each regeneration plus the substrate
   operations with Bechamel. *)

open Bechamel
open Toolkit

let make_test name f = Test.make ~name (Staged.stage f)

(* One benchmark per paper artifact. *)

let bench_table1 =
  make_test "table1:13-multipliers-LL" (fun () ->
      ignore (Report.Experiments.table1 ()))

let bench_table3 =
  make_test "table3:wallace-ULL" (fun () ->
      ignore (Report.Experiments.table_wallace `Ull))

let bench_table4 =
  make_test "table4:wallace-HS" (fun () ->
      ignore (Report.Experiments.table_wallace `Hs))

let bench_fig1 =
  make_test "fig1:ptot-vs-vdd-sweeps" (fun () ->
      ignore (Report.Experiments.figure1 ()))

let bench_fig2 =
  make_test "fig2:linearization-fit" (fun () ->
      ignore (Report.Experiments.figure2 ()))

(* Substrate micro-benchmarks. *)

let calibrated_problem =
  let row = Power_core.Paper_data.table1_find "RCA" in
  Power_core.Calibration.problem_of_row Device.Technology.ll
    ~f:Power_core.Paper_data.frequency row

let bench_numerical_opt =
  make_test "core:numerical-optimum" (fun () ->
      ignore (Power_core.Numerical_opt.optimum calibrated_problem))

let bench_closed_form =
  make_test "core:eq13-closed-form" (fun () ->
      ignore (Power_core.Closed_form.evaluate calibrated_problem))

let bench_build_rca =
  make_test "netlist:build-rca16" (fun () ->
      ignore (Multipliers.Rca.basic ~bits:16))

let bench_build_wallace =
  make_test "netlist:build-wallace16" (fun () ->
      ignore (Multipliers.Wallace.basic ~bits:16))

let bench_sta =
  let spec = Multipliers.Rca.basic ~bits:16 in
  make_test "netlist:sta-rca16" (fun () ->
      ignore (Netlist.Timing.logical_depth spec.circuit))

let bench_activity =
  let spec = Multipliers.Wallace.basic ~bits:16 in
  make_test "logicsim:activity-wallace16-20cycles" (fun () ->
      ignore (Multipliers.Harness.measure_activity ~cycles:20 spec))

let bench_ring_oscillator =
  make_test "spice:ring-oscillator-7st" (fun () ->
      let config = Spice.Transient.default_config Device.Technology.ll in
      ignore (Spice.Ring_oscillator.simulate config ~stages:7))

(* Ablation benches (design choices DESIGN.md calls out). *)

let bench_ablation_dibl =
  make_test "ablation:dibl-invariance" (fun () ->
      ignore (Power_core.Ablation.dibl_sweep calibrated_problem))

let bench_ablation_linrange =
  make_test "ablation:linearization-range" (fun () ->
      ignore
        (Power_core.Ablation.linearization_range_sweep ~his:[ 0.8; 1.0; 1.2 ] ()))

let bench_ablation_glitch =
  make_test "ablation:glitch-power-rca" (fun () ->
      ignore
        (Power_core.Ablation.glitch_ablation ~cycles:40 Device.Technology.ll
           ~f:Power_core.Paper_data.frequency ~labels:[ "RCA" ]))

let bench_frequency_sweep =
  let params =
    Power_core.Calibration.params_of_row Device.Technology.ll
      ~f:Power_core.Paper_data.frequency
      (Power_core.Paper_data.table1_find "Wallace")
  in
  make_test "extension:frequency-sweep" (fun () ->
      ignore (Power_core.Ablation.frequency_sweep ~points:7 params))

let bench_build_booth =
  make_test "extension:build-booth16" (fun () ->
      ignore (Multipliers.Booth.basic ~bits:16))

let bench_build_dadda =
  make_test "extension:build-dadda16" (fun () ->
      ignore (Multipliers.Dadda.basic ~bits:16))

let bench_energy_mep =
  make_test "extension:minimum-energy-point" (fun () ->
      ignore (Power_core.Energy.minimum_energy_point calibrated_problem))

let bench_variation =
  make_test "extension:variation-50-dies" (fun () ->
      let rng = Numerics.Rng.create 2006 in
      ignore
        (Power_core.Variation.monte_carlo ~samples:50 ~rng calibrated_problem))

let benchmarks =
  [
    bench_fig2;
    bench_closed_form;
    bench_numerical_opt;
    bench_fig1;
    bench_table1;
    bench_table3;
    bench_table4;
    bench_build_rca;
    bench_build_wallace;
    bench_sta;
    bench_activity;
    bench_ring_oscillator;
    bench_ablation_dibl;
    bench_ablation_linrange;
    bench_ablation_glitch;
    bench_frequency_sweep;
    bench_build_booth;
    bench_build_dadda;
    bench_energy_mep;
    bench_variation;
  ]

let run_benchmarks () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Printf.printf "%-42s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          let estimate =
            match Analyze.OLS.estimates result with
            | Some [ e ] -> e
            | Some _ | None -> Float.nan
          in
          let pretty =
            if Float.is_nan estimate then "n/a"
            else if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
            else if estimate > 1e6 then
              Printf.sprintf "%.2f ms" (estimate /. 1e6)
            else if estimate > 1e3 then
              Printf.sprintf "%.2f us" (estimate /. 1e3)
            else Printf.sprintf "%.0f ns" estimate
          in
          Printf.printf "%-42s %16s\n%!" name pretty)
        analyzed)
    benchmarks

let () =
  print_endline
    "=== Reproduction of Schuster et al. (DATE 2006) - tables and figures ===\n";
  print_string (Report.Experiments.render_figure2 (Report.Experiments.figure2 ()));
  print_newline ();
  print_string (Report.Experiments.render_figure1 (Report.Experiments.figure1 ()));
  print_newline ();
  print_string (Report.Experiments.render_table1 (Report.Experiments.table1 ()));
  print_newline ();
  print_string
    (Report.Experiments.render_wallace (Report.Experiments.table_wallace `Ull));
  print_newline ();
  print_string
    (Report.Experiments.render_wallace (Report.Experiments.table_wallace `Hs));
  print_newline ();
  print_endline "=== Timings (Bechamel) ===\n";
  run_benchmarks ()
