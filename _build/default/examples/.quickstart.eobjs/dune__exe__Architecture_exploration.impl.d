examples/architecture_exploration.ml: Device Power_core Printf String
