examples/technology_selection.ml: Device List Power_core Printf
