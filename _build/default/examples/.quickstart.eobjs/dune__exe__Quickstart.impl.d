examples/quickstart.ml: Device Format Multipliers Power_core Printf
