examples/robustness_study.mli:
