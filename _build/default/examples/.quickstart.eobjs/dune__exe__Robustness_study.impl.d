examples/robustness_study.ml: Device List Numerics Power_core Printf Report
