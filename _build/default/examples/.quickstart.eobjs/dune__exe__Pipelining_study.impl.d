examples/pipelining_study.ml: Device Multipliers Netlist Power_core Printf Report
