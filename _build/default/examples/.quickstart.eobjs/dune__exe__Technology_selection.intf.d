examples/technology_selection.mli:
