examples/quickstart.mli:
