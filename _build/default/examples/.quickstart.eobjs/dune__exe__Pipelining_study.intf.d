examples/pipelining_study.mli:
