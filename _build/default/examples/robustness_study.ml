(* Robustness of the optimal working point: process variation and
   self-heating.

   The paper assumes a single die at a fixed temperature with freely
   adjustable Vdd and Vth. This example probes both assumptions with the
   model: Monte Carlo over die-to-die parameter spread (showing which
   variations the adjustable working point absorbs and which it cannot),
   and a self-heating fixpoint where leakage raises temperature raises
   leakage.

   Run with: dune exec examples/robustness_study.exe *)

let () =
  let f = Power_core.Paper_data.frequency in
  let base = Device.Technology.ll in
  let row = Power_core.Paper_data.table1_find "Wallace" in
  let problem = Power_core.Calibration.problem_of_row base ~f row in

  (* 1. Threshold-voltage excursions are absorbed: the optimisation lives
     in effective-threshold space, so a Vth0 shift only moves the bias the
     device needs, never the achievable minimum. *)
  let nominal = Power_core.Numerical_opt.optimum problem in
  Printf.printf
    "Nominal optimum: %.1f uW at Vdd %.3f V.\n\
     A +50 mV die-to-die Vth0 excursion leaves it at %.1f uW — absorbed by \
     the\nadjustable working point (the paper's Section 1 premise).\n\n"
    (nominal.total *. 1e6) nominal.vdd
    (Power_core.Variation.vth_absorption problem ~dvth0:0.05 *. 1e6);

  (* 2. What is NOT absorbed: leakage magnitude, capacitance, speed, alpha. *)
  let rng = Numerics.Rng.create 2006 in
  let mc = Power_core.Variation.monte_carlo ~samples:300 ~rng problem in
  print_string (Report.Studies.render_variation mc);
  Printf.printf
    "\nDesign margin: budgeting for the 95th percentile costs %.0f%% over \
     nominal.\n\n"
    (100.0 *. (mc.ptot_p95 -. mc.nominal.total) /. mc.nominal.total);

  (* 3. Self-heating: a die full of these multipliers in a lousy package. *)
  let instances = 2000 in
  let optimum_at (tech : Device.Technology.t) =
    let heated =
      {
        problem with
        Power_core.Power_law.tech;
        params =
          {
            problem.params with
            Power_core.Arch_params.io_cell =
              problem.params.io_cell *. tech.io /. base.io;
          };
      }
    in
    float_of_int instances *. (Power_core.Numerical_opt.optimum heated).total
  in
  Printf.printf "%d instances per die, re-optimised at the converged \
                 temperature:\n" instances;
  print_string
    (Report.Studies.render_thermal
       (List.map
          (fun r_th ->
            (r_th, Device.Thermal.self_heating ~r_th ~optimum_at base))
          [ 0.0; 40.0; 100.0; 200.0 ]));
  print_newline ();
  print_endline
    "Reading: leakage roughly e-folds every 25 K, so a poor package turns \
     the\noptimal-power advantage into a thermal runaway margin problem — \
     an effect\ninvisible at fixed temperature, now quantified by the same \
     Eq. 1-13 machinery."
