(* Architecture exploration with Eq. 13 (Section 4 of the paper).

   The closed form turns "should I pipeline or parallelise?" into algebra:
   apply a transformation to the architectural parameters and compare the
   predicted optimal power — no synthesis, no simulation. Here we start
   from the paper's own RCA parameters and check the predictions against
   the transformed architectures it actually built.

   Run with: dune exec examples/architecture_exploration.exe *)

let () =
  let tech = Device.Technology.ll in
  let f = Power_core.Paper_data.frequency in
  let rca = Power_core.Paper_data.table1_find "RCA" in
  let base = Power_core.Calibration.params_of_row tech ~f rca in

  Printf.printf "Base architecture: %s, published optimal Ptot = %.1f uW\n\n"
    rca.label (rca.ptot *. 1e6);
  Printf.printf "%-26s %10s %12s %14s\n" "transformation" "Ptot[uW]"
    "ratio(Eq13)" "paper ratio";
  print_endline (String.make 66 '-');

  let paper_ratio label =
    (Power_core.Paper_data.table1_find label).ptot /. rca.ptot
  in
  let report transform paper_label =
    match
      Power_core.Transform.apply_and_evaluate tech ~f base transform
    with
    | _, result ->
      let ratio = Power_core.Transform.predicted_ratio tech ~f base transform in
      Printf.printf "%-26s %10.1f %12.2f %14s\n" transform.name
        (result.ptot *. 1e6) ratio
        (match paper_label with
        | Some label -> Printf.sprintf "%.2f" (paper_ratio label)
        | None -> "-")
    | exception Power_core.Closed_form.Infeasible reason ->
      Printf.printf "%-26s %10s %12s   (%s)\n" transform.name "-" "infeasible"
        reason
  in
  report (Power_core.Transform.parallelize ~copies:2 ()) (Some "RCA parallel");
  report
    (Power_core.Transform.parallelize ~copies:4 ())
    (Some "RCA parallel 4");
  report
    (Power_core.Transform.pipeline_horizontal ~stages:2 ())
    (Some "RCA hor.pipe2");
  report
    (Power_core.Transform.pipeline_horizontal ~stages:4 ())
    (Some "RCA hor.pipe4");
  report
    (Power_core.Transform.pipeline_diagonal ~stages:2 ())
    (Some "RCA diagpipe2");
  report
    (Power_core.Transform.pipeline_diagonal ~stages:4 ())
    (Some "RCA diagpipe4");
  report (Power_core.Transform.sequentialize ~cycles:16) (Some "Sequential");

  print_newline ();
  print_endline
    "Reading: ratios < 1 pay off. Parallelisation and pipelining help the \
     slow RCA;\nsequentialisation is catastrophic at this throughput — \
     activity and effective\nlogical depth both explode, exactly the \
     paper's Section 4 conclusion."
