(* Technology selection with the optimal-power model (Section 5).

   Given one architecture and a throughput target, which flavor of the
   process — Ultra Low Leakage, Low Leakage or High Speed — allows the
   lowest total power at its optimal (Vdd, Vth)? The paper's answer:
   the moderate trade-off (LL) wins at 31.25 MHz; extreme flavors lose.
   This example reproduces that and then sweeps the frequency axis to
   show where the ranking flips.

   Run with: dune exec examples/technology_selection.exe *)

let () =
  let f0 = Power_core.Paper_data.frequency in
  let wallace = Power_core.Paper_data.table1_find "Wallace" in
  let params =
    Power_core.Calibration.params_of_row Device.Technology.ll ~f:f0 wallace
  in

  Printf.printf "Architecture: %s (N=%.0f, a=%.4f, LDeff=%.1f)\n\n"
    params.label params.n_cells params.activity params.ld_eff;

  let show_ranking f =
    Printf.printf "f = %.4g MHz:\n" (f /. 1e6);
    let entries = Power_core.Tech_compare.rank ~f params in
    List.iteri
      (fun i (e : Power_core.Tech_compare.entry) ->
        match e.numerical with
        | Some p ->
          Printf.printf "  %d. %-4s Ptot = %8.1f uW  (Vdd %.3f, Vth %.3f)\n"
            (i + 1)
            (Device.Technology.name e.tech)
            (p.total *. 1e6) p.vdd p.vth
        | None ->
          Printf.printf "  %d. %-4s cannot meet timing\n" (i + 1)
            (Device.Technology.name e.tech))
      entries
  in
  show_ranking f0;
  print_newline ();
  show_ranking 2e6;
  print_newline ();
  show_ranking 250e6;
  print_newline ();

  (match
     Power_core.Tech_compare.crossover_frequency Device.Technology.hs
       Device.Technology.ll params
   with
  | Some f ->
    Printf.printf
      "HS overtakes LL at ~%.0f MHz: past that throughput, the slow-but-\n\
       frugal flavor must burn so much Vdd/Vth margin that raw speed wins.\n"
      (f /. 1e6)
  | None ->
    print_endline "No HS/LL crossover between 1 MHz and 1 GHz.");
  match
    Power_core.Tech_compare.crossover_frequency Device.Technology.ull
      Device.Technology.ll params
  with
  | Some f ->
    Printf.printf
      "ULL overtakes LL below ~%.2f MHz: with almost nothing switching,\n\
       leakage is everything.\n"
      (f /. 1e6)
  | None -> print_endline "No ULL/LL crossover between 1 MHz and 1 GHz."
