(* Horizontal vs diagonal pipelining, from netlists up (Section 4).

   The paper's subtlest observation: diagonally pipelined arrays have a
   *shorter* logical depth than horizontally pipelined ones, yet can burn
   more power, because the wider spread of path delays creates glitches —
   visible as higher switching activity. This example builds the actual
   netlists, measures both effects in the event-driven simulator, and runs
   the optimal-power pipeline on the results. No published numbers are
   used anywhere.

   Run with: dune exec examples/pipelining_study.exe *)

let () =
  let tech = Device.Technology.ll in
  let f = 31.25e6 in
  let study name spec =
    let row = Power_core.Scratch_pipeline.run_spec ~cycles:120 tech ~f spec in
    let spread = Netlist.Timing.slack_spread spec.circuit in
    Printf.printf "%-14s LDeff %6.1f  activity %.4f  glitch %.3f  \
                   path-spread %.3f  Ptot* %8.1f uW\n"
      name row.params.ld_eff row.params.activity row.glitch_ratio spread
      (row.numerical.total *. 1e6);
    row
  in
  Printf.printf "16-bit RCA multiplier, STM LL, f = %.2f MHz\n\n" (f /. 1e6);
  let basic = study "flat" (Multipliers.Rca.basic ~bits:16) in
  let hor2 =
    study "hor.pipe2"
      (Multipliers.Rca.pipelined ~bits:16 ~stages:2 ~cut:Multipliers.Rca.Horizontal)
  in
  let diag2 =
    study "diagpipe2"
      (Multipliers.Rca.pipelined ~bits:16 ~stages:2 ~cut:Multipliers.Rca.Diagonal)
  in
  let hor4 =
    study "hor.pipe4"
      (Multipliers.Rca.pipelined ~bits:16 ~stages:4 ~cut:Multipliers.Rca.Horizontal)
  in
  let diag4 =
    study "diagpipe4"
      (Multipliers.Rca.pipelined ~bits:16 ~stages:4 ~cut:Multipliers.Rca.Diagonal)
  in
  print_newline ();
  let pct a b = 100.0 *. (a -. b) /. b in
  Printf.printf
    "Pipelining pays: 2 stages cut the optimal power by %.0f%%, 4 stages by \
     %.0f%%.\n"
    (-.pct hor2.numerical.total basic.numerical.total)
    (-.pct hor4.numerical.total basic.numerical.total);
  Printf.printf
    "Diagonal cuts are faster (LDeff %.1f vs %.1f at 4 stages) but \
     glitchier\n(activity %.4f vs %.4f) — the trade-off Section 4 \
     describes.\n"
    diag4.params.ld_eff hor4.params.ld_eff diag4.params.activity
    hor4.params.activity;
  Printf.printf
    "At 2 stages the same pattern: LDeff %.1f vs %.1f, activity %.4f vs \
     %.4f.\n"
    diag2.params.ld_eff hor2.params.ld_eff diag2.params.activity
    hor2.params.activity;
  print_newline ();
  print_endline "Register placement (8-bit illustration, cf. Figures 3-4):";
  print_string
    (Report.Experiments.pipeline_sketch ~bits:8 ~stages:4
       ~cut:Multipliers.Rca.Horizontal);
  print_newline ();
  print_string
    (Report.Experiments.pipeline_sketch ~bits:8 ~stages:4
       ~cut:Multipliers.Rca.Diagonal)
