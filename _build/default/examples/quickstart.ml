(* Quickstart: build a multiplier, check it multiplies, extract its
   architectural parameters and find its optimal (Vdd, Vth) working point.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Generate a 16-bit Wallace-tree multiplier netlist. *)
  let spec = Multipliers.Wallace.basic ~bits:16 in
  let stats = Multipliers.Spec.stats spec in
  Printf.printf "Built %s: %d cells, %.0f um^2, %d flip-flops\n" spec.name
    stats.cell_total stats.area stats.dff_count;

  (* 2. Simulate it: does the hardware actually multiply? *)
  let sim = Multipliers.Harness.fresh_simulator spec in
  let x = 12345 and y = 54321 in
  let product = Multipliers.Harness.compute spec sim x y in
  Printf.printf "%d x %d = %d (%s)\n" x y product
    (if product = x * y then "correct" else "WRONG");

  (* 3. Extract the power-model parameters: activity from event-driven
     simulation, logical depth from static timing analysis. *)
  let tech = Device.Technology.ll in
  let params = Power_core.Arch_params.of_spec ~cycles:80 tech spec in
  Format.printf "%a@." Power_core.Arch_params.pp params;

  (* 4. Optimal working point at the paper's 31.25 MHz throughput. *)
  let f = 31.25e6 in
  let problem = Power_core.Power_law.make tech params ~f in
  let opt = Power_core.Numerical_opt.optimum problem in
  Printf.printf
    "Numerical optimum: Vdd = %.3f V, Vth = %.3f V -> Ptot = %.1f uW (dyn \
     %.1f + stat %.1f)\n"
    opt.vdd opt.vth (opt.total *. 1e6) (opt.dynamic *. 1e6)
    (opt.static *. 1e6);

  (* 5. The paper's closed form (Eq. 13) predicts it without optimising. *)
  let cf = Power_core.Closed_form.evaluate problem in
  Printf.printf "Eq. 13 closed form:  Ptot = %.1f uW (%.2f%% off the \
                 numerical optimum)\n"
    (cf.ptot *. 1e6)
    (100.0 *. (cf.ptot -. opt.total) /. opt.total)
